/**
 * @file
 * Extension example: plugging a user-defined replica allocator into
 * the accelerator. Implements a simple "square-root rule" allocator
 * (replicas proportional to sqrt(stage time / crossbar cost), the
 * classic closed form for additive objectives) and benchmarks it
 * against the built-in policies on every dataset.
 */

#include <cmath>
#include <iostream>

#include "alloc/allocator.hh"
#include "alloc/greedy_heap.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"

namespace {

using namespace gopim;

/**
 * Square-root rule: for minimizing sum_i s_i / r_i subject to
 * sum_i r_i c_i <= C, the optimum is r_i proportional to
 * sqrt(s_i / c_i). Ignores Eq. 6's bottleneck term — which is
 * exactly what this example demonstrates the greedy gets right.
 */
class SqrtRuleAllocator : public alloc::Allocator
{
  public:
    alloc::AllocationResult
    allocate(const alloc::AllocationProblem &problem) const override
    {
        problem.validate();
        const size_t n = problem.numStages();
        std::vector<double> ideal(n);
        double costAtUnitScale = 0.0;
        for (size_t i = 0; i < n; ++i) {
            ideal[i] = std::sqrt(
                std::max(problem.scalableTimesNs[i], 1e-9) /
                static_cast<double>(problem.crossbarsPerReplica[i]));
            costAtUnitScale +=
                ideal[i] *
                static_cast<double>(problem.crossbarsPerReplica[i]);
        }
        const double scale =
            static_cast<double>(problem.spareCrossbars) /
            costAtUnitScale;
        std::vector<uint32_t> replicas(n, 1);
        for (size_t i = 0; i < n; ++i) {
            replicas[i] += static_cast<uint32_t>(ideal[i] * scale);
            if (problem.maxUsefulReplicas > 0)
                replicas[i] = std::min(replicas[i],
                                       problem.maxUsefulReplicas);
        }
        return finish(problem, std::move(replicas));
    }

    std::string name() const override { return "SqrtRule"; }
};

} // namespace

int
main()
{
    core::ComparisonHarness harness;

    Table table("Custom allocator vs built-ins "
                "(makespan normalized to Serial)",
                {"dataset", "SqrtRule", "GreedyHeap (GoPIM)"});

    for (const auto &spec : graph::DatasetCatalog::figure13Set()) {
        const auto workload = gcn::Workload::paperDefault(spec.name);
        const auto profile =
            gcn::VertexProfile::build(workload.dataset, workload.seed);

        const auto serial =
            harness.runOne(core::SystemKind::Serial, workload);

        // Plug the custom policy into a GoPIM-shaped system.
        auto custom = core::makeSystem(core::SystemKind::GoPim);
        custom.name = "GoPIM+SqrtRule";
        custom.allocator = std::make_shared<SqrtRuleAllocator>();
        core::Accelerator customAccel(harness.hardware(), custom);
        const auto customRun = customAccel.run(workload, profile);

        const auto gopim =
            harness.runOne(core::SystemKind::GoPim, workload);

        table.row()
            .cell(spec.name)
            .cell(customRun.speedupOver(serial), 1)
            .cell(gopim.speedupOver(serial), 1);
    }
    table.print(std::cout);
    std::cout << "\nThe square-root rule ignores the pipeline's "
                 "bottleneck term (Eq. 6), so Algorithm 1's greedy "
                 "should match or beat it everywhere.\n";
    return 0;
}
