/**
 * @file
 * Quickstart: run GoPIM and the Serial baseline on the ddi workload
 * and print the headline speedup, energy saving, and the per-stage
 * replica allocation — the 60-second tour of the public API.
 */

#include <iostream>

#include "common/table.hh"
#include "core/harness.hh"
#include "gcn/workload.hh"

int
main()
{
    using namespace gopim;

    // 1. Pick a workload from the Table III catalog (models and
    //    hyperparameters follow Table IV automatically).
    const auto workload = gcn::Workload::paperDefault("ddi");
    std::cout << "workload: " << workload.dataset.name << " ("
              << workload.dataset.numVertices << " vertices, "
              << workload.dataset.numEdges << " edges, "
              << workload.model.numLayers << "-layer GCN)\n\n";

    // 2. Build the comparison harness on the Table II hardware.
    core::ComparisonHarness harness;

    // 3. Run the Serial baseline and full GoPIM.
    const auto serial =
        harness.runOne(core::SystemKind::Serial, workload);
    const auto gopim = harness.runOne(core::SystemKind::GoPim, workload);

    std::cout << "Serial makespan : " << formatTimeNs(serial.makespanNs)
              << "  energy: " << formatEnergyPj(serial.energyPj) << "\n";
    std::cout << "GoPIM  makespan : " << formatTimeNs(gopim.makespanNs)
              << "  energy: " << formatEnergyPj(gopim.energyPj) << "\n";
    std::cout << "speedup         : "
              << formatRatio(gopim.speedupOver(serial)) << "\n";
    std::cout << "energy saving   : "
              << formatRatio(gopim.energySavingOver(serial)) << "\n\n";

    // 4. Inspect GoPIM's replica allocation (Table VI view).
    Table alloc("GoPIM crossbar allocation on ddi",
                {"stage", "replicas", "crossbars", "time/mb"});
    for (size_t i = 0; i < gopim.stages.size(); ++i) {
        alloc.row()
            .cell(gopim.stages[i].label())
            .cell(static_cast<uint64_t>(gopim.replicas[i]))
            .cell(gopim.stageCrossbars[i])
            .cell(formatTimeNs(gopim.stageTimesNs[i]));
    }
    alloc.print(std::cout);

    std::cout << "\nGoPIM average crossbar idle time: "
              << gopim.avgIdleFraction * 100.0 << "% (Serial: "
              << serial.avgIdleFraction * 100.0 << "%)\n";
    return 0;
}
