/**
 * @file
 * Visualization example: render the training pipeline of the Naive
 * system (no replicas) and GoPIM side by side as ASCII Gantt charts,
 * making the stage-time balancing that Algorithm 1 performs visible
 * at a glance — the intuition behind Figs. 5, 10, and 15.
 */

#include <iostream>

#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "pipeline/gantt.hh"

namespace {

using namespace gopim;

void
show(const core::RunResult &run, uint32_t microBatches)
{
    std::cout << "--- " << run.systemName
              << " (makespan " << formatTimeNs(run.makespanNs)
              << ", avg idle " << run.avgIdleFraction * 100.0
              << "%) ---\n";
    const auto schedule =
        pipeline::schedulePipelined(run.stageTimesNs, microBatches);
    pipeline::GanttOptions options;
    options.maxMicroBatches = 8;
    std::cout << pipeline::renderGantt(run.stages, schedule, options)
              << '\n';
}

} // namespace

int
main()
{
    const auto workload = gcn::Workload::paperDefault("ddi");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    core::ComparisonHarness harness;

    std::cout << "ddi, 2-layer GCN, first 8 micro-batches of the "
                 "pipeline. Digits are micro-batch ids; '.' is idle "
                 "crossbar time.\n\n";

    core::Accelerator naive(harness.hardware(),
                            core::makeSystem(core::SystemKind::Naive));
    const auto naiveRun = naive.run(workload, profile);
    show(naiveRun, 8);

    core::Accelerator gopim(harness.hardware(),
                            core::makeSystem(core::SystemKind::GoPim));
    const auto gopimRun = gopim.run(workload, profile);
    show(gopimRun, 8);

    std::cout << "Naive's Aggregation bars dwarf everything and leave "
                 "the Combination crossbars idle; GoPIM's replicas "
                 "shrink the long stages until the bars interlock.\n";
    return 0;
}
