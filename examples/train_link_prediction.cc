/**
 * @file
 * Domain example: functional GCN training with ISU on a synthetic
 * drug-interaction-style graph (dense, hub-heavy, ddi-class), showing
 * the accuracy/performance trade-off of selective vertex updating —
 * the workflow a GoPIM user runs before committing to a theta.
 */

#include <iostream>

#include "common/rng.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "gcn/trainer.hh"
#include "gcn/workload.hh"
#include "graph/generators.hh"
#include "mapping/selective.hh"

int
main()
{
    using namespace gopim;

    // A dense interaction graph: 1500 entities, hub-heavy degrees
    // (average ~50), 4 interaction classes.
    Rng rng(99);
    const auto data =
        graph::degreeCorrectedPartition(1500, 4, 50.0, 2.1, 0.05, rng);
    std::cout << "graph: " << data.graph.numVertices()
              << " vertices, " << data.graph.numEdges()
              << " edges, avg degree " << data.graph.averageDegree()
              << "\n";
    const double theta =
        mapping::adaptiveTheta(data.graph.averageDegree());
    std::cout << "adaptive update threshold (Section VI-C): theta = "
              << theta << "\n\n";

    gcn::TrainerConfig cfg;
    cfg.epochs = 100;
    gcn::FunctionalTrainer trainer(data, cfg);

    // Accuracy side: full updates vs ISU-selected updates.
    const auto full = trainer.train({});
    const auto isu = trainer.train(
        {.enabled = true, .theta = theta, .coldPeriod = 20});

    Table acc("Training outcome (100 epochs)",
              {"policy", "best test acc %", "final loss"});
    acc.row()
        .cell("full updates")
        .cell(full.bestTestAccuracy * 100.0, 2)
        .cell(full.finalTrainLoss, 4);
    acc.row()
        .cell("ISU (theta = " + std::to_string(theta) + ")")
        .cell(isu.bestTestAccuracy * 100.0, 2)
        .cell(isu.finalTrainLoss, 4);
    acc.print(std::cout);

    // Performance side: what the selective updates buy on the
    // accelerator for the real ddi workload.
    core::ComparisonHarness harness;
    const auto workload = gcn::Workload::paperDefault("ddi");
    const auto vanilla =
        harness.runOne(core::SystemKind::GoPimVanilla, workload);
    const auto gopim =
        harness.runOne(core::SystemKind::GoPim, workload);

    std::cout << "\nddi on the accelerator:\n";
    std::cout << "  GoPIM-Vanilla (full updates): "
              << formatTimeNs(vanilla.makespanNs) << ", "
              << vanilla.totalRowWrites << " row writes\n";
    std::cout << "  GoPIM (ISU):                  "
              << formatTimeNs(gopim.makespanNs) << ", "
              << gopim.totalRowWrites << " row writes\n";
    std::cout << "  write reduction: "
              << (1.0 - static_cast<double>(gopim.totalRowWrites) /
                            static_cast<double>(
                                vanilla.totalRowWrites)) *
                     100.0
              << "%\n";
    return 0;
}
