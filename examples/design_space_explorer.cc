/**
 * @file
 * Domain example: hardware design-space exploration. Sweeps crossbar
 * geometry, write latency, and chip budget to show how the GoPIM
 * speedup and the allocator's choices respond — the study an
 * architect runs before committing silicon parameters.
 */

#include <iostream>

#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "reram/area.hh"

namespace {

using namespace gopim;

double
speedupFor(const reram::AcceleratorConfig &hw,
           const gcn::Workload &workload,
           const gcn::VertexProfile &profile)
{
    core::Accelerator serial(hw,
                             core::makeSystem(core::SystemKind::Serial));
    core::Accelerator gopim(hw,
                            core::makeSystem(core::SystemKind::GoPim));
    return gopim.run(workload, profile)
        .speedupOver(serial.run(workload, profile));
}

} // namespace

int
main()
{
    const auto workload = gcn::Workload::paperDefault("ddi");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);

    // 1. Crossbar geometry sweep (same total cell budget per chip).
    {
        Table table("Crossbar geometry sweep (ddi)",
                    {"crossbar", "total crossbars", "chip area mm^2",
                     "GoPIM speedup"});
        for (uint32_t size : {32u, 64u, 128u}) {
            auto hw = reram::AcceleratorConfig::paperDefault();
            hw.crossbar.rows = size;
            hw.crossbar.cols = size;
            // Hold the cell budget: scale crossbars per PE.
            hw.pe.crossbarsPerPe = 32u * (64u * 64u) / (size * size);
            const auto area = reram::computeArea(hw);
            table.row()
                .cell(std::to_string(size) + "x" +
                      std::to_string(size))
                .cell(hw.totalCrossbars())
                .cell(area.chipMm2, 0)
                .cell(speedupFor(hw, workload, profile), 1);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // 2. Write latency sweep: ISU matters more on slow-write devices.
    {
        Table table("Write latency sweep (ddi, GoPIM vs Vanilla)",
                    {"t_write (ns)", "GoPIM speedup",
                     "Vanilla speedup", "ISU advantage"});
        for (double tw : {25.0, 50.88, 150.0, 500.0}) {
            auto hw = reram::AcceleratorConfig::paperDefault();
            hw.crossbar.writeLatencyNs = tw;
            core::Accelerator serial(
                hw, core::makeSystem(core::SystemKind::Serial));
            core::Accelerator gopim(
                hw, core::makeSystem(core::SystemKind::GoPim));
            core::Accelerator vanilla(
                hw, core::makeSystem(core::SystemKind::GoPimVanilla));
            const auto s = serial.run(workload, profile);
            const double g =
                gopim.run(workload, profile).speedupOver(s);
            const double v =
                vanilla.run(workload, profile).speedupOver(s);
            table.row()
                .cell(tw, 2)
                .cell(g, 1)
                .cell(v, 1)
                .cell(g / v, 2);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // 3. Chip budget sweep: how much ReRAM does GoPIM actually need?
    {
        Table table("Chip budget sweep (ddi)",
                    {"tiles", "total crossbars", "GoPIM speedup",
                     "crossbars used"});
        for (uint32_t tiles : {1024u, 4096u, 16384u, 65536u}) {
            auto hw = reram::AcceleratorConfig::paperDefault();
            hw.chip.tilesPerChip = tiles;
            core::Accelerator serial(
                hw, core::makeSystem(core::SystemKind::Serial));
            core::Accelerator gopim(
                hw, core::makeSystem(core::SystemKind::GoPim));
            const auto s = serial.run(workload, profile);
            const auto g = gopim.run(workload, profile);
            table.row()
                .cell(static_cast<uint64_t>(tiles))
                .cell(hw.totalCrossbars())
                .cell(g.speedupOver(s), 1)
                .cell(g.totalCrossbars);
        }
        table.print(std::cout);
    }
    return 0;
}
