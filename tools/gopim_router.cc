/**
 * @file
 * gopim_router: sharded serving front end (src/cluster). Rendezvous-
 * hashes every request's content-addressed cache key across N
 * gopim_serve worker shards, streams responses back in input order,
 * sheds load when a shard saturates, and survives worker crashes by
 * journaling in-flight requests and re-issuing them to a respawned
 * worker — the response stream stays byte-identical to a single
 * `gopim_serve --envelope=stable` run.
 *
 * Two ways to get shards:
 *   --workers=N --worker-cmd="./gopim_serve --jobs=2"   spawn N
 *       workers locally (the router appends --tcp=0 --port-file=...
 *       and respawns crashed ones with the same command);
 *   --connect=host:port[,host:port...]                  attach to
 *       pre-started `gopim_serve --tcp=PORT` processes.
 *
 * The router's own --engine/--seed/fault flags must match the
 * workers' — the hello fingerprint check refuses mismatched shards
 * rather than serving silently divergent bytes.
 *
 * The chaos flags (--chaos-kill-every/--chaos-kill-count) SIGKILL
 * seeded-random spawned workers under load; CI uses them to assert
 * restart-path bit-identity end to end.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cluster/proc.hh"
#include "cluster/router.hh"
#include "common/flags.hh"
#include "common/logging.hh"
#include "common/net.hh"
#include "core/options.hh"

namespace {

using namespace gopim;

volatile std::sig_atomic_t g_stop = 0;

void
handleSignal(int)
{
    g_stop = 1;
}

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(text);
    while (std::getline(in, part, sep))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

std::vector<cluster::ShardSpec>
shardSpecs(const Flags &flags)
{
    const std::string connect = flags.getString("connect");
    const int64_t workers = flags.getInt("workers");
    if (!connect.empty() && workers > 0)
        fatal("--connect and --workers are mutually exclusive");

    std::vector<cluster::ShardSpec> specs;
    if (!connect.empty()) {
        for (const std::string &endpoint : splitList(connect, ',')) {
            cluster::ShardSpec spec;
            std::string error;
            if (!cluster::parseEndpoint(endpoint, &spec, &error))
                fatal(error);
            specs.push_back(std::move(spec));
        }
        return specs;
    }

    if (workers <= 0)
        fatal("need shards: pass --workers=N --worker-cmd=... or "
              "--connect=host:port[,...]");
    const std::vector<std::string> command =
        cluster::splitCommand(flags.getString("worker-cmd"));
    if (command.empty())
        fatal("--workers needs --worker-cmd (e.g. "
              "--worker-cmd=\"./build/tools/gopim_serve --jobs=2\")");

    // Spawned workers report their ephemeral ports through files in
    // a private scratch directory.
    char dirTemplate[] = "/tmp/gopim_router.XXXXXX";
    const char *portDir = ::mkdtemp(dirTemplate);
    if (portDir == nullptr)
        fatal("cannot create port-file directory");
    for (int64_t i = 0; i < workers; ++i) {
        cluster::ShardSpec spec;
        spec.name = "shard" + std::to_string(i);
        spec.command = command;
        spec.portFile =
            std::string(portDir) + "/" + spec.name + ".port";
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("gopim_router",
                "route JSONL simulation requests across gopim_serve "
                "shards (consistent hashing, in-order responses, "
                "crash recovery)");
    flags.addString("connect", "",
                    "comma-separated host:port list of pre-started "
                    "workers");
    flags.addInt("workers", 0,
                 "spawn this many local worker processes");
    flags.setIntRange("workers", 0, 256);
    flags.addString("worker-cmd", "",
                    "command to spawn each worker (--tcp=0 and "
                    "--port-file are appended)");
    flags.addInt("max-inflight", 64,
                 "per-shard in-flight bound; the dispatcher blocks "
                 "at this depth (backpressure)");
    flags.setIntRange("max-inflight", 1, 1 << 16);
    flags.addInt("shed-above", 0,
                 "shed (reject with code \"overloaded\") at this "
                 "per-shard depth; 0 = never shed");
    flags.setIntRange("shed-above", 0, 1 << 16);
    flags.addDouble("shed-latency-us", 0.0,
                    "with a positive value, a saturated shard sheds "
                    "once mean request latency exceeds this");
    flags.addInt("restart-attempts", 3,
                 "respawn/reconnect rounds before a dead shard's "
                 "requests are failed");
    flags.setIntRange("restart-attempts", 1, 100);
    flags.addInt("tcp", -1,
                 "serve clients over framed TCP on this port "
                 "(0 = ephemeral; -1 = stdin/stdout)");
    flags.setIntRange("tcp", -1, 65535);
    flags.addString("port-file", "",
                    "report the client-facing TCP port to this file");
    flags.addBool("stats", false,
                  "append a router {\"type\":\"stats\"} line after "
                  "the stream");
    flags.addInt("chaos-kill-every", 0,
                 "chaos: SIGKILL a random spawned worker every N "
                 "emitted responses (0 = off)");
    flags.setIntRange("chaos-kill-every", 0, 1 << 24);
    flags.addInt("chaos-kill-count", 0,
                 "chaos: total kills to inject");
    flags.setIntRange("chaos-kill-count", 0, 1 << 16);
    flags.addInt("chaos-seed", 1, "chaos: victim-selection seed");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    const sim::SimContext defaultCtx = core::simContextFromFlags(flags);

    cluster::RouterConfig config;
    config.shards = shardSpecs(flags);
    config.defaults.sim = defaultCtx;
    config.defaults.fault = core::faultConfigFromFlags(flags);
    config.defaults.microBatch = 64;
    config.defaults.epochs = 1;
    config.admission.maxInflightPerShard =
        static_cast<size_t>(flags.getInt("max-inflight"));
    config.admission.shedAbove =
        static_cast<size_t>(flags.getInt("shed-above"));
    config.admission.shedLatencyAboveUs =
        flags.getDouble("shed-latency-us");
    config.restartAttempts =
        static_cast<uint32_t>(flags.getInt("restart-attempts"));
    config.chaosKillEvery =
        static_cast<uint32_t>(flags.getInt("chaos-kill-every"));
    config.chaosKillCount =
        static_cast<uint32_t>(flags.getInt("chaos-kill-count"));
    config.chaosSeed =
        static_cast<uint64_t>(flags.getInt("chaos-seed"));
    // Admission gauges/counters and engine metrics share one registry
    // so a single --metrics-out file tells the whole story.
    config.metrics = defaultCtx.metrics;

    cluster::Router router(std::move(config));
    if (std::string problem = router.start(); !problem.empty())
        fatal("cluster start failed: ", problem);

    cluster::Router::StreamStats stats;
    const int tcpPort = static_cast<int>(flags.getInt("tcp"));
    if (tcpPort >= 0) {
        std::signal(SIGINT, handleSignal);
        std::signal(SIGTERM, handleSignal);
        std::string error;
        uint16_t boundPort = 0;
        const int listenFd =
            net::listenTcp("127.0.0.1", static_cast<uint16_t>(tcpPort),
                           &boundPort, &error);
        if (listenFd < 0)
            fatal(error);
        if (const std::string portFile = flags.getString("port-file");
            !portFile.empty()) {
            const std::string tmp = portFile + ".tmp";
            std::ofstream out(tmp);
            if (!out)
                fatal("cannot write port file ", tmp);
            out << boundPort << '\n';
            out.close();
            if (std::rename(tmp.c_str(), portFile.c_str()) != 0)
                fatal("cannot rename ", tmp, " to ", portFile);
        }
        inform("routing on 127.0.0.1:", boundPort, " across ",
               router.statsJson().find("shards")->size(),
               " shard(s); SIGINT/SIGTERM to exit");
        while (!g_stop) {
            const int conn = net::acceptWithTimeout(listenFd, 200);
            if (conn < 0)
                continue;
            net::Fd guard(conn);
            const auto connStats = router.processFramed(conn);
            stats.requests += connStats.requests;
            stats.errors += connStats.errors;
            stats.shed += connStats.shed;
            stats.chaosKills += connStats.chaosKills;
            stats.restarts = connStats.restarts;
            stats.reissued = connStats.reissued;
        }
        ::close(listenFd);
    } else {
        stats = router.processStream(std::cin, std::cout);
        if (flags.getBool("stats"))
            std::cout << router.statsJson().dump() << '\n';
    }

    inform("routed ", stats.requests, " request(s), ", stats.errors,
           " error(s), ", stats.shed, " shed, ", stats.restarts,
           " shard restart(s), ", stats.reissued, " re-issued");
    core::writeMetricsIfRequested(flags, defaultCtx);
    return 0;
}
