/**
 * @file
 * gopim_sim: command-line driver for the simulator. Runs any of the
 * named systems on any catalog dataset (or a user edge-list file),
 * printing the makespan, energy, allocation, idle profile, and
 * optionally a Gantt chart or CSV row — the everyday entry point for
 * downstream users.
 */

#include <iostream>

#include "common/flags.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/report.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"
#include "graph/io.hh"
#include "pipeline/gantt.hh"

namespace {

using namespace gopim;

core::SystemKind
systemByName(const std::string &name)
{
    for (auto kind :
         {core::SystemKind::Serial, core::SystemKind::SlimGnnLike,
          core::SystemKind::ReGraphX, core::SystemKind::ReFlip,
          core::SystemKind::GoPimVanilla, core::SystemKind::GoPim,
          core::SystemKind::PlusPP, core::SystemKind::PlusISU,
          core::SystemKind::Naive}) {
        if (toString(kind) == name)
            return kind;
    }
    fatal("unknown system '", name,
          "' (try GoPIM, Serial, SlimGNN-like, ReGraphX, ReFlip, "
          "GoPIM-Vanilla)");
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("gopim_sim",
                "run a GoPIM accelerator system on a GCN workload");
    flags.addString("dataset", "ddi",
                    "catalog dataset name (Table III)");
    flags.addString("graph", "",
                    "optional edge-list file overriding the catalog "
                    "graph statistics");
    flags.addString("system", "GoPIM", "system to simulate");
    flags.addString("baseline", "Serial",
                    "system to normalize speedup/energy against");
    flags.addInt("micro-batch", 64, "micro-batch size");
    flags.addInt("epochs", 1, "training epochs simulated");
    flags.addDouble("theta", 0.0,
                    "selective update threshold (0 = adaptive rule)");
    flags.addBool("gantt", false, "render the pipeline Gantt chart");
    flags.addBool("csv", false, "emit one CSV row instead of tables");
    flags.addBool("json", false,
                  "emit the full run result as JSON instead of "
                  "tables");
    flags.addInt("seed", 1, "profile generation seed");
    if (!flags.parse(argc, argv))
        return 0;

    auto workload = gcn::Workload::paperDefault(
        flags.getString("dataset"));
    workload.microBatchSize =
        static_cast<uint32_t>(flags.getInt("micro-batch"));
    workload.epochs = static_cast<uint32_t>(flags.getInt("epochs"));
    workload.seed = static_cast<uint64_t>(flags.getInt("seed"));

    if (!flags.getString("graph").empty()) {
        const auto g = graph::loadEdgeList(flags.getString("graph"));
        workload.dataset.name = flags.getString("graph");
        workload.dataset.numVertices = g.numVertices();
        workload.dataset.numEdges = g.numEdges();
        workload.dataset.avgDegree = g.averageDegree();
    }

    core::ComparisonHarness harness;
    auto system = core::makeSystem(
        systemByName(flags.getString("system")));
    if (flags.getDouble("theta") > 0.0) {
        system.policy.selectiveUpdate = true;
        system.policy.theta = flags.getDouble("theta");
    }

    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    core::Accelerator accel(harness.hardware(), system);
    const auto run = accel.run(workload, profile);
    const auto baseline = harness.runOne(
        systemByName(flags.getString("baseline")), workload);

    if (flags.getBool("json")) {
        core::writeRunJson(run, std::cout);
        std::cout << "\n";
        return 0;
    }

    if (flags.getBool("csv")) {
        std::cout << "dataset,system,makespan_ns,energy_pj,speedup,"
                     "energy_saving,crossbars,avg_idle\n"
                  << run.datasetName << ',' << run.systemName << ','
                  << run.makespanNs << ',' << run.energyPj << ','
                  << run.speedupOver(baseline) << ','
                  << run.energySavingOver(baseline) << ','
                  << run.totalCrossbars << ','
                  << run.avgIdleFraction << "\n";
        return 0;
    }

    std::cout << run.systemName << " on " << run.datasetName << " ("
              << workload.dataset.numVertices << " vertices, "
              << workload.model.numLayers << "-layer GCN, micro-batch "
              << workload.microBatchSize << ")\n\n";
    std::cout << "makespan      : " << formatTimeNs(run.makespanNs)
              << "\n";
    std::cout << "energy        : " << formatEnergyPj(run.energyPj)
              << "\n";
    std::cout << "vs " << baseline.systemName << "     : "
              << formatRatio(run.speedupOver(baseline)) << " speedup, "
              << formatRatio(run.energySavingOver(baseline))
              << " energy saving\n";
    std::cout << "crossbars     : " << run.totalCrossbars << " of "
              << harness.hardware().totalCrossbars() << "\n";
    std::cout << "avg idle      : " << run.avgIdleFraction * 100.0
              << "%\n\n";

    Table stagesTable("per-stage allocation",
                      {"stage", "replicas", "crossbars", "time/mb",
                       "idle %"});
    for (size_t i = 0; i < run.stages.size(); ++i) {
        stagesTable.row()
            .cell(run.stages[i].label())
            .cell(static_cast<uint64_t>(run.replicas[i]))
            .cell(run.stageCrossbars[i])
            .cell(formatTimeNs(run.stageTimesNs[i]))
            .cell(run.idleFraction[i] * 100.0, 1);
    }
    stagesTable.print(std::cout);

    if (flags.getBool("gantt")) {
        const auto schedule = pipeline::schedulePipelined(
            run.stageTimesNs,
            std::min(workload.microBatchesPerEpoch() * workload.epochs,
                     16u));
        std::cout << '\n'
                  << pipeline::renderGantt(run.stages, schedule);
    }
    return 0;
}
