/**
 * @file
 * gopim_sim: command-line driver for the simulator. Runs any of the
 * named systems on any catalog dataset (or a user edge-list file),
 * printing the makespan, energy, allocation, idle profile, and
 * optionally a Gantt chart, CSV row, or Chrome trace — the everyday
 * entry point for downstream users.
 *
 * The timing backend is pluggable: --engine=closed evaluates the
 * paper's Eq. 3-6 closed form, --engine=event runs the discrete-
 * event flow shop (with --buffer-slots / --retry-prob knobs), and
 * --engine=replay times lowered ISA command streams. Streams can be
 * recorded with --isa-trace-out and replayed bit-identically from
 * disk with --isa-trace-in (inspect them with gopim_trace).
 * --grid runs the full Fig. 13 system list over the dataset(s),
 * spread over --jobs worker threads.
 *
 * --workload selects the workload family (gcn-train, gnn-infer with
 * --partition=row|col|nnz, cnn-infer on a named preset); --list-
 * engines / --list-workloads print the registry tables and exit.
 */

#include <algorithm>
#include <iostream>
#include <sstream>

#include "common/flags.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/report.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"
#include "graph/io.hh"
#include "pipeline/gantt.hh"
#include "sim/engine.hh"
#include "workload/cnn_infer.hh"
#include "workload/family.hh"
#include "workload/runner.hh"

namespace {

using namespace gopim;

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** --grid: the Fig. 13 systems x the requested datasets. */
int
runGridMode(const core::ComparisonHarness &harness,
            const std::string &datasetList, size_t jobs, bool csv,
            bool json)
{
    const auto systems = core::figure13Systems();
    const auto rows =
        harness.runGrid(systems, splitCommas(datasetList), jobs);
    if (json) {
        core::writeGridJson(rows, std::cout);
        return 0;
    }
    if (csv) {
        core::writeGridCsv(rows, std::cout);
        return 0;
    }
    harness
        .speedupTable("speedup normalized to " +
                          rows.front().results.front().systemName +
                          " [" +
                          rows.front().results.front().engineName +
                          "]",
                      rows)
        .print(std::cout);
    std::cout << '\n';
    harness.energyTable("energy saving", rows).print(std::cout);
    return 0;
}

/** --list-engines: the timing-backend registry, aliases included. */
int
listEngines()
{
    Table table("registered engines (--engine)",
                {"canonical", "alias", "summary"});
    for (const auto &info : sim::engineRegistry())
        table.row().cell(info.canonical).cell(info.alias).cell(
            info.summary);
    table.print(std::cout);
    return 0;
}

/** --list-workloads: families, partitionings, and CNN presets. */
int
listWorkloads()
{
    Table families("registered workload families (--workload)",
                   {"canonical", "alias", "summary"});
    for (const auto &info : workload::familyRegistry())
        families.row().cell(info.canonical).cell(info.alias).cell(
            info.summary);
    families.print(std::cout);

    std::cout << '\n';
    Table partitions("gnn-infer partitionings (--partition)",
                     {"canonical", "alias", "summary"});
    for (const auto &info : workload::partitionRegistry())
        partitions.row().cell(info.canonical).cell(info.alias).cell(
            info.summary);
    partitions.print(std::cout);

    std::cout << '\n';
    Table presets("cnn-infer presets (--dataset)",
                  {"name", "summary"});
    for (const auto &preset : workload::cnnPresetRegistry())
        presets.row().cell(preset.name).cell(preset.summary);
    presets.print(std::cout);
    return 0;
}

/**
 * --workload=gnn-infer / cnn-infer: compile the family plan and run
 * it under the selected system. Training keeps the legacy
 * core::Accelerator path below, bit-identical to prior releases.
 */
int
runWorkloadMode(const Flags &flags, workload::FamilyKind family,
                const sim::SimContext &ctx)
{
    if (flags.getBool("grid"))
        fatal("--grid supports --workload=gcn-train only (use "
              "bench/ablation_workloads for inference grids)");
    if (!flags.getString("graph").empty())
        fatal("--graph is supported with --workload=gcn-train only");
    if (core::faultConfigFromFlags(flags).enabled())
        fatal("fault injection applies to --workload=gcn-train only");

    workload::WorkloadSpec spec;
    spec.family = family;
    // cnn-infer reads presets, not the graph catalog: substitute its
    // default preset unless the user explicitly picked a dataset.
    spec.dataset = flags.isSet("dataset") || family !=
                           workload::FamilyKind::CnnInfer
                       ? flags.getString("dataset")
                       : workload::defaultCnnPreset();
    spec.partition =
        workload::partitioningFromString(flags.getString("partition"));
    spec.microBatchSize =
        static_cast<uint32_t>(flags.getInt("micro-batch"));
    spec.epochs = static_cast<uint32_t>(flags.getInt("epochs"));
    spec.seed = ctx.seed;

    auto system = core::makeSystem(
        core::systemFromName(flags.getString("system")));
    system.sim = ctx;
    auto baselineSystem = core::makeSystem(
        core::systemFromName(flags.getString("baseline")));
    baselineSystem.sim = ctx;

    const auto hw = reram::AcceleratorConfig::paperDefault();
    const auto run = workload::runFamily(spec, system, hw);
    const auto baseline =
        workload::runFamily(spec, baselineSystem, hw);
    core::writeTraceIfRequested(flags, ctx);
    core::writeMetricsIfRequested(flags, ctx);
    core::writeIsaTraceIfRequested(flags, ctx);

    if (flags.getBool("json")) {
        core::writeRunJson(run, std::cout);
        std::cout << "\n";
        return 0;
    }
    if (flags.getBool("csv")) {
        std::cout << "dataset,system,engine,makespan_ns,energy_pj,"
                     "speedup,energy_saving,crossbars,avg_idle\n"
                  << run.datasetName << ',' << run.systemName << ','
                  << run.engineName << ',' << run.makespanNs << ','
                  << run.energyPj << ','
                  << run.speedupOver(baseline) << ','
                  << run.energySavingOver(baseline) << ','
                  << run.totalCrossbars << ','
                  << run.avgIdleFraction << "\n";
        return 0;
    }

    const workload::StagePlan plan =
        workload::familyFor(family).plan(spec, hw);
    std::cout << run.systemName << " running " << plan.label << " ("
              << plan.numStages() << " stages, micro-batch "
              << spec.microBatchSize << ", "
              << plan.totalMicroBatches << " micro-batches, "
              << run.engineName << " engine)\n\n";
    std::cout << "makespan      : " << formatTimeNs(run.makespanNs)
              << "\n";
    std::cout << "energy        : " << formatEnergyPj(run.energyPj)
              << "\n";
    std::cout << "vs " << baseline.systemName << "     : "
              << formatRatio(run.speedupOver(baseline))
              << " speedup, "
              << formatRatio(run.energySavingOver(baseline))
              << " energy saving\n";
    std::cout << "crossbars     : " << run.totalCrossbars << " of "
              << hw.totalCrossbars() << "\n";
    std::cout << "avg idle      : " << run.avgIdleFraction * 100.0
              << "%\n\n";

    Table stagesTable("per-stage allocation",
                      {"stage", "replicas", "crossbars", "time/mb",
                       "idle %"});
    for (size_t i = 0; i < run.stages.size(); ++i) {
        stagesTable.row()
            .cell(run.stages[i].label())
            .cell(static_cast<uint64_t>(run.replicas[i]))
            .cell(run.stageCrossbars[i])
            .cell(formatTimeNs(run.stageTimesNs[i]))
            .cell(run.idleFraction[i] * 100.0, 1);
    }
    stagesTable.print(std::cout);

    if (flags.getBool("gantt")) {
        sim::ScheduleRequest request;
        request.stageTimesNs = run.stageTimesNs;
        request.replicas = run.replicas;
        request.regime = plan.regime;
        request.totalMicroBatches =
            std::min(plan.totalMicroBatches, 16u);
        sim::SimContext ganttCtx = ctx;
        ganttCtx.recordWindows = true;
        ganttCtx.traceSink = nullptr;
        const auto timeline =
            sim::resolveEngine(ganttCtx).schedule(request, ganttCtx);
        std::cout << '\n'
                  << pipeline::renderGantt(
                         run.stages, timeline.toScheduleResult());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("gopim_sim",
                "run a GoPIM accelerator system on a GCN workload");
    flags.addString("dataset", "ddi",
                    "catalog dataset name (Table III); --grid "
                    "accepts a comma-separated list");
    flags.addString("graph", "",
                    "optional edge-list file overriding the catalog "
                    "graph statistics");
    flags.addString("system", "GoPIM", "system to simulate");
    flags.addString("baseline", "Serial",
                    "system to normalize speedup/energy against");
    flags.addInt("micro-batch", 64, "micro-batch size");
    flags.addInt("epochs", 1, "training epochs simulated");
    flags.addDouble("theta", 0.0,
                    "selective update threshold (0 = adaptive rule)");
    flags.addBool("gantt", false, "render the pipeline Gantt chart");
    flags.addBool("csv", false, "emit one CSV row instead of tables");
    flags.addBool("json", false,
                  "emit the full run result as JSON instead of "
                  "tables");
    flags.addBool("grid", false,
                  "run all Fig. 13 systems over the dataset list");
    flags.addString("workload", "gcn-train",
                    workload::familyFlagHelp());
    flags.addString("partition", "row-split",
                    workload::partitionFlagHelp());
    flags.addBool("list-engines", false,
                  "print the engine registry table and exit");
    flags.addBool("list-workloads", false,
                  "print the workload family registry tables and "
                  "exit");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    if (flags.getBool("list-engines"))
        return listEngines();
    if (flags.getBool("list-workloads"))
        return listWorkloads();

    const sim::SimContext ctx = core::simContextFromFlags(flags);
    const workload::FamilyKind family =
        workload::familyFromString(flags.getString("workload"));
    if (family != workload::FamilyKind::GcnTrain)
        return runWorkloadMode(flags, family, ctx);
    const fault::FaultConfig faultCfg =
        core::faultConfigFromFlags(flags);
    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(), ctx);
    harness.setFaultConfig(faultCfg);

    if (flags.getBool("grid")) {
        const int rc = runGridMode(
            harness, flags.getString("dataset"),
            core::jobsFromFlags(flags), flags.getBool("csv"),
            flags.getBool("json"));
        core::writeTraceIfRequested(flags, ctx);
        core::writeMetricsIfRequested(flags, ctx);
        core::writeIsaTraceIfRequested(flags, ctx);
        return rc;
    }

    auto workload = gcn::Workload::paperDefault(
        flags.getString("dataset"));
    workload.microBatchSize =
        static_cast<uint32_t>(flags.getInt("micro-batch"));
    workload.epochs = static_cast<uint32_t>(flags.getInt("epochs"));
    workload.seed = ctx.seed;

    if (!flags.getString("graph").empty()) {
        const auto g = graph::loadEdgeList(flags.getString("graph"));
        workload.dataset.name = flags.getString("graph");
        workload.dataset.numVertices = g.numVertices();
        workload.dataset.numEdges = g.numEdges();
        workload.dataset.avgDegree = g.averageDegree();
    }

    auto system = core::makeSystem(
        core::systemFromName(flags.getString("system")));
    system.sim = ctx;
    system.fault = faultCfg;
    if (flags.getDouble("theta") > 0.0) {
        system.policy.selectiveUpdate = true;
        system.policy.theta = flags.getDouble("theta");
    }

    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    core::Accelerator accel(harness.hardware(), system);
    const auto run = accel.run(workload, profile);
    const auto baseline = harness.runOne(
        core::systemFromName(flags.getString("baseline")), workload);
    core::writeTraceIfRequested(flags, ctx);
    core::writeMetricsIfRequested(flags, ctx);
    core::writeIsaTraceIfRequested(flags, ctx);

    if (flags.getBool("json")) {
        core::writeRunJson(run, std::cout);
        std::cout << "\n";
        return 0;
    }

    if (flags.getBool("csv")) {
        std::cout << "dataset,system,engine,makespan_ns,energy_pj,"
                     "speedup,energy_saving,crossbars,avg_idle\n"
                  << run.datasetName << ',' << run.systemName << ','
                  << run.engineName << ',' << run.makespanNs << ','
                  << run.energyPj << ','
                  << run.speedupOver(baseline) << ','
                  << run.energySavingOver(baseline) << ','
                  << run.totalCrossbars << ','
                  << run.avgIdleFraction << "\n";
        return 0;
    }

    std::cout << run.systemName << " on " << run.datasetName << " ("
              << workload.dataset.numVertices << " vertices, "
              << workload.model.numLayers << "-layer GCN, micro-batch "
              << workload.microBatchSize << ", " << run.engineName
              << " engine)\n\n";
    std::cout << "makespan      : " << formatTimeNs(run.makespanNs)
              << "\n";
    std::cout << "energy        : " << formatEnergyPj(run.energyPj)
              << "\n";
    std::cout << "vs " << baseline.systemName << "     : "
              << formatRatio(run.speedupOver(baseline)) << " speedup, "
              << formatRatio(run.energySavingOver(baseline))
              << " energy saving\n";
    std::cout << "crossbars     : " << run.totalCrossbars << " of "
              << harness.hardware().totalCrossbars() << "\n";
    std::cout << "avg idle      : " << run.avgIdleFraction * 100.0
              << "%\n\n";

    Table stagesTable("per-stage allocation",
                      {"stage", "replicas", "crossbars", "time/mb",
                       "idle %"});
    for (size_t i = 0; i < run.stages.size(); ++i) {
        stagesTable.row()
            .cell(run.stages[i].label())
            .cell(static_cast<uint64_t>(run.replicas[i]))
            .cell(run.stageCrossbars[i])
            .cell(formatTimeNs(run.stageTimesNs[i]))
            .cell(run.idleFraction[i] * 100.0, 1);
    }
    stagesTable.print(std::cout);

    if (flags.getBool("gantt")) {
        // Render through the selected engine so the chart reflects
        // the same backend that produced the makespan.
        sim::ScheduleRequest request;
        request.stageTimesNs = run.stageTimesNs;
        request.replicas = run.replicas;
        request.regime = sim::Regime::IntraInterBatch;
        request.totalMicroBatches =
            std::min(workload.microBatchesPerEpoch() * workload.epochs,
                     16u);
        sim::SimContext ganttCtx = ctx;
        ganttCtx.recordWindows = true;
        ganttCtx.traceSink = nullptr;
        const auto timeline =
            sim::resolveEngine(ganttCtx).schedule(request, ganttCtx);
        std::cout << '\n'
                  << pipeline::renderGantt(
                         run.stages, timeline.toScheduleResult());
    }
    return 0;
}
