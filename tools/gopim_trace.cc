/**
 * @file
 * gopim_trace: inspect binary ISA trace files (--isa-trace-out).
 *
 * Modes (default --summary):
 *   --summary    per-stream header, opcode histogram, and the
 *                nominal closed-form timing preview
 *   --validate   decode + structural validation of every stream
 *                (the command sequence must be the canonical
 *                lowering of its header); exits non-zero on any
 *                invalid stream — the CI round-trip job gates on it
 *   --verify-semantics
 *                run the flow-level semantic verifier
 *                (isa::verifyStream: CFG prologue, NOC pairing and
 *                deadlocks, BARRIER/SYNC bracketing, duration bit
 *                patterns, refresh cadence) on every stream; exits
 *                non-zero and prints each issue on failure
 *   --dump       disassembly listing (--limit bounds the commands
 *                printed per stream)
 *
 * --selftest-write=PATH emits a small canonical bundle built through
 * isa::StreamBuilder — the generator for the golden fixture pinned
 * in tests/data/, so regenerating it after a deliberate format
 * change is a one-liner.
 */

#include <iomanip>
#include <iostream>

#include "common/flags.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "isa/isa.hh"
#include "isa/trace_io.hh"
#include "isa/verify.hh"

namespace {

using namespace gopim;

/**
 * The canonical self-test bundle: three small streams covering the
 * regimes, the retry/refresh knobs, and multi-replica stages. The
 * golden-fixture tests pin these exact bytes; change them only with
 * a format version bump.
 */
isa::TraceBundle
selftestBundle()
{
    isa::TraceBundle bundle;
    bundle.streams.push_back(
        isa::StreamBuilder("selftest serial")
            .regime(isa::Regime::Serial)
            .microBatches(3)
            .seed(7)
            .stage(100.0)
            .stage(250.0, 2)
            .build());
    bundle.streams.push_back(
        isa::StreamBuilder("selftest intra-batch refresh")
            .regime(isa::Regime::IntraBatch)
            .microBatches(8, 4)
            .seed(11)
            .refresh(2, 500.0)
            .stage(64.0)
            .stage(128.0)
            .stage(32.0, 3)
            .build());
    bundle.streams.push_back(
        isa::StreamBuilder("selftest pipelined retries")
            .regime(isa::Regime::IntraInterBatch)
            .microBatches(6)
            .seed(42)
            .bufferSlots(2)
            .replicasAsServers(true)
            .writeRetry(0.25, 0.3)
            .stage(1000.0, 2)
            .stage(750.0, 1)
            .build());
    return bundle;
}

void
printSummary(const isa::CommandStream &stream, size_t index)
{
    const isa::ScheduleDesc &d = stream.desc;
    std::cout << "stream " << index << ": \""
              << stream.label << "\"\n"
              << "  fingerprint : "
              << hexDigest64(stream.fingerprint()) << "\n"
              << "  stages      : " << d.stageTimesNs.size()
              << ", regime " << isa::toString(d.regime)
              << ", micro-batches " << d.totalMicroBatches;
    if (d.microBatchesPerBatch > 0)
        std::cout << " (" << d.microBatchesPerBatch << "/batch)";
    std::cout << ", seed " << d.seed << "\n";
    if (d.writeRetryProb > 0.0)
        std::cout << "  write retry : p=" << d.writeRetryProb
                  << ", write fraction " << d.writeFraction << "\n";
    if (d.refreshActive())
        std::cout << "  refresh     : every "
                  << d.refreshEveryMicroBatches
                  << " micro-batches, stall " << d.refreshStallNs
                  << " ns\n";
    std::cout << "  commands    : " << stream.commands.size();
    std::string histogram;
    for (const auto &[name, count] : isa::opcodeHistogram(stream)) {
        if (count == 0)
            continue;
        histogram +=
            (histogram.empty() ? " (" : ", ") + name + " " +
            std::to_string(count);
    }
    if (!histogram.empty())
        std::cout << histogram << ")";
    std::cout << "\n";
    const auto nominal = isa::nominalTiming(stream);
    std::cout << "  nominal     : makespan " << std::fixed
              << std::setprecision(1) << nominal.makespanNs
              << " ns (closed-form preview; replay via "
                 "--engine=replay is authoritative)\n"
              << std::defaultfloat;
}

void
printDump(const isa::CommandStream &stream, uint64_t limit)
{
    uint64_t printed = 0;
    for (size_t i = 0; i < stream.commands.size(); ++i) {
        if (printed++ == limit) {
            std::cout << "  ... ("
                      << stream.commands.size() - limit
                      << " more)\n";
            break;
        }
        const isa::Command &cmd = stream.commands[i];
        std::cout << "  " << std::setw(6) << i << "  "
                  << std::left << std::setw(10)
                  << isa::toString(cmd.op) << std::right
                  << " stage=" << cmd.stage
                  << " mb=" << cmd.microBatch;
        if (cmd.operand != 0)
            std::cout << " operand=" << cmd.operand;
        if (cmd.durationBits != 0)
            std::cout << " duration=" << cmd.durationNs() << "ns";
        std::cout << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("gopim_trace",
                "dump, validate, and summarize GoPIM binary ISA "
                "traces");
    flags.addBool("summary", false,
                  "print per-stream headers and opcode histograms "
                  "(the default mode)");
    flags.addBool("validate", false,
                  "check every stream against the canonical "
                  "lowering of its header; non-zero exit on failure");
    flags.addBool("verify-semantics", false,
                  "run the flow-level semantic verifier on every "
                  "stream; non-zero exit on any issue");
    flags.addBool("dump", false, "disassemble the command streams");
    flags.addInt("limit", 64,
                 "max commands printed per stream with --dump");
    flags.setIntRange("limit", 1, 1 << 30);
    flags.addString("selftest-write", "",
                    "write the canonical self-test bundle here and "
                    "exit (golden-fixture generator)");
    if (!flags.parse(argc, argv))
        return 0;

    if (const std::string path = flags.getString("selftest-write");
        !path.empty()) {
        std::string error;
        if (!isa::writeTraceFile(path, selftestBundle(), &error))
            fatal("cannot write self-test bundle: ", error);
        inform("wrote canonical self-test bundle to ", path);
        return 0;
    }

    if (flags.positional().size() != 1)
        fatal("expected exactly one trace file argument (see "
              "--help)");
    const std::string path = flags.positional().front();

    isa::TraceBundle bundle;
    std::string error;
    if (!isa::readTraceFile(path, &bundle, &error)) {
        std::cerr << "gopim_trace: " << path << ": " << error
                  << "\n";
        return 1;
    }

    const bool validate = flags.getBool("validate");
    const bool verify = flags.getBool("verify-semantics");
    const bool dump = flags.getBool("dump");
    const bool summary = flags.getBool("summary") ||
                         (!validate && !verify && !dump);

    std::cout << path << ": format v" << isa::kTraceFormatVersion
              << ", " << bundle.streams.size() << " stream(s)\n";
    int rc = 0;
    for (size_t i = 0; i < bundle.streams.size(); ++i) {
        const isa::CommandStream &stream = bundle.streams[i];
        if (summary)
            printSummary(stream, i);
        if (dump) {
            std::cout << "stream " << i << " (\"" << stream.label
                      << "\"):\n";
            printDump(stream,
                      static_cast<uint64_t>(flags.getInt("limit")));
        }
        if (validate) {
            const std::string streamError =
                isa::validateStream(stream);
            if (streamError.empty()) {
                std::cout << "stream " << i << ": OK ("
                          << stream.commands.size()
                          << " commands match the canonical "
                             "lowering)\n";
            } else {
                std::cout << "stream " << i << ": INVALID — "
                          << streamError << "\n";
                rc = 1;
            }
        }
        if (verify) {
            const std::vector<isa::VerifyIssue> issues =
                isa::verifyStream(stream);
            if (issues.empty()) {
                std::cout << "stream " << i << ": SEMANTICS OK ("
                          << stream.commands.size()
                          << " commands)\n";
            } else {
                for (const isa::VerifyIssue &issue : issues)
                    std::cout << "stream " << i << " "
                              << issue.format() << "\n";
                rc = 1;
            }
        }
    }
    return rc;
}
