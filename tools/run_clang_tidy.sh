#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy) over the src/ files changed
# since a base ref — or the whole tree when no base is given/found.
# Headers are covered through HeaderFilterRegex when any .cc that
# includes them is analyzed; a changed .hh additionally pulls in its
# sibling .cc so header-only edits still get checked.
#
# Usage: tools/run_clang_tidy.sh [base-ref]
#   BUILD_DIR=build (override with env) must be configured with
#   -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
#
# Exit: non-zero on clang-tidy errors (compile failures, bad config).
# Warnings are reported but not fatal — promote individual checks via
# WarningsAsErrors in .clang-tidy as they reach zero findings.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${BUILD_DIR:-build}"
base="${1:-}"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not installed" >&2
    exit 2
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "run_clang_tidy: $build_dir/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

declare -a files=()
if [[ -n "$base" ]] && git rev-parse -q --verify "$base^{commit}" \
        >/dev/null 2>&1; then
    while IFS= read -r f; do
        case "$f" in
        *.cc) files+=("$f") ;;
        *.hh)
            sibling="${f%.hh}.cc"
            [[ -f "$sibling" ]] && files+=("$sibling")
            ;;
        esac
    done < <(git diff --name-only --diff-filter=d "$base"...HEAD \
                 -- 'src/')
else
    [[ -n "$base" ]] &&
        echo "run_clang_tidy: base '$base' not found; full sweep" >&2
    while IFS= read -r f; do
        files+=("$f")
    done < <(git ls-files 'src/*.cc' 'src/**/*.cc')
fi

# De-duplicate while preserving order.
declare -A seen=()
declare -a unique=()
for f in "${files[@]:-}"; do
    [[ -z "$f" || -n "${seen[$f]:-}" ]] && continue
    seen[$f]=1
    unique+=("$f")
done

if [[ ${#unique[@]} -eq 0 ]]; then
    echo "run_clang_tidy: no changed src/ files; nothing to do"
    exit 0
fi

echo "run_clang_tidy: checking ${#unique[@]} file(s)"
status=0
for f in "${unique[@]}"; do
    echo "--- $f"
    clang-tidy -p "$build_dir" --quiet "$f" || status=$?
done
exit "$status"
