/**
 * @file
 * graph_stats: structural statistics of a graph file or a generated
 * catalog graph — degrees, components, clustering, assortativity,
 * power-law fit — for checking inputs before simulation.
 */

#include <iostream>

#include "common/flags.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "graph/analysis.hh"
#include "graph/datasets.hh"
#include "graph/io.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("graph_stats", "structural statistics of a graph");
    flags.addString("graph", "", "edge-list file (overrides dataset)");
    flags.addString("dataset", "ddi", "catalog dataset to generate");
    flags.addDouble("scale", 0.25, "catalog scale factor");
    flags.addInt("seed", 1, "generation seed");
    flags.addInt("clustering-sample", 2000,
                 "vertices sampled for the clustering coefficient "
                 "(0 = exact)");
    if (!flags.parse(argc, argv))
        return 0;

    graph::Graph g;
    std::string name;
    if (!flags.getString("graph").empty()) {
        name = flags.getString("graph");
        g = graph::loadEdgeList(name);
    } else {
        const auto &spec =
            graph::DatasetCatalog::byName(flags.getString("dataset"));
        name = spec.name + " (synthetic, scale " +
               std::to_string(flags.getDouble("scale")) + ")";
        Rng rng(static_cast<uint64_t>(flags.getInt("seed")));
        g = graph::DatasetCatalog::materialize(
            spec, flags.getDouble("scale"), rng);
    }

    const auto components = graph::connectedComponents(g);
    const auto stats = graph::computeStats(g);

    Table table("graph statistics: " + name, {"metric", "value"});
    table.row().cell("vertices").cell(
        static_cast<uint64_t>(g.numVertices()));
    table.row().cell("edges").cell(g.numEdges());
    table.row().cell("average degree").cell(stats.avgDegree, 2);
    table.row().cell("max degree").cell(stats.maxDegree, 0);
    table.row().cell("adjacency sparsity").cell(stats.sparsity(), 6);
    table.row().cell("density class (Section VI-C)").cell(
        stats.avgDegree <= 8.0 ? "sparse (theta 0.8)"
                               : "dense (theta 0.5)");
    table.row().cell("connected components").cell(
        static_cast<uint64_t>(components.count));
    table.row().cell("largest component").cell(
        components.largestSize);
    table.row().cell("clustering coefficient").cell(
        graph::clusteringCoefficient(
            g, static_cast<uint32_t>(
                   flags.getInt("clustering-sample"))),
        4);
    table.row().cell("degree assortativity").cell(
        graph::degreeAssortativity(g), 4);
    table.row().cell("power-law exponent (MLE)").cell(
        graph::powerLawExponent(g), 2);
    table.print(std::cout);

    const auto hist = graph::degreeHistogram(g, 16);
    std::cout << "\ndegree distribution: " << hist.summary() << "\n";
    return 0;
}
