#include "lint/toml.hh"

#include <cctype>

namespace gopim::lint {

namespace {

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Drop a trailing `# comment` that is not inside a quoted string. */
std::string
stripComment(const std::string &line)
{
    bool inString = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '"' && (i == 0 || line[i - 1] != '\\'))
            inString = !inString;
        else if (c == '#' && !inString)
            return line.substr(0, i);
    }
    return line;
}

bool
isBareKeyChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
}

struct Cursor
{
    const std::string &text;
    size_t pos = 0;
    int line = 1;

    bool
    done() const
    {
        return pos >= text.size();
    }

    char
    peek() const
    {
        return done() ? '\0' : text[pos];
    }

    char
    advance()
    {
        char c = text[pos++];
        if (c == '\n')
            ++line;
        return c;
    }
};

bool
parseString(Cursor &cur, std::string *out, std::string *error)
{
    cur.advance(); // opening quote
    std::string value;
    while (!cur.done()) {
        char c = cur.peek();
        if (c == '\\') {
            cur.advance();
            char esc = cur.done() ? '\0' : cur.advance();
            switch (esc) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case '"': value += '"'; break;
            case '\\': value += '\\'; break;
            default:
                *error = "line " + std::to_string(cur.line) +
                         ": unsupported escape \\" +
                         std::string(1, esc);
                return false;
            }
            continue;
        }
        if (c == '"') {
            cur.advance();
            *out = value;
            return true;
        }
        if (c == '\n') {
            *error = "line " + std::to_string(cur.line) +
                     ": unterminated string";
            return false;
        }
        value += cur.advance();
    }
    *error = "line " + std::to_string(cur.line) +
             ": unterminated string";
    return false;
}

void
skipArrayFiller(Cursor &cur)
{
    while (!cur.done()) {
        char c = cur.peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            cur.advance();
            continue;
        }
        if (c == '#') {
            while (!cur.done() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        break;
    }
}

bool
parseArray(Cursor &cur, std::vector<std::string> *out,
           std::string *error)
{
    cur.advance(); // [
    for (;;) {
        skipArrayFiller(cur);
        if (cur.done()) {
            *error = "line " + std::to_string(cur.line) +
                     ": unterminated array";
            return false;
        }
        if (cur.peek() == ']') {
            cur.advance();
            return true;
        }
        if (cur.peek() == '"') {
            std::string value;
            if (!parseString(cur, &value, error))
                return false;
            out->push_back(value);
        } else {
            *error = "line " + std::to_string(cur.line) +
                     ": arrays may hold only strings";
            return false;
        }
        skipArrayFiller(cur);
        if (cur.peek() == ',') {
            cur.advance();
            continue;
        }
        if (cur.peek() == ']') {
            cur.advance();
            return true;
        }
        *error = "line " + std::to_string(cur.line) +
                 ": expected ',' or ']' in array";
        return false;
    }
}

} // namespace

bool
TomlDoc::parse(const std::string &text, TomlDoc *doc,
               std::string *error)
{
    Cursor cur{text};
    std::string section;
    while (!cur.done()) {
        // Collect one logical line (arrays may span lines).
        char c = cur.peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            cur.advance();
            continue;
        }
        if (c == '#') {
            while (!cur.done() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        if (c == '[') {
            // Section header: rest of the physical line.
            const int line = cur.line;
            std::string header;
            while (!cur.done() && cur.peek() != '\n')
                header += cur.advance();
            header = trim(stripComment(header));
            if (header.size() < 2 || header.back() != ']') {
                *error = "line " + std::to_string(line) +
                         ": malformed section header";
                return false;
            }
            section = trim(header.substr(1, header.size() - 2));
            if (section.empty()) {
                *error = "line " + std::to_string(line) +
                         ": empty section name";
                return false;
            }
            continue;
        }
        // key = value
        const int line = cur.line;
        std::string key;
        while (!cur.done() && isBareKeyChar(cur.peek()))
            key += cur.advance();
        while (!cur.done() &&
               (cur.peek() == ' ' || cur.peek() == '\t'))
            cur.advance();
        if (key.empty() || cur.peek() != '=') {
            *error = "line " + std::to_string(line) +
                     ": expected key = value";
            return false;
        }
        cur.advance(); // =
        while (!cur.done() &&
               (cur.peek() == ' ' || cur.peek() == '\t'))
            cur.advance();

        Entry entry;
        entry.key = key;
        if (cur.peek() == '[') {
            if (!parseArray(cur, &entry.values, error))
                return false;
        } else if (cur.peek() == '"') {
            std::string value;
            if (!parseString(cur, &value, error))
                return false;
            entry.values.push_back(value);
        } else {
            // Bare scalar: true / false (or a bare word).
            std::string value;
            while (!cur.done() && isBareKeyChar(cur.peek()))
                value += cur.advance();
            if (value.empty()) {
                *error = "line " + std::to_string(line) +
                         ": missing value for key '" + key + "'";
                return false;
            }
            entry.values.push_back(value);
        }
        doc->sections_[section].push_back(std::move(entry));
    }
    return true;
}

const std::vector<std::string> *
TomlDoc::find(const std::string &section, const std::string &key) const
{
    const auto it = sections_.find(section);
    if (it == sections_.end())
        return nullptr;
    for (const Entry &entry : it->second) {
        if (entry.key == key)
            return &entry.values;
    }
    return nullptr;
}

std::vector<std::string>
TomlDoc::keys(const std::string &section) const
{
    std::vector<std::string> out;
    const auto it = sections_.find(section);
    if (it == sections_.end())
        return out;
    out.reserve(it->second.size());
    for (const Entry &entry : it->second)
        out.push_back(entry.key);
    return out;
}

bool
TomlDoc::hasSection(const std::string &section) const
{
    return sections_.find(section) != sections_.end();
}

} // namespace gopim::lint
