/**
 * @file
 * gopim_lint entry point.
 *
 * Usage:
 *   gopim_lint [--report=FILE] [--quiet] <root>... <layering.toml>
 *
 * One or more source roots (e.g. `src tools bench`), then the rule
 * config. Exit codes: 0 clean, 1 violations found, 2 usage/config
 * error.
 */

#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hh"

int
main(int argc, char **argv)
{
    gopim::lint::RunOptions options;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--report=", 0) == 0)
            options.reportPath = arg.substr(9);
        else if (arg == "--quiet")
            options.quiet = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: gopim_lint [--report=FILE] [--quiet] "
                   "<root>... <layering.toml>\n"
                   "Static analysis for the GoPIM tree: layering "
                   "DAG, determinism lint, header hygiene,\n"
                   "concurrency discipline (notify/wait, mixed "
                   "atomic access, lock order, join order).\n"
                   "Suppress a finding with '// gopim-lint: "
                   "allow(<rule>) <reason>'.\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "gopim_lint: unknown option '" << arg
                      << "'\n";
            return 2;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() < 2) {
        std::cerr << "usage: gopim_lint [--report=FILE] [--quiet] "
                     "<root>... <layering.toml>\n";
        return 2;
    }
    options.configPath = positional.back();
    positional.pop_back();
    options.roots = std::move(positional);
    return gopim::lint::runLint(options, std::cout, std::cerr);
}
