#include "lint/tokenizer.hh"

#include <cctype>

namespace gopim::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer
{
  public:
    Lexer(const std::string &source, std::vector<std::string> *errors)
        : src_(source), errors_(errors)
    {
    }

    std::vector<Token>
    run()
    {
        while (pos_ < src_.size())
            next();
        return std::move(tokens_);
    }

  private:
    char
    peek(size_t ahead = 0) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    char
    advance()
    {
        char c = src_[pos_++];
        if (c == '\n')
            ++line_;
        return c;
    }

    void
    error(const std::string &message)
    {
        if (errors_)
            errors_->push_back("line " + std::to_string(line_) +
                               ": " + message);
    }

    void
    emit(TokKind kind, std::string text, int startLine)
    {
        tokens_.push_back({kind, std::move(text), startLine});
    }

    /** At a newline boundary (only whitespace seen since)? */
    bool
    atLineStart() const
    {
        size_t i = pos_;
        while (i > 0) {
            char c = src_[i - 1];
            if (c == '\n')
                return true;
            if (c != ' ' && c != '\t' && c != '\r')
                return false;
            --i;
        }
        return true; // start of file
    }

    void
    lexLineComment()
    {
        const int start = line_;
        pos_ += 2;
        std::string text;
        while (pos_ < src_.size() && peek() != '\n')
            text += advance();
        emit(TokKind::Comment, text, start);
    }

    void
    lexBlockComment()
    {
        const int start = line_;
        pos_ += 2;
        std::string text;
        while (pos_ < src_.size()) {
            if (peek() == '*' && peek(1) == '/') {
                pos_ += 2;
                emit(TokKind::Comment, text, start);
                return;
            }
            text += advance();
        }
        error("unterminated block comment");
        emit(TokKind::Comment, text, start);
    }

    /** Quoted literal with backslash escapes; `quote` is ' or ". */
    void
    lexQuoted(char quote)
    {
        const int start = line_;
        std::string text;
        advance(); // opening quote
        while (pos_ < src_.size()) {
            char c = peek();
            if (c == '\\' && pos_ + 1 < src_.size()) {
                text += advance();
                text += advance();
                continue;
            }
            if (c == quote) {
                advance();
                emit(quote == '"' ? TokKind::String : TokKind::CharLit,
                     text, start);
                return;
            }
            if (c == '\n') {
                error("unterminated literal");
                break;
            }
            text += advance();
        }
        if (pos_ >= src_.size())
            error("unterminated literal");
        emit(quote == '"' ? TokKind::String : TokKind::CharLit, text,
             start);
    }

    /** R"delim( ... )delim" — no escapes inside. */
    void
    lexRawString()
    {
        const int start = line_;
        pos_ += 2; // R"
        std::string delim;
        while (pos_ < src_.size() && peek() != '(')
            delim += advance();
        if (pos_ < src_.size())
            advance(); // (
        const std::string close = ")" + delim + "\"";
        std::string text;
        while (pos_ < src_.size()) {
            if (src_.compare(pos_, close.size(), close) == 0) {
                for (size_t i = 0; i < close.size(); ++i)
                    advance();
                emit(TokKind::String, text, start);
                return;
            }
            text += advance();
        }
        error("unterminated raw string");
        emit(TokKind::String, text, start);
    }

    /**
     * Whole preprocessor directive as one token. Line continuations
     * are joined; comments inside the directive are dropped.
     */
    void
    lexDirective()
    {
        const int start = line_;
        advance(); // #
        std::string text;
        while (pos_ < src_.size()) {
            char c = peek();
            if (c == '\\' &&
                (peek(1) == '\n' ||
                 (peek(1) == '\r' && peek(2) == '\n'))) {
                advance();
                while (pos_ < src_.size() && peek() != '\n')
                    advance();
                if (pos_ < src_.size())
                    advance();
                text += ' ';
                continue;
            }
            if (c == '\n')
                break;
            if (c == '/' && peek(1) == '/') {
                // Trailing comment still belongs to lint (allow
                // directives may sit after #include lines).
                lexDirectiveTrailingComment(text, start);
                return;
            }
            if (c == '/' && peek(1) == '*') {
                lexBlockCommentInto(nullptr);
                text += ' ';
                continue;
            }
            if (c == '"') {
                text += '"';
                advance();
                while (pos_ < src_.size() && peek() != '"' &&
                       peek() != '\n') {
                    if (peek() == '\\')
                        text += advance();
                    text += advance();
                }
                if (pos_ < src_.size() && peek() == '"') {
                    text += advance();
                }
                continue;
            }
            text += advance();
        }
        emit(TokKind::Directive, trim(text), start);
    }

    void
    lexDirectiveTrailingComment(std::string &text, int start)
    {
        emit(TokKind::Directive, trim(text), start);
        lexLineComment();
    }

    void
    lexBlockCommentInto(std::string *out)
    {
        pos_ += 2;
        while (pos_ < src_.size()) {
            if (peek() == '*' && peek(1) == '/') {
                pos_ += 2;
                return;
            }
            char c = advance();
            if (out)
                *out += c;
        }
        error("unterminated block comment");
    }

    static std::string
    trim(const std::string &s)
    {
        size_t b = s.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            return "";
        size_t e = s.find_last_not_of(" \t\r");
        return s.substr(b, e - b + 1);
    }

    void
    lexIdentifier()
    {
        const int start = line_;
        std::string text;
        while (pos_ < src_.size() && isIdentChar(peek()))
            text += advance();
        // Raw / prefixed string literal immediately after an
        // identifier-like prefix (R"...", u8"...", L"...").
        if (peek() == '"' &&
            (text == "R" || text == "u8R" || text == "uR" ||
             text == "UR" || text == "LR")) {
            pos_ -= text.size();
            lexRawString();
            return;
        }
        if (peek() == '"' && (text == "u8" || text == "u" ||
                              text == "U" || text == "L")) {
            lexQuoted('"');
            return;
        }
        emit(TokKind::Identifier, text, start);
    }

    void
    lexNumber()
    {
        const int start = line_;
        std::string text;
        // pp-number: digits, letters, dots, and exponent signs.
        while (pos_ < src_.size()) {
            char c = peek();
            if (isIdentChar(c) || c == '.') {
                text += advance();
                continue;
            }
            if ((c == '+' || c == '-') && !text.empty()) {
                char last = text.back();
                if (last == 'e' || last == 'E' || last == 'p' ||
                    last == 'P') {
                    text += advance();
                    continue;
                }
            }
            break;
        }
        emit(TokKind::Number, text, start);
    }

    void
    next()
    {
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
            return;
        }
        if (c == '/' && peek(1) == '/') {
            lexLineComment();
            return;
        }
        if (c == '/' && peek(1) == '*') {
            lexBlockComment();
            return;
        }
        if (c == '#' && atLineStart()) {
            lexDirective();
            return;
        }
        if (c == '"') {
            lexQuoted('"');
            return;
        }
        if (c == '\'') {
            lexQuoted('\'');
            return;
        }
        if (isIdentStart(c)) {
            lexIdentifier();
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            lexNumber();
            return;
        }
        // Punctuation; keep "::" and "->" whole so rules can check
        // qualification without reassembling pairs.
        const int start = line_;
        if (c == ':' && peek(1) == ':') {
            pos_ += 2;
            emit(TokKind::Punct, "::", start);
            return;
        }
        if (c == '-' && peek(1) == '>') {
            pos_ += 2;
            emit(TokKind::Punct, "->", start);
            return;
        }
        advance();
        emit(TokKind::Punct, std::string(1, c), start);
    }

    const std::string &src_;
    std::vector<std::string> *errors_;
    std::vector<Token> tokens_;
    size_t pos_ = 0;
    int line_ = 1;
};

} // namespace

std::vector<Token>
tokenize(const std::string &source, std::vector<std::string> *errors)
{
    return Lexer(source, errors).run();
}

} // namespace gopim::lint
