#include "lint/rules.hh"

#include <algorithm>
#include <cctype>
#include <functional>

namespace gopim::lint {

namespace {

bool
contains(const std::vector<std::string> &values,
         const std::string &value)
{
    return std::find(values.begin(), values.end(), value) !=
           values.end();
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** First path component of a '/'-separated relative path, or "". */
std::string
moduleOf(const std::string &relPath)
{
    const size_t slash = relPath.find('/');
    return slash == std::string::npos ? std::string()
                                      : relPath.substr(0, slash);
}

bool
isHeaderPath(const std::string &path)
{
    return path.ends_with(".hh") || path.ends_with(".hpp") ||
           path.ends_with(".h");
}

/** Split a directive body into its keyword and the remainder. */
void
splitDirective(const std::string &text, std::string *keyword,
               std::string *rest)
{
    size_t i = 0;
    while (i < text.size() && !std::isspace(
                                  static_cast<unsigned char>(text[i])))
        ++i;
    *keyword = text.substr(0, i);
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    *rest = text.substr(i);
}

/** Extract the path of a quoted `include "x"`; "" when angled. */
std::string
quotedIncludePath(const std::string &rest)
{
    if (rest.size() < 2 || rest.front() != '"')
        return "";
    const size_t close = rest.find('"', 1);
    if (close == std::string::npos)
        return "";
    return rest.substr(1, close - 1);
}

/** Code tokens only (no comments/directives), for adjacency logic. */
std::vector<const Token *>
codeTokens(const std::vector<Token> &tokens)
{
    std::vector<const Token *> out;
    out.reserve(tokens.size());
    for (const Token &token : tokens) {
        if (token.kind != TokKind::Comment &&
            token.kind != TokKind::Directive)
            out.push_back(&token);
    }
    return out;
}

} // namespace

std::string
Diagnostic::format() const
{
    return file + ":" + std::to_string(line) + ": " + rule + ": " +
           message;
}

bool
Config::load(const TomlDoc &doc, Config *config, std::string *error)
{
    if (!doc.hasSection("layers")) {
        *error = "config has no [layers] section";
        return false;
    }
    for (const std::string &module : doc.keys("layers"))
        config->layers[module] = *doc.find("layers", module);

    if (const auto *v = doc.find("constraints", "no_incoming"))
        config->noIncoming = *v;
    if (const auto *v = doc.find("constraints", "no_incoming_except"))
        config->noIncomingExcept = *v;
    if (doc.hasSection("interfaces")) {
        for (const std::string &module : doc.keys("interfaces"))
            config->interfaces[module] =
                *doc.find("interfaces", module);
    }
    if (const auto *v = doc.find("determinism", "rng_helpers"))
        config->rngHelpers = *v;
    if (const auto *v = doc.find("determinism", "clock_modules"))
        config->clockModules = *v;
    if (const auto *v = doc.find("determinism", "output_modules"))
        config->outputModules = *v;
    if (const auto *v = doc.find("hygiene", "guard_prefix");
        v && !v->empty())
        config->guardPrefix = v->front();
    return true;
}

Linter::Linter(Config config) : config_(std::move(config)) {}

const std::set<std::string> &
Linter::knownRules()
{
    static const std::set<std::string> rules = {
        "layering-cycle",          "layering-unknown-module",
        "layering-undeclared",     "layering-no-incoming",
        "layering-interface",      "determinism-rand",
        "determinism-random-device", "determinism-time",
        "determinism-clock",       "determinism-unordered",
        "hygiene-guard",           "hygiene-guard-name",
        "hygiene-using-namespace",
        "concurrency-notify-outside-lock",
        "concurrency-wait-no-predicate",
        "concurrency-mixed-access",
        "concurrency-lock-order",
        "concurrency-join-order",
        "allow-missing-reason",    "allow-unknown-rule",
    };
    return rules;
}

void
Linter::checkConfig(const std::string &configPath)
{
    const auto diagnose = [&](const std::string &rule,
                              const std::string &message) {
        diagnostics_.push_back({configPath, 1, rule, message});
    };

    for (const auto &[module, deps] : config_.layers) {
        for (const std::string &dep : deps) {
            if (!config_.layers.count(dep))
                diagnose("layering-unknown-module",
                         "module '" + module +
                             "' declares dependency on undeclared "
                             "module '" +
                             dep + "'");
        }
    }
    for (const std::string &module : config_.noIncoming) {
        if (!config_.layers.count(module))
            diagnose("layering-unknown-module",
                     "no_incoming names undeclared module '" +
                         module + "'");
    }
    for (const auto &[module, headers] : config_.interfaces) {
        (void)headers;
        if (!config_.layers.count(module))
            diagnose("layering-unknown-module",
                     "[interfaces] names undeclared module '" +
                         module + "'");
    }

    // Cycle detection: iterative DFS with colors over declared edges.
    enum class Color { White, Grey, Black };
    std::map<std::string, Color> color;
    for (const auto &[module, deps] : config_.layers) {
        (void)deps;
        color[module] = Color::White;
    }
    std::vector<std::string> path;
    const std::function<void(const std::string &)> visit =
        [&](const std::string &module) {
            color[module] = Color::Grey;
            path.push_back(module);
            for (const std::string &dep :
                 config_.layers.at(module)) {
                if (!config_.layers.count(dep))
                    continue; // reported above
                if (color[dep] == Color::Grey) {
                    std::string cycle = dep;
                    for (auto it = std::find(path.begin(), path.end(),
                                             dep) + 1;
                         it != path.end(); ++it)
                        cycle += " -> " + *it;
                    cycle += " -> " + dep;
                    diagnose("layering-cycle",
                             "dependency cycle: " + cycle);
                } else if (color[dep] == Color::White) {
                    visit(dep);
                }
            }
            path.pop_back();
            color[module] = Color::Black;
        };
    for (const auto &[module, deps] : config_.layers) {
        (void)deps;
        if (color[module] == Color::White)
            visit(module);
    }
}

void
Linter::collectAllows(FileContext &ctx)
{
    // Lines that carry at least one non-comment token: a comment on
    // such a line covers that line; a comment alone on its line
    // covers the line below it.
    std::set<int> codeLines;
    for (const Token &token : ctx.tokens) {
        if (token.kind != TokKind::Comment)
            codeLines.insert(token.line);
    }

    for (const Token &token : ctx.tokens) {
        if (token.kind != TokKind::Comment)
            continue;
        const size_t tag = token.text.find("gopim-lint:");
        if (tag == std::string::npos)
            continue;
        const std::string body =
            trim(token.text.substr(tag + std::string("gopim-lint:")
                                             .size()));
        const bool wellFormed =
            body.rfind("allow(", 0) == 0 &&
            body.find(')') != std::string::npos;
        if (!wellFormed) {
            diagnostics_.push_back(
                {ctx.displayPath, token.line, "allow-unknown-rule",
                 "malformed gopim-lint directive (expected "
                 "'gopim-lint: allow(<rule>) <reason>')"});
            continue;
        }
        const size_t close = body.find(')');
        Allow allow;
        allow.rule = trim(body.substr(6, close - 6));
        allow.line = token.line;
        const std::string reason = trim(body.substr(close + 1));
        allow.hasReason = !reason.empty();

        if (!knownRules().count(allow.rule)) {
            diagnostics_.push_back(
                {ctx.displayPath, token.line, "allow-unknown-rule",
                 "allow() names unknown rule '" + allow.rule + "'"});
            continue;
        }
        if (!allow.hasReason)
            diagnostics_.push_back(
                {ctx.displayPath, token.line, "allow-missing-reason",
                 "allow(" + allow.rule +
                     ") must carry a reason after the closing "
                     "parenthesis"});

        // A trailing allow covers its own line; a standalone comment
        // covers the next line that carries code, so a directive may
        // sit anywhere inside the comment block above its target.
        if (codeLines.count(token.line)) {
            ctx.allows[token.line].push_back(allow);
        } else if (const auto next =
                       codeLines.upper_bound(token.line);
                   next != codeLines.end()) {
            ctx.allows[*next].push_back(allow);
        }
    }
}

void
Linter::report(FileContext &ctx, int line, const std::string &rule,
               const std::string &message)
{
    const auto it = ctx.allows.find(line);
    if (it != ctx.allows.end()) {
        for (const Allow &allow : it->second) {
            if (allow.rule == rule)
                return; // suppressed
        }
    }
    diagnostics_.push_back({ctx.displayPath, line, rule, message});
}

void
Linter::checkFile(const std::string &displayPath,
                  const std::string &relPath,
                  const std::string &source)
{
    FileContext ctx;
    ctx.displayPath = displayPath;
    ctx.relPath = relPath;
    ctx.module = moduleOf(relPath);
    ctx.tokens = tokenize(source);
    collectAllows(ctx);
    checkLayering(ctx);
    checkDeterminism(ctx);
    if (isHeaderPath(relPath))
        checkHygiene(ctx);
    // The concurrency family needs every class's member model before
    // any function body can be judged (declarations in .hh, bodies
    // in .cc), so the token stream is retained until finish().
    deferred_.push_back(std::move(ctx));
}

void
Linter::finish()
{
    checkConcurrency();
    deferred_.clear();
}

void
Linter::checkLayering(FileContext &ctx)
{
    if (ctx.module.empty())
        return;
    if (!config_.layers.count(ctx.module)) {
        report(ctx, 1, "layering-unknown-module",
               "module '" + ctx.module +
                   "' is not declared in [layers]");
        return;
    }
    const std::vector<std::string> &allowed =
        config_.layers.at(ctx.module);

    for (const Token &token : ctx.tokens) {
        if (token.kind != TokKind::Directive)
            continue;
        std::string keyword, rest;
        splitDirective(token.text, &keyword, &rest);
        if (keyword != "include")
            continue;
        const std::string path = quotedIncludePath(rest);
        if (path.empty())
            continue; // angled include: outside the layering DAG
        const std::string dep = moduleOf(path);
        if (dep.empty() || !config_.layers.count(dep))
            continue; // relative or non-module include
        if (dep == ctx.module)
            continue;
        if (contains(config_.noIncoming, dep) &&
            !contains(config_.noIncomingExcept, ctx.module)) {
            report(ctx, token.line, "layering-no-incoming",
                   "module '" + dep +
                       "' must not be included by other modules "
                       "(declared no_incoming)");
            continue;
        }
        if (!contains(allowed, dep)) {
            report(ctx, token.line, "layering-undeclared",
                   "'" + ctx.module + "' -> '" + dep +
                       "' is not a declared edge in the layering "
                       "DAG");
            continue;
        }
        if (const auto it = config_.interfaces.find(dep);
            it != config_.interfaces.end() &&
            !contains(it->second, path)) {
            report(ctx, token.line, "layering-interface",
                   "'" + path + "' is not a registered interface "
                                "header of module '" +
                       dep + "'");
        }
    }
}

void
Linter::checkDeterminism(FileContext &ctx)
{
    if (contains(config_.rngHelpers, ctx.relPath))
        return; // the sanctioned seeded-RNG implementation

    const std::vector<const Token *> code = codeTokens(ctx.tokens);
    const auto at = [&](size_t i) -> const Token * {
        return i < code.size() ? code[i] : nullptr;
    };

    // True when the identifier at `i` is a free (or std::) use — not
    // a member access and not qualified by a project namespace.
    const auto freeOrStd = [&](size_t i) {
        if (i == 0)
            return true;
        const std::string &prev = code[i - 1]->text;
        if (prev == "." || prev == "->")
            return false;
        if (prev == "::")
            return i >= 2 && code[i - 2]->text == "std";
        return true;
    };

    const bool clockAllowed =
        contains(config_.clockModules, ctx.module);
    const bool outputModule =
        contains(config_.outputModules, ctx.module);

    for (size_t i = 0; i < code.size(); ++i) {
        const Token &token = *code[i];
        if (token.kind != TokKind::Identifier)
            continue;
        const Token *next = at(i + 1);
        const bool call = next && next->text == "(";

        if ((token.text == "rand" || token.text == "srand") && call &&
            freeOrStd(i)) {
            report(ctx, token.line, "determinism-rand",
                   token.text +
                       "() is banned; draw from a seeded "
                       "common::Rng instead");
        } else if (token.text == "random_device" && freeOrStd(i)) {
            report(ctx, token.line, "determinism-random-device",
                   "std::random_device seeds nondeterministically; "
                   "thread an explicit seed through common::Rng");
        } else if (token.text == "time" && call && freeOrStd(i)) {
            report(ctx, token.line, "determinism-time",
                   "time() reads the wall clock; simulator state "
                   "must not depend on host time");
        } else if (token.text == "system_clock" ||
                   token.text == "high_resolution_clock") {
            report(ctx, token.line, "determinism-clock",
                   "std::chrono::" + token.text +
                       " is banned in src/; host timing belongs in "
                       "obs::ProfileSpan");
        } else if (token.text == "steady_clock" && !clockAllowed) {
            report(ctx, token.line, "determinism-clock",
                   "steady_clock reads outside the sanctioned "
                   "timing module; use obs::ProfileSpan / "
                   "obs::profileNowUs");
        } else if ((token.text == "unordered_map" ||
                    token.text == "unordered_set") &&
                   outputModule) {
            report(ctx, token.line, "determinism-unordered",
                   "std::" + token.text +
                       " in an output-producing module; iteration "
                       "order is unspecified — use std::map/std::set "
                       "or justify with an allow()");
        }
    }
}

void
Linter::checkHygiene(FileContext &ctx)
{
    // --- include guard ---------------------------------------------
    std::string canonical = config_.guardPrefix;
    for (char c : ctx.relPath) {
        canonical += std::isalnum(static_cast<unsigned char>(c))
                         ? static_cast<char>(std::toupper(
                               static_cast<unsigned char>(c)))
                         : '_';
    }

    std::vector<const Token *> directives;
    for (const Token &token : ctx.tokens) {
        if (token.kind == TokKind::Directive)
            directives.push_back(&token);
    }

    if (directives.empty()) {
        report(ctx, 1, "hygiene-guard",
               "header has no include guard (expected #ifndef " +
                   canonical + ")");
    } else {
        std::string keyword, rest;
        splitDirective(directives.front()->text, &keyword, &rest);
        const int guardLine = directives.front()->line;
        if (keyword == "pragma" && trim(rest) == "once") {
            report(ctx, guardLine, "hygiene-guard",
                   "#pragma once; repo style is #ifndef guards "
                   "(expected " +
                       canonical + ")");
        } else if (keyword != "ifndef") {
            report(ctx, guardLine, "hygiene-guard",
                   "first directive is #" + keyword +
                       ", expected the include guard #ifndef " +
                       canonical);
        } else {
            const std::string guard = trim(rest);
            std::string defineKeyword, defineRest;
            if (directives.size() < 2)
                report(ctx, guardLine, "hygiene-guard",
                       "include guard #ifndef without a matching "
                       "#define");
            else {
                splitDirective(directives[1]->text, &defineKeyword,
                               &defineRest);
                if (defineKeyword != "define" ||
                    trim(defineRest) != guard)
                    report(ctx, directives[1]->line, "hygiene-guard",
                           "include guard #define does not match "
                           "#ifndef " +
                               guard);
            }
            if (guard != canonical)
                report(ctx, guardLine, "hygiene-guard-name",
                       "guard '" + guard + "' should be '" +
                           canonical + "'");
            std::string lastKeyword, lastRest;
            splitDirective(directives.back()->text, &lastKeyword,
                           &lastRest);
            if (lastKeyword != "endif")
                report(ctx, directives.back()->line, "hygiene-guard",
                       "header does not end with the guard's "
                       "#endif");
        }
    }

    // --- using namespace at header scope ---------------------------
    // Track whether each open brace is a namespace body; `using
    // namespace` is flagged only when every enclosing brace is one
    // (i.e. namespace or global scope — not inside an inline
    // function body).
    const std::vector<const Token *> code = codeTokens(ctx.tokens);
    std::vector<bool> braceIsNamespace;
    for (size_t i = 0; i < code.size(); ++i) {
        const std::string &text = code[i]->text;
        if (text == "{") {
            bool ns = false;
            // namespace [A[::B]...] {  — scan back over the name.
            size_t j = i;
            while (j > 0 &&
                   (code[j - 1]->kind == TokKind::Identifier ||
                    code[j - 1]->text == "::"))
                --j;
            if (j > 0 && code[j - 1]->text == "namespace")
                ns = true;
            braceIsNamespace.push_back(ns);
            continue;
        }
        if (text == "}") {
            if (!braceIsNamespace.empty())
                braceIsNamespace.pop_back();
            continue;
        }
        if (text == "using" && i + 1 < code.size() &&
            code[i + 1]->text == "namespace") {
            const bool headerScope =
                std::all_of(braceIsNamespace.begin(),
                            braceIsNamespace.end(),
                            [](bool ns) { return ns; });
            if (headerScope)
                report(ctx, code[i]->line, "hygiene-using-namespace",
                       "'using namespace' at header scope leaks "
                       "into every includer");
        }
    }
}

} // namespace gopim::lint
