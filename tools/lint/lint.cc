#include "lint/lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "lint/rules.hh"

namespace gopim::lint {

namespace {

namespace fs = std::filesystem;

bool
isCxxSource(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".hh" || ext == ".cc" || ext == ".hpp" ||
           ext == ".cpp" || ext == ".h" || ext == ".cxx";
}

bool
readFile(const fs::path &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *out = buffer.str();
    return true;
}

/** All lintable files under root, relative paths, sorted. */
std::vector<std::string>
collectFiles(const fs::path &root, std::string *error)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (fs::recursive_directory_iterator
             it(root, fs::directory_options::skip_permission_denied,
                ec),
         end;
         it != end; it.increment(ec)) {
        if (ec) {
            *error = "walking " + root.string() + ": " + ec.message();
            return {};
        }
        if (it->is_regular_file() && isCxxSource(it->path()))
            files.push_back(
                it->path().lexically_relative(root).generic_string());
    }
    if (ec)
        *error = "walking " + root.string() + ": " + ec.message();
    // Directory iteration order is unspecified; sort so diagnostics
    // (and therefore CI logs and the report artifact) are stable.
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

int
runLint(const RunOptions &options, std::ostream &out,
        std::ostream &err)
{
    std::string configText;
    if (!readFile(options.configPath, &configText)) {
        err << "gopim_lint: cannot read config '"
            << options.configPath << "'\n";
        return 2;
    }
    TomlDoc doc;
    std::string error;
    if (!TomlDoc::parse(configText, &doc, &error)) {
        err << options.configPath << ": " << error << "\n";
        return 2;
    }
    Config config;
    if (!Config::load(doc, &config, &error)) {
        err << options.configPath << ": " << error << "\n";
        return 2;
    }

    Linter linter(std::move(config));
    linter.checkConfig(options.configPath);

    size_t fileCount = 0;
    for (const std::string &rootArg : options.roots) {
        const fs::path root(rootArg);
        if (!fs::is_directory(root)) {
            err << "gopim_lint: '" << rootArg
                << "' is not a directory\n";
            return 2;
        }
        // `src` files keep root-relative paths (the historical
        // contract: module = first component, guard GOPIM_<PATH>);
        // other roots (tools, bench) are themselves the module, so
        // prefix the basename.
        const std::string base =
            root.filename().empty()
                ? root.parent_path().filename().generic_string()
                : root.filename().generic_string();
        const std::string prefix = base == "src" ? "" : base + "/";

        const std::vector<std::string> files =
            collectFiles(root, &error);
        if (!error.empty()) {
            err << "gopim_lint: " << error << "\n";
            return 2;
        }
        fileCount += files.size();
        for (const std::string &rel : files) {
            std::string source;
            const fs::path full = root / rel;
            if (!readFile(full, &source)) {
                err << "gopim_lint: cannot read '" << full.string()
                    << "'\n";
                return 2;
            }
            linter.checkFile((root / rel).generic_string(),
                             prefix + rel, source);
        }
    }
    // Cross-file phases (concurrency models + global lock graph)
    // need every file first.
    linter.finish();

    const std::vector<Diagnostic> &diagnostics =
        linter.diagnostics();
    for (const Diagnostic &diagnostic : diagnostics)
        out << diagnostic.format() << "\n";

    if (!options.reportPath.empty()) {
        std::ofstream report(options.reportPath);
        if (!report) {
            err << "gopim_lint: cannot write report '"
                << options.reportPath << "'\n";
            return 2;
        }
        for (const Diagnostic &diagnostic : diagnostics)
            report << diagnostic.format() << "\n";
        report << "gopim_lint: " << fileCount << " files, "
               << diagnostics.size() << " violation(s)\n";
    }

    if (!options.quiet)
        err << "gopim_lint: " << fileCount << " files, "
            << diagnostics.size() << " violation(s)\n";
    return diagnostics.empty() ? 0 : 1;
}

} // namespace gopim::lint
