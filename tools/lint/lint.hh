/**
 * @file
 * gopim_lint driver: load the rule config, walk a source tree in
 * deterministic (sorted-path) order, lint every C++ file, and print
 * `file:line: rule: message` diagnostics.
 */

#ifndef GOPIM_TOOLS_LINT_LINT_HH
#define GOPIM_TOOLS_LINT_LINT_HH

#include <iosfwd>
#include <string>

namespace gopim::lint {

struct RunOptions
{
    std::string root;       ///< directory tree to lint
    std::string configPath; ///< layering/rule TOML file
    std::string reportPath; ///< also write diagnostics here ("" = no)
    bool quiet = false;     ///< suppress the summary line
};

/**
 * Run the linter. Returns the process exit code: 0 clean, 1 when any
 * diagnostic fired, 2 on usage/config/IO errors.
 */
int runLint(const RunOptions &options, std::ostream &out,
            std::ostream &err);

} // namespace gopim::lint

#endif // GOPIM_TOOLS_LINT_LINT_HH
