/**
 * @file
 * gopim_lint driver: load the rule config, walk one or more source
 * trees in deterministic (sorted-path) order, lint every C++ file,
 * run the cross-file concurrency phase, and print
 * `file:line: rule: message` diagnostics.
 */

#ifndef GOPIM_TOOLS_LINT_LINT_HH
#define GOPIM_TOOLS_LINT_LINT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace gopim::lint {

struct RunOptions
{
    /**
     * Directory trees to lint. A root named `src` contributes
     * root-relative paths (module = first path component, as
     * always); any other root contributes paths prefixed with its
     * basename, so `tools/foo.cc` belongs to module `tools` and
     * header guards canonicalize to GOPIM_TOOLS_..._HH.
     */
    std::vector<std::string> roots;
    std::string configPath; ///< layering/rule TOML file
    std::string reportPath; ///< also write diagnostics here ("" = no)
    bool quiet = false;     ///< suppress the summary line
};

/**
 * Run the linter. Returns the process exit code: 0 clean, 1 when any
 * diagnostic fired, 2 on usage/config/IO errors.
 */
int runLint(const RunOptions &options, std::ostream &out,
            std::ostream &err);

} // namespace gopim::lint

#endif // GOPIM_TOOLS_LINT_LINT_HH
