/**
 * @file
 * Minimal TOML subset reader for gopim_lint rule configuration
 * (tools/layering.toml). Supports exactly what the config needs:
 * `[section]` headers, `key = "string"`, `key = true|false`, and
 * (possibly multi-line) `key = ["a", "b"]` string arrays, with `#`
 * comments. Every value is stored as a vector of strings; scalars
 * are single-element vectors.
 */

#ifndef GOPIM_TOOLS_LINT_TOML_HH
#define GOPIM_TOOLS_LINT_TOML_HH

#include <map>
#include <string>
#include <vector>

namespace gopim::lint {

/** Parsed TOML document: section -> key -> values (file order kept). */
class TomlDoc
{
  public:
    /**
     * Parse `text`. Returns false and sets `error` (with a line
     * number) on malformed input.
     */
    static bool parse(const std::string &text, TomlDoc *doc,
                      std::string *error);

    /** Values for section.key, or nullptr when absent. */
    const std::vector<std::string> *find(const std::string &section,
                                         const std::string &key) const;

    /** Keys of `section` in file order (empty when absent). */
    std::vector<std::string> keys(const std::string &section) const;

    bool hasSection(const std::string &section) const;

  private:
    struct Entry
    {
        std::string key;
        std::vector<std::string> values;
    };
    std::map<std::string, std::vector<Entry>> sections_;
};

} // namespace gopim::lint

#endif // GOPIM_TOOLS_LINT_TOML_HH
