/**
 * @file
 * Minimal C++ tokenizer for gopim_lint. Not a full lexer — it
 * distinguishes exactly the categories the lint rules need
 * (identifiers, preprocessor directives, comments, literals,
 * punctuation) while handling the constructs that break
 * regex-on-lines approaches: block comments, line continuations,
 * string escapes, and raw string literals.
 */

#ifndef GOPIM_TOOLS_LINT_TOKENIZER_HH
#define GOPIM_TOOLS_LINT_TOKENIZER_HH

#include <string>
#include <vector>

namespace gopim::lint {

enum class TokKind
{
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Number,     ///< numeric literal (pp-number; enough to skip over)
    Punct,      ///< operator/punctuation; "::" and "->" are single tokens
    String,     ///< string literal, escapes and raw strings included
    CharLit,    ///< character literal
    Directive,  ///< whole preprocessor directive, continuations joined
    Comment,    ///< // or block comment; text holds the comment body
};

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0; ///< 1-based line the token starts on
};

/**
 * Tokenize a source buffer. Never throws; malformed input (unclosed
 * comment/string) produces a best-effort token stream plus a message
 * appended to `errors` when non-null.
 */
std::vector<Token> tokenize(const std::string &source,
                            std::vector<std::string> *errors = nullptr);

} // namespace gopim::lint

#endif // GOPIM_TOOLS_LINT_TOKENIZER_HH
