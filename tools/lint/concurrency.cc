/**
 * @file
 * The concurrency-discipline rule family of gopim_lint — a
 * cross-file pass over the token streams Linter::checkFile()
 * deferred.
 *
 * Phase 1 builds a per-class symbol model: every class/struct with
 * its data members classified as mutex / condition_variable /
 * atomic / joinable (std::thread, std::jthread, ThreadPool, and
 * containers thereof) / plain, plus every function body (in-class
 * and out-of-class `Class::method` definitions) as a token range.
 *
 * Phase 2 walks each body with a lock-scope stack
 * (lock_guard/unique_lock/scoped_lock/shared_lock declarations,
 * honoring defer_lock and explicit .lock()/.unlock() toggles) and
 * checks:
 *   - notify_one/notify_all with no lock scope live
 *     (concurrency-notify-outside-lock)
 *   - cv.wait(lock) with exactly one argument — no predicate, so a
 *     spurious wake-up falls through (concurrency-wait-no-predicate)
 *   - assignment-writes to the same non-atomic member both under and
 *     outside a lock (concurrency-mixed-access; constructors and
 *     destructors are exempt — they run single-threaded)
 *   - nested lock acquisitions feed a global mutex-order graph that
 *     is cycle-checked like the layering DAG
 *     (concurrency-lock-order)
 *   - a joinable member declared before other state — reverse
 *     destruction order would free that state while its threads can
 *     still touch it (concurrency-join-order; the generalized
 *     `pool_`-declared-last fix)
 *
 * Deliberate limits (token-level, not a compiler): lambda bodies
 * inherit the enclosing lock context, constructors with member-init
 * lists degrade to anonymous bodies, and writes are assignment /
 * compound-assignment / ++ / -- only — mutating method calls are
 * out of scope. That keeps false positives near zero on real code;
 * the escape hatch for the rest is an allow(<rule>) waiver.
 */

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint/rules.hh"

namespace gopim::lint {

namespace {

bool
oneOf(const std::string &text,
      std::initializer_list<const char *> values)
{
    for (const char *value : values)
        if (text == value)
            return true;
    return false;
}

bool
isMutexType(const std::string &text)
{
    return oneOf(text, {"mutex", "shared_mutex", "recursive_mutex",
                        "timed_mutex", "recursive_timed_mutex"});
}

bool
isLockType(const std::string &text)
{
    return oneOf(text, {"lock_guard", "unique_lock", "scoped_lock",
                        "shared_lock"});
}

bool
isJoinableType(const std::string &text)
{
    return oneOf(text, {"thread", "jthread", "ThreadPool"});
}

enum class MemberKind
{
    Mutex,
    Cv,
    Atomic,
    Joinable,
    Plain,
};

struct Member
{
    std::string name;
    MemberKind kind = MemberKind::Plain;
    size_t fileIndex = 0;
    int line = 0;
};

struct ClassModel
{
    std::vector<Member> members; // declaration order
    std::map<std::string, size_t> byName;
    bool hasMutex = false;
};

/** (module, class name) — the class-identity key. Bodies defined in
 *  a different module than the class declaration simply analyze
 *  without a model (notify/wait checks still apply). */
using ClassKey = std::pair<std::string, std::string>;

struct Body
{
    size_t fileIndex = 0;
    std::string module;
    std::string className; // "" for free functions
    std::string funcName;
    bool ctorDtor = false;
    size_t begin = 0; // first code token inside the braces
    size_t end = 0;   // index of the closing brace
};

struct Site
{
    size_t fileIndex = 0;
    int line = 0;
};

struct WriteSites
{
    std::vector<Site> underLock;
    std::vector<Site> lockFree;
};

/** Code tokens only, mirroring rules.cc's adjacency filter. */
std::vector<const Token *>
codeOnly(const std::vector<Token> &tokens)
{
    std::vector<const Token *> out;
    out.reserve(tokens.size());
    for (const Token &token : tokens) {
        if (token.kind != TokKind::Comment &&
            token.kind != TokKind::Directive)
            out.push_back(&token);
    }
    return out;
}

/** What does this `{` open? Classified by the tokens before it. */
struct BraceInfo
{
    enum Kind { Namespace, Class, Other } kind = Other;
    std::string className;
};

BraceInfo
classifyBrace(const std::vector<const Token *> &code, size_t i)
{
    // Walk back over the tokens a class-head / namespace-head may
    // contain (name, template args, base clause); anything else ends
    // the head.
    size_t j = i;
    while (j > 0) {
        const Token &t = *code[j - 1];
        const bool headToken =
            t.kind == TokKind::Identifier ||
            t.kind == TokKind::Number ||
            (t.kind == TokKind::Punct &&
             oneOf(t.text, {"::", "<", ">", ",", ":", "&", "*"}));
        if (!headToken)
            break;
        --j;
    }

    BraceInfo info;
    for (size_t k = j; k < i; ++k) {
        if (code[k]->text == "namespace") {
            info.kind = BraceInfo::Namespace;
            return info;
        }
    }
    // The *last* class/struct/union keyword is the one this brace
    // belongs to (earlier ones are template parameters).
    for (size_t k = i; k > j; --k) {
        const std::string &text = code[k - 1]->text;
        if (!oneOf(text, {"class", "struct", "union"}))
            continue;
        if (k - 1 > j && code[k - 2]->text == "enum")
            return info; // enum class: plain scope
        info.kind = BraceInfo::Class;
        for (size_t m = k; m < i; ++m) {
            if (code[m]->kind == TokKind::Identifier &&
                code[m]->text != "final") {
                info.className = code[m]->text;
                break;
            }
        }
        return info;
    }
    return info;
}

/** Index of the matching `)` for the `(` at `open`, or `limit`. */
size_t
matchParen(const std::vector<const Token *> &code, size_t open,
           size_t limit)
{
    int depth = 0;
    for (size_t k = open; k < limit; ++k) {
        if (code[k]->text == "(")
            ++depth;
        else if (code[k]->text == ")" && --depth == 0)
            return k;
    }
    return limit;
}

/** Last `(` at paren depth 0 within [begin, end), or `end`. */
size_t
lastTopLevelParen(const std::vector<const Token *> &code,
                  size_t begin, size_t end)
{
    size_t found = end;
    int depth = 0;
    for (size_t k = begin; k < end; ++k) {
        const std::string &text = code[k]->text;
        if (text == "(") {
            if (depth == 0)
                found = k;
            ++depth;
        } else if (text == ")" && depth > 0) {
            --depth;
        }
    }
    return found;
}

/**
 * Identify the function a statement-level `{` begins. Returns false
 * when the statement has no parameter list. `className`/`funcName`/
 * `ctorDtor` describe what was found (out-of-class `A::f`, in-class
 * `f` with the enclosing class, or a free function).
 */
bool
parseFunctionHead(const std::vector<const Token *> &code,
                  size_t begin, size_t end,
                  const std::string &enclosingClass,
                  std::string *className, std::string *funcName,
                  bool *ctorDtor)
{
    const size_t p = lastTopLevelParen(code, begin, end);
    if (p == end || p == begin)
        return false;
    size_t n = p; // token before the `(`
    if (code[n - 1]->kind != TokKind::Identifier)
        return false;
    *funcName = code[n - 1]->text;
    --n;
    bool tilde = false;
    if (n > begin && code[n - 1]->text == "~") {
        tilde = true;
        --n;
    }
    *className = enclosingClass;
    if (n > begin && code[n - 1]->text == "::" && n - 1 > begin &&
        code[n - 2]->kind == TokKind::Identifier)
        *className = code[n - 2]->text;
    *ctorDtor = tilde || (!className->empty() &&
                          *funcName == *className);
    return true;
}

struct Scope
{
    enum Kind { Namespace, Class, Function, Block } kind = Block;
    std::string className;
    size_t stmtStart = 0; // Class/Namespace statement anchor
    size_t bodyIndex = 0; // Function: index into bodies
};

struct ParseResult
{
    std::map<ClassKey, ClassModel> classes;
    std::vector<Body> bodies;
};

/**
 * One member-declaration statement at class-body level: extract the
 * declared name and its concurrency kind, or ignore it (member
 * function declarations, nested types, using/friend/static/...).
 */
void
classifyMemberStatement(const std::vector<const Token *> &code,
                        size_t begin, size_t end, size_t fileIndex,
                        ClassModel *model)
{
    if (begin >= end)
        return;
    for (size_t k = begin; k < end; ++k) {
        if (oneOf(code[k]->text,
                  {"using", "typedef", "friend", "static",
                   "template", "operator", "enum", "class", "struct",
                   "union", "public", "protected", "private",
                   "extern", "static_assert"}))
            return;
    }
    // Truncate at the initializer / array suffix: the declaration
    // proper is everything before the first top-level =, { or [.
    size_t stop = end;
    int depth = 0;
    for (size_t k = begin; k < end; ++k) {
        const std::string &text = code[k]->text;
        if (text == "(") {
            ++depth;
        } else if (text == ")") {
            --depth;
        } else if (depth == 0 &&
                   (text == "=" || text == "{" || text == "[")) {
            stop = k;
            break;
        }
    }
    if (stop - begin < 2)
        return;

    // A parameter list whose `)` is followed by nothing but
    // qualifiers is a member-function declaration, not a member.
    const size_t p = lastTopLevelParen(code, begin, stop);
    if (p != stop) {
        const size_t close = matchParen(code, p, stop);
        bool namedAfter = false;
        for (size_t k = close + 1; k < stop; ++k) {
            if (code[k]->kind == TokKind::Identifier &&
                !oneOf(code[k]->text,
                       {"const", "noexcept", "override", "final"}))
                namedAfter = true;
        }
        if (!namedAfter)
            return;
    }

    const Token *name = nullptr;
    for (size_t k = stop; k > begin; --k) {
        if (code[k - 1]->kind == TokKind::Identifier) {
            name = code[k - 1];
            break;
        }
    }
    if (!name)
        return;

    MemberKind kind = MemberKind::Plain;
    for (size_t k = begin; k < stop; ++k) {
        const Token &t = *code[k];
        if (&t == name || t.kind != TokKind::Identifier)
            continue;
        if (t.text == "atomic" || t.text == "atomic_flag") {
            kind = MemberKind::Atomic;
            break; // atomic<T> wins over whatever T contains
        }
        if (isMutexType(t.text))
            kind = MemberKind::Mutex;
        else if (t.text == "condition_variable" ||
                 t.text == "condition_variable_any")
            kind = MemberKind::Cv;
        else if (kind == MemberKind::Plain && isJoinableType(t.text))
            kind = MemberKind::Joinable;
    }

    if (model->byName.count(name->text))
        return;
    model->byName[name->text] = model->members.size();
    model->members.push_back(
        {name->text, kind, fileIndex, name->line});
    if (kind == MemberKind::Mutex)
        model->hasMutex = true;
}

/** Phase-1 scan of one file: class models + function body ranges. */
void
parseFile(const std::vector<const Token *> &code, size_t fileIndex,
          const std::string &module, ParseResult *out)
{
    std::vector<Scope> stack;
    stack.push_back({Scope::Namespace, "", 0, 0});

    for (size_t i = 0; i < code.size(); ++i) {
        const std::string &text = code[i]->text;
        Scope &top = stack.back();

        if (text == "{") {
            const bool stmtLevel = top.kind == Scope::Namespace ||
                                   top.kind == Scope::Class;
            const BraceInfo info = classifyBrace(code, i);
            if (info.kind == BraceInfo::Namespace) {
                stack.push_back({Scope::Namespace, "", i + 1, 0});
            } else if (info.kind == BraceInfo::Class) {
                if (stmtLevel && top.kind == Scope::Class)
                    top.stmtStart = i + 1; // nested type consumed
                stack.push_back(
                    {Scope::Class, info.className, i + 1, 0});
                if (!info.className.empty())
                    out->classes.try_emplace(
                        {module, info.className});
            } else if (stmtLevel) {
                std::string className, funcName;
                bool ctorDtor = false;
                if (parseFunctionHead(code, top.stmtStart, i,
                                      top.className, &className,
                                      &funcName, &ctorDtor)) {
                    Scope scope{Scope::Function, className, 0,
                                out->bodies.size()};
                    out->bodies.push_back({fileIndex, module,
                                           className, funcName,
                                           ctorDtor, i + 1, i + 1});
                    stack.push_back(scope);
                } else {
                    stack.push_back({Scope::Block, "", 0, 0});
                }
            } else {
                stack.push_back({Scope::Block, "", 0, 0});
            }
            continue;
        }

        if (text == "}") {
            if (stack.size() > 1) {
                const Scope closed = stack.back();
                stack.pop_back();
                if (closed.kind == Scope::Function)
                    out->bodies[closed.bodyIndex].end = i;
                Scope &parent = stack.back();
                if (closed.kind != Scope::Block &&
                    (parent.kind == Scope::Namespace ||
                     parent.kind == Scope::Class))
                    parent.stmtStart = i + 1;
            }
            continue;
        }

        if (text == ";") {
            if (top.kind == Scope::Class && !top.className.empty())
                classifyMemberStatement(
                    code, top.stmtStart, i, fileIndex,
                    &out->classes.at({module, top.className}));
            if (top.kind == Scope::Class ||
                top.kind == Scope::Namespace)
                top.stmtStart = i + 1;
            continue;
        }

        if (text == ":" && top.kind == Scope::Class &&
            i == top.stmtStart + 1 &&
            oneOf(code[top.stmtStart]->text,
                  {"public", "protected", "private"}))
            top.stmtStart = i + 1; // access specifier
    }
}

/** A live RAII lock in a body walk. */
struct LockVar
{
    std::string name;
    std::vector<std::string> nodes; // resolved Class::mutex ids
    bool active = true;
};

} // namespace

void
Linter::checkConcurrency()
{
    ParseResult parsed;
    std::vector<std::vector<const Token *>> fileCode;
    fileCode.reserve(deferred_.size());
    for (size_t f = 0; f < deferred_.size(); ++f) {
        fileCode.push_back(codeOnly(deferred_[f].tokens));
        parseFile(fileCode.back(), f, deferred_[f].module, &parsed);
    }

    // --- join-order: joinable members must be declared last -------
    for (const auto &[key, model] : parsed.classes) {
        for (size_t m = 0; m < model.members.size(); ++m) {
            const Member &member = model.members[m];
            if (member.kind != MemberKind::Joinable)
                continue;
            std::string after;
            size_t count = 0;
            for (size_t k = m + 1; k < model.members.size(); ++k) {
                if (model.members[k].kind == MemberKind::Joinable)
                    continue;
                if (++count <= 3)
                    after += (after.empty() ? "'" : ", '") +
                             model.members[k].name + "'";
            }
            if (count == 0)
                continue;
            report(deferred_[member.fileIndex], member.line,
                   "concurrency-join-order",
                   "joinable member '" + member.name + "' of '" +
                       key.second + "' is declared before " + after +
                       (count > 3 ? ", ..." : "") +
                       "; members destroy in reverse declaration "
                       "order, so its threads could outlive that "
                       "state — declare the joinable member last");
        }
    }

    // --- per-body walk: lock scopes, notify/wait, writes, edges ---
    std::map<std::pair<ClassKey, std::string>, WriteSites> writes;
    // from-node -> to-node -> first acquisition site
    std::map<std::string, std::map<std::string, Site>> lockOrder;

    for (const Body &body : parsed.bodies) {
        const std::vector<const Token *> &code =
            fileCode[body.fileIndex];
        FileContext &ctx = deferred_[body.fileIndex];
        const ClassKey key{body.module, body.className};
        const auto classIt = parsed.classes.find(key);
        const ClassModel *model = classIt != parsed.classes.end()
                                      ? &classIt->second
                                      : nullptr;
        const bool trackWrites =
            model && model->hasMutex && !body.ctorDtor;

        std::vector<std::vector<LockVar>> blocks(1);
        const auto anyLockHeld = [&] {
            for (const auto &block : blocks)
                for (const LockVar &lock : block)
                    if (lock.active)
                        return true;
            return false;
        };

        for (size_t i = body.begin; i < body.end; ++i) {
            const Token &tok = *code[i];
            const std::string &text = tok.text;
            if (text == "{") {
                blocks.emplace_back();
                continue;
            }
            if (text == "}") {
                if (blocks.size() > 1)
                    blocks.pop_back();
                continue;
            }
            if (tok.kind != TokKind::Identifier)
                continue;
            const auto prev = [&](size_t back) -> const Token * {
                return i >= body.begin + back ? code[i - back]
                                              : nullptr;
            };
            const auto next = [&](size_t fwd) -> const Token * {
                return i + fwd < body.end ? code[i + fwd] : nullptr;
            };
            const bool memberCall =
                prev(1) &&
                (prev(1)->text == "." || prev(1)->text == "->");

            // RAII lock declaration (not a member access to a field
            // that happens to be named like a lock type).
            if (isLockType(text) && !memberCall) {
                size_t k = i + 1;
                if (k < body.end && code[k]->text == "<") {
                    int depth = 1;
                    for (++k; k < body.end && depth > 0; ++k) {
                        if (code[k]->text == "<")
                            ++depth;
                        else if (code[k]->text == ">")
                            --depth;
                    }
                }
                if (k + 1 < body.end &&
                    code[k]->kind == TokKind::Identifier &&
                    code[k + 1]->text == "(") {
                    LockVar lock;
                    lock.name = code[k]->text;
                    // Split the ctor arguments at top level.
                    std::vector<std::vector<const Token *>> args(1);
                    int depth = 1;
                    size_t a = k + 2;
                    for (; a < body.end && depth > 0; ++a) {
                        const std::string &at = code[a]->text;
                        if (at == "(")
                            ++depth;
                        else if (at == ")") {
                            if (--depth == 0)
                                break;
                        } else if (at == "," && depth == 1) {
                            args.emplace_back();
                            continue;
                        }
                        if (depth >= 1)
                            args.back().push_back(code[a]);
                    }
                    for (const auto &arg : args) {
                        if (arg.empty())
                            continue;
                        if (arg.back()->text == "defer_lock")
                            lock.active = false;
                        // Resolve a bare member-mutex argument
                        // (`mutex_` or `this->mutex_`).
                        const Token *ident = nullptr;
                        if (arg.size() == 1)
                            ident = arg[0];
                        else if (arg.size() == 3 &&
                                 arg[0]->text == "this" &&
                                 arg[1]->text == "->")
                            ident = arg[2];
                        if (ident && model &&
                            ident->kind == TokKind::Identifier) {
                            const auto mit =
                                model->byName.find(ident->text);
                            if (mit != model->byName.end() &&
                                model->members[mit->second].kind ==
                                    MemberKind::Mutex)
                                lock.nodes.push_back(
                                    body.module + "::" +
                                    body.className + "::" +
                                    ident->text);
                        }
                    }
                    if (lock.active) {
                        for (const auto &block : blocks) {
                            for (const LockVar &held : block) {
                                if (!held.active)
                                    continue;
                                for (const std::string &from :
                                     held.nodes)
                                    for (const std::string &to :
                                         lock.nodes)
                                        if (from != to)
                                            lockOrder[from]
                                                .try_emplace(
                                                    to,
                                                    Site{
                                                        body.fileIndex,
                                                        tok.line});
                            }
                        }
                    }
                    blocks.back().push_back(std::move(lock));
                }
                continue;
            }

            // lock()/unlock() toggles on a tracked lock variable.
            if ((text == "lock" || text == "unlock") && memberCall &&
                prev(1)->text == "." && prev(2) &&
                prev(2)->kind == TokKind::Identifier && next(1) &&
                next(1)->text == "(") {
                for (auto &block : blocks)
                    for (LockVar &lock : block)
                        if (lock.name == prev(2)->text)
                            lock.active = (text == "lock");
                continue;
            }

            if ((text == "notify_one" || text == "notify_all") &&
                memberCall && next(1) && next(1)->text == "(") {
                if (!anyLockHeld()) {
                    const std::string cv =
                        prev(2) &&
                                prev(2)->kind == TokKind::Identifier
                            ? "'" + prev(2)->text + "'"
                            : "a condition variable";
                    report(ctx, tok.line,
                           "concurrency-notify-outside-lock",
                           text + " on " + cv +
                               " with no lock scope live; notify "
                               "while holding the mutex so a waiter "
                               "between its predicate check and its "
                               "wait cannot miss the wake-up");
                }
                continue;
            }

            if (text == "wait" && memberCall && next(1) &&
                next(1)->text == "(") {
                int depth = 1;
                size_t commas = 0;
                size_t argTokens = 0;
                for (size_t a = i + 2; a < body.end && depth > 0;
                     ++a) {
                    const std::string &at = code[a]->text;
                    if (at == "(")
                        ++depth;
                    else if (at == ")")
                        --depth;
                    else if (at == "," && depth == 1)
                        ++commas;
                    if (depth > 0)
                        ++argTokens;
                }
                // Exactly one argument is `cv.wait(lock)`: a wait
                // with no predicate. Zero arguments (future.wait())
                // and the predicate form are fine.
                if (argTokens > 0 && commas == 0)
                    report(ctx, tok.line,
                           "concurrency-wait-no-predicate",
                           "wait(lock) without a predicate returns "
                           "on spurious wake-ups; use wait(lock, "
                           "[&]{ return <condition>; })");
                continue;
            }

            // Assignment-writes to plain members of the mutex-owning
            // class, attributed under/outside the lock scopes.
            if (trackWrites) {
                const bool selfAccess =
                    !prev(1) ||
                    (prev(1)->text != "." && prev(1)->text != "->" &&
                     prev(1)->text != "::") ||
                    (prev(1)->text == "->" && prev(2) &&
                     prev(2)->text == "this");
                const auto mit = model->byName.find(text);
                if (selfAccess && mit != model->byName.end() &&
                    model->members[mit->second].kind ==
                        MemberKind::Plain) {
                    const auto t = [&](size_t fwd) {
                        const Token *p = next(fwd);
                        return p ? p->text : std::string();
                    };
                    const std::string p1 =
                        prev(1) ? prev(1)->text : std::string();
                    const std::string p2 =
                        prev(2) ? prev(2)->text : std::string();
                    const bool compoundable =
                        !t(1).empty() &&
                        oneOf(t(1), {"+", "-", "*", "/", "%", "&",
                                     "|", "^"});
                    const bool isWrite =
                        (t(1) == "=" && t(2) != "=" &&
                         !oneOf(p1, {"=", "!", "<", ">", "+", "-",
                                     "*", "/", "%", "&", "|", "^"})) ||
                        (compoundable && t(2) == "=") ||
                        (t(1) == t(2) &&
                         (t(1) == "+" || t(1) == "-")) ||
                        (p1 == p2 && (p1 == "+" || p1 == "-")) ||
                        (t(1) == "<" && t(2) == "<" && t(3) == "=") ||
                        (t(1) == ">" && t(2) == ">" && t(3) == "=");
                    if (isWrite) {
                        WriteSites &sites = writes[{key, text}];
                        (anyLockHeld() ? sites.underLock
                                       : sites.lockFree)
                            .push_back({body.fileIndex, tok.line});
                    }
                }
            }
        }
    }

    // --- mixed-access: members written both ways ------------------
    for (const auto &[memberKey, sites] : writes) {
        if (sites.underLock.empty() || sites.lockFree.empty())
            continue;
        const Site &locked = sites.underLock.front();
        for (const Site &site : sites.lockFree)
            report(deferred_[site.fileIndex], site.line,
                   "concurrency-mixed-access",
                   "non-atomic member '" + memberKey.second +
                       "' of '" + memberKey.first.second +
                       "' is written lock-free here but under a "
                       "lock at " +
                       deferred_[locked.fileIndex].displayPath +
                       ":" + std::to_string(locked.line) +
                       "; make it atomic or take the mutex");
    }

    // --- lock-order: cycle detection over acquisition edges -------
    enum class Color { White, Grey, Black };
    std::map<std::string, Color> color;
    for (const auto &[from, edges] : lockOrder) {
        color.emplace(from, Color::White);
        for (const auto &[to, site] : edges) {
            (void)site;
            color.emplace(to, Color::White);
        }
    }
    std::vector<std::string> path;
    const std::function<void(const std::string &)> visit =
        [&](const std::string &node) {
            color[node] = Color::Grey;
            path.push_back(node);
            const auto it = lockOrder.find(node);
            if (it != lockOrder.end()) {
                for (const auto &[dep, site] : it->second) {
                    if (color[dep] == Color::Grey) {
                        std::string cycle = dep;
                        for (auto p = std::find(path.begin(),
                                                path.end(), dep) +
                                      1;
                             p != path.end(); ++p)
                            cycle += " -> " + *p;
                        cycle += " -> " + dep;
                        report(deferred_[site.fileIndex], site.line,
                               "concurrency-lock-order",
                               "mutex acquisition cycle: " + cycle +
                                   "; acquire these mutexes in one "
                                   "global order everywhere");
                    } else if (color[dep] == Color::White) {
                        visit(dep);
                    }
                }
            }
            path.pop_back();
            color[node] = Color::Black;
        };
    for (const auto &[node, c] : color) {
        (void)c;
        if (color[node] == Color::White)
            visit(node);
    }
}

} // namespace gopim::lint
