/**
 * @file
 * gopim_lint rule engine: the four rule families (layering DAG,
 * determinism, header hygiene, concurrency discipline) over the
 * token stream produced by lint/tokenizer.hh, configured from
 * tools/layering.toml.
 *
 * Rule ids (used in diagnostics and allow(<rule>) waivers):
 *   layering-cycle            declared module DAG contains a cycle
 *   layering-unknown-module   file's module absent from [layers]
 *   layering-undeclared       #include edge not declared in [layers]
 *   layering-no-incoming      module listed in no_incoming is included
 *   layering-interface        include bypasses a module's interface
 *                             header allowlist ([interfaces])
 *   determinism-rand          rand()/srand() call
 *   determinism-random-device std::random_device outside rng helpers
 *   determinism-time          time()/std::time() call
 *   determinism-clock         system/high_resolution/steady clock
 *                             outside the sanctioned timing module
 *   determinism-unordered     unordered_{map,set} in a module that
 *                             produces simulator output
 *   hygiene-guard             missing/malformed include guard
 *   hygiene-guard-name        guard name != canonical GOPIM_<PATH>_HH
 *   hygiene-using-namespace   `using namespace` at header scope
 *   concurrency-notify-outside-lock
 *                             notify_one/notify_all with no
 *                             lock_guard/unique_lock scope live
 *   concurrency-wait-no-predicate
 *                             cv.wait(lock) without a predicate —
 *                             spurious wake-ups break the wait
 *   concurrency-mixed-access  non-atomic member written both under
 *                             and outside a lock scope
 *   concurrency-lock-order    global mutex-acquisition-order graph
 *                             has a cycle (ABBA deadlock shape)
 *   concurrency-join-order    joinable member (thread/ThreadPool)
 *                             declared before state its threads
 *                             touch; reverse destruction would free
 *                             that state first
 *   allow-missing-reason      allow(...) without a justification
 *   allow-unknown-rule        allow(...) naming no known rule
 *
 * The concurrency family is a cross-file pass: checkFile() defers
 * the token streams, and finish() builds the per-class symbol model
 * (mutex/cv/atomic/joinable members, lock scopes per function body)
 * plus the global lock-order graph before reporting.
 */

#ifndef GOPIM_TOOLS_LINT_RULES_HH
#define GOPIM_TOOLS_LINT_RULES_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/tokenizer.hh"
#include "lint/toml.hh"

namespace gopim::lint {

struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    /** Render as `file:line: rule: message`. */
    std::string format() const;
};

/** Rule configuration, loaded from the layering TOML file. */
struct Config
{
    /** Module -> modules it may include from ([layers]). */
    std::map<std::string, std::vector<std::string>> layers;
    /** Modules nothing may include ([constraints] no_incoming). */
    std::vector<std::string> noIncoming;
    /** Modules exempt from no_incoming — the sanctioned consumers
     *  ([constraints] no_incoming_except). */
    std::vector<std::string> noIncomingExcept;
    /** Module -> its only includable headers ([interfaces]). */
    std::map<std::string, std::vector<std::string>> interfaces;
    /** Files exempt from RNG bans ([determinism] rng_helpers). */
    std::vector<std::string> rngHelpers;
    /** Modules where steady_clock is allowed ([determinism]
     *  clock_modules). */
    std::vector<std::string> clockModules;
    /** Modules whose files produce simulator output ([determinism]
     *  output_modules): unordered containers are flagged there. */
    std::vector<std::string> outputModules;
    /** Include-guard prefix ([hygiene] guard_prefix). */
    std::string guardPrefix = "GOPIM_";

    /** Load from parsed TOML; false + `error` on bad shape. */
    static bool load(const TomlDoc &doc, Config *config,
                     std::string *error);
};

/**
 * Stateful linter: feed it files, collect diagnostics. Not
 * thread-safe; the driver lints files sequentially so diagnostics
 * stay in deterministic (sorted path) order.
 */
class Linter
{
  public:
    explicit Linter(Config config);

    /** All rule ids allow(...) may name. */
    static const std::set<std::string> &knownRules();

    /**
     * Validate the declared DAG itself (cycles, deps on undeclared
     * modules). Diagnostics are attributed to `configPath`.
     */
    void checkConfig(const std::string &configPath);

    /**
     * Lint one file. `displayPath` is printed in diagnostics;
     * `relPath` is the path relative to the scan root (determines
     * the module and the canonical guard name).
     */
    void checkFile(const std::string &displayPath,
                   const std::string &relPath,
                   const std::string &source);

    /**
     * Run the cross-file phases (concurrency symbol model, mixed
     * lock/lock-free writes, global lock-order cycle check). Call
     * exactly once, after the last checkFile().
     */
    void finish();

    const std::vector<Diagnostic> &
    diagnostics() const
    {
        return diagnostics_;
    }

  private:
    struct Allow
    {
        std::string rule;
        bool hasReason = false;
        int line = 0;
    };
    struct FileContext
    {
        std::string displayPath;
        std::string relPath;
        std::string module;
        std::vector<Token> tokens;
        /** line -> allow directives that cover it. */
        std::map<int, std::vector<Allow>> allows;
    };

    void collectAllows(FileContext &ctx);
    void report(FileContext &ctx, int line, const std::string &rule,
                const std::string &message);
    void checkLayering(FileContext &ctx);
    void checkDeterminism(FileContext &ctx);
    void checkHygiene(FileContext &ctx);
    /** The deferred concurrency pass (lint/concurrency.cc). */
    void checkConcurrency();

    Config config_;
    std::vector<Diagnostic> diagnostics_;
    /** Token streams retained for the cross-file finish() phases. */
    std::vector<FileContext> deferred_;
};

} // namespace gopim::lint

#endif // GOPIM_TOOLS_LINT_RULES_HH
