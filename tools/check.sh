#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite,
# then repeat the build with ASan+UBSan (GOPIM_SANITIZE) and run the
# suite again under the sanitizers. Exits non-zero on any failure.
#
# Usage: tools/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
sanitize=1
[[ "${1:-}" == "--no-sanitize" ]] && sanitize=0

# Both builds share one compiler cache when ccache is installed, so
# the sanitizer pass stops rebuilding the world on repeat runs.
launcher=()
if command -v ccache >/dev/null 2>&1; then
    launcher=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "== tier-1: plain build + ctest =="
cmake -B build -S . "${launcher[@]}" >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$sanitize" == 1 ]]; then
    echo "== tier-2: ASan+UBSan build + ctest =="
    cmake -B build-asan -S . "${launcher[@]}" \
        -DGOPIM_SANITIZE="address;undefined" >/dev/null
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
fi

echo "== all checks passed =="
