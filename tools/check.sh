#!/usr/bin/env bash
# Repo verification, four tiers:
#
#   tier 1 (always): plain build + full ctest, then static analysis —
#          gopim_lint over src/, tools/ and bench/ against
#          tools/layering.toml and the header self-containment target
#          (every .hh compiles standalone).
#   tier 2 (default; skip with --no-sanitize): ASan+UBSan build
#          (GOPIM_SANITIZE="address;undefined") + full ctest.
#   tier 3 (--tsan only): ThreadSanitizer build
#          (GOPIM_SANITIZE="thread") + the concurrency-labeled test
#          set (thread pool, serve stress, parallel runGrid, metrics)
#          — the suites that back the "bit-identical for any --jobs"
#          guarantee.
#   tier 4 (--ubsan only): UBSan-only build
#          (GOPIM_SANITIZE="undefined") + full ctest. ASan shifts
#          layouts and slows the run; the standalone UBSan pass
#          catches what that perturbation can mask (CI runs it as its
#          own job).
#
# Usage: tools/check.sh [--no-sanitize | --tsan | --ubsan]
#   (no flag)      tiers 1 + 2
#   --no-sanitize  tier 1 only
#   --tsan         tier 3 only (CI runs it as its own job)
#   --ubsan        tier 4 only (CI runs it as its own job)
#
# Exits non-zero on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode="default"
case "${1:-}" in
    --no-sanitize) mode="plain" ;;
    --tsan) mode="tsan" ;;
    --ubsan) mode="ubsan" ;;
    "") ;;
    *) echo "usage: tools/check.sh [--no-sanitize | --tsan | --ubsan]" >&2
       exit 2 ;;
esac

# All builds share one compiler cache when ccache is installed, so
# the sanitizer passes stop rebuilding the world on repeat runs.
launcher=()
if command -v ccache >/dev/null 2>&1; then
    launcher=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

if [[ "$mode" == "tsan" ]]; then
    echo "== tier-3: TSan build + concurrency ctest =="
    cmake -B build-tsan -S . "${launcher[@]}" \
        -DGOPIM_SANITIZE="thread" >/dev/null
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan -L concurrency \
        --output-on-failure -j "$jobs"
    echo "== tsan checks passed =="
    exit 0
fi

if [[ "$mode" == "ubsan" ]]; then
    echo "== tier-4: UBSan build + ctest =="
    cmake -B build-ubsan -S . "${launcher[@]}" \
        -DGOPIM_SANITIZE="undefined" >/dev/null
    cmake --build build-ubsan -j "$jobs"
    ctest --test-dir build-ubsan --output-on-failure -j "$jobs"
    echo "== ubsan checks passed =="
    exit 0
fi

echo "== tier-1: plain build + ctest =="
cmake -B build -S . "${launcher[@]}" >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== tier-1: static analysis (gopim_lint + header check) =="
./build/tools/gopim_lint src tools bench tools/layering.toml
cmake --build build --target gopim_header_check -j "$jobs"

if [[ "$mode" == "default" ]]; then
    echo "== tier-2: ASan+UBSan build + ctest =="
    cmake -B build-asan -S . "${launcher[@]}" \
        -DGOPIM_SANITIZE="address;undefined" >/dev/null
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
fi

echo "== all checks passed =="
