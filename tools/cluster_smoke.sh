#!/usr/bin/env bash
# Multi-process cluster smoke: route a fig13-style request stream
# through gopim_router with 3 spawned gopim_serve shards, SIGKILL one
# shard mid-stream (chaos), and byte-diff the responses against a
# single-process gopim_serve run of the same stream. Asserts:
#
#   - the cluster output is bit-identical to the single process
#     (stable envelope; placement + restart replay preserve caching),
#   - at least one shard restart actually happened (from the
#     {"type":"stats"} trailer, NOT stderr — inform() is suppressed
#     at the default log level),
#   - the router metrics export (METRICS_router.json) carries the
#     restart/reissue counters.
#
# Usage: tools/cluster_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build=${1:-build}
serve=$build/tools/gopim_serve
router=$build/tools/gopim_router
for bin in "$serve" "$router"; do
    [ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 1; }
done

work=$(mktemp -d "${TMPDIR:-/tmp}/gopim_cluster_smoke.XXXXXX")
trap 'rm -rf "$work"' EXIT

# A fig13-style grid (datasets x systems x seeds x micro-batches),
# repeated so the stream exceeds 1000 requests and re-hits the LRU
# caches, plus one invalid line per repetition to pin error routing.
requests=$work/requests.jsonl
: > "$requests"
for rep in $(seq 1 28); do
    for dataset in ddi Cora; do
        for system in GoPIM Serial ReGraphX; do
            for seed in 1 2 3; do
                for mb in 32 64; do
                    printf '{"id":"%s-%s-%s-s%s-b%s","dataset":"%s","system":"%s","baseline":"Serial","seed":%s,"micro_batch":%s}\n' \
                        "$rep" "$dataset" "$system" "$seed" "$mb" \
                        "$dataset" "$system" "$seed" "$mb" \
                        >> "$requests"
                done
            done
        done
    done
    printf '{"dataset":"no-such-dataset","id":"bad-%s"}\n' "$rep" \
        >> "$requests"
done
lines=$(wc -l < "$requests")
[ "$lines" -ge 1000 ] || { echo "stream too short: $lines" >&2; exit 1; }
echo "request stream: $lines lines"

echo "single-process golden (gopim_serve --envelope=stable) ..."
"$serve" --envelope=stable --jobs=4 \
    < "$requests" > "$work/golden.jsonl"

echo "3-shard cluster with one chaos kill mid-stream ..."
"$router" --workers=3 --worker-cmd="$serve --jobs=2" \
    --chaos-kill-every=400 --chaos-kill-count=1 --chaos-seed=7 \
    --stats --metrics-out=METRICS_router.json \
    < "$requests" > "$work/cluster_raw.jsonl"

stats=$(tail -n 1 "$work/cluster_raw.jsonl")
case $stats in
    *'"type":"stats"'*) ;;
    *) echo "missing stats trailer: $stats" >&2; exit 1 ;;
esac
head -n -1 "$work/cluster_raw.jsonl" > "$work/cluster.jsonl"

diff "$work/golden.jsonl" "$work/cluster.jsonl" \
    || { echo "cluster output differs from single process" >&2; exit 1; }
echo "BYTE-IDENTICAL: $lines responses match the single process"

kills=$(printf '%s' "$stats" | sed -n 's/.*"chaos_kills":\([0-9]*\).*/\1/p')
restarts=$(printf '%s' "$stats" \
    | sed -n 's/.*"restarts":\([0-9]*\),"reissued".*/\1/p')
[ "${kills:-0}" -eq 1 ] \
    || { echo "expected 1 chaos kill, stats: $stats" >&2; exit 1; }
[ "${restarts:-0}" -ge 1 ] \
    || { echo "no shard restart recorded, stats: $stats" >&2; exit 1; }
echo "chaos: $kills kill(s), $restarts restart(s): $stats"

grep -q '"schema": "gopim.metrics.v1"' METRICS_router.json
grep -q 'cluster.restart.count' METRICS_router.json
grep -q 'cluster.request.count' METRICS_router.json
echo "METRICS_router.json carries the cluster counters"
echo "cluster smoke OK"
