/**
 * @file
 * gopim_serve: long-lived batch simulation service. Reads JSONL
 * requests ({"dataset": ..., "system": ..., "engine": ..., knobs})
 * from stdin — or accepts connections on a Unix-domain socket with
 * --socket, or serves the framed cluster transport with --tcp —
 * dispatches them onto a worker pool with bounded-queue
 * backpressure, answers repeated requests from a content-addressed
 * LRU result cache, and writes one deterministic JSONL response per
 * request in input order.
 *
 * The server's own --engine/--seed/--jobs/... flags (the uniform
 * set from core::addSimFlags) provide the defaults a request
 * inherits for any field it omits. Shutdown is graceful: EOF (or
 * SIGINT/SIGTERM in socket/TCP mode) stops intake, in-flight
 * simulations drain, and cache statistics are flushed.
 *
 * As a cluster shard (see src/cluster): --tcp=0 binds an ephemeral
 * port, --port-file reports it to the spawning router, and the
 * framed protocol negotiates the stable response envelope so shard
 * responses stay byte-comparable to a single-process run.
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cluster/worker.hh"
#include "common/flags.hh"
#include "common/logging.hh"
#include "common/net.hh"
#include "core/options.hh"
#include "serve/request.hh"
#include "serve/service.hh"

namespace {

using namespace gopim;

volatile std::sig_atomic_t g_stop = 0;

void
handleSignal(int)
{
    g_stop = 1;
}

void
flushStats(const serve::Service &service,
           const serve::Service::StreamStats &stats)
{
    const auto cache = service.cacheStats();
    inform("served ", stats.requests, " request(s), ", stats.errors,
           " error(s); cache: ", service.hits(), " hit(s), ",
           service.misses(), " miss(es), ", cache.entries, "/",
           cache.capacity, " entries, ", cache.evictions,
           " eviction(s)");
}

/** Read everything the client sends (until half-close). */
std::string
readAll(int fd)
{
    std::string data;
    char buf[4096];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        data.append(buf, static_cast<size_t>(n));
    }
    return data;
}

/**
 * Socket server loop: each connection is one JSONL batch; the
 * client half-closes its write side, we respond in request order
 * and close. SIGINT/SIGTERM stop intake and drain.
 */
int
serveSocket(serve::Service &service, const std::string &path,
            bool emitStats, serve::Envelope envelope)
{
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    std::string error;
    bool removedStale = false;
    const int listenFd = net::listenUnix(path, &error, &removedStale);
    if (listenFd < 0)
        fatal(error);
    if (removedStale)
        inform("removed stale socket ", path,
               " left by a dead server");
    inform("listening on unix socket ", path,
           " (SIGINT/SIGTERM to drain and exit)");

    serve::Service::StreamStats total;
    while (!g_stop) {
        const int conn = net::acceptWithTimeout(listenFd, 200);
        if (conn < 0)
            continue;
        std::istringstream in(readAll(conn));
        std::ostringstream out;
        const auto stats =
            service.processStream(in, out, emitStats, envelope);
        total.requests += stats.requests;
        total.errors += stats.errors;
        net::writeAll(conn, out.str());
        ::close(conn);
    }

    ::close(listenFd);
    ::unlink(path.c_str());
    service.drain();
    flushStats(service, total);
    return 0;
}

/** Report the bound port atomically (write tmp, rename into place). */
void
writePortFile(const std::string &path, uint16_t port)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            fatal("cannot write port file ", tmp);
        out << port << '\n';
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename ", tmp, " to ", path);
}

/**
 * Cluster-shard mode: serve the framed protocol on a TCP port
 * (0 = ephemeral, reported via --port-file for the spawning router).
 */
int
serveTcp(serve::Service &service, int port,
         const std::string &portFile, const serve::Envelope envelope,
         const serve::ServiceConfig &config)
{
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    std::string error;
    uint16_t boundPort = 0;
    const int listenFd = net::listenTcp(
        "127.0.0.1", static_cast<uint16_t>(port), &boundPort, &error);
    if (listenFd < 0)
        fatal(error);
    if (!portFile.empty())
        writePortFile(portFile, boundPort);
    inform("listening on 127.0.0.1:", boundPort,
           " (framed cluster protocol; SIGINT/SIGTERM to exit)");

    cluster::WorkerOptions options;
    options.defaultsFp =
        serve::defaultsFingerprint(config.defaults, config.hw);
    options.defaultEnvelope = envelope;
    const cluster::WorkerStats stats =
        cluster::serveFramed(service, listenFd, options, &g_stop);

    ::close(listenFd);
    service.drain();
    serve::Service::StreamStats total;
    total.requests = stats.requests;
    total.errors = stats.errors;
    flushStats(service, total);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("gopim_serve",
                "serve GoPIM simulation requests as JSONL "
                "(stdin/stdout, a Unix socket, or framed TCP)");
    flags.addString("socket", "",
                    "serve on this Unix-domain socket instead of "
                    "stdin/stdout");
    flags.addInt("tcp", -1,
                 "serve the framed cluster protocol on this TCP "
                 "port (0 = ephemeral, -1 = disabled)");
    flags.setIntRange("tcp", -1, 65535);
    flags.addString("port-file", "",
                    "report the bound TCP port to this file "
                    "(atomic write; for the spawning router)");
    flags.addString("envelope", "full",
                    "response envelope: full (cache counters "
                    "included) or stable (pure function of the "
                    "request; what the cluster compares)");
    flags.addInt("cache-capacity", 256,
                 "resident entries in the content-addressed result "
                 "cache");
    flags.setIntRange("cache-capacity", 0, 1 << 24);
    flags.addInt("max-queue", 0,
                 "backpressure bound: max in-flight simulations "
                 "(0 = twice the worker count)");
    flags.setIntRange("max-queue", 0, 1 << 20);
    flags.addBool("stats", false,
                  "append a {\"type\":\"stats\"} JSONL summary line "
                  "per stream");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    serve::Envelope envelope = serve::Envelope::Full;
    if (const std::string name = flags.getString("envelope");
        name == "stable")
        envelope = serve::Envelope::Stable;
    else if (name != "full")
        fatal("unknown --envelope '", name,
              "' (expected full or stable)");

    const sim::SimContext defaultCtx = core::simContextFromFlags(flags);
    serve::ServiceConfig config;
    config.jobs = core::jobsFromFlags(flags);
    config.cacheCapacity =
        static_cast<size_t>(flags.getInt("cache-capacity"));
    config.maxQueue = static_cast<size_t>(flags.getInt("max-queue"));
    config.defaults.sim = defaultCtx;
    config.defaults.fault = core::faultConfigFromFlags(flags);
    config.defaults.microBatch = 64;
    config.defaults.epochs = 1;
    // Per-request latency/queue/cache metrics share the registry the
    // engines record into, so one --metrics-out file covers both.
    config.metrics = defaultCtx.metrics;

    const std::string socketPath = flags.getString("socket");
    const int tcpPort = static_cast<int>(flags.getInt("tcp"));
    if (!socketPath.empty() && tcpPort >= 0)
        fatal("--socket and --tcp are mutually exclusive");

    serve::Service service(config);

    int rc = 0;
    if (tcpPort >= 0) {
        rc = serveTcp(service, tcpPort, flags.getString("port-file"),
                      envelope, config);
    } else if (!socketPath.empty()) {
        rc = serveSocket(service, socketPath, flags.getBool("stats"),
                         envelope);
    } else {
        const auto stats = service.processStream(
            std::cin, std::cout, flags.getBool("stats"), envelope);
        service.drain();
        flushStats(service, stats);
    }
    core::writeTraceIfRequested(flags, defaultCtx);
    core::writeMetricsIfRequested(flags, defaultCtx);
    core::writeIsaTraceIfRequested(flags, defaultCtx);
    return rc;
}
