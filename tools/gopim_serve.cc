/**
 * @file
 * gopim_serve: long-lived batch simulation service. Reads JSONL
 * requests ({"dataset": ..., "system": ..., "engine": ..., knobs})
 * from stdin — or accepts connections on a Unix-domain socket with
 * --socket — dispatches them onto a worker pool with bounded-queue
 * backpressure, answers repeated requests from a content-addressed
 * LRU result cache, and writes one deterministic JSONL response per
 * request in input order.
 *
 * The server's own --engine/--seed/--jobs/... flags (the uniform
 * set from core::addSimFlags) provide the defaults a request
 * inherits for any field it omits. Shutdown is graceful: EOF (or
 * SIGINT/SIGTERM in socket mode) stops intake, in-flight
 * simulations drain, and cache statistics are flushed.
 */

#include <csignal>
#include <cstring>
#include <iostream>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/flags.hh"
#include "common/logging.hh"
#include "core/options.hh"
#include "serve/service.hh"

namespace {

using namespace gopim;

volatile std::sig_atomic_t g_stop = 0;

void
handleSignal(int)
{
    g_stop = 1;
}

void
flushStats(const serve::Service &service,
           const serve::Service::StreamStats &stats)
{
    const auto cache = service.cacheStats();
    inform("served ", stats.requests, " request(s), ", stats.errors,
           " error(s); cache: ", service.hits(), " hit(s), ",
           service.misses(), " miss(es), ", cache.entries, "/",
           cache.capacity, " entries, ", cache.evictions,
           " eviction(s)");
}

int
listenUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket(): ", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("socket path too long: ", path);
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("bind(", path, "): ", std::strerror(errno));
    if (::listen(fd, 16) != 0)
        fatal("listen(", path, "): ", std::strerror(errno));
    return fd;
}

/** Read everything the client sends (until half-close). */
std::string
readAll(int fd)
{
    std::string data;
    char buf[4096];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        data.append(buf, static_cast<size_t>(n));
    }
    return data;
}

void
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
}

/**
 * Socket server loop: each connection is one JSONL batch; the
 * client half-closes its write side, we respond in request order
 * and close. SIGINT/SIGTERM stop intake and drain.
 */
int
serveSocket(serve::Service &service, const std::string &path,
            bool emitStats)
{
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    const int listenFd = listenUnix(path);
    inform("listening on unix socket ", path,
           " (SIGINT/SIGTERM to drain and exit)");

    serve::Service::StreamStats total;
    while (!g_stop) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int conn = ::accept(listenFd, nullptr, nullptr);
        if (conn < 0)
            continue;
        std::istringstream in(readAll(conn));
        std::ostringstream out;
        const auto stats = service.processStream(in, out, emitStats);
        total.requests += stats.requests;
        total.errors += stats.errors;
        writeAll(conn, out.str());
        ::close(conn);
    }

    ::close(listenFd);
    ::unlink(path.c_str());
    service.drain();
    flushStats(service, total);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags("gopim_serve",
                "serve GoPIM simulation requests as JSONL "
                "(stdin/stdout or a Unix socket)");
    flags.addString("socket", "",
                    "serve on this Unix-domain socket instead of "
                    "stdin/stdout");
    flags.addInt("cache-capacity", 256,
                 "resident entries in the content-addressed result "
                 "cache");
    flags.setIntRange("cache-capacity", 0, 1 << 24);
    flags.addInt("max-queue", 0,
                 "backpressure bound: max in-flight simulations "
                 "(0 = twice the worker count)");
    flags.setIntRange("max-queue", 0, 1 << 20);
    flags.addBool("stats", false,
                  "append a {\"type\":\"stats\"} JSONL summary line "
                  "per stream");
    core::addSimFlags(flags);
    if (!flags.parse(argc, argv))
        return 0;

    const sim::SimContext defaultCtx = core::simContextFromFlags(flags);
    serve::ServiceConfig config;
    config.jobs = core::jobsFromFlags(flags);
    config.cacheCapacity =
        static_cast<size_t>(flags.getInt("cache-capacity"));
    config.maxQueue = static_cast<size_t>(flags.getInt("max-queue"));
    config.defaults.sim = defaultCtx;
    config.defaults.fault = core::faultConfigFromFlags(flags);
    config.defaults.microBatch = 64;
    config.defaults.epochs = 1;
    // Per-request latency/queue/cache metrics share the registry the
    // engines record into, so one --metrics-out file covers both.
    config.metrics = defaultCtx.metrics;

    serve::Service service(config);

    int rc = 0;
    if (const std::string path = flags.getString("socket");
        !path.empty()) {
        rc = serveSocket(service, path, flags.getBool("stats"));
    } else {
        const auto stats = service.processStream(
            std::cin, std::cout, flags.getBool("stats"));
        service.drain();
        flushStats(service, stats);
    }
    core::writeTraceIfRequested(flags, defaultCtx);
    core::writeMetricsIfRequested(flags, defaultCtx);
    core::writeIsaTraceIfRequested(flags, defaultCtx);
    return rc;
}
