/**
 * @file
 * graph_gen: generate synthetic graphs (catalog-matched, Chung-Lu,
 * R-MAT, or Erdos-Renyi) and save them as edge lists or binary CSR —
 * the companion tool for feeding custom graphs into gopim_sim.
 */

#include <fstream>
#include <iostream>

#include "common/flags.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "graph/io.hh"

int
main(int argc, char **argv)
{
    using namespace gopim;

    Flags flags("graph_gen", "generate and save synthetic graphs");
    flags.addString("generator", "catalog",
                    "catalog | chunglu | rmat | er");
    flags.addString("dataset", "ddi",
                    "catalog entry to match (generator=catalog)");
    flags.addDouble("scale", 1.0,
                    "vertex-count scale for catalog graphs");
    flags.addInt("vertices", 10000,
                 "vertex count (non-catalog generators)");
    flags.addDouble("avg-degree", 16.0,
                    "average degree (chunglu) / edge basis (rmat)");
    flags.addDouble("p", 0.001, "edge probability (er)");
    flags.addString("out", "graph.el", "output path");
    flags.addString("format", "el", "el (edge list) | bin (CSR)");
    flags.addInt("seed", 1, "generator seed");
    if (!flags.parse(argc, argv))
        return 0;

    Rng rng(static_cast<uint64_t>(flags.getInt("seed")));
    const auto generator = flags.getString("generator");
    const auto vertices = static_cast<graph::VertexId>(
        flags.getInt("vertices"));

    graph::Graph g;
    if (generator == "catalog") {
        const auto &spec =
            graph::DatasetCatalog::byName(flags.getString("dataset"));
        g = graph::DatasetCatalog::materialize(
            spec, flags.getDouble("scale"), rng);
    } else if (generator == "chunglu") {
        const auto degrees = graph::powerLawDegreeSequence(
            vertices, flags.getDouble("avg-degree"), 2.1,
            vertices / 2, rng);
        g = graph::chungLu(degrees, rng);
    } else if (generator == "rmat") {
        const auto edges = static_cast<uint64_t>(
            flags.getDouble("avg-degree") *
            static_cast<double>(vertices) / 2.0);
        g = graph::rmat(vertices, edges, 0.45, 0.22, 0.22, rng);
    } else if (generator == "er") {
        g = graph::erdosRenyi(vertices, flags.getDouble("p"), rng);
    } else {
        fatal("unknown generator '", generator, "'");
    }

    const auto out = flags.getString("out");
    if (flags.getString("format") == "bin") {
        graph::saveBinary(g, out);
    } else {
        std::ofstream stream(out);
        if (!stream)
            fatal("cannot open '", out, "' for writing");
        graph::writeEdgeList(g, stream);
    }

    std::cout << "wrote " << out << ": " << g.numVertices()
              << " vertices, " << g.numEdges()
              << " edges, avg degree " << g.averageDegree() << "\n";
    return 0;
}
