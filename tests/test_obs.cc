/**
 * @file
 * Observability-layer tests: counter/gauge/histogram semantics, the
 * registry's schema-stable JSON export, ProfileSpan recording, and
 * the two contracts the subsystem is built on — a run with a metrics
 * registry attached is bit-identical to one without (both engines),
 * and counter/histogram counts are identical for any worker count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/report.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "reram/config.hh"
#include "sim/trace.hh"

namespace gopim {
namespace {

// ---------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------

TEST(Counter, AccumulatesDeltas)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetIsLastWriteAndRecordMaxKeepsHighWater)
{
    obs::Gauge g;
    g.set(7);
    g.set(3);
    EXPECT_EQ(g.value(), 3);
    g.recordMax(10);
    g.recordMax(5);
    EXPECT_EQ(g.value(), 10);
    g.recordMax(-1);
    EXPECT_EQ(g.value(), 10);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds)
{
    // bucket i counts value <= bounds[i]; one overflow bucket above.
    obs::Histogram h({1.0, 2.0, 4.0});
    h.observe(0.5); // bucket 0
    h.observe(1.0); // bucket 0 (inclusive)
    h.observe(1.5); // bucket 1
    h.observe(4.0); // bucket 2 (inclusive)
    h.observe(9.0); // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 16.0);
    const std::vector<uint64_t> expected = {2, 1, 1, 1};
    EXPECT_EQ(h.bucketCounts(), expected);
}

TEST(Histogram, GeneratedBoundEdgesLandInOneDeterministicBucket)
{
    // A sample exactly equal to a generated upper bound — including
    // bounds like 0.30000000000000004 that accumulate float error in
    // linearBounds/exponentialBounds — must land in exactly the
    // bucket that bound closes, every time, on every platform: the
    // comparison is against the stored bound's bits, not against a
    // recomputed edge. This is what keeps metric exports identical
    // across worker counts (and stdlibs).
    for (const auto &bounds :
         {obs::Histogram::linearBounds(0.1, 0.1, 13),
          obs::Histogram::exponentialBounds(1.0, 3.0, 10)}) {
        obs::Histogram h(bounds);
        for (double edge : bounds)
            h.observe(edge);
        EXPECT_EQ(h.count(), bounds.size());
        const auto counts = h.bucketCounts();
        ASSERT_EQ(counts.size(), bounds.size() + 1);
        for (size_t i = 0; i < bounds.size(); ++i)
            EXPECT_EQ(counts[i], 1u) << "edge " << bounds[i];
        EXPECT_EQ(counts.back(), 0u); // no edge overflows

        // Just past an edge falls into the next bucket up.
        obs::Histogram above(bounds);
        above.observe(std::nextafter(
            bounds.front(), std::numeric_limits<double>::infinity()));
        EXPECT_EQ(above.bucketCounts()[1], 1u);
    }
}

TEST(Histogram, MergeAddsCountsBucketwise)
{
    obs::Histogram a({1.0, 10.0});
    obs::Histogram b({1.0, 10.0});
    a.observe(0.5);
    a.observe(5.0);
    b.observe(5.0);
    b.observe(100.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.sum(), 110.5);
    const std::vector<uint64_t> expected = {1, 2, 1};
    EXPECT_EQ(a.bucketCounts(), expected);
}

TEST(Histogram, GeneratedBoundsAreStrictlyIncreasing)
{
    const auto exp = obs::Histogram::exponentialBounds(1.0, 4.0, 4);
    ASSERT_EQ(exp.size(), 4u);
    EXPECT_DOUBLE_EQ(exp[0], 1.0);
    EXPECT_DOUBLE_EQ(exp[1], 4.0);
    EXPECT_DOUBLE_EQ(exp[2], 16.0);
    EXPECT_DOUBLE_EQ(exp[3], 64.0);

    const auto lin = obs::Histogram::linearBounds(0.1, 0.1, 3);
    ASSERT_EQ(lin.size(), 3u);
    for (size_t i = 1; i < lin.size(); ++i)
        EXPECT_GT(lin[i], lin[i - 1]);
    EXPECT_DOUBLE_EQ(lin[0], 0.1);
}

TEST(Histogram, ObservationsAreThreadSafeSums)
{
    obs::Histogram h(obs::Histogram::linearBounds(1.0, 1.0, 8));
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&h] {
            for (int i = 0; i < 1000; ++i)
                h.observe(static_cast<double>(i % 10));
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(h.count(), 4000u);
    uint64_t total = 0;
    for (uint64_t c : h.bucketCounts())
        total += c;
    EXPECT_EQ(total, 4000u);
}

// ---------------------------------------------------------------
// Registry
// ---------------------------------------------------------------

TEST(MetricsRegistry, InstrumentsAreCreatedOnceAndStable)
{
    obs::MetricsRegistry reg;
    obs::Counter &c1 = reg.counter("a.b.count");
    obs::Counter &c2 = reg.counter("a.b.count");
    EXPECT_EQ(&c1, &c2);
    c1.add(3);
    EXPECT_EQ(c2.value(), 3u);

    // Later histogram calls keep the first bounds.
    obs::Histogram &h1 = reg.histogram("a.h", {1.0, 2.0});
    obs::Histogram &h2 = reg.histogram("a.h", {9.0});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistry, FindReturnsNullWhenAbsent)
{
    obs::MetricsRegistry reg;
    EXPECT_EQ(reg.findCounter("nope"), nullptr);
    EXPECT_EQ(reg.findGauge("nope"), nullptr);
    EXPECT_EQ(reg.findHistogram("nope"), nullptr);
    reg.counter("yes").add();
    EXPECT_NE(reg.findCounter("yes"), nullptr);
    EXPECT_EQ(reg.findCounter("yes")->value(), 1u);
}

TEST(MetricsRegistry, ToJsonIsSchemaStable)
{
    obs::MetricsRegistry reg;
    reg.counter("z.count").add(2);
    reg.counter("a.count").add(1);
    reg.gauge("g.depth").set(5);
    reg.histogram("h.lat_us", {1.0, 2.0}).observe(1.5);

    const json::Value doc = reg.toJson();
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->asString(), "gopim.metrics.v1");
    ASSERT_NE(doc.find("counters"), nullptr);
    ASSERT_NE(doc.find("gauges"), nullptr);
    ASSERT_NE(doc.find("histograms"), nullptr);

    // Counter names are sorted within the section.
    const std::string counters = doc.find("counters")->dump();
    EXPECT_EQ(counters, "{\"a.count\":1,\"z.count\":2}");
    EXPECT_EQ(doc.find("gauges")->dump(), "{\"g.depth\":5}");

    const json::Value *hist = doc.find("histograms")->find("h.lat_us");
    ASSERT_NE(hist, nullptr);
    EXPECT_NE(hist->find("bounds"), nullptr);
    EXPECT_NE(hist->find("counts"), nullptr);
    EXPECT_EQ(hist->find("count")->asInt(), 1);
    // counts has one overflow bucket beyond bounds.
    EXPECT_EQ(hist->find("counts")->size(),
              hist->find("bounds")->size() + 1);
}

TEST(MetricsRegistry, RecordPoolUtilizationWritesGauges)
{
    obs::MetricsRegistry reg;
    obs::recordPoolUtilization(reg, "test.pool", 4, 10, 10, 3);
    EXPECT_EQ(reg.findGauge("test.pool.threads")->value(), 4);
    EXPECT_EQ(reg.findGauge("test.pool.tasks_submitted")->value(), 10);
    EXPECT_EQ(reg.findGauge("test.pool.tasks_completed")->value(), 10);
    EXPECT_EQ(reg.findGauge("test.pool.queue_max_depth")->value(), 3);

    // The depth is a high-water mark; a lower snapshot keeps it.
    obs::recordPoolUtilization(reg, "test.pool", 4, 12, 12, 2);
    EXPECT_EQ(reg.findGauge("test.pool.tasks_submitted")->value(), 12);
    EXPECT_EQ(reg.findGauge("test.pool.queue_max_depth")->value(), 3);
}

// ---------------------------------------------------------------
// Profiling spans
// ---------------------------------------------------------------

TEST(ProfileSpan, InertWithoutConsumers)
{
    obs::ProfileSpan span(nullptr, "noop");
    EXPECT_DOUBLE_EQ(span.elapsedUs(), 0.0);
}

TEST(ProfileSpan, RecordsIntoRegistryAndSink)
{
    obs::MetricsRegistry reg;
    sim::ChromeTraceSink sink;
    {
        obs::ProfileSpan span(&reg, "unit.work", &sink);
        EXPECT_GE(span.elapsedUs(), 0.0);
    }
    ASSERT_NE(reg.findCounter("profile.unit.work.count"), nullptr);
    EXPECT_EQ(reg.findCounter("profile.unit.work.count")->value(), 1u);
    const obs::Histogram *hist =
        reg.findHistogram("profile.unit.work.us");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count(), 1u);
    EXPECT_EQ(sink.spanCount(), 1u);

    // Host spans land in the Chrome trace under their own track.
    std::ostringstream trace;
    sink.writeTo(trace);
    EXPECT_NE(trace.str().find("host profiling"), std::string::npos);
    EXPECT_NE(trace.str().find("unit.work"), std::string::npos);
}

// ---------------------------------------------------------------
// The observability contract
// ---------------------------------------------------------------

/** One GoPIM run on Cora serialized to its JSON result bytes. */
std::string
runBytes(sim::EngineKind kind,
         std::shared_ptr<obs::MetricsRegistry> metrics)
{
    auto workload = gcn::Workload::paperDefault("Cora");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    core::SystemConfig system =
        core::makeSystem(core::SystemKind::GoPim);
    system.sim.engine = kind;
    system.sim.metrics = std::move(metrics);
    core::Accelerator accel(reram::AcceleratorConfig::paperDefault(),
                            system);
    return core::runResultToJson(accel.run(workload, profile)).dump();
}

TEST(ObservabilityContract, MetricsOffIsBitIdenticalBothEngines)
{
    for (auto kind : {sim::EngineKind::ClosedForm,
                      sim::EngineKind::EventDriven}) {
        auto metrics = std::make_shared<obs::MetricsRegistry>();
        const std::string without = runBytes(kind, nullptr);
        const std::string with = runBytes(kind, metrics);
        EXPECT_EQ(without, with)
            << "engine " << sim::toString(kind);

        // The registry genuinely observed the run — the identity is
        // not vacuous.
        ASSERT_NE(metrics->findCounter("sim.schedule.count"), nullptr);
        EXPECT_GE(metrics->findCounter("sim.schedule.count")->value(),
                  1u);
        EXPECT_EQ(metrics->findCounter("core.run.count")->value(), 1u);
        EXPECT_NE(metrics->findHistogram("sim.makespan_ns"), nullptr);
    }
}

TEST(ObservabilityContract, EventEngineRecordsQueueDepthAndEvents)
{
    auto metrics = std::make_shared<obs::MetricsRegistry>();
    runBytes(sim::EngineKind::EventDriven, metrics);
    ASSERT_NE(metrics->findCounter("sim.events_processed"), nullptr);
    EXPECT_GT(metrics->findCounter("sim.events_processed")->value(),
              0u);
    ASSERT_NE(metrics->findGauge("sim.event_queue.max_depth"),
              nullptr);
    EXPECT_GT(metrics->findGauge("sim.event_queue.max_depth")->value(),
              0);
}

/** Grid sweep with a registry attached; returns that registry. */
std::shared_ptr<obs::MetricsRegistry>
gridMetrics(size_t jobs)
{
    auto metrics = std::make_shared<obs::MetricsRegistry>();
    sim::SimContext ctx;
    ctx.metrics = metrics;
    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(), ctx);
    harness.runGrid(core::figure13Systems(), {"ddi", "Cora"}, jobs);
    return metrics;
}

TEST(ObservabilityContract, CountsIdenticalAcrossWorkerCounts)
{
    const auto serial = gridMetrics(1);
    const auto parallel = gridMetrics(4);

    // Counters are commutative sums: the whole section matches.
    EXPECT_EQ(serial->toJson().find("counters")->dump(),
              parallel->toJson().find("counters")->dump());

    // Histogram bucket counts match too (sums are doubles whose
    // accumulation order may differ, so only the counts are pinned).
    for (const char *name :
         {"sim.makespan_ns", "sim.stage.busy_ns",
          "sim.stage.idle_fraction", "alloc.replicas_per_stage"}) {
        const obs::Histogram *a = serial->findHistogram(name);
        const obs::Histogram *b = parallel->findHistogram(name);
        ASSERT_NE(a, nullptr) << name;
        ASSERT_NE(b, nullptr) << name;
        EXPECT_EQ(a->count(), b->count()) << name;
        EXPECT_EQ(a->bucketCounts(), b->bucketCounts()) << name;
    }

    // And the harness recorded its own span + pool utilization.
    EXPECT_EQ(serial->findCounter("harness.grid.count")->value(), 1u);
    EXPECT_NE(parallel->findGauge("harness.pool.threads"), nullptr);
}

} // namespace
} // namespace gopim
