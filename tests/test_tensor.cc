/**
 * @file
 * Unit tests for the tensor substrate: matrix storage, linear algebra
 * kernels, activations, and the softmax cross-entropy loss/gradient.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "tensor/init.hh"
#include "tensor/matrix.hh"
#include "tensor/ops.hh"

namespace gopim::tensor {
namespace {

TEST(Matrix, ConstructionAndAccess)
{
    Matrix m(2, 3, 1.5f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
    m(0, 1) = 2.0f;
    EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
}

TEST(Matrix, FromRowsAndTranspose)
{
    const Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_FLOAT_EQ(t(0, 1), 4.0f);
    EXPECT_FLOAT_EQ(t(2, 0), 3.0f);
    EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix a = Matrix::fromRows({{1, 2}});
    Matrix b = Matrix::fromRows({{1.5, 2}});
    EXPECT_FLOAT_EQ(a.maxAbsDiff(b), 0.5f);
    EXPECT_FLOAT_EQ(a.maxAbsDiff(a), 0.0f);
}

TEST(Ops, MatmulKnownResult)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    const Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Ops, TransposedMatmulsAgreeWithExplicitTranspose)
{
    Rng rng(5);
    const Matrix a = uniformInit(4, 3, -1.0f, 1.0f, rng);
    const Matrix b = uniformInit(4, 5, -1.0f, 1.0f, rng);
    const Matrix viaHelper = matmulTransA(a, b);
    const Matrix viaExplicit = matmul(a.transposed(), b);
    EXPECT_LT(viaHelper.maxAbsDiff(viaExplicit), 1e-5f);

    const Matrix c = uniformInit(6, 5, -1.0f, 1.0f, rng);
    const Matrix viaHelperB = matmulTransB(b, c);
    const Matrix viaExplicitB = matmul(b, c.transposed());
    EXPECT_LT(viaHelperB.maxAbsDiff(viaExplicitB), 1e-5f);
}

TEST(Ops, MvmMatchesMatmul)
{
    Rng rng(7);
    const Matrix a = uniformInit(3, 4, -2.0f, 2.0f, rng);
    const std::vector<float> x = {1.0f, -1.0f, 0.5f, 2.0f};
    const auto y = mvm(a, x);
    Matrix xm(4, 1);
    for (size_t i = 0; i < 4; ++i)
        xm(i, 0) = x[i];
    const Matrix ref = matmul(a, xm);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(y[i], ref(i, 0), 1e-5f);
}

TEST(Ops, AddSubScale)
{
    const Matrix a = Matrix::fromRows({{1, 2}});
    const Matrix b = Matrix::fromRows({{3, 5}});
    EXPECT_EQ(add(a, b), Matrix::fromRows({{4, 7}}));
    EXPECT_EQ(sub(b, a), Matrix::fromRows({{2, 3}}));
    Matrix c = a;
    scale(c, 2.0f);
    EXPECT_EQ(c, Matrix::fromRows({{2, 4}}));
    addScaled(c, b, -1.0f);
    EXPECT_EQ(c, Matrix::fromRows({{-1, -1}}));
}

TEST(Ops, AddRowBias)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    addRowBias(a, {10.0f, 20.0f});
    EXPECT_EQ(a, Matrix::fromRows({{11, 22}, {13, 24}}));
}

TEST(Ops, ReluAndBackward)
{
    const Matrix x = Matrix::fromRows({{-1, 0, 2}});
    const Matrix y = relu(x);
    EXPECT_EQ(y, Matrix::fromRows({{0, 0, 2}}));

    const Matrix grad = Matrix::fromRows({{5, 5, 5}});
    const Matrix gx = reluBackward(grad, x);
    EXPECT_EQ(gx, Matrix::fromRows({{0, 0, 5}}));
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(9);
    const Matrix logits = uniformInit(5, 7, -3.0f, 3.0f, rng);
    const Matrix p = softmaxRows(logits);
    for (size_t r = 0; r < p.rows(); ++r) {
        float sum = 0.0f;
        for (size_t c = 0; c < p.cols(); ++c) {
            EXPECT_GT(p(r, c), 0.0f);
            sum += p(r, c);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Ops, SoftmaxNumericallyStableWithLargeLogits)
{
    const Matrix logits = Matrix::fromRows({{1000.0f, 1001.0f}});
    const Matrix p = softmaxRows(logits);
    EXPECT_FALSE(std::isnan(p(0, 0)));
    EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0f, 1e-5f);
    EXPECT_GT(p(0, 1), p(0, 0));
}

TEST(Ops, CrossEntropyPerfectPredictionNearZero)
{
    Matrix logits = Matrix::fromRows({{20.0f, 0.0f}, {0.0f, 20.0f}});
    const std::vector<int> labels = {0, 1};
    const float loss =
        softmaxCrossEntropy(logits, labels, {0, 1}, nullptr);
    EXPECT_LT(loss, 1e-4f);
}

TEST(Ops, CrossEntropyUniformIsLogC)
{
    Matrix logits(1, 4, 0.0f);
    const std::vector<int> labels = {2};
    const float loss =
        softmaxCrossEntropy(logits, labels, {0}, nullptr);
    EXPECT_NEAR(loss, std::log(4.0f), 1e-5f);
}

TEST(Ops, CrossEntropyGradientMatchesFiniteDifference)
{
    Rng rng(13);
    Matrix logits = uniformInit(3, 4, -1.0f, 1.0f, rng);
    const std::vector<int> labels = {1, 3, 0};
    const std::vector<uint32_t> rows = {0, 1, 2};

    Matrix grad;
    softmaxCrossEntropy(logits, labels, rows, &grad);

    const float eps = 1e-3f;
    for (size_t r = 0; r < logits.rows(); ++r) {
        for (size_t c = 0; c < logits.cols(); ++c) {
            Matrix plus = logits, minus = logits;
            plus(r, c) += eps;
            minus(r, c) -= eps;
            const float lp =
                softmaxCrossEntropy(plus, labels, rows, nullptr);
            const float lm =
                softmaxCrossEntropy(minus, labels, rows, nullptr);
            const float numeric = (lp - lm) / (2 * eps);
            EXPECT_NEAR(grad(r, c), numeric, 2e-3f)
                << "at (" << r << "," << c << ")";
        }
    }
}

TEST(Ops, CrossEntropyGradientZeroOutsideMask)
{
    Matrix logits = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix grad;
    softmaxCrossEntropy(logits, {0, 1}, {0}, &grad);
    EXPECT_FLOAT_EQ(grad(1, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad(1, 1), 0.0f);
}

TEST(Ops, AccuracyCountsArgmaxHits)
{
    const Matrix logits =
        Matrix::fromRows({{0.9f, 0.1f}, {0.2f, 0.8f}, {0.6f, 0.4f}});
    const std::vector<int> labels = {0, 1, 1};
    EXPECT_DOUBLE_EQ(accuracy(logits, labels, {0, 1, 2}), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(accuracy(logits, labels, {0, 1}), 1.0);
}

TEST(Ops, FrobeniusNorm)
{
    const Matrix m = Matrix::fromRows({{3, 4}});
    EXPECT_NEAR(frobeniusNorm(m), 5.0f, 1e-6f);
}

TEST(Init, XavierBoundsRespected)
{
    Rng rng(17);
    const size_t in = 50, out = 70;
    const Matrix w = xavierUniform(in, out, rng);
    const float bound = std::sqrt(6.0f / (in + out));
    for (size_t i = 0; i < w.size(); ++i) {
        EXPECT_GE(w.data()[i], -bound);
        EXPECT_LE(w.data()[i], bound);
    }
}

TEST(Init, HeNormalVariance)
{
    Rng rng(19);
    const Matrix w = heNormal(200, 200, rng);
    double sumSq = 0.0;
    for (size_t i = 0; i < w.size(); ++i)
        sumSq += static_cast<double>(w.data()[i]) * w.data()[i];
    const double variance = sumSq / static_cast<double>(w.size());
    EXPECT_NEAR(variance, 2.0 / 200.0, 2e-3);
}

} // namespace
} // namespace gopim::tensor
