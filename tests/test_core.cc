/**
 * @file
 * Unit tests for the core accelerator: system presets, run mechanics,
 * resource-budget fairness, and the qualitative orderings the paper's
 * evaluation depends on (GoPIM fastest, Serial slowest, ISU helping,
 * ReFlip struggling on dense graphs).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/plan_cache.hh"
#include "core/report.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "predictor/predictor.hh"
#include "sim/context.hh"

namespace gopim::core {
namespace {

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : harness_()
    {
        workload_ = gcn::Workload::paperDefault("ddi");
        profile_ =
            gcn::VertexProfile::build(workload_.dataset, workload_.seed);
    }

    RunResult
    runSystem(SystemKind kind)
    {
        Accelerator accel(harness_.hardware(), makeSystem(kind));
        return accel.run(workload_, profile_);
    }

    ComparisonHarness harness_;
    gcn::Workload workload_;
    gcn::VertexProfile profile_;
};

TEST(Systems, NamesMatchPaper)
{
    EXPECT_EQ(toString(SystemKind::Serial), "Serial");
    EXPECT_EQ(toString(SystemKind::SlimGnnLike), "SlimGNN-like");
    EXPECT_EQ(toString(SystemKind::ReGraphX), "ReGraphX");
    EXPECT_EQ(toString(SystemKind::ReFlip), "ReFlip");
    EXPECT_EQ(toString(SystemKind::GoPimVanilla), "GoPIM-Vanilla");
    EXPECT_EQ(toString(SystemKind::GoPim), "GoPIM");
}

TEST(Systems, PresetKnobs)
{
    const auto serial = makeSystem(SystemKind::Serial);
    EXPECT_EQ(serial.pipelineMode, PipelineMode::Serial);
    EXPECT_EQ(serial.allocator, nullptr);

    const auto gopim = makeSystem(SystemKind::GoPim);
    EXPECT_EQ(gopim.pipelineMode, PipelineMode::IntraInterBatch);
    EXPECT_NE(gopim.allocator, nullptr);
    EXPECT_TRUE(gopim.policy.selectiveUpdate);
    EXPECT_EQ(gopim.policy.mapStrategy,
              mapping::VertexMapStrategy::Interleaved);

    const auto vanilla = makeSystem(SystemKind::GoPimVanilla);
    EXPECT_FALSE(vanilla.policy.selectiveUpdate);
    EXPECT_EQ(vanilla.policy.mapStrategy,
              mapping::VertexMapStrategy::IndexBased);

    const auto reflip = makeSystem(SystemKind::ReFlip);
    EXPECT_TRUE(reflip.policy.hybridReload);

    EXPECT_EQ(figure13Systems().size(), 6u);
    EXPECT_EQ(figure14Systems().size(), 4u);
}

TEST_F(CoreTest, RunProducesConsistentResult)
{
    const auto result = runSystem(SystemKind::GoPim);
    EXPECT_EQ(result.systemName, "GoPIM");
    EXPECT_EQ(result.datasetName, "ddi");
    EXPECT_GT(result.makespanNs, 0.0);
    EXPECT_GT(result.energyPj, 0.0);
    ASSERT_EQ(result.stages.size(), 8u); // 2-layer model
    ASSERT_EQ(result.replicas.size(), 8u);
    ASSERT_EQ(result.stageCrossbars.size(), 8u);

    uint64_t total = 0;
    for (size_t i = 0; i < result.stageCrossbars.size(); ++i) {
        EXPECT_GE(result.replicas[i], 1u);
        total += result.stageCrossbars[i];
    }
    EXPECT_EQ(total, result.totalCrossbars);
    // Fairness: within the shared 16 GB crossbar budget.
    EXPECT_LE(result.totalCrossbars,
              harness_.hardware().totalCrossbars());
}

TEST_F(CoreTest, DeterministicAcrossRuns)
{
    const auto a = runSystem(SystemKind::GoPim);
    const auto b = runSystem(SystemKind::GoPim);
    EXPECT_DOUBLE_EQ(a.makespanNs, b.makespanNs);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
    EXPECT_EQ(a.replicas, b.replicas);
}

TEST_F(CoreTest, PaperOrderingOnDenseGraph)
{
    const auto serial = runSystem(SystemKind::Serial);
    const auto slim = runSystem(SystemKind::SlimGnnLike);
    const auto regraphx = runSystem(SystemKind::ReGraphX);
    const auto reflip = runSystem(SystemKind::ReFlip);
    const auto vanilla = runSystem(SystemKind::GoPimVanilla);
    const auto gopim = runSystem(SystemKind::GoPim);

    // GoPIM fastest, Serial slowest (Fig. 13a).
    EXPECT_LT(gopim.makespanNs, vanilla.makespanNs);
    EXPECT_LT(vanilla.makespanNs, slim.makespanNs);
    EXPECT_LT(slim.makespanNs, serial.makespanNs);
    EXPECT_LT(regraphx.makespanNs, serial.makespanNs);
    EXPECT_LT(gopim.makespanNs, reflip.makespanNs);

    // ReFlip suffers on the densest graph (ddi): the paper reports
    // GoPIM up to 191x over it.
    const double overReflip = reflip.makespanNs / gopim.makespanNs;
    EXPECT_GT(overReflip, 20.0);

    // Headline: hundreds-fold over Serial on ddi.
    const double overSerial = serial.makespanNs / gopim.makespanNs;
    EXPECT_GT(overSerial, 100.0);

    // Energy: GoPIM saves the most (Fig. 13b).
    EXPECT_LT(gopim.energyPj, serial.energyPj);
    EXPECT_LT(gopim.energyPj, reflip.energyPj);
}

TEST_F(CoreTest, AblationLadderMonotone)
{
    const auto serial = runSystem(SystemKind::Serial);
    const auto pp = runSystem(SystemKind::PlusPP);
    const auto isu = runSystem(SystemKind::PlusISU);
    const auto gopim = runSystem(SystemKind::GoPim);

    // Fig. 14: each technique helps.
    EXPECT_LT(pp.makespanNs, serial.makespanNs);
    EXPECT_LE(isu.makespanNs, pp.makespanNs);
    EXPECT_LT(gopim.makespanNs, isu.makespanNs);
}

TEST_F(CoreTest, IdleTimeDropsWithGoPim)
{
    const auto naive = runSystem(SystemKind::Naive);
    const auto gopim = runSystem(SystemKind::GoPim);
    // Fig. 15: replica allocation balances stage times, slashing idle.
    EXPECT_LT(gopim.avgIdleFraction, naive.avgIdleFraction * 0.7);
}

TEST_F(CoreTest, EstimateDrivenAllocationCloseToExact)
{
    Accelerator accel(harness_.hardware(),
                      makeSystem(SystemKind::GoPim));
    const auto exact = accel.run(workload_, profile_);

    // Single-replica stage-time estimates off by +/-10% must produce
    // near-identical performance (Table VII's ML-vs-profiling gap is
    // at most 4.3%). The exact single-replica times come from the
    // profiling predictor (the simulator itself).
    gcn::StageTimeModel model(harness_.hardware());
    predictor::ProfilingPredictor profiling(model);
    auto noisy = profiling.predictAllStageTimesNs(workload_);
    for (size_t i = 0; i < noisy.size(); ++i)
        noisy[i] *= (i % 2 ? 1.1 : 0.9);
    const auto est =
        accel.runWithEstimates(workload_, profile_, noisy);
    EXPECT_LT(est.makespanNs, exact.makespanNs * 1.2);
    EXPECT_GT(est.makespanNs, exact.makespanNs * 0.8);
}

TEST_F(CoreTest, SerialHasNoIdleTime)
{
    const auto serial = runSystem(SystemKind::Serial);
    // In a serial schedule each stage's crossbars idle while all
    // other stages run: idle fraction is high by construction.
    EXPECT_GT(serial.avgIdleFraction, 0.5);
}

TEST(Harness, GridAndTables)
{
    ComparisonHarness harness;
    const auto rows = harness.runGrid(
        {SystemKind::Serial, SystemKind::GoPim}, {"ddi", "Cora"});
    ASSERT_EQ(rows.size(), 2u);
    ASSERT_EQ(rows[0].results.size(), 2u);
    EXPECT_EQ(rows[0].datasetName, "ddi");
    EXPECT_EQ(rows[1].results[1].systemName, "GoPIM");

    const auto speedups = harness.speedupTable("t", rows);
    EXPECT_EQ(speedups.rows(), 2u);
    EXPECT_EQ(speedups.cols(), 3u);
    const auto energy = harness.energyTable("e", rows);
    EXPECT_EQ(energy.rows(), 2u);
}

TEST(Harness, MemoizedGridIsByteIdenticalToUncached)
{
    // The memoized path (plan cache + dataset cache + replay lower
    // cache, on by default) must be invisible in the results: the
    // serialized grid — the exact bytes --json-out writes — has to
    // match the uncached path, across engines and seeds.
    const auto systems = figure13Systems();
    const std::vector<std::string> datasets = {"ddi", "Cora"};

    for (const auto kind :
         {sim::EngineKind::ClosedForm, sim::EngineKind::EventDriven,
          sim::EngineKind::Replay}) {
        sim::SimContext ctx;
        ctx.engine = kind;
        ctx.seed = 11;

        ComparisonHarness memoized(
            reram::AcceleratorConfig::paperDefault(), ctx);
        ASSERT_TRUE(memoized.memoize());
        ComparisonHarness uncached(
            reram::AcceleratorConfig::paperDefault(), ctx);
        uncached.setMemoize(false);

        // Two sweeps on the memoized harness: the second hits the
        // caches (same prefix, sim context unchanged) and must still
        // match the always-cold harness byte for byte.
        const auto warmup = memoized.runGrid(systems, datasets, 2);
        const auto hot = memoized.runGrid(systems, datasets, 2);
        const auto cold = uncached.runGrid(systems, datasets, 2);
        EXPECT_GT(memoized.planCache().hits(), 0u);

        std::ostringstream hotJson, coldJson, warmupJson;
        writeGridJson(hot, hotJson);
        writeGridJson(cold, coldJson);
        writeGridJson(warmup, warmupJson);
        EXPECT_EQ(hotJson.str(), coldJson.str())
            << "engine " << sim::toString(kind);
        EXPECT_EQ(warmupJson.str(), coldJson.str())
            << "engine " << sim::toString(kind);

        // A seed change reuses the plans (the prefix excludes the
        // sim context) and still matches a cold run bit for bit.
        ctx.seed = 99;
        memoized.setSimContext(ctx);
        uncached.setSimContext(ctx);
        const auto hotReseeded = memoized.runGrid(systems, datasets, 2);
        const auto coldReseeded =
            uncached.runGrid(systems, datasets, 2);
        std::ostringstream hotJson2, coldJson2;
        writeGridJson(hotReseeded, hotJson2);
        writeGridJson(coldReseeded, coldJson2);
        EXPECT_EQ(hotJson2.str(), coldJson2.str())
            << "engine " << sim::toString(kind) << " reseeded";
    }
}

TEST(PlanCache, FingerprintCollisionsCannotAliasPlans)
{
    // Cache poisoning: two different configurations whose prefix
    // fingerprints collide (forced here by inserting under the same
    // fingerprint) must keep separate state — the full prefix key
    // is compared inside the bucket, so a lookup can only ever
    // return the plan inserted under its own key.
    PlanCache cache;
    StagePlan a;
    a.totalMicroBatches = 111;
    a.stageTimesNs = {1.0, 2.0};
    StagePlan b;
    b.totalMicroBatches = 222;
    b.stageTimesNs = {9.0};

    const uint64_t fp = 0xdeadbeefcafef00dull;
    cache.insert(fp, "config-a", a);
    cache.insert(fp, "config-b", b);
    EXPECT_EQ(cache.size(), 2u);

    const StagePlan *gotA = cache.find(fp, "config-a");
    const StagePlan *gotB = cache.find(fp, "config-b");
    ASSERT_NE(gotA, nullptr);
    ASSERT_NE(gotB, nullptr);
    EXPECT_NE(gotA, gotB);
    EXPECT_EQ(gotA->totalMicroBatches, 111u);
    EXPECT_EQ(gotB->totalMicroBatches, 222u);
    EXPECT_EQ(gotB->stageTimesNs, (std::vector<double>{9.0}));

    // A third key in the same bucket misses rather than aliasing.
    EXPECT_EQ(cache.find(fp, "config-c"), nullptr);

    // Re-inserting an existing key keeps the first entry (planning
    // is deterministic; racing builders produce identical plans).
    StagePlan aAgain;
    aAgain.totalMicroBatches = 333;
    EXPECT_EQ(cache.insert(fp, "config-a", aAgain), gotA);
    EXPECT_EQ(cache.find(fp, "config-a")->totalMicroBatches, 111u);
}

TEST(Harness, PlanSplitMatchesMonolithicRun)
{
    // buildPlan + executePlan is the same computation run(w, p)
    // performs; the split exists so the memoized path can cache the
    // first half. Pin the equivalence directly.
    ComparisonHarness harness;
    const auto workload = gcn::Workload::paperDefault("ddi");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    Accelerator accel(harness.hardware(),
                      makeSystem(SystemKind::GoPim));
    const RunResult whole = accel.run(workload, profile);
    const StagePlan plan = accel.buildPlan(workload, profile);
    const RunResult split = accel.executePlan(plan, workload);
    EXPECT_EQ(whole.makespanNs, split.makespanNs);
    EXPECT_EQ(whole.energyPj, split.energyPj);
    EXPECT_EQ(whole.replicas, split.replicas);
    EXPECT_EQ(whole.stageTimesNs, split.stageTimesNs);
    EXPECT_EQ(whole.idleFraction, split.idleFraction);
    EXPECT_EQ(whole.totalRowWrites, split.totalRowWrites);
    // Executing one plan twice is deterministic too.
    const RunResult again = accel.executePlan(plan, workload);
    EXPECT_EQ(split.makespanNs, again.makespanNs);
    EXPECT_EQ(split.energyPj, again.energyPj);
}

TEST(Harness, SparseGraphStillWins)
{
    // Section VII-F: on Cora, GoPIM's gains shrink but persist.
    ComparisonHarness harness;
    const auto workload = gcn::Workload::paperDefault("Cora");
    const auto serial =
        harness.runOne(SystemKind::Serial, workload);
    const auto gopim = harness.runOne(SystemKind::GoPim, workload);
    EXPECT_LT(gopim.makespanNs, serial.makespanNs);
    EXPECT_LT(gopim.energyPj, serial.energyPj);
}

} // namespace
} // namespace gopim::core
