/**
 * @file
 * Property-based tests: parameterized sweeps asserting invariants of
 * the core algorithms over randomized inputs — schedule laws, tiling
 * arithmetic, mapping balance, allocator dominance, and energy
 * monotonicity.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "alloc/basic.hh"
#include "alloc/greedy_heap.hh"
#include "common/rng.hh"
#include "graph/generators.hh"
#include "mapping/selective.hh"
#include "mapping/tiling.hh"
#include "mapping/vertex_map.hh"
#include "pipeline/schedule.hh"
#include "reram/energy.hh"

namespace gopim {
namespace {

// ---------------------------------------------------------------- //
// Schedule laws over random stage-time vectors.

class ScheduleLaws : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ScheduleLaws, ClosedFormAndBounds)
{
    Rng rng(GetParam());
    const size_t stages = 2 + rng.uniformInt(uint64_t{10});
    const uint32_t b =
        1 + static_cast<uint32_t>(rng.uniformInt(uint64_t{60}));
    std::vector<double> times(stages);
    double sum = 0.0, maxT = 0.0;
    for (auto &t : times) {
        t = rng.uniform(0.0, 100.0);
        sum += t;
        maxT = std::max(maxT, t);
    }
    if (sum == 0.0)
        times[0] = sum = maxT = 1.0;

    const auto pipe = pipeline::schedulePipelined(times, b);
    const auto serial = pipeline::scheduleSerial(times, b);

    // Law 1: recurrence equals the Eq. 6 closed form.
    EXPECT_NEAR(pipe.makespanNs,
                pipeline::pipelinedMakespanNs(times, b),
                1e-9 * pipe.makespanNs + 1e-12);
    // Law 2: pipelining never loses to serial, never beats bounds.
    EXPECT_LE(pipe.makespanNs, serial.makespanNs + 1e-9);
    EXPECT_GE(pipe.makespanNs, maxT * b - 1e-9);
    EXPECT_GE(pipe.makespanNs, sum - 1e-9);
    // Law 3: serial is exactly B times the stage sum.
    EXPECT_NEAR(serial.makespanNs, sum * b, 1e-6);
    // Law 4: idle fractions are well-formed and the bottleneck stage
    // has the minimum idle fraction.
    const size_t bottleneck = static_cast<size_t>(
        std::max_element(times.begin(), times.end()) - times.begin());
    for (size_t i = 0; i < stages; ++i) {
        EXPECT_GE(pipe.idleFraction[i], 0.0);
        EXPECT_LE(pipe.idleFraction[i], 1.0);
        EXPECT_GE(pipe.idleFraction[i],
                  pipe.idleFraction[bottleneck] - 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ScheduleLaws,
                         ::testing::Range<uint64_t>(1, 25));

// ---------------------------------------------------------------- //
// Tiling arithmetic over random matrix shapes.

class TilingLaws : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TilingLaws, FootprintInvariants)
{
    Rng rng(GetParam() * 131);
    const auto cfg = reram::AcceleratorConfig::paperDefault();
    const uint64_t rows = 1 + rng.uniformInt(uint64_t{100000});
    const uint64_t cols = 1 + rng.uniformInt(uint64_t{4096});
    const auto fp = mapping::tileMatrix(rows, cols, cfg);

    // Enough crossbars for the cells, never more than the bounding
    // tile grid.
    const uint64_t cells =
        rows * cols * cfg.crossbar.slicesPerValue();
    EXPECT_GE(fp.crossbars * cfg.crossbar.cells(), cells);
    EXPECT_LE(fp.crossbars, fp.rowGroups * fp.colSegments);
    // One extra row can only grow the footprint.
    EXPECT_LE(fp.crossbars,
              mapping::crossbarsPerReplica(rows + 1, cols, cfg));
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, TilingLaws,
                         ::testing::Range<uint64_t>(1, 20));

// ---------------------------------------------------------------- //
// Mapping balance over random degree distributions.

class MappingLaws : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MappingLaws, InterleavingNeverWorsensBalance)
{
    Rng rng(GetParam() * 977);
    const uint64_t n = 256 + rng.uniformInt(uint64_t{5000});
    const double avgDeg = rng.uniform(2.0, 200.0);
    auto degrees = graph::powerLawDegreeSequence(
        n, avgDeg, 2.1, static_cast<uint32_t>(n / 2), rng);
    // Index correlation, as in real datasets.
    std::sort(degrees.begin(), degrees.end(), std::greater<>());

    const auto index = mapping::mapVertices(
        degrees, 64, mapping::VertexMapStrategy::IndexBased);
    const auto inter = mapping::mapVertices(
        degrees, 64, mapping::VertexMapStrategy::Interleaved);

    const auto skewIndex = mapping::minMax(
        mapping::perGroupAvgDegree(index, degrees)).skew();
    const auto skewInter = mapping::minMax(
        mapping::perGroupAvgDegree(inter, degrees)).skew();
    EXPECT_LE(skewInter, skewIndex + 1e-9);

    // Selective updating: ISU's update bound never exceeds OSU's.
    const auto important = mapping::selectImportant(degrees, 0.5);
    const mapping::SelectiveUpdateParams params{.theta = 0.5,
                                                .coldPeriod = 20};
    EXPECT_LE(mapping::epochUpdateSlots(inter, important, params),
              mapping::epochUpdateSlots(index, important, params) +
                  1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MappingLaws,
                         ::testing::Range<uint64_t>(1, 15));

// ---------------------------------------------------------------- //
// Allocator dominance over random problems.

class AllocatorLaws : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AllocatorLaws, GreedyDominatesNaivePolicies)
{
    Rng rng(GetParam() * 389);
    alloc::AllocationProblem p;
    const size_t n = 2 + rng.uniformInt(uint64_t{10});
    for (size_t i = 0; i < n; ++i) {
        p.stages.push_back(
            {static_cast<pipeline::StageType>(
                 rng.uniformInt(uint64_t{4})),
             static_cast<uint32_t>(i / 4 + 1)});
        p.scalableTimesNs.push_back(rng.uniform(0.1, 1000.0));
        p.fixedTimesNs.push_back(rng.uniform(0.0, 10.0));
        p.crossbarsPerReplica.push_back(
            1 + rng.uniformInt(uint64_t{100}));
    }
    p.spareCrossbars = rng.uniformInt(uint64_t{5000});
    p.numMicroBatches =
        1 + static_cast<uint32_t>(rng.uniformInt(uint64_t{100}));
    p.maxUsefulReplicas = 256;

    const double greedy = alloc::makespanNs(
        p, alloc::GreedyHeapAllocator(0, 0.0).allocate(p).replicas);
    for (const auto &result :
         {alloc::SerialAllocator().allocate(p),
          alloc::FixedRatioAllocator().allocate(p),
          alloc::SpaceProportionalAllocator().allocate(p),
          alloc::CombinationOnlyAllocator().allocate(p)}) {
        EXPECT_LE(greedy,
                  alloc::makespanNs(p, result.replicas) + 1e-9);
        // Budget respected by everyone.
        uint64_t used = 0;
        for (size_t i = 0; i < n; ++i)
            used += static_cast<uint64_t>(result.replicas[i] - 1) *
                    p.crossbarsPerReplica[i];
        EXPECT_LE(used, p.spareCrossbars);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, AllocatorLaws,
                         ::testing::Range<uint64_t>(1, 30));

// ---------------------------------------------------------------- //
// Energy monotonicity.

class EnergyLaws : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EnergyLaws, MonotoneInEveryArgument)
{
    Rng rng(GetParam() * 71);
    const reram::EnergyModel energy(
        reram::AcceleratorConfig::paperDefault());
    const double makespan = rng.uniform(1.0, 1e9);
    const auto acts = rng.uniformInt(uint64_t{1000000});
    const auto writes = rng.uniformInt(uint64_t{1000000});
    const auto bytes = rng.uniformInt(uint64_t{1000000});
    const double idle = rng.uniform(0.0, 1e12);

    const double base =
        energy.totalEnergyPj(makespan, acts, writes, bytes, idle);
    EXPECT_GT(base, 0.0);
    EXPECT_GE(energy.totalEnergyPj(makespan * 2, acts, writes, bytes,
                                   idle),
              base);
    EXPECT_GE(energy.totalEnergyPj(makespan, acts + 1, writes, bytes,
                                   idle),
              base);
    EXPECT_GE(energy.totalEnergyPj(makespan, acts, writes + 1, bytes,
                                   idle),
              base);
    EXPECT_GE(energy.totalEnergyPj(makespan, acts, writes, bytes + 1,
                                   idle),
              base);
    EXPECT_GE(energy.totalEnergyPj(makespan, acts, writes, bytes,
                                   idle * 2 + 1.0),
              base);
}

INSTANTIATE_TEST_SUITE_P(RandomPoints, EnergyLaws,
                         ::testing::Range<uint64_t>(1, 15));

} // namespace
} // namespace gopim
