/**
 * @file
 * gopim_lint test suite: unit tests for the tokenizer, the TOML
 * subset reader, and the rule passes, plus end-to-end fixture trees
 * driven through the real binary (exit codes + `file:line: rule`
 * diagnostic format), including the allow(...) escape hatch.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.hh"
#include "lint/rules.hh"
#include "lint/tokenizer.hh"
#include "lint/toml.hh"

namespace fs = std::filesystem;
using namespace gopim::lint;

namespace {

/** Minimal but complete config: two modules, a is above b. */
const char *kBasicToml = R"(
[layers]
a = ["b"]
b = []

[constraints]
no_incoming = ["a"]

[determinism]
rng_helpers = ["b/rng.cc"]
clock_modules = []
output_modules = ["a"]

[hygiene]
guard_prefix = "GOPIM_"
)";

/** A header that passes every hygiene rule for path b/good.hh. */
const char *kGoodHeader = R"(#ifndef GOPIM_B_GOOD_HH
#define GOPIM_B_GOOD_HH
namespace b {
int good();
}
#endif // GOPIM_B_GOOD_HH
)";

class FixtureTree
{
  public:
    explicit FixtureTree(const std::string &name)
        : root_(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(root_);
        fs::create_directories(root_);
    }

    ~FixtureTree() { fs::remove_all(root_); }

    void
    write(const std::string &relPath, const std::string &content)
    {
        const fs::path full = root_ / relPath;
        fs::create_directories(full.parent_path());
        std::ofstream out(full);
        out << content;
    }

    std::string
    path(const std::string &relPath = "") const
    {
        return (root_ / relPath).string();
    }

  private:
    fs::path root_;
};

struct BinaryResult
{
    int exitCode = -1;
    std::string output;
};

/** Run the real gopim_lint binary; capture stdout+stderr. */
BinaryResult
runBinary(const std::string &args)
{
    const std::string cmd =
        std::string(GOPIM_LINT_BIN) + " " + args + " 2>&1";
    BinaryResult result;
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
    if (!pipe)
        return result;
    char buffer[512];
    while (fgets(buffer, sizeof(buffer), pipe))
        result.output += buffer;
    const int status = pclose(pipe);
    result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

/** Run the linter in-process over a fixture tree. */
std::vector<Diagnostic>
lintTree(const FixtureTree &tree, const std::string &toml)
{
    TomlDoc doc;
    std::string error;
    EXPECT_TRUE(TomlDoc::parse(toml, &doc, &error)) << error;
    Config config;
    EXPECT_TRUE(Config::load(doc, &config, &error)) << error;
    Linter linter(std::move(config));

    std::vector<std::string> files;
    for (const auto &entry :
         fs::recursive_directory_iterator(tree.path())) {
        if (entry.is_regular_file())
            files.push_back(entry.path()
                                .lexically_relative(tree.path())
                                .generic_string());
    }
    std::sort(files.begin(), files.end());
    for (const std::string &rel : files) {
        std::ifstream in(tree.path(rel));
        std::string source((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
        linter.checkFile(rel, rel, source);
    }
    // The concurrency family reports from the cross-file phase.
    linter.finish();
    return linter.diagnostics();
}

bool
hasRule(const std::vector<Diagnostic> &diagnostics,
        const std::string &rule)
{
    for (const Diagnostic &d : diagnostics) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------
// Tokenizer

TEST(Tokenizer, ClassifiesBasicCategories)
{
    const auto tokens = tokenize("int x = 42; // note\n");
    ASSERT_GE(tokens.size(), 6u);
    EXPECT_EQ(tokens[0].kind, TokKind::Identifier);
    EXPECT_EQ(tokens[0].text, "int");
    EXPECT_EQ(tokens[2].kind, TokKind::Punct);
    EXPECT_EQ(tokens[3].kind, TokKind::Number);
    EXPECT_EQ(tokens[3].text, "42");
    EXPECT_EQ(tokens.back().kind, TokKind::Comment);
    EXPECT_EQ(tokens.back().text, " note");
}

TEST(Tokenizer, BannedNameInsideStringOrCommentIsNotAnIdentifier)
{
    const auto tokens = tokenize(
        "const char *s = \"rand() time()\"; /* srand() */\n");
    for (const Token &token : tokens) {
        if (token.kind != TokKind::Identifier)
            continue;
        EXPECT_NE(token.text, "rand") << "leaked out of a literal";
        EXPECT_NE(token.text, "time") << "leaked out of a literal";
        EXPECT_NE(token.text, "srand") << "leaked out of a comment";
    }
}

TEST(Tokenizer, RawStringsSwallowQuotesAndParens)
{
    const auto tokens =
        tokenize("auto s = R\"(rand() \" unbalanced)\"; int after;");
    bool sawAfter = false;
    for (const Token &token : tokens) {
        if (token.kind == TokKind::Identifier &&
            token.text == "after")
            sawAfter = true;
        EXPECT_NE(token.text, "rand");
    }
    EXPECT_TRUE(sawAfter);
}

TEST(Tokenizer, DirectiveSpansContinuationLines)
{
    const auto tokens =
        tokenize("#define FOO(a) \\\n    ((a) + 1)\nint x;\n");
    ASSERT_EQ(tokens[0].kind, TokKind::Directive);
    EXPECT_NE(tokens[0].text.find("FOO"), std::string::npos);
    EXPECT_NE(tokens[0].text.find("+ 1"), std::string::npos);
    // The identifier after the directive is on line 3.
    EXPECT_EQ(tokens[1].text, "int");
    EXPECT_EQ(tokens[1].line, 3);
}

TEST(Tokenizer, TracksLineNumbers)
{
    const auto tokens = tokenize("int a;\n\nint b;\n");
    ASSERT_GE(tokens.size(), 6u);
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[3].line, 3);
}

// ---------------------------------------------------------------
// TOML reader

TEST(Toml, ParsesSectionsStringsAndArrays)
{
    TomlDoc doc;
    std::string error;
    ASSERT_TRUE(TomlDoc::parse(
        "# comment\n[layers]\ncommon = []\n"
        "gcn = [\"common\", # inline comment\n  \"graph\"]\n"
        "[hygiene]\nguard_prefix = \"GOPIM_\"\n",
        &doc, &error))
        << error;
    ASSERT_NE(doc.find("layers", "gcn"), nullptr);
    EXPECT_EQ(*doc.find("layers", "gcn"),
              (std::vector<std::string>{"common", "graph"}));
    EXPECT_TRUE(doc.find("layers", "common")->empty());
    EXPECT_EQ(doc.find("hygiene", "guard_prefix")->front(),
              "GOPIM_");
}

TEST(Toml, RejectsMalformedInput)
{
    TomlDoc doc;
    std::string error;
    EXPECT_FALSE(TomlDoc::parse("[layers\n", &doc, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos);
    error.clear();
    TomlDoc doc2;
    EXPECT_FALSE(
        TomlDoc::parse("[a]\nkey = \"unterminated\n", &doc2, &error));
}

// ---------------------------------------------------------------
// Rule passes (in-process)

TEST(Layering, UndeclaredEdgeIsFlagged)
{
    FixtureTree tree("lint_undeclared");
    tree.write("b/bad.cc", "#include \"a/thing.hh\"\nint x;\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    // b -> a is both undeclared and a no_incoming violation; the
    // stricter no-incoming rule wins.
    EXPECT_TRUE(hasRule(diagnostics, "layering-no-incoming"));
}

TEST(Layering, DeclaredEdgeIsClean)
{
    FixtureTree tree("lint_declared");
    tree.write("a/ok.cc", "#include \"b/good.hh\"\nint x;\n");
    tree.write("b/good.hh", kGoodHeader);
    EXPECT_TRUE(lintTree(tree, kBasicToml).empty());
}

TEST(Layering, CycleInDeclaredDagIsFlagged)
{
    TomlDoc doc;
    std::string error;
    ASSERT_TRUE(TomlDoc::parse(
        "[layers]\na = [\"b\"]\nb = [\"c\"]\nc = [\"a\"]\n", &doc,
        &error));
    Config config;
    ASSERT_TRUE(Config::load(doc, &config, &error));
    Linter linter(std::move(config));
    linter.checkConfig("layering.toml");
    ASSERT_TRUE(hasRule(linter.diagnostics(), "layering-cycle"));
    const Diagnostic &d = linter.diagnostics().front();
    EXPECT_NE(d.message.find("->"), std::string::npos);
}

TEST(Layering, InterfaceAllowlistLimitsHeaders)
{
    FixtureTree tree("lint_interface");
    tree.write("a/uses.cc", "#include \"b/internal.hh\"\n");
    const std::string toml = std::string(kBasicToml) +
                             "[interfaces]\nb = [\"b/api.hh\"]\n";
    EXPECT_TRUE(hasRule(lintTree(tree, toml), "layering-interface"));
}

TEST(Determinism, TimeAndRandCallsAreFlagged)
{
    FixtureTree tree("lint_time");
    tree.write("b/bad.cc",
               "#include <ctime>\n"
               "long now() { return std::time(nullptr); }\n"
               "int roll() { return rand(); }\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    EXPECT_TRUE(hasRule(diagnostics, "determinism-time"));
    EXPECT_TRUE(hasRule(diagnostics, "determinism-rand"));
}

TEST(Determinism, MemberNamedTimeIsNotFlagged)
{
    FixtureTree tree("lint_member_time");
    tree.write("b/ok.cc",
               "double f(const S &s) { return s.time(); }\n"
               "double g(S *s) { return s->time(); }\n"
               "double h() { return pipeline::time(); }\n");
    EXPECT_TRUE(lintTree(tree, kBasicToml).empty());
}

TEST(Determinism, RandomDeviceOnlyInRngHelpers)
{
    FixtureTree tree("lint_rng");
    const std::string body =
        "#include <random>\nint seed() { return (int)std::random_device{}(); }\n";
    tree.write("b/rng.cc", body);   // sanctioned helper file
    tree.write("b/other.cc", body); // anywhere else: banned
    const auto diagnostics = lintTree(tree, kBasicToml);
    ASSERT_TRUE(hasRule(diagnostics, "determinism-random-device"));
    for (const Diagnostic &d : diagnostics)
        EXPECT_EQ(d.file, "b/other.cc");
}

TEST(Determinism, ClockBansRespectClockModules)
{
    FixtureTree tree("lint_clock");
    tree.write("b/bad.cc",
               "auto t = std::chrono::system_clock::now();\n");
    tree.write("a/timer.cc",
               "auto t = std::chrono::steady_clock::now();\n");
    std::string toml = kBasicToml;
    const auto diagnostics = lintTree(tree, toml);
    EXPECT_TRUE(hasRule(diagnostics, "determinism-clock"));
    // Allow steady_clock when the module is sanctioned.
    toml.replace(toml.find("clock_modules = []"),
                 std::string("clock_modules = []").size(),
                 "clock_modules = [\"a\"]");
    bool steadyFlagged = false;
    for (const Diagnostic &d : lintTree(tree, toml))
        if (d.file == "a/timer.cc")
            steadyFlagged = true;
    EXPECT_FALSE(steadyFlagged);
}

TEST(Determinism, UnorderedFlaggedOnlyInOutputModules)
{
    FixtureTree tree("lint_unordered");
    const std::string body =
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> table;\n";
    tree.write("a/out.cc", body); // a is an output module
    tree.write("b/in.cc", body);  // b is not
    const auto diagnostics = lintTree(tree, kBasicToml);
    ASSERT_TRUE(hasRule(diagnostics, "determinism-unordered"));
    for (const Diagnostic &d : diagnostics)
        EXPECT_EQ(d.file, "a/out.cc");
}

TEST(Hygiene, MissingGuardAndWrongNameAreFlagged)
{
    FixtureTree tree("lint_guard");
    tree.write("b/unguarded.hh", "int x;\n");
    tree.write("b/misnamed.hh",
               "#ifndef WRONG_NAME\n#define WRONG_NAME\n"
               "#endif\n");
    tree.write("b/pragma.hh", "#pragma once\nint y;\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    EXPECT_TRUE(hasRule(diagnostics, "hygiene-guard"));
    EXPECT_TRUE(hasRule(diagnostics, "hygiene-guard-name"));
    bool misnamedExpected = false;
    for (const Diagnostic &d : diagnostics) {
        if (d.rule == "hygiene-guard-name")
            misnamedExpected =
                d.message.find("GOPIM_B_MISNAMED_HH") !=
                std::string::npos;
    }
    EXPECT_TRUE(misnamedExpected);
}

TEST(Hygiene, UsingNamespaceAtHeaderScopeOnly)
{
    FixtureTree tree("lint_using");
    tree.write("b/bad.hh",
               "#ifndef GOPIM_B_BAD_HH\n#define GOPIM_B_BAD_HH\n"
               "using namespace std;\n"
               "#endif\n");
    tree.write("b/ok.hh",
               "#ifndef GOPIM_B_OK_HH\n#define GOPIM_B_OK_HH\n"
               "namespace b {\n"
               "inline int f() { using namespace std; return 1; }\n"
               "}\n"
               "#endif\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    ASSERT_TRUE(hasRule(diagnostics, "hygiene-using-namespace"));
    for (const Diagnostic &d : diagnostics)
        EXPECT_EQ(d.file, "b/bad.hh");
}

TEST(Allows, SuppressOnSameAndPreviousLine)
{
    FixtureTree tree("lint_allow");
    tree.write(
        "b/allowed.cc",
        "long a() { return std::time(nullptr); } "
        "// gopim-lint: allow(determinism-time) test fixture clock\n"
        "// gopim-lint: allow(determinism-rand) fixture needs libc rand\n"
        "int b() { return rand(); }\n");
    EXPECT_TRUE(lintTree(tree, kBasicToml).empty());
}

TEST(Allows, MissingReasonAndUnknownRuleAreViolations)
{
    FixtureTree tree("lint_allow_bad");
    tree.write("b/bad.cc",
               "long a() { return std::time(nullptr); } "
               "// gopim-lint: allow(determinism-time)\n"
               "int c; // gopim-lint: allow(no-such-rule) whatever\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    EXPECT_TRUE(hasRule(diagnostics, "allow-missing-reason"));
    EXPECT_TRUE(hasRule(diagnostics, "allow-unknown-rule"));
    // The allow with a missing reason still suppresses the
    // underlying finding — the missing reason itself is the error.
    EXPECT_FALSE(hasRule(diagnostics, "determinism-time"));
}

// ---------------------------------------------------------------
// Concurrency rule family (cross-file pass)

/** First diagnostic with `rule`, or nullptr. */
const Diagnostic *
findRule(const std::vector<Diagnostic> &diagnostics,
         const std::string &rule)
{
    for (const Diagnostic &d : diagnostics) {
        if (d.rule == rule)
            return &d;
    }
    return nullptr;
}

TEST(Concurrency, NotifyOutsideLockIsFlaggedAtItsLine)
{
    FixtureTree tree("lint_notify");
    tree.write("b/q.hh",
               "#ifndef GOPIM_B_Q_HH\n"
               "#define GOPIM_B_Q_HH\n"
               "#include <condition_variable>\n"
               "#include <mutex>\n"
               "class Q\n"
               "{\n"
               "  public:\n"
               "    void push()\n"
               "    {\n"
               "        {\n"
               "            std::lock_guard<std::mutex> lock(mutex_);\n"
               "            count_ = count_ + 1;\n"
               "        }\n"
               "        cv_.notify_one();\n"
               "    }\n"
               "\n"
               "  private:\n"
               "    std::mutex mutex_;\n"
               "    std::condition_variable cv_;\n"
               "    int count_ = 0;\n"
               "};\n"
               "#endif // GOPIM_B_Q_HH\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    const Diagnostic *d =
        findRule(diagnostics, "concurrency-notify-outside-lock");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->file, "b/q.hh");
    EXPECT_EQ(d->line, 14);
}

TEST(Concurrency, NotifyUnderLockIsClean)
{
    FixtureTree tree("lint_notify_ok");
    tree.write("b/q.cc",
               "#include <condition_variable>\n"
               "#include <mutex>\n"
               "class Q\n"
               "{\n"
               "  public:\n"
               "    void push()\n"
               "    {\n"
               "        std::lock_guard<std::mutex> lock(mutex_);\n"
               "        cv_.notify_all();\n"
               "    }\n"
               "\n"
               "  private:\n"
               "    std::mutex mutex_;\n"
               "    std::condition_variable cv_;\n"
               "};\n");
    EXPECT_FALSE(hasRule(lintTree(tree, kBasicToml),
                         "concurrency-notify-outside-lock"));
}

TEST(Concurrency, WaitWithoutPredicateFlaggedButFutureWaitIsNot)
{
    FixtureTree tree("lint_wait");
    tree.write("b/w.cc",
               "#include <condition_variable>\n"
               "#include <mutex>\n"
               "class W\n"
               "{\n"
               "  public:\n"
               "    void bad()\n"
               "    {\n"
               "        std::unique_lock<std::mutex> lock(mutex_);\n"
               "        cv_.wait(lock);\n"
               "    }\n"
               "    void good()\n"
               "    {\n"
               "        std::unique_lock<std::mutex> lock(mutex_);\n"
               "        cv_.wait(lock, [&] { return ready_; });\n"
               "    }\n"
               "    void futureStyle(std::future<int> &f)"
               " { f.wait(); }\n"
               "\n"
               "  private:\n"
               "    std::mutex mutex_;\n"
               "    std::condition_variable cv_;\n"
               "    bool ready_ = false;\n"
               "};\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    const Diagnostic *d =
        findRule(diagnostics, "concurrency-wait-no-predicate");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 9); // only the predicate-less cv wait
    int count = 0;
    for (const Diagnostic &diag : diagnostics)
        if (diag.rule == "concurrency-wait-no-predicate")
            ++count;
    EXPECT_EQ(count, 1);
}

TEST(Concurrency, MixedLockedAndLockFreeWritesAreFlagged)
{
    // Declarations in the header, bodies in the .cc — the rule has
    // to join them across files.
    FixtureTree tree("lint_mixed");
    tree.write("b/c.hh",
               "#ifndef GOPIM_B_C_HH\n"
               "#define GOPIM_B_C_HH\n"
               "#include <mutex>\n"
               "class C\n"
               "{\n"
               "  public:\n"
               "    void locked();\n"
               "    void unlocked();\n"
               "\n"
               "  private:\n"
               "    std::mutex mutex_;\n"
               "    long total_ = 0;\n"
               "};\n"
               "#endif // GOPIM_B_C_HH\n");
    tree.write("b/c.cc",
               "#include \"b/c.hh\"\n"
               "void C::locked()\n"
               "{\n"
               "    std::lock_guard<std::mutex> lock(mutex_);\n"
               "    total_ += 1;\n"
               "}\n"
               "void C::unlocked() { total_ = 7; }\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    const Diagnostic *d =
        findRule(diagnostics, "concurrency-mixed-access");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->file, "b/c.cc");
    EXPECT_EQ(d->line, 7); // reported at the lock-free write
}

TEST(Concurrency, CtorWritesAndConsistentLockingAreClean)
{
    FixtureTree tree("lint_mixed_ok");
    tree.write("b/c.cc",
               "#include <mutex>\n"
               "class C\n"
               "{\n"
               "  public:\n"
               "    C() { total_ = 1; }\n" // ctor: single-threaded
               "    void bump()\n"
               "    {\n"
               "        std::lock_guard<std::mutex> lock(mutex_);\n"
               "        total_ += 1;\n"
               "    }\n"
               "\n"
               "  private:\n"
               "    std::mutex mutex_;\n"
               "    long total_ = 0;\n"
               "};\n");
    EXPECT_FALSE(hasRule(lintTree(tree, kBasicToml),
                         "concurrency-mixed-access"));
}

TEST(Concurrency, AbbaLockOrderCycleIsFlagged)
{
    FixtureTree tree("lint_abba");
    tree.write("b/l.cc",
               "#include <mutex>\n"
               "class L\n"
               "{\n"
               "  public:\n"
               "    void ab()\n"
               "    {\n"
               "        std::lock_guard<std::mutex> a(first_);\n"
               "        std::lock_guard<std::mutex> b(second_);\n"
               "    }\n"
               "    void ba()\n"
               "    {\n"
               "        std::lock_guard<std::mutex> b(second_);\n"
               "        std::lock_guard<std::mutex> a(first_);\n"
               "    }\n"
               "\n"
               "  private:\n"
               "    std::mutex first_;\n"
               "    std::mutex second_;\n"
               "};\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    const Diagnostic *d =
        findRule(diagnostics, "concurrency-lock-order");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("first_"), std::string::npos);
    EXPECT_NE(d->message.find("second_"), std::string::npos);
}

TEST(Concurrency, ConsistentLockOrderIsClean)
{
    FixtureTree tree("lint_order_ok");
    tree.write("b/l.cc",
               "#include <mutex>\n"
               "class L\n"
               "{\n"
               "  public:\n"
               "    void ab()\n"
               "    {\n"
               "        std::lock_guard<std::mutex> a(first_);\n"
               "        std::lock_guard<std::mutex> b(second_);\n"
               "    }\n"
               "    void abAgain()\n"
               "    {\n"
               "        std::lock_guard<std::mutex> a(first_);\n"
               "        std::lock_guard<std::mutex> b(second_);\n"
               "    }\n"
               "\n"
               "  private:\n"
               "    std::mutex first_;\n"
               "    std::mutex second_;\n"
               "};\n");
    EXPECT_FALSE(hasRule(lintTree(tree, kBasicToml),
                         "concurrency-lock-order"));
}

TEST(Concurrency, JoinableDeclaredBeforeStateIsFlagged)
{
    FixtureTree tree("lint_join");
    tree.write("b/t.hh",
               "#ifndef GOPIM_B_T_HH\n"
               "#define GOPIM_B_T_HH\n"
               "#include <thread>\n"
               "#include <vector>\n"
               "class T\n"
               "{\n"
               "  private:\n"
               "    std::thread worker_;\n"
               "    std::vector<int> queue_;\n"
               "};\n"
               "#endif // GOPIM_B_T_HH\n");
    const auto diagnostics = lintTree(tree, kBasicToml);
    const Diagnostic *d =
        findRule(diagnostics, "concurrency-join-order");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 8); // the joinable member's declaration
}

TEST(Concurrency, JoinableDeclaredLastIsClean)
{
    FixtureTree tree("lint_join_ok");
    tree.write("b/t.hh",
               "#ifndef GOPIM_B_T_HH\n"
               "#define GOPIM_B_T_HH\n"
               "#include <thread>\n"
               "#include <vector>\n"
               "class T\n"
               "{\n"
               "  private:\n"
               "    std::vector<int> queue_;\n"
               "    std::thread worker_;\n"
               "};\n"
               "#endif // GOPIM_B_T_HH\n");
    EXPECT_FALSE(hasRule(lintTree(tree, kBasicToml),
                         "concurrency-join-order"));
}

TEST(Concurrency, AllowWaiverSuppressesConcurrencyFinding)
{
    FixtureTree tree("lint_conc_allow");
    tree.write(
        "b/t.hh",
        "#ifndef GOPIM_B_T_HH\n"
        "#define GOPIM_B_T_HH\n"
        "#include <thread>\n"
        "class T\n"
        "{\n"
        "  private:\n"
        "    // gopim-lint: allow(concurrency-join-order) the thread"
        " never touches members\n"
        "    std::thread worker_;\n"
        "    int tag_ = 0;\n"
        "};\n"
        "#endif // GOPIM_B_T_HH\n");
    EXPECT_FALSE(hasRule(lintTree(tree, kBasicToml),
                         "concurrency-join-order"));
}

// ---------------------------------------------------------------
// End-to-end: the real binary over fixture trees

TEST(Binary, CleanTreeExitsZero)
{
    FixtureTree tree("lint_bin_clean");
    tree.write("fixture/src/b/good.hh", kGoodHeader);
    tree.write("fixture/src/a/uses.cc",
               "#include \"b/good.hh\"\nint x = b::good();\n");
    tree.write("fixture/layering.toml", kBasicToml);
    const auto result =
        runBinary(tree.path("fixture/src") + " " +
                  tree.path("fixture/layering.toml"));
    EXPECT_EQ(result.exitCode, 0) << result.output;
    EXPECT_NE(result.output.find("0 violation(s)"),
              std::string::npos)
        << result.output;
}

TEST(Binary, EachRuleFamilyFailsWithFileLineDiagnostics)
{
    FixtureTree tree("lint_bin_dirty");
    // One violation per family: a layering edge b -> a, a banned
    // time() call, and a header without a guard.
    tree.write("fixture/src/b/layer.cc",
               "#include \"a/api.hh\"\n");
    tree.write("fixture/src/b/clock.cc",
               "int x;\nlong t() { return std::time(nullptr); }\n");
    tree.write("fixture/src/b/naked.hh", "int y;\n");
    tree.write("fixture/layering.toml", kBasicToml);
    const auto result =
        runBinary(tree.path("fixture/src") + " " +
                  tree.path("fixture/layering.toml"));
    EXPECT_EQ(result.exitCode, 1) << result.output;
    // file:line: rule-id diagnostics, one per family.
    EXPECT_NE(
        result.output.find("b/layer.cc:1: layering-no-incoming"),
        std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("b/clock.cc:2: determinism-time"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("b/naked.hh:1: hygiene-guard"),
              std::string::npos)
        << result.output;
}

TEST(Binary, AllowSuppressionTurnsExitGreen)
{
    FixtureTree tree("lint_bin_allow");
    tree.write("fixture/src/b/clock.cc",
               "// gopim-lint: allow(determinism-time) fixture "
               "needs wall time\n"
               "long t() { return std::time(nullptr); }\n");
    tree.write("fixture/layering.toml", kBasicToml);
    const auto result =
        runBinary(tree.path("fixture/src") + " " +
                  tree.path("fixture/layering.toml"));
    EXPECT_EQ(result.exitCode, 0) << result.output;
}

TEST(Binary, ReportFileIsWritten)
{
    FixtureTree tree("lint_bin_report");
    tree.write("fixture/src/b/naked.hh", "int y;\n");
    tree.write("fixture/layering.toml", kBasicToml);
    const std::string reportPath = tree.path("report.txt");
    const auto result = runBinary(
        "--report=" + reportPath + " " + tree.path("fixture/src") +
        " " + tree.path("fixture/layering.toml"));
    EXPECT_EQ(result.exitCode, 1);
    std::ifstream report(reportPath);
    std::string content((std::istreambuf_iterator<char>(report)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("hygiene-guard"), std::string::npos);
    EXPECT_NE(content.find("violation(s)"), std::string::npos);
}

TEST(Binary, UsageAndConfigErrorsExitTwo)
{
    EXPECT_EQ(runBinary("").exitCode, 2);
    FixtureTree tree("lint_bin_badcfg");
    tree.write("fixture/src/b/x.cc", "int x;\n");
    tree.write("fixture/bad.toml", "[layers\n");
    EXPECT_EQ(runBinary(tree.path("fixture/src") + " " +
                        tree.path("fixture/bad.toml"))
                  .exitCode,
              2);
}

TEST(Binary, RepoTreeIsClean)
{
    // The acceptance criterion: the linter passes on the actual
    // repo. Locate the repo root relative to this test binary's
    // source tree via the config macro-provided binary path is not
    // enough, so walk up from the current directory looking for
    // tools/layering.toml.
    fs::path dir = fs::current_path();
    fs::path root;
    for (int i = 0; i < 6 && !dir.empty(); ++i) {
        if (fs::exists(dir / "tools" / "layering.toml") &&
            fs::is_directory(dir / "src")) {
            root = dir;
            break;
        }
        dir = dir.parent_path();
    }
    if (root.empty())
        GTEST_SKIP() << "repo root not found from "
                     << fs::current_path();
    const auto result = runBinary(
        (root / "src").string() + " " + (root / "tools").string() +
        " " + (root / "bench").string() + " " +
        (root / "tools" / "layering.toml").string());
    EXPECT_EQ(result.exitCode, 0) << result.output;
}

} // namespace
