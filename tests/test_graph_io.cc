/**
 * @file
 * Unit tests for graph persistence (edge list + binary CSR) and the
 * R-MAT generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.hh"
#include "graph/generators.hh"
#include "graph/io.hh"

namespace gopim::graph {
namespace {

/** RAII temp file path. */
class TempFile
{
  public:
    explicit TempFile(const char *suffix)
        : path_(std::string("/tmp/gopim_test_") +
                std::to_string(counter_++) + suffix)
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    static inline int counter_ = 0;
    std::string path_;
};

TEST(GraphIo, EdgeListRoundTrip)
{
    Rng rng(3);
    const Graph original = erdosRenyi(200, 0.05, rng);

    std::stringstream buffer;
    writeEdgeList(original, buffer);
    const Graph loaded = readEdgeList(buffer);

    EXPECT_EQ(loaded.numVertices(), original.numVertices());
    EXPECT_EQ(loaded.numEdges(), original.numEdges());
    for (VertexId v = 0; v < original.numVertices(); ++v)
        EXPECT_EQ(loaded.degree(v), original.degree(v)) << v;
}

TEST(GraphIo, EdgeListCommentsAndHeader)
{
    std::stringstream in(
        "# a comment\n"
        "# vertices 10\n"
        "\n"
        "0 1\n"
        "1 2\n");
    const Graph g = readEdgeList(in);
    EXPECT_EQ(g.numVertices(), 10u); // header wins over max id + 1
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(GraphIo, EdgeListInfersVertexCount)
{
    std::stringstream in("0 7\n");
    const Graph g = readEdgeList(in);
    EXPECT_EQ(g.numVertices(), 8u);
}

TEST(GraphIoDeath, MalformedLineIsFatal)
{
    std::stringstream in("0 notanumber\n");
    EXPECT_DEATH(readEdgeList(in), "malformed");
}

TEST(GraphIo, BinaryRoundTrip)
{
    Rng rng(7);
    const auto degrees = powerLawDegreeSequence(500, 8.0, 2.1, 100,
                                                rng);
    const Graph original = chungLu(degrees, rng);

    TempFile file(".gpg");
    saveBinary(original, file.path());
    const Graph loaded = loadBinary(file.path());

    EXPECT_EQ(loaded.numVertices(), original.numVertices());
    EXPECT_EQ(loaded.numEdges(), original.numEdges());
    for (VertexId v = 0; v < original.numVertices(); ++v) {
        const auto a = original.neighbors(v);
        const auto b = loaded.neighbors(v);
        ASSERT_EQ(a.size(), b.size()) << v;
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << v;
    }
}

TEST(GraphIoDeath, BinaryBadMagicIsFatal)
{
    TempFile file(".bad");
    {
        std::ofstream out(file.path(), std::ios::binary);
        out << "definitely not a graph";
    }
    EXPECT_DEATH(loadBinary(file.path()), "not a GoPIM binary graph");
}

TEST(GraphIoDeath, MissingFileIsFatal)
{
    EXPECT_DEATH(loadEdgeList("/nonexistent/nope.el"), "cannot open");
    EXPECT_DEATH(loadBinary("/nonexistent/nope.gpg"), "cannot open");
}

TEST(Rmat, ProducesRequestedEdges)
{
    Rng rng(11);
    const Graph g = rmat(1 << 12, 30000, 0.45, 0.22, 0.22, rng);
    EXPECT_EQ(g.numVertices(), 4096u);
    // Duplicates collapse, so <= requested but in the ballpark.
    EXPECT_LE(g.numEdges(), 30000u);
    EXPECT_GT(g.numEdges(), 20000u);
}

TEST(Rmat, SkewedParametersProduceSkewedDegrees)
{
    Rng rng(13);
    const Graph skewed = rmat(1 << 12, 30000, 0.57, 0.19, 0.19, rng);
    const Graph uniform = rmat(1 << 12, 30000, 0.25, 0.25, 0.25, rng);

    auto maxDegree = [](const Graph &g) {
        uint32_t best = 0;
        for (VertexId v = 0; v < g.numVertices(); ++v)
            best = std::max(best, g.degree(v));
        return best;
    };
    EXPECT_GT(maxDegree(skewed), maxDegree(uniform) * 2);
}

TEST(Rmat, NonPowerOfTwoVertexCount)
{
    Rng rng(17);
    const Graph g = rmat(3000, 5000, 0.45, 0.22, 0.22, rng);
    EXPECT_EQ(g.numVertices(), 3000u);
    // Edges targeting ids >= 3000 were rejected but retried.
    EXPECT_GT(g.numEdges(), 3000u);
}

} // namespace
} // namespace gopim::graph
