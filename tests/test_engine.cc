/**
 * @file
 * Tests for the pluggable scheduling-engine layer: closed-form vs
 * event-driven parity across every Fig. 13 system on multiple
 * catalog datasets, the event-only knobs (bounded buffers, retry
 * stochasticity, replicas-as-servers), custom engine plug-in via
 * SimContext::engineOverride, and the Chrome trace sink.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "sim/engine.hh"
#include "sim/timeline_cache.hh"
#include "sim/trace.hh"

namespace gopim {
namespace {

core::RunResult
runWith(core::SystemKind kind, const std::string &dataset,
        const sim::SimContext &ctx)
{
    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(), ctx);
    return harness.runOne(kind, gcn::Workload::paperDefault(dataset));
}

// With default knobs (one server per stage, unbounded buffers,
// deterministic times) the event-driven engine must reproduce the
// closed form exactly — for every pipelining regime the Fig. 13
// systems exercise (Serial, IntraBatch, IntraInterBatch).
TEST(EngineParity, Figure13SystemsAgreeOnMakespanAndIdle)
{
    for (const std::string dataset : {"ddi", "Cora"}) {
        for (core::SystemKind kind : core::figure13Systems()) {
            sim::SimContext closed;
            closed.engine = sim::EngineKind::ClosedForm;
            sim::SimContext event;
            event.engine = sim::EngineKind::EventDriven;

            const auto a = runWith(kind, dataset, closed);
            const auto b = runWith(kind, dataset, event);

            EXPECT_EQ(a.engineName, "closed-form");
            EXPECT_EQ(b.engineName, "event-driven");
            EXPECT_NEAR(a.makespanNs, b.makespanNs,
                        1e-9 * a.makespanNs)
                << toString(kind) << " on " << dataset;
            ASSERT_EQ(a.idleFraction.size(), b.idleFraction.size());
            for (size_t i = 0; i < a.idleFraction.size(); ++i)
                EXPECT_NEAR(a.idleFraction[i], b.idleFraction[i],
                            1e-9)
                    << toString(kind) << " on " << dataset
                    << " stage " << i;
            // Identical timing means identical energy (up to
            // summation order: the serial regime accumulates chunk
            // makespans in a different order than the closed form).
            EXPECT_NEAR(a.energyPj, b.energyPj, 1e-9 * a.energyPj)
                << toString(kind) << " on " << dataset;
            EXPECT_GT(b.eventsProcessed, 0u);
            EXPECT_EQ(a.eventsProcessed, 0u);
        }
    }
}

TEST(EngineParity, AblationSystemsAgreeToo)
{
    for (core::SystemKind kind :
         {core::SystemKind::PlusPP, core::SystemKind::PlusISU,
          core::SystemKind::Naive}) {
        sim::SimContext event;
        event.engine = sim::EngineKind::EventDriven;
        const auto a = runWith(kind, "ddi", {});
        const auto b = runWith(kind, "ddi", event);
        EXPECT_NEAR(a.makespanNs, b.makespanNs, 1e-9 * a.makespanNs)
            << toString(kind);
    }
}

TEST(EventKnobs, BoundedBuffersNeverBeatUnbounded)
{
    sim::SimContext event;
    event.engine = sim::EngineKind::EventDriven;
    const auto unbounded =
        runWith(core::SystemKind::GoPim, "ddi", event);

    event.event.inputBufferSlots = 0;
    const auto bounded =
        runWith(core::SystemKind::GoPim, "ddi", event);
    EXPECT_GE(bounded.makespanNs,
              unbounded.makespanNs * (1.0 - 1e-9));
}

TEST(EventKnobs, WriteRetriesInflateAndAreSeedDeterministic)
{
    sim::SimContext event;
    event.engine = sim::EngineKind::EventDriven;
    event.seed = 42;
    const auto clean = runWith(core::SystemKind::GoPim, "ddi", event);

    event.event.writeRetryProb = 0.3;
    event.event.writeFraction = 0.5;
    const auto noisy = runWith(core::SystemKind::GoPim, "ddi", event);
    const auto again = runWith(core::SystemKind::GoPim, "ddi", event);
    EXPECT_GT(noisy.makespanNs, clean.makespanNs);
    EXPECT_DOUBLE_EQ(noisy.makespanNs, again.makespanNs);

    event.seed = 43;
    const auto other = runWith(core::SystemKind::GoPim, "ddi", event);
    EXPECT_NE(other.makespanNs, noisy.makespanNs);
}

TEST(EventKnobs, ReplicasAsServersRuns)
{
    // Alternative replication semantics: replica groups serve
    // distinct micro-batches instead of splitting one. A different
    // timing model, but still a valid deterministic end-to-end run,
    // and never faster than every stage running at its ideal
    // zero-latency split rate would allow (serial lower bound of the
    // slowest stage).
    sim::SimContext event;
    event.engine = sim::EngineKind::EventDriven;
    event.event.replicasAsServers = true;
    const auto servers =
        runWith(core::SystemKind::GoPim, "ddi", event);
    const auto again =
        runWith(core::SystemKind::GoPim, "ddi", event);
    EXPECT_GT(servers.makespanNs, 0.0);
    EXPECT_DOUBLE_EQ(servers.makespanNs, again.makespanNs);
}

TEST(TimelineMemo, HitsAreBitIdenticalAcrossSeeds)
{
    // With no write-retry sampling the event timeline is
    // seed-independent, so the memo may answer — and a hit must be
    // the exact timeline a fresh simulation would produce.
    auto cache = std::make_shared<sim::TimelineCache>();
    sim::SimContext event;
    event.engine = sim::EngineKind::EventDriven;
    event.timelineCache = cache;
    event.seed = 1;
    const auto cold = runWith(core::SystemKind::GoPim, "ddi", event);
    EXPECT_GT(cache->size(), 0u);

    event.seed = 2;
    const auto warm = runWith(core::SystemKind::GoPim, "ddi", event);
    EXPECT_GT(cache->hits(), 0u);

    sim::SimContext plain = event;
    plain.timelineCache = nullptr;
    const auto fresh = runWith(core::SystemKind::GoPim, "ddi", plain);

    EXPECT_EQ(warm.makespanNs, cold.makespanNs);
    EXPECT_EQ(warm.makespanNs, fresh.makespanNs);
    EXPECT_EQ(warm.energyPj, fresh.energyPj);
    EXPECT_EQ(warm.eventsProcessed, fresh.eventsProcessed);
    EXPECT_EQ(warm.idleFraction, fresh.idleFraction);
    EXPECT_EQ(warm.blockedNs, fresh.blockedNs);
}

TEST(TimelineMemo, SeedDependentRunsBypassTheCache)
{
    // writeRetryProb > 0 makes the timeline a function of the seed;
    // the memo must refuse to serve (or record) those runs, so two
    // seeds still diverge with a cache installed.
    auto cache = std::make_shared<sim::TimelineCache>();
    sim::SimContext event;
    event.engine = sim::EngineKind::EventDriven;
    event.timelineCache = cache;
    event.event.writeRetryProb = 0.3;
    event.event.writeFraction = 0.5;

    event.seed = 42;
    const auto a = runWith(core::SystemKind::GoPim, "ddi", event);
    event.seed = 43;
    const auto b = runWith(core::SystemKind::GoPim, "ddi", event);
    EXPECT_NE(a.makespanNs, b.makespanNs);
    EXPECT_EQ(cache->size(), 0u);
}

// A caller-supplied backend plugs in through the same seam the two
// built-ins use.
class FixedMakespanEngine final : public sim::ScheduleEngine
{
  public:
    std::string name() const override { return "fixed-stub"; }

    sim::StageTimeline
    schedule(const sim::ScheduleRequest &request,
             const sim::SimContext &) const override
    {
        sim::StageTimeline timeline;
        timeline.makespanNs = 1234.5;
        const size_t n = request.stageTimesNs.size();
        timeline.busyNs.assign(n, 0.0);
        timeline.blockedNs.assign(n, 0.0);
        timeline.idleFraction.assign(n, 0.5);
        return timeline;
    }
};

TEST(EnginePlugin, EngineOverrideWinsOverKind)
{
    sim::SimContext ctx;
    ctx.engine = sim::EngineKind::EventDriven;
    ctx.engineOverride = std::make_shared<FixedMakespanEngine>();
    const auto run = runWith(core::SystemKind::GoPim, "ddi", ctx);
    EXPECT_EQ(run.engineName, "fixed-stub");
    EXPECT_DOUBLE_EQ(run.makespanNs, 1234.5);
    EXPECT_DOUBLE_EQ(run.avgIdleFraction, 0.5);
}

TEST(TraceSink, CollectsRunsAndWritesBalancedJson)
{
    auto sink = std::make_shared<sim::ChromeTraceSink>();
    sim::SimContext ctx;
    ctx.engine = sim::EngineKind::EventDriven;
    ctx.traceSink = sink;
    runWith(core::SystemKind::GoPim, "Cora", ctx);
    runWith(core::SystemKind::Serial, "Cora", ctx);
    EXPECT_EQ(sink->runCount(), 2u);

    std::ostringstream os;
    sink->writeTo(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("GoPIM on Cora"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(TraceSink, ClosedFormWindowsTraceToo)
{
    auto sink = std::make_shared<sim::ChromeTraceSink>();
    sim::SimContext ctx;
    ctx.traceSink = sink;
    runWith(core::SystemKind::GoPim, "Cora", ctx);
    EXPECT_EQ(sink->runCount(), 1u);
}

TEST(SimFlags, UniformFlagsBuildTheContext)
{
    Flags flags("test", "test");
    core::addSimFlags(flags);
    const char *argv[] = {"test", "--engine=event", "--seed=7",
                          "--jobs=3", "--buffer-slots=2",
                          "--retry-prob=0.1"};
    ASSERT_TRUE(flags.parse(6, argv));
    const auto ctx = core::simContextFromFlags(flags);
    EXPECT_EQ(ctx.engine, sim::EngineKind::EventDriven);
    EXPECT_EQ(ctx.seed, 7u);
    EXPECT_EQ(ctx.event.inputBufferSlots, 2u);
    EXPECT_DOUBLE_EQ(ctx.event.writeRetryProb, 0.1);
    EXPECT_EQ(core::jobsFromFlags(flags), 3u);
    EXPECT_EQ(ctx.traceSink, nullptr);
}

TEST(SimFlags, EngineNamesRoundTrip)
{
    EXPECT_EQ(sim::engineKindFromString("closed"),
              sim::EngineKind::ClosedForm);
    EXPECT_EQ(sim::engineKindFromString("event-driven"),
              sim::EngineKind::EventDriven);
    EXPECT_EQ(toString(sim::EngineKind::ClosedForm), "closed-form");
    EXPECT_EQ(toString(sim::EngineKind::EventDriven), "event-driven");
}

} // namespace
} // namespace gopim
