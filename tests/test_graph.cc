/**
 * @file
 * Unit tests for the graph substrate: CSR construction, generators
 * (degree targets, determinism), the Table III dataset catalog, and
 * sparsification utilities.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "graph/graph.hh"
#include "graph/sparsify.hh"

namespace gopim::graph {
namespace {

Graph
triangleWithTail()
{
    // 0-1, 1-2, 2-0 triangle plus 2-3 tail.
    return Graph::fromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
}

TEST(Graph, CsrBasics)
{
    const Graph g = triangleWithTail();
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(2), 3u);
    EXPECT_EQ(g.degree(3), 1u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0)); // symmetrized
    EXPECT_FALSE(g.hasEdge(0, 3));
}

TEST(Graph, DuplicateEdgesRemoved)
{
    const Graph g =
        Graph::fromEdges(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, SelfLoopCountedOnce)
{
    const Graph g = Graph::fromEdges(2, {{0, 0}, {0, 1}});
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.degree(0), 2u); // self loop + edge to 1
}

TEST(Graph, NeighborsSorted)
{
    const Graph g = Graph::fromEdges(5, {{2, 4}, {2, 0}, {2, 3}});
    const auto nbrs = g.neighbors(2);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_EQ(nbrs.size(), 3u);
}

TEST(Graph, AverageDegreeAndDensity)
{
    const Graph g = triangleWithTail();
    EXPECT_DOUBLE_EQ(g.averageDegree(), 2.0); // 8 directed / 4
    EXPECT_DOUBLE_EQ(g.density(), 4.0 / 6.0);
}

TEST(Graph, VerticesByDegreeDescIsStable)
{
    const Graph g = triangleWithTail();
    const auto order = g.verticesByDegreeDesc();
    EXPECT_EQ(order.front(), 2u); // degree 3
    EXPECT_EQ(order.back(), 3u);  // degree 1
    // Equal degrees (0 and 1) keep id order.
    EXPECT_LT(std::find(order.begin(), order.end(), 0u),
              std::find(order.begin(), order.end(), 1u));
}

TEST(Graph, StatsMatchGraph)
{
    const Graph g = triangleWithTail();
    const GraphStats s = computeStats(g);
    EXPECT_EQ(s.numVertices, 4u);
    EXPECT_EQ(s.numEdges, 4u);
    EXPECT_DOUBLE_EQ(s.avgDegree, 2.0);
    EXPECT_DOUBLE_EQ(s.maxDegree, 3.0);
    EXPECT_NEAR(s.sparsity(), 1.0 - 8.0 / 16.0, 1e-12);
}

TEST(Generators, PowerLawSequenceHitsTargetMean)
{
    Rng rng(3);
    const auto degrees =
        powerLawDegreeSequence(50000, 40.0, 2.1, 5000, rng);
    const double avg =
        std::accumulate(degrees.begin(), degrees.end(), 0.0) /
        static_cast<double>(degrees.size());
    EXPECT_NEAR(avg, 40.0, 4.0);
    // Power law implies heavy skew: max far above the mean.
    const auto maxDeg = *std::max_element(degrees.begin(), degrees.end());
    EXPECT_GT(maxDeg, 200u);
    for (auto d : degrees)
        EXPECT_GE(d, 1u);
}

TEST(Generators, PowerLawDeterministicPerSeed)
{
    Rng a(7), b(7);
    EXPECT_EQ(powerLawDegreeSequence(100, 5.0, 2.1, 50, a),
              powerLawDegreeSequence(100, 5.0, 2.1, 50, b));
}

TEST(Generators, ChungLuApproximatesTargets)
{
    Rng rng(11);
    const auto targets = powerLawDegreeSequence(20000, 16.0, 2.1,
                                                2000, rng);
    const Graph g = chungLu(targets, rng);
    EXPECT_EQ(g.numVertices(), 20000u);
    const double targetAvg =
        std::accumulate(targets.begin(), targets.end(), 0.0) /
        static_cast<double>(targets.size());
    EXPECT_NEAR(g.averageDegree(), targetAvg, targetAvg * 0.25);
}

TEST(Generators, ErdosRenyiEdgeCount)
{
    Rng rng(13);
    const Graph g = erdosRenyi(2000, 0.01, rng);
    const double expected = 0.01 * 2000.0 * 1999.0 / 2.0;
    EXPECT_NEAR(static_cast<double>(g.numEdges()), expected,
                expected * 0.1);
}

TEST(Generators, ErdosRenyiZeroProbability)
{
    Rng rng(17);
    const Graph g = erdosRenyi(100, 0.0, rng);
    EXPECT_EQ(g.numEdges(), 0u);
}

TEST(Generators, PlantedPartitionFavorsIntraClassEdges)
{
    Rng rng(19);
    const auto data = plantedPartition(300, 3, 0.2, 0.01, rng);
    EXPECT_EQ(data.labels.size(), 300u);
    uint64_t intra = 0, inter = 0;
    for (VertexId u = 0; u < data.graph.numVertices(); ++u)
        for (VertexId v : data.graph.neighbors(u))
            (data.labels[u] == data.labels[v] ? intra : inter)++;
    EXPECT_GT(intra, inter * 3);
}

TEST(Generators, DegreeCorrectedPartitionProducesHubs)
{
    Rng rng(23);
    const auto data =
        degreeCorrectedPartition(3000, 4, 12.0, 2.1, 0.1, rng);
    EXPECT_EQ(data.numClasses, 4);
    const auto degrees = data.graph.degrees();
    const auto maxDeg =
        *std::max_element(degrees.begin(), degrees.end());
    const double avg = data.graph.averageDegree();
    EXPECT_GT(maxDeg, avg * 5);
    EXPECT_NEAR(avg, 12.0 * 2.0 / 2.0, 6.0); // roughly the target
}

TEST(Catalog, TableThreeContents)
{
    const auto &all = DatasetCatalog::all();
    ASSERT_EQ(all.size(), 7u);
    const auto &ddi = DatasetCatalog::byName("ddi");
    EXPECT_EQ(ddi.numVertices, 4267u);
    EXPECT_EQ(ddi.numEdges, 1334889u);
    EXPECT_DOUBLE_EQ(ddi.avgDegree, 500.5);
    EXPECT_EQ(ddi.featureDim, 256u);
    EXPECT_EQ(ddi.task, TaskType::LinkPrediction);
    EXPECT_FALSE(ddi.isSparse());

    const auto &cora = DatasetCatalog::byName("Cora");
    EXPECT_TRUE(cora.isSparse());
    EXPECT_EQ(cora.featureDim, 1433u);

    const auto &products = DatasetCatalog::byName("products");
    EXPECT_EQ(products.numVertices, 2449029u);
}

TEST(Catalog, SetsMatchPaper)
{
    EXPECT_EQ(DatasetCatalog::figure13Set().size(), 5u);
    EXPECT_EQ(DatasetCatalog::motivationSet().size(), 6u);
}

TEST(Catalog, DegreeSequenceMatchesSpec)
{
    Rng rng(29);
    const auto &collab = DatasetCatalog::byName("collab");
    const auto degrees =
        DatasetCatalog::degreeSequence(collab, 0.1, rng);
    EXPECT_EQ(degrees.size(),
              static_cast<size_t>(collab.numVertices / 10));
    const double avg =
        std::accumulate(degrees.begin(), degrees.end(), 0.0) /
        static_cast<double>(degrees.size());
    EXPECT_NEAR(avg, collab.avgDegree, collab.avgDegree * 0.2);
}

TEST(Catalog, MaterializeSmallScale)
{
    Rng rng(31);
    const auto &ddi = DatasetCatalog::byName("ddi");
    const Graph g = DatasetCatalog::materialize(ddi, 0.25, rng);
    EXPECT_NEAR(static_cast<double>(g.numVertices()),
                ddi.numVertices * 0.25, 2.0);
    EXPECT_GT(g.averageDegree(), ddi.avgDegree * 0.3);
}

TEST(Catalog, ScaledPreservesAvgDegree)
{
    const auto &ppa = DatasetCatalog::byName("ppa");
    const auto half = DatasetCatalog::scaled(ppa, 0.5);
    EXPECT_EQ(half.numVertices, ppa.numVertices / 2);
    EXPECT_DOUBLE_EQ(half.avgDegree, ppa.avgDegree);
}

TEST(Sparsify, DropEdgesKeepsRoughFraction)
{
    Rng rng(37);
    const Graph g = erdosRenyi(1000, 0.02, rng);
    const Graph h = dropEdges(g, 0.5, rng);
    EXPECT_NEAR(static_cast<double>(h.numEdges()),
                static_cast<double>(g.numEdges()) * 0.5,
                static_cast<double>(g.numEdges()) * 0.1);
    EXPECT_EQ(h.numVertices(), g.numVertices());
}

TEST(Sparsify, KeepTopEdgesPrefersHighDegreeEndpoints)
{
    Rng rng(41);
    const auto targets =
        powerLawDegreeSequence(2000, 10.0, 2.1, 500, rng);
    const Graph g = chungLu(targets, rng);
    const Graph h = keepTopEdgesByDegreeProduct(g, 0.3);
    EXPECT_NEAR(static_cast<double>(h.numEdges()),
                static_cast<double>(g.numEdges()) * 0.3, 2.0);

    // Surviving endpoints should be biased toward high degrees.
    double avgDegKept = 0.0;
    uint64_t endpoints = 0;
    for (VertexId u = 0; u < h.numVertices(); ++u) {
        for (VertexId v : h.neighbors(u)) {
            avgDegKept += g.degree(v);
            ++endpoints;
        }
    }
    ASSERT_GT(endpoints, 0u);
    avgDegKept /= static_cast<double>(endpoints);
    EXPECT_GT(avgDegKept, g.averageDegree());
}

TEST(Sparsify, PruneLowDegreeVertices)
{
    const Graph g = triangleWithTail();
    const Graph h = pruneLowDegreeVertices(g, 2);
    // Vertex 3 (degree 1) loses its edge; the triangle survives.
    EXPECT_EQ(h.numEdges(), 3u);
    EXPECT_EQ(h.degree(3), 0u);
    EXPECT_EQ(h.numVertices(), g.numVertices());
}

} // namespace
} // namespace gopim::graph
