/**
 * @file
 * Unit tests for the ReRAM device model: Table II configuration
 * invariants, latency/energy/area arithmetic, and resource accounting.
 */

#include <gtest/gtest.h>

#include "reram/area.hh"
#include "reram/config.hh"
#include "reram/energy.hh"
#include "reram/latency.hh"
#include "reram/resources.hh"

namespace gopim::reram {
namespace {

TEST(Config, PaperDefaultMatchesTableTwo)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    EXPECT_EQ(cfg.crossbar.rows, 64u);
    EXPECT_EQ(cfg.crossbar.cols, 64u);
    EXPECT_EQ(cfg.crossbar.bitsPerCell, 2u);
    EXPECT_DOUBLE_EQ(cfg.crossbar.readLatencyNs, 29.31);
    EXPECT_DOUBLE_EQ(cfg.crossbar.writeLatencyNs, 50.88);
    EXPECT_EQ(cfg.pe.crossbarsPerPe, 32u);
    EXPECT_EQ(cfg.tile.pesPerTile, 8u);
    EXPECT_EQ(cfg.chip.tilesPerChip, 65536u);
}

TEST(Config, DerivedQuantities)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    // 65536 tiles x 8 PEs x 32 crossbars = 16,777,216 crossbars.
    EXPECT_EQ(cfg.totalCrossbars(), 16777216u);
    // 16.7M crossbars x 4096 cells x 2 bits / 8 = 16 GiB (Table II).
    EXPECT_EQ(cfg.capacityBytes(), 16ull * 1024 * 1024 * 1024);
    // 16-bit inputs through 2-bit DACs: 8 bit-serial cycles.
    EXPECT_EQ(cfg.inputCycles(), 8u);
    // Row window: 32 crossbars x 64 rows.
    EXPECT_EQ(cfg.windowRows(), 2048u);
}

TEST(Config, ValidateRejectsBadGeometry)
{
    auto cfg = AcceleratorConfig::paperDefault();
    cfg.crossbar.valueBits = 15; // not a multiple of DAC bits
    EXPECT_DEATH(cfg.validate(), "multiple");
}

TEST(Latency, WindowAndMvm)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    LatencyModel lat(cfg);
    EXPECT_DOUBLE_EQ(lat.windowLatencyNs(), 8 * 29.31);
    // 256 rows fit in one 2048-row window.
    EXPECT_DOUBLE_EQ(lat.mvmLatencyNs(256), 8 * 29.31);
    // 4267 rows need 3 windows.
    EXPECT_DOUBLE_EQ(lat.mvmLatencyNs(4267), 3 * 8 * 29.31);
}

TEST(Latency, ReplicasDivideStreams)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    LatencyModel lat(cfg);
    const double one = lat.mvmStreamLatencyNs(64, 256, 1);
    const double four = lat.mvmStreamLatencyNs(64, 256, 4);
    EXPECT_DOUBLE_EQ(one, 64 * 8 * 29.31);
    EXPECT_DOUBLE_EQ(four, one / 4.0);
}

TEST(Latency, UpdateSerialWithinCrossbar)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    LatencyModel lat(cfg);
    EXPECT_DOUBLE_EQ(lat.rowWriteLatencyNs(), 50.88);
    EXPECT_DOUBLE_EQ(lat.updateLatencyNs(64), 64 * 50.88);
    EXPECT_DOUBLE_EQ(lat.updateLatencyNs(0), 0.0);
}

TEST(Energy, EventEnergiesPositiveAndOrdered)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    EnergyModel energy(cfg);
    // One activation covers a full 8-cycle bit-serial pass, so it
    // outweighs a single row-write pulse; per unit time the write
    // still draws 2x the crossbar read power.
    EXPECT_GT(energy.activationEnergyPj(), 0.0);
    EXPECT_GT(energy.rowWriteEnergyPj(), 0.0);
    EXPECT_GT(energy.activationEnergyPj(), energy.rowWriteEnergyPj());
    const double readCyclePj = cfg.crossbar.powerMw *
                               cfg.crossbar.readLatencyNs /
                               cfg.inputCycles();
    EXPECT_GT(energy.rowWriteEnergyPj(), readCyclePj);
    EXPECT_GT(energy.backgroundPowerMw(), 500.0); // controller alone
}

TEST(Energy, TotalDecomposes)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    EnergyModel energy(cfg);
    const double onlyDynamic =
        energy.totalEnergyPj(0.0, 100, 10, 1000, 0.0);
    EXPECT_DOUBLE_EQ(onlyDynamic,
                     100 * energy.activationEnergyPj() +
                         10 * energy.rowWriteEnergyPj() +
                         1000 * energy.bufferEnergyPerBytePj());

    const double withTime =
        energy.totalEnergyPj(1000.0, 100, 10, 1000, 0.0);
    EXPECT_GT(withTime, onlyDynamic);

    const double withIdle =
        energy.totalEnergyPj(1000.0, 100, 10, 1000, 5000.0);
    EXPECT_GT(withIdle, withTime);
}

TEST(Energy, IdleCrossbarsCostEnergy)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    EnergyModel energy(cfg);
    // Same makespan and work, different idle integrals: more idle
    // crossbar-time must cost more (the paper's core observation).
    const double busy = energy.totalEnergyPj(1e6, 1000, 0, 0, 1e6);
    const double idle = energy.totalEnergyPj(1e6, 1000, 0, 0, 1e9);
    EXPECT_GT(idle, busy);
}

TEST(Area, RollupScalesWithHierarchy)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    const auto area = computeArea(cfg);
    EXPECT_GT(area.perPeMm2, 0.0);
    EXPECT_GT(area.perTileMm2, area.perPeMm2 * cfg.tile.pesPerTile);
    EXPECT_GT(area.chipMm2,
              area.perTileMm2 * static_cast<double>(
                                    cfg.chip.tilesPerChip));
}

TEST(Resources, AllocationAccounting)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    ChipResources res(cfg);
    EXPECT_EQ(res.totalCrossbars(), cfg.totalCrossbars());
    EXPECT_EQ(res.freeCrossbars(), res.totalCrossbars());

    const size_t a = res.allocate("stage0", 1000);
    const size_t b = res.allocate("stage1", 2000);
    EXPECT_EQ(res.allocatedCrossbars(), 3000u);
    EXPECT_EQ(res.allocations()[a].name, "stage0");
    EXPECT_EQ(res.allocations()[b].crossbars, 2000u);

    res.reset();
    EXPECT_EQ(res.allocatedCrossbars(), 0u);
}

TEST(Resources, OverAllocationIsFatal)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    ChipResources res(cfg);
    EXPECT_DEATH(res.allocate("huge", cfg.totalCrossbars() + 1),
                 "budget");
}

TEST(Resources, WearTracking)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    ChipResources res(cfg);
    const size_t idx = res.allocate("features", 10);
    EXPECT_DOUBLE_EQ(res.worstWearFraction(), 0.0);

    // 10 crossbars x 64 rows = 640 rows; 640 writes = 1 write per row.
    res.recordWrites(idx, 640);
    EXPECT_EQ(res.totalRowWrites(), 640u);
    EXPECT_NEAR(res.worstWearFraction(), 1.0 / cfg.chip.writeEndurance,
                1e-18);
}

} // namespace
} // namespace gopim::reram
