/**
 * @file
 * Unit tests for the discrete-event simulator: the event queue's
 * ordering guarantees, and the pipeline simulation's exact agreement
 * with the closed-form Eq. 6 schedule in the baseline configuration,
 * plus the behaviors only the event-driven model can express
 * (bounded buffers, multi-server stages, stochastic service).
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hh"
#include "pipeline/schedule.hh"
#include "sim/event_queue.hh"
#include "sim/pipeline_sim.hh"

namespace gopim::sim {
namespace {

TEST(EventQueue, TimeOrderedExecution)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(3.0, [&] { order.push_back(3); });
    queue.schedule(1.0, [&] { order.push_back(1); });
    queue.schedule(2.0, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(queue.nowNs(), 3.0);
    EXPECT_EQ(queue.processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(1.0, [&] { order.push_back(0); });
    queue.schedule(1.0, [&] { order.push_back(1); });
    queue.schedule(1.0, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CollidingTimestampsDrainFifoAtScale)
{
    // Many events per timestamp, scheduled in shuffled timestamp
    // order: equal timestamps must drain in exact insertion order
    // (the explicit sequence-number tie-break), not in whatever
    // order the underlying container happens to keep.
    EventQueue queue;
    std::vector<int> order;
    const double times[] = {2.0, 0.5, 3.5, 1.0};
    for (int k = 0; k < 64; ++k) {
        for (int t = 0; t < 4; ++t) {
            const int id = k * 4 + t;
            queue.schedule(times[t], [&, id] { order.push_back(id); });
        }
    }
    queue.run();

    std::vector<int> expected;
    for (int t : {1, 3, 0, 2}) // timestamps ascending: .5, 1, 2, 3.5
        for (int k = 0; k < 64; ++k)
            expected.push_back(k * 4 + t);
    EXPECT_EQ(order, expected);
}

TEST(EventQueue, HorizonHintNeverChangesOrder)
{
    // The calendar sizing hint is a pure speed knob: wildly wrong
    // horizons (too short, too long, bucket-width extremes) must
    // leave the execution order — including equal-timestamp FIFO
    // ties — untouched.
    const auto runWithHint = [](double horizonNs, uint64_t events) {
        EventQueue queue;
        if (horizonNs > 0)
            queue.reserveHorizon(horizonNs, events);
        std::vector<int> order;
        const double times[] = {7.0, 1.5, 1.5, 40.0, 0.25, 7.0};
        for (int k = 0; k < 32; ++k) {
            for (int t = 0; t < 6; ++t) {
                const int id = k * 6 + t;
                queue.schedule(times[t],
                               [&, id] { order.push_back(id); });
            }
        }
        queue.run();
        return order;
    };

    const std::vector<int> reference = runWithHint(0.0, 0);
    EXPECT_EQ(runWithHint(1.0, 1), reference);
    EXPECT_EQ(runWithHint(1e9, 1u << 20), reference);
    EXPECT_EQ(runWithHint(16.0, 8), reference);
    EXPECT_EQ(runWithHint(0.001, 4096), reference);
}

TEST(EventQueue, EventsFarBeyondHorizonWrapSafely)
{
    // Timestamps thousands of bucket-widths apart alias to the same
    // calendar slots; the day tag must keep them ordered.
    EventQueue queue;
    queue.reserveHorizon(16.0, 16);
    std::vector<int> order;
    for (int i = 9; i >= 0; --i)
        queue.schedule(static_cast<double>(i) * 1000.0,
                       [&, i] { order.push_back(i); });
    // A colliding pair far out, scheduled before vs after the loop
    // above reversed the times: FIFO must still hold.
    queue.schedule(5000.0, [&] { order.push_back(100); });
    queue.schedule(5000.0, [&] { order.push_back(101); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 100, 101, 6,
                                       7, 8, 9}));
    EXPECT_EQ(queue.processed(), 12u);
}

TEST(EventQueue, CallbacksMayScheduleMore)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1.0, [&] {
        ++fired;
        queue.scheduleAfter(1.0, [&] { ++fired; });
    });
    queue.run();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(queue.nowNs(), 2.0);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue queue;
    queue.schedule(5.0, [&] { queue.schedule(1.0, [] {}); });
    EXPECT_DEATH(queue.run(), "past");
}

TEST(EventQueueDeath, RunawayGuardTrips)
{
    EventQueue queue;
    std::function<void()> loop = [&] {
        queue.scheduleAfter(1.0, loop);
    };
    queue.schedule(0.0, loop);
    EXPECT_DEATH(queue.run(100), "runaway");
}

// ---------------------------------------------------------------- //

std::vector<StationConfig>
stationsFromTimes(const std::vector<double> &times)
{
    std::vector<StationConfig> stations;
    for (double t : times)
        stations.push_back({.serviceTimeNs = t});
    return stations;
}

TEST(PipelineSim, MatchesClosedFormExactly)
{
    // Single-server, unbounded buffers, deterministic times: the
    // event-driven makespan must equal Eq. 6 for arbitrary times.
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t stages = 2 + rng.uniformInt(uint64_t{10});
        const uint32_t b =
            1 + static_cast<uint32_t>(rng.uniformInt(uint64_t{50}));
        std::vector<double> times(stages);
        for (auto &t : times)
            t = rng.uniform(0.5, 50.0);

        const auto sim =
            simulatePipeline(stationsFromTimes(times), b);
        EXPECT_EQ(sim.completed, b);
        EXPECT_NEAR(sim.makespanNs,
                    pipeline::pipelinedMakespanNs(times, b),
                    1e-6 * sim.makespanNs)
            << "trial " << trial;
    }
}

TEST(PipelineSim, BusyTimesMatchSchedule)
{
    const std::vector<double> times = {2.0, 7.0, 3.0};
    const uint32_t b = 12;
    const auto sim = simulatePipeline(stationsFromTimes(times), b);
    const auto closed = pipeline::schedulePipelined(times, b);
    for (size_t i = 0; i < times.size(); ++i) {
        EXPECT_NEAR(sim.busyNs[i], closed.busyNs[i], 1e-9);
        EXPECT_NEAR(sim.idleFraction(i), closed.idleFraction[i],
                    1e-9);
    }
}

TEST(PipelineSim, SingleMicroBatchIsStageSum)
{
    const std::vector<double> times = {1.0, 2.0, 3.0};
    const auto sim = simulatePipeline(stationsFromTimes(times), 1);
    EXPECT_DOUBLE_EQ(sim.makespanNs, 6.0);
}

TEST(PipelineSim, ZeroBufferAddsBackpressure)
{
    // A slow final stage with no buffering blocks the fast stages.
    std::vector<StationConfig> stations = {
        {.serviceTimeNs = 1.0},
        {.serviceTimeNs = 1.0},
        {.serviceTimeNs = 10.0},
    };
    const auto unbounded = simulatePipeline(stations, 20);

    for (auto &s : stations)
        s.inputBuffer = 0;
    const auto bounded = simulatePipeline(stations, 20);

    EXPECT_GE(bounded.makespanNs, unbounded.makespanNs - 1e-9);
    // Upstream stages spend time blocked.
    EXPECT_GT(bounded.blockedNs[1], 0.0);
    // The bottleneck still pins the lower bound.
    EXPECT_GE(bounded.makespanNs, 10.0 * 20);
}

TEST(PipelineSim, BufferOneApproachesUnbounded)
{
    std::vector<StationConfig> stations = {
        {.serviceTimeNs = 5.0},
        {.serviceTimeNs = 4.0},
        {.serviceTimeNs = 3.0},
    };
    // Decreasing service times downstream: even tiny buffers never
    // block, so all capacities agree.
    const auto unbounded = simulatePipeline(stations, 30);
    for (auto &s : stations)
        s.inputBuffer = 1;
    const auto small = simulatePipeline(stations, 30);
    EXPECT_NEAR(small.makespanNs, unbounded.makespanNs, 1e-9);
}

TEST(PipelineSim, MultiServerBeatsSingleServer)
{
    // Doubling the bottleneck's servers halves its effective rate
    // (something replica *splitting* models as time/2; here the two
    // replica groups serve distinct micro-batches).
    std::vector<StationConfig> stations = {
        {.serviceTimeNs = 1.0},
        {.serviceTimeNs = 8.0},
        {.serviceTimeNs = 1.0},
    };
    const auto single = simulatePipeline(stations, 40);
    stations[1].servers = 2;
    const auto dual = simulatePipeline(stations, 40);
    EXPECT_LT(dual.makespanNs, single.makespanNs * 0.6);
    // Asymptotic rate: one finish per 4 time units.
    EXPECT_GE(dual.makespanNs, 8.0 * 40 / 2);
}

TEST(PipelineSim, ManyServersCollapseToMaxStage)
{
    std::vector<StationConfig> stations = {
        {.serviceTimeNs = 2.0, .servers = 64},
        {.serviceTimeNs = 5.0, .servers = 64},
    };
    const auto sim = simulatePipeline(stations, 64);
    // Everything runs concurrently: makespan = sum of stage times.
    EXPECT_DOUBLE_EQ(sim.makespanNs, 7.0);
}

TEST(PipelineSim, StochasticServiceRaisesExpectedMakespan)
{
    const std::vector<double> times = {3.0, 3.0, 3.0};
    const auto stations = stationsFromTimes(times);
    const uint32_t b = 64;
    const double deterministic =
        simulatePipeline(stations, b).makespanNs;

    // Zero-mean jitter around the same mean service time: pipeline
    // makespan is a max-plus composition, so E[makespan] >= the
    // deterministic makespan (Jensen).
    ServiceSampler jitter = [&](size_t stage, uint32_t, Rng &rng) {
        (void)stage;
        return 3.0 + rng.uniform(-1.5, 1.5);
    };
    double total = 0.0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t)
        total += simulatePipeline(stations, b, jitter,
                                  static_cast<uint64_t>(t) + 1)
                     .makespanNs;
    EXPECT_GT(total / trials, deterministic);
}

TEST(PipelineSim, WriteRetrySamplerInflatesWithProbability)
{
    const std::vector<double> times = {4.0, 4.0};
    const auto stations = stationsFromTimes(times);
    const uint32_t b = 128;

    const double clean = simulatePipeline(stations, b).makespanNs;
    const auto retry10 = makeWriteRetrySampler(stations, 0.10, 0.5);
    const auto retry30 = makeWriteRetrySampler(stations, 0.30, 0.5);
    const double m10 =
        simulatePipeline(stations, b, retry10, 7).makespanNs;
    const double m30 =
        simulatePipeline(stations, b, retry30, 7).makespanNs;
    EXPECT_GT(m10, clean);
    EXPECT_GT(m30, m10);
    // Expected inflation of the write half: 1/(1-p) retries.
    EXPECT_NEAR(m30 / clean, 0.5 + 0.5 / 0.7, 0.15);
}

TEST(PipelineSim, DeterministicForSameSeed)
{
    const auto stations = stationsFromTimes({2.0, 5.0});
    const auto sampler = makeWriteRetrySampler(stations, 0.2, 0.4);
    const auto a = simulatePipeline(stations, 50, sampler, 9);
    const auto b = simulatePipeline(stations, 50, sampler, 9);
    EXPECT_DOUBLE_EQ(a.makespanNs, b.makespanNs);
}

} // namespace
} // namespace gopim::sim
