/**
 * @file
 * Unit tests for the ensemble/lazy regressors added beyond the Fig. 9
 * core zoo: kNN and random forest.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/forest.hh"
#include "ml/knn.hh"
#include "ml/metrics.hh"
#include "ml/tree.hh"

namespace gopim::ml {
namespace {

Dataset
waveData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Dataset data;
    for (size_t i = 0; i < n; ++i) {
        const float x0 = static_cast<float>(rng.uniform(-3.0, 3.0));
        const float x1 = static_cast<float>(rng.uniform(-3.0, 3.0));
        data.append({x0, x1}, std::sin(x0) + 0.5 * std::cos(2 * x1));
    }
    return data;
}

TEST(Knn, ExactNeighborRecovery)
{
    Dataset d;
    d.append({0.0f}, 1.0);
    d.append({10.0f}, 2.0);
    d.append({20.0f}, 3.0);
    KnnRegressor knn({.k = 1});
    knn.fit(d);
    EXPECT_DOUBLE_EQ(knn.predict({0.1f}), 1.0);
    EXPECT_DOUBLE_EQ(knn.predict({19.0f}), 3.0);
}

TEST(Knn, KLargerThanDatasetClamps)
{
    Dataset d;
    d.append({0.0f}, 2.0);
    d.append({1.0f}, 4.0);
    KnnRegressor knn({.k = 50, .distanceWeighted = false});
    knn.fit(d);
    EXPECT_DOUBLE_EQ(knn.predict({0.5f}), 3.0); // plain mean of both
}

TEST(Knn, DistanceWeightingPullsTowardNearest)
{
    Dataset d;
    d.append({0.0f}, 0.0);
    d.append({1.0f}, 10.0);
    KnnRegressor weighted({.k = 2, .distanceWeighted = true});
    KnnRegressor plain({.k = 2, .distanceWeighted = false});
    weighted.fit(d);
    plain.fit(d);
    EXPECT_DOUBLE_EQ(plain.predict({0.1f}), 5.0);
    EXPECT_LT(weighted.predict({0.1f}), 2.0);
}

TEST(Knn, InterpolatesSmoothFunction)
{
    const Dataset train = waveData(800, 3);
    const Dataset test = waveData(200, 4);
    KnnRegressor knn({.k = 5});
    knn.fit(train);
    EXPECT_LT(rmse(test.y, knn.predictAll(test.x)), 0.2);
}

TEST(Forest, BeatsSingleTreeOnNoisyData)
{
    Rng rng(5);
    Dataset train = waveData(600, 7);
    for (auto &y : train.y)
        y += rng.normal(0.0, 0.3); // label noise
    const Dataset test = waveData(200, 8);

    DecisionTreeRegressor tree(
        {.maxDepth = 12, .minSamplesLeaf = 1,
         .minImpurityDecrease = 1e-12});
    tree.fit(train);
    RandomForestRegressor forest({.numTrees = 40});
    forest.fit(train);
    EXPECT_EQ(forest.treeCount(), 40u);

    const double treeRmse = rmse(test.y, tree.predictAll(test.x));
    const double forestRmse = rmse(test.y, forest.predictAll(test.x));
    // Bagging averages out the noise a deep single tree memorizes.
    EXPECT_LT(forestRmse, treeRmse);
}

TEST(Forest, DeterministicForSameSeed)
{
    const Dataset d = waveData(100, 9);
    RandomForestRegressor a({.numTrees = 10, .seed = 42});
    RandomForestRegressor b({.numTrees = 10, .seed = 42});
    a.fit(d);
    b.fit(d);
    EXPECT_DOUBLE_EQ(a.predict({0.5f, 0.5f}), b.predict({0.5f, 0.5f}));
}

TEST(Forest, NamesAndInterface)
{
    EXPECT_EQ(RandomForestRegressor().name(), "RF");
    EXPECT_EQ(KnnRegressor().name(), "KNN");
}

} // namespace
} // namespace gopim::ml
