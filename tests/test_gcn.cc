/**
 * @file
 * Unit tests for the GCN engine: Table IV model configs, workload
 * derivations, the stage time model's calibrated properties (AG >> CO
 * ratios, ISU's effect on the fixed update time, ReFlip's reload
 * penalty), and the functional trainer's learning behavior.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gcn/model.hh"
#include "gcn/time_model.hh"
#include "gcn/trainer.hh"
#include "gcn/workload.hh"
#include "graph/generators.hh"
#include "reram/config.hh"

namespace gopim::gcn {
namespace {

using pipeline::StageType;

TEST(Model, TableFourConfigs)
{
    const auto ddi = paperModelFor("ddi");
    EXPECT_EQ(ddi.numLayers, 2u);
    EXPECT_DOUBLE_EQ(ddi.learningRate, 0.005);
    EXPECT_EQ(ddi.inputChannels, 256u);
    EXPECT_EQ(ddi.outputChannels, 256u);

    const auto proteins = paperModelFor("proteins");
    EXPECT_EQ(proteins.numLayers, 3u);
    EXPECT_EQ(proteins.inputChannels, 8u);
    EXPECT_EQ(proteins.outputChannels, 112u);
    EXPECT_EQ(proteins.numStages(), 12u);
}

TEST(Model, LayerDims)
{
    const auto arxiv = paperModelFor("arxiv");
    EXPECT_EQ(arxiv.layerDims(1), std::make_pair(128u, 256u));
    EXPECT_EQ(arxiv.layerDims(2), std::make_pair(256u, 256u));
    EXPECT_EQ(arxiv.layerDims(3), std::make_pair(256u, 40u));
}

TEST(Workload, PaperDefaultAndMicroBatches)
{
    const auto w = Workload::paperDefault("ddi");
    EXPECT_EQ(w.microBatchSize, 64u);
    EXPECT_EQ(w.dataset.numVertices, 4267u);
    EXPECT_EQ(w.microBatchesPerEpoch(), 67u); // ceil(4267/64)
}

TEST(Workload, PolicyThetaResolution)
{
    const auto ddi = graph::DatasetCatalog::byName("ddi");
    const auto cora = graph::DatasetCatalog::byName("Cora");

    ExecutionPolicy off;
    EXPECT_DOUBLE_EQ(off.resolvedTheta(ddi), 1.0);

    ExecutionPolicy adaptive;
    adaptive.selectiveUpdate = true;
    EXPECT_DOUBLE_EQ(adaptive.resolvedTheta(ddi), 0.5);  // dense
    EXPECT_DOUBLE_EQ(adaptive.resolvedTheta(cora), 0.8); // sparse

    ExecutionPolicy fixed;
    fixed.selectiveUpdate = true;
    fixed.theta = 0.42;
    EXPECT_DOUBLE_EQ(fixed.resolvedTheta(ddi), 0.42);
}

class TimeModelTest : public ::testing::Test
{
  protected:
    TimeModelTest()
        : cfg_(reram::AcceleratorConfig::paperDefault()), model_(cfg_)
    {
    }

    StageCost
    stageCost(const std::string &dataset, StageType type, uint32_t layer,
              const ExecutionPolicy &policy = {})
    {
        const auto w = Workload::paperDefault(dataset);
        const auto profile = VertexProfile::build(w.dataset, 1);
        const auto artifacts = MappingArtifacts::build(
            profile, policy, w.dataset, cfg_.crossbar.rows);
        return model_.cost(w, policy, artifacts, {type, layer});
    }

    reram::AcceleratorConfig cfg_;
    StageTimeModel model_;
};

TEST_F(TimeModelTest, AggregationDominatesCombination)
{
    // The paper reports AG:CO ratios from single digits (ddi) up to
    // 888-1595x (products); check the ordering and rough magnitudes.
    const double coDdi =
        stageCost("ddi", StageType::Combination, 1).totalNs();
    const double agDdi =
        stageCost("ddi", StageType::Aggregation, 1).totalNs();
    EXPECT_GT(agDdi, coDdi * 2.0);
    EXPECT_LT(agDdi, coDdi * 20.0);

    const double coProducts =
        stageCost("products", StageType::Combination, 1).totalNs();
    const double agProducts =
        stageCost("products", StageType::Aggregation, 1).totalNs();
    const double ratio = agProducts / coProducts;
    EXPECT_GT(ratio, 800.0);
    EXPECT_LT(ratio, 1700.0);
}

TEST_F(TimeModelTest, TableSixFootprints)
{
    const auto co = stageCost("ddi", StageType::Combination, 1);
    const auto ag = stageCost("ddi", StageType::Aggregation, 1);
    const auto lc = stageCost("ddi", StageType::LossCompute, 2);
    const auto gc = stageCost("ddi", StageType::GradientCompute, 2);
    EXPECT_EQ(co.crossbarsPerReplica, 32u);
    EXPECT_EQ(ag.crossbarsPerReplica, 534u);
    EXPECT_EQ(lc.crossbarsPerReplica, 32u);
    EXPECT_EQ(gc.crossbarsPerReplica, 534u);
}

TEST_F(TimeModelTest, IsuReducesAggregationFixedTime)
{
    ExecutionPolicy vanilla; // index mapping, full updates

    ExecutionPolicy isu;
    isu.mapStrategy = mapping::VertexMapStrategy::Interleaved;
    isu.selectiveUpdate = true;

    const auto agVanilla =
        stageCost("ddi", StageType::Aggregation, 1, vanilla);
    const auto agIsu = stageCost("ddi", StageType::Aggregation, 1, isu);

    EXPECT_LT(agIsu.fixedNs, agVanilla.fixedNs * 0.7);
    // Compute time is unaffected by the update policy.
    EXPECT_DOUBLE_EQ(agIsu.scalableNs, agVanilla.scalableNs);
    // Fewer writes also means fewer write events for energy.
    EXPECT_LT(agIsu.rowWritesPerMb, agVanilla.rowWritesPerMb);
}

TEST_F(TimeModelTest, OsuDoesNotReduceUpdateBound)
{
    // Selective updating with index mapping (OSU): the per-crossbar
    // maximum stays near the full 64 rows because consecutive ids
    // share a crossbar and hubs cluster arbitrarily (Fig. 7).
    ExecutionPolicy osu;
    osu.selectiveUpdate = true; // index mapping stays default

    ExecutionPolicy isu = osu;
    isu.mapStrategy = mapping::VertexMapStrategy::Interleaved;

    const auto agOsu = stageCost("ddi", StageType::Aggregation, 1, osu);
    const auto agIsu = stageCost("ddi", StageType::Aggregation, 1, isu);
    EXPECT_GT(agOsu.fixedNs, agIsu.fixedNs * 1.3);
}

TEST_F(TimeModelTest, ReflipReloadPenaltyScalesWithDensity)
{
    ExecutionPolicy reflip;
    reflip.hybridReload = true;

    const auto agPlainDdi =
        stageCost("ddi", StageType::Aggregation, 1);
    const auto agReflipDdi =
        stageCost("ddi", StageType::Aggregation, 1, reflip);
    const auto agPlainCollab =
        stageCost("collab", StageType::Aggregation, 1);
    const auto agReflipCollab =
        stageCost("collab", StageType::Aggregation, 1, reflip);

    const double penaltyDdi =
        agReflipDdi.totalNs() / agPlainDdi.totalNs();
    const double penaltyCollab =
        agReflipCollab.totalNs() / agPlainCollab.totalNs();
    // ddi (avg degree 500) must hurt clearly more than collab (8.2),
    // whose reloads amortize over its far larger micro-batch count.
    EXPECT_GT(penaltyDdi, 1.5);
    EXPECT_LT(penaltyCollab, 1.1);
}

TEST_F(TimeModelTest, EdgePruningScalesAggregationCompute)
{
    ExecutionPolicy pruned;
    pruned.edgeKeepFraction = 0.5;
    const auto full = stageCost("collab", StageType::Aggregation, 1);
    const auto half =
        stageCost("collab", StageType::Aggregation, 1, pruned);
    EXPECT_NEAR(half.scalableNs, full.scalableNs * 0.5, 1e-6);
}

TEST_F(TimeModelTest, AllCostsCoversAllStages)
{
    const auto w = Workload::paperDefault("arxiv");
    const auto profile = VertexProfile::build(w.dataset, 1);
    ExecutionPolicy policy;
    const auto artifacts = MappingArtifacts::build(
        profile, policy, w.dataset, cfg_.crossbar.rows);
    const auto costs = model_.allCosts(w, policy, artifacts);
    EXPECT_EQ(costs.size(), 12u);
    for (const auto &c : costs) {
        EXPECT_GT(c.totalNs(), 0.0);
        EXPECT_GT(c.crossbarsPerReplica, 0u);
    }
}

TEST_F(TimeModelTest, FullUpdateApproxMatchesBuiltArtifacts)
{
    const auto w = Workload::paperDefault("ddi");
    const auto profile = VertexProfile::build(w.dataset, 1);
    ExecutionPolicy policy; // no selective updating
    const auto built = MappingArtifacts::build(
        profile, policy, w.dataset, cfg_.crossbar.rows);
    const auto approx = MappingArtifacts::fullUpdateApprox(
        w.dataset.numVertices, cfg_.crossbar.rows);
    EXPECT_EQ(built.assignment.numGroups, approx.assignment.numGroups);
    EXPECT_DOUBLE_EQ(built.epochUpdateSlots, approx.epochUpdateSlots);
    EXPECT_DOUBLE_EQ(built.updateFraction, approx.updateFraction);
}

class TrainerTest : public ::testing::Test
{
  protected:
    TrainerTest()
    {
        Rng rng(77);
        data_ = graph::degreeCorrectedPartition(600, 3, 16.0, 2.1,
                                                0.05, rng);
    }

    graph::LabeledGraph data_;
};

TEST_F(TrainerTest, LossDecreasesAndBeatsChance)
{
    TrainerConfig cfg;
    cfg.epochs = 60;
    FunctionalTrainer trainer(data_, cfg);
    const auto result = trainer.train({});
    ASSERT_EQ(result.lossHistory.size(), 60u);
    EXPECT_LT(result.lossHistory.back(),
              result.lossHistory.front() * 0.7);
    // 3 classes -> chance is ~0.33.
    EXPECT_GT(result.bestTestAccuracy, 0.55);
}

TEST_F(TrainerTest, SelectiveUpdatingCostsLittleAccuracy)
{
    TrainerConfig cfg;
    cfg.epochs = 60;
    FunctionalTrainer trainer(data_, cfg);

    const auto full = trainer.train({});
    const auto selective = trainer.train(
        {.enabled = true, .theta = 0.5, .coldPeriod = 20});

    // Table V: the accuracy impact of ISU stays within a few points
    // (and is sometimes positive).
    EXPECT_GT(selective.bestTestAccuracy,
              full.bestTestAccuracy - 0.08);
}

TEST_F(TrainerTest, TinyThetaHurtsMore)
{
    TrainerConfig cfg;
    cfg.epochs = 60;
    FunctionalTrainer trainer(data_, cfg);
    const auto harsh = trainer.train(
        {.enabled = true, .theta = 0.02, .coldPeriod = 1000});
    const auto mild = trainer.train(
        {.enabled = true, .theta = 0.8, .coldPeriod = 20});
    EXPECT_GE(mild.bestTestAccuracy, harsh.bestTestAccuracy - 0.02);
}

TEST_F(TrainerTest, ThreeLayerModelLearns)
{
    TrainerConfig cfg;
    cfg.epochs = 60;
    cfg.numLayers = 3; // Table IV's depth for most datasets
    FunctionalTrainer trainer(data_, cfg);
    const auto result = trainer.train({});
    EXPECT_EQ(result.lossHistory.size(), 60u);
    EXPECT_LT(result.lossHistory.back(),
              result.lossHistory.front() * 0.8);
    EXPECT_GT(result.bestTestAccuracy, 0.5);
}

TEST_F(TrainerTest, ThreeLayerSelectiveUpdatingStaysClose)
{
    TrainerConfig cfg;
    cfg.epochs = 60;
    cfg.numLayers = 3;
    FunctionalTrainer trainer(data_, cfg);
    const auto full = trainer.train({});
    const auto selective = trainer.train(
        {.enabled = true, .theta = 0.5, .coldPeriod = 20});
    EXPECT_GT(selective.bestTestAccuracy,
              full.bestTestAccuracy - 0.08);
}

TEST_F(TrainerTest, SingleLayerDegeneratesToLinear)
{
    TrainerConfig cfg;
    cfg.epochs = 40;
    cfg.numLayers = 1;
    FunctionalTrainer trainer(data_, cfg);
    const auto result = trainer.train({});
    // Even a linear model on aggregated features beats chance.
    EXPECT_GT(result.bestTestAccuracy, 0.4);
}

TEST_F(TrainerTest, DropoutStillLearnsAndRegularizes)
{
    TrainerConfig cfg;
    cfg.epochs = 60;
    cfg.dropout = 0.5; // Table IV uses 0.5 for half the models
    FunctionalTrainer trainer(data_, cfg);
    const auto result = trainer.train({});
    EXPECT_GT(result.bestTestAccuracy, 0.5);

    // Dropout changes the optimization trajectory.
    TrainerConfig plain = cfg;
    plain.dropout = 0.0;
    FunctionalTrainer plainTrainer(data_, plain);
    const auto plainResult = plainTrainer.train({});
    EXPECT_NE(result.finalTrainLoss, plainResult.finalTrainLoss);
}

TEST_F(TrainerTest, DeterministicForSameConfig)
{
    TrainerConfig cfg;
    cfg.epochs = 20;
    cfg.dropout = 0.3;
    FunctionalTrainer a(data_, cfg), b(data_, cfg);
    const auto ra = a.train({});
    const auto rb = b.train({});
    EXPECT_DOUBLE_EQ(ra.finalTestAccuracy, rb.finalTestAccuracy);
    EXPECT_DOUBLE_EQ(ra.finalTrainLoss, rb.finalTrainLoss);
}

TEST(TrainerAggregate, MatchesHandComputedNormalization)
{
    // Path graph 0-1 plus isolated vertex 2.
    graph::LabeledGraph data;
    data.graph = graph::Graph::fromEdges(3, {{0, 1}});
    data.labels = {0, 1, 0};
    data.numClasses = 2;

    TrainerConfig cfg;
    FunctionalTrainer trainer(data, cfg);

    tensor::Matrix ones(3, 1, 1.0f);
    const auto agg = trainer.aggregate(ones);
    // Vertices 0,1: self (1/2) + neighbor (1/2) = 1. Vertex 2: self
    // loop only with degree 0 -> 1.
    EXPECT_NEAR(agg(0, 0), 1.0f, 1e-5f);
    EXPECT_NEAR(agg(1, 0), 1.0f, 1e-5f);
    EXPECT_NEAR(agg(2, 0), 1.0f, 1e-5f);

    // A non-uniform signal: x = [1, 0, 0] -> row1 gets 1/2 from its
    // neighbor, row0 keeps 1/2 of itself.
    tensor::Matrix x(3, 1, 0.0f);
    x(0, 0) = 1.0f;
    const auto agg2 = trainer.aggregate(x);
    EXPECT_NEAR(agg2(0, 0), 0.5f, 1e-5f);
    EXPECT_NEAR(agg2(1, 0), 0.5f, 1e-5f);
    EXPECT_NEAR(agg2(2, 0), 0.0f, 1e-5f);
}

TEST_F(TrainerTest, MasksPartitionVertices)
{
    TrainerConfig cfg;
    FunctionalTrainer trainer(data_, cfg);
    EXPECT_EQ(trainer.trainVertices().size() +
                  trainer.testVertices().size(),
              data_.graph.numVertices());
}

} // namespace
} // namespace gopim::gcn
