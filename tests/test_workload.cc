/**
 * @file
 * Workload-family subsystem tests: registry spellings, plan
 * determinism, the PyGim partitioning properties, the gcn-train
 * family's bit-identity with the accelerator path, per-family disk
 * trace replay, the serve-layer request schema, and the StreamBuilder
 * misuse diagnostics (each failure mode has a distinct message).
 */

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/accelerator.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "graph/generators.hh"
#include "isa/isa.hh"
#include "isa/trace_io.hh"
#include "serve/request.hh"
#include "sim/replay.hh"
#include "workload/cnn_infer.hh"
#include "workload/gnn_infer.hh"
#include "workload/runner.hh"

using namespace gopim;

namespace {

json::Value
parseJson(const std::string &text)
{
    json::Value v;
    std::string error;
    EXPECT_TRUE(json::Value::parse(text, &v, &error)) << error;
    return v;
}

graph::Graph
testGraph(uint64_t vertices, uint64_t seed)
{
    Rng rng(seed);
    const auto degrees = graph::powerLawDegreeSequence(
        vertices, 12.0, 2.1, 400, rng);
    return graph::chungLu(degrees, rng);
}

} // namespace

TEST(WorkloadRegistry, CanonicalAndAliasSpellingsRoundTrip)
{
    for (const auto &info : workload::familyRegistry()) {
        workload::FamilyKind kind;
        EXPECT_TRUE(workload::tryFamilyFromString(info.canonical,
                                                  &kind));
        EXPECT_EQ(kind, info.kind);
        EXPECT_TRUE(workload::tryFamilyFromString(info.alias, &kind));
        EXPECT_EQ(kind, info.kind);
        EXPECT_EQ(workload::toString(info.kind), info.canonical);
        EXPECT_EQ(workload::familyFor(info.kind).kind(), info.kind);
        EXPECT_EQ(workload::familyFor(info.kind).name(),
                  info.canonical);
    }
    workload::FamilyKind kind;
    EXPECT_FALSE(workload::tryFamilyFromString("bogus", &kind));
    EXPECT_NE(workload::familyNameList().find("gnn-infer"),
              std::string::npos);
    EXPECT_NE(workload::familyFlagHelp().find("cnn-infer"),
              std::string::npos);
}

TEST(WorkloadRegistry, PartitioningSpellingsRoundTrip)
{
    for (const auto &info : workload::partitionRegistry()) {
        workload::Partitioning strategy;
        EXPECT_TRUE(workload::tryPartitioningFromString(
            info.canonical, &strategy));
        EXPECT_EQ(strategy, info.kind);
        EXPECT_TRUE(
            workload::tryPartitioningFromString(info.alias,
                                                &strategy));
        EXPECT_EQ(strategy, info.kind);
        EXPECT_EQ(workload::toString(info.kind), info.canonical);
    }
    workload::Partitioning strategy;
    EXPECT_FALSE(
        workload::tryPartitioningFromString("diagonal", &strategy));
    EXPECT_NE(workload::partitionNameList().find("nnz-balanced"),
              std::string::npos);
}

TEST(WorkloadRegistry, UnknownNamesAreFatalInTheCliForm)
{
    EXPECT_DEATH(workload::familyFromString("bogus"),
                 "unknown workload family");
    EXPECT_DEATH(workload::partitioningFromString("diagonal"),
                 "unknown partitioning");
}

TEST(Partitioning, ProfilesMeasureTheExpectedMergeAndBalance)
{
    const graph::Graph g = testGraph(4096, 7);
    const uint32_t parts = 16;

    const auto row = workload::profilePartitioning(
        g, workload::Partitioning::RowSplit, parts);
    const auto col = workload::profilePartitioning(
        g, workload::Partitioning::ColSplit, parts);
    const auto nnz = workload::profilePartitioning(
        g, workload::Partitioning::NnzBalanced, parts);

    for (const auto &p : {row, col, nnz}) {
        EXPECT_EQ(p.parts, parts);
        EXPECT_GE(p.imbalance, 1.0);
    }
    // Row split leaves no merge; col split pays a log-depth reduction
    // tree; LPT pays one gather pass.
    EXPECT_EQ(row.mergeWindows, 0u);
    EXPECT_EQ(col.mergeWindows, 4u); // ceil(log2 16)
    EXPECT_EQ(nnz.mergeWindows, 1u);
    // LPT balances at least as well as contiguous ranges on a
    // skewed-degree graph.
    EXPECT_LE(nnz.imbalance, row.imbalance + 1e-12);
}

TEST(Partitioning, ProfilesAreDeterministic)
{
    const graph::Graph g = testGraph(2048, 11);
    for (const auto &info : workload::partitionRegistry()) {
        const auto a =
            workload::profilePartitioning(g, info.kind, 8);
        const auto b =
            workload::profilePartitioning(g, info.kind, 8);
        EXPECT_EQ(a.imbalance, b.imbalance);
        EXPECT_EQ(a.mergeWindows, b.mergeWindows);
    }
}

TEST(WorkloadPlans, AreDeterministicPerSpec)
{
    const auto hw = reram::AcceleratorConfig::paperDefault();
    workload::WorkloadSpec spec;
    spec.dataset = "Cora";
    for (const auto &family : {workload::FamilyKind::GcnTrain,
                               workload::FamilyKind::GnnInfer}) {
        spec.family = family;
        const auto a = workload::familyFor(family).plan(spec, hw);
        const auto b = workload::familyFor(family).plan(spec, hw);
        ASSERT_EQ(a.numStages(), b.numStages());
        EXPECT_EQ(a.scalableTimesNs, b.scalableTimesNs);
        EXPECT_EQ(a.fixedTimesNs, b.fixedTimesNs);
        EXPECT_EQ(a.crossbarsPerReplica, b.crossbarsPerReplica);
        EXPECT_EQ(a.totalMicroBatches, b.totalMicroBatches);
    }
}

TEST(WorkloadPlans, CnnPresetsCompileToOneStagePerConvLayer)
{
    const auto hw = reram::AcceleratorConfig::paperDefault();
    for (const auto &preset : workload::cnnPresetRegistry()) {
        workload::WorkloadSpec spec;
        spec.family = workload::FamilyKind::CnnInfer;
        spec.dataset = preset.name;
        const auto plan =
            workload::familyFor(spec.family).plan(spec, hw);
        EXPECT_EQ(plan.numStages(), preset.layers.size());
        for (size_t i = 0; i < plan.numStages(); ++i) {
            EXPECT_GT(plan.scalableTimesNs[i], 0.0);
            EXPECT_GE(plan.fixedTimesNs[i], 0.0);
            EXPECT_GT(plan.crossbarsPerReplica[i], 0u);
        }
    }
    EXPECT_NE(workload::findCnnPreset(workload::defaultCnnPreset()),
              nullptr);
    EXPECT_EQ(workload::findCnnPreset("nope"), nullptr);
}

TEST(WorkloadPlans, FamiliesRejectBadSpecs)
{
    workload::WorkloadSpec spec;
    spec.family = workload::FamilyKind::GnnInfer;
    spec.dataset = "not-a-graph";
    EXPECT_NE(workload::familyFor(spec.family).validateSpec(spec),
              "");
    spec.dataset = "Cora";
    spec.microBatchSize = 0;
    EXPECT_NE(workload::familyFor(spec.family).validateSpec(spec),
              "");
    spec.microBatchSize = 64;
    EXPECT_EQ(workload::familyFor(spec.family).validateSpec(spec),
              "");
}

TEST(WorkloadRunner, GcnTrainFamilyMatchesTheAcceleratorPath)
{
    const auto hw = reram::AcceleratorConfig::paperDefault();
    const auto system = core::makeSystem(core::SystemKind::GoPim);

    workload::WorkloadSpec spec;
    spec.family = workload::FamilyKind::GcnTrain;
    spec.dataset = "ddi";
    const auto familyRun = workload::runFamily(spec, system, hw);

    const auto w = gcn::Workload::paperDefault("ddi");
    const auto profile =
        gcn::VertexProfile::build(w.dataset, w.seed);
    const core::Accelerator accel(hw, system);
    const auto accelRun = accel.run(w, profile);

    EXPECT_EQ(familyRun.makespanNs, accelRun.makespanNs);
    EXPECT_EQ(familyRun.energyPj, accelRun.energyPj);
    EXPECT_EQ(familyRun.idleFraction, accelRun.idleFraction);
    EXPECT_EQ(familyRun.blockedNs, accelRun.blockedNs);
}

TEST(WorkloadRunner, PerturbedEstimatesAreSeededAndBounded)
{
    const auto hw = reram::AcceleratorConfig::paperDefault();
    workload::WorkloadSpec spec;
    spec.family = workload::FamilyKind::GnnInfer;
    spec.dataset = "Cora";
    const auto plan = workload::familyFor(spec.family).plan(spec, hw);

    const auto a = workload::perturbedEstimates(plan, 0.2, 42);
    const auto b = workload::perturbedEstimates(plan, 0.2, 42);
    const auto c = workload::perturbedEstimates(plan, 0.2, 43);
    ASSERT_EQ(a.size(), plan.numStages());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    for (size_t i = 0; i < a.size(); ++i) {
        const double exact =
            plan.scalableTimesNs[i] + plan.fixedTimesNs[i];
        EXPECT_GE(a[i], exact * 0.8 - 1e-9);
        EXPECT_LE(a[i], exact * 1.2 + 1e-9);
    }

    // Estimates steer allocation only; the run itself still reports
    // exact model times, so a mildly-wrong predictor perturbs the
    // makespan, not the accounting.
    const auto system = core::makeSystem(core::SystemKind::GoPim);
    const auto exactRun = workload::runPlan(plan, system, hw);
    const auto estRun = workload::runPlan(plan, system, hw, a);
    EXPECT_GT(estRun.makespanNs, 0.0);
    EXPECT_GE(estRun.makespanNs, exactRun.makespanNs * 0.5);
}

TEST(WorkloadReplay, EveryFamilyReplaysBitIdenticallyFromDisk)
{
    const auto hw = reram::AcceleratorConfig::paperDefault();
    std::vector<workload::WorkloadSpec> specs(3);
    specs[0].family = workload::FamilyKind::GcnTrain;
    specs[0].dataset = "ddi";
    specs[1].family = workload::FamilyKind::GnnInfer;
    specs[1].dataset = "Cora";
    specs[1].partition = workload::Partitioning::NnzBalanced;
    specs[2].family = workload::FamilyKind::CnnInfer;
    specs[2].dataset = "mnist";

    // Live event-driven pass with the recorder attached.
    core::SystemConfig system =
        core::makeSystem(core::SystemKind::GoPim);
    system.sim.engine = sim::EngineKind::EventDriven;
    system.sim.isaRecorder = std::make_shared<isa::StreamRecorder>();
    std::vector<core::RunResult> live;
    for (const auto &spec : specs)
        live.push_back(workload::runFamily(spec, system, hw));

    // Round-trip the bundle through an actual file.
    const std::string path =
        testing::TempDir() + "/workload_families.gpis";
    {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good());
        out << isa::encodeBundle(system.sim.isaRecorder->bundle());
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    isa::TraceBundle decoded;
    std::string error;
    ASSERT_TRUE(isa::decodeBundle(bytes, &decoded, &error)) << error;

    core::SystemConfig replaying =
        core::makeSystem(core::SystemKind::GoPim);
    replaying.sim.engine = sim::EngineKind::Replay;
    replaying.sim.engineOverride =
        std::make_shared<sim::ReplayEngine>(std::move(decoded));
    for (size_t i = 0; i < specs.size(); ++i) {
        const auto replayed =
            workload::runFamily(specs[i], replaying, hw);
        EXPECT_EQ(replayed.makespanNs, live[i].makespanNs)
            << workload::toString(specs[i].family);
        EXPECT_EQ(replayed.energyPj, live[i].energyPj);
        EXPECT_EQ(replayed.eventsProcessed, live[i].eventsProcessed);
        EXPECT_EQ(replayed.idleFraction, live[i].idleFraction);
        EXPECT_EQ(replayed.blockedNs, live[i].blockedNs);
    }
}

TEST(ServeWorkloads, RequestSchemaCoversFamiliesAndPartitions)
{
    const serve::Request defaults;
    serve::Request out;

    auto err = serve::parseRequest(
        parseJson(R"({"workload":"gnn","dataset":"Cora",)"
                  R"("partition":"nnz"})"),
        defaults, &out);
    ASSERT_TRUE(err.ok()) << err.message;
    EXPECT_EQ(out.family, workload::FamilyKind::GnnInfer);
    EXPECT_EQ(out.partition, workload::Partitioning::NnzBalanced);

    // cnn-infer without a dataset key gets the default preset, not
    // the server's default graph.
    err = serve::parseRequest(parseJson(R"({"workload":"cnn"})"),
                              defaults, &out);
    ASSERT_TRUE(err.ok()) << err.message;
    EXPECT_EQ(out.dataset, workload::defaultCnnPreset());

    err = serve::parseRequest(
        parseJson(R"({"workload":"cnn","dataset":"zzz"})"), defaults,
        &out);
    EXPECT_EQ(err.code, "unknown_name");
    EXPECT_EQ(err.field, "dataset");
    EXPECT_NE(err.message.find("preset"), std::string::npos);

    err = serve::parseRequest(parseJson(R"({"workload":"bogus"})"),
                              defaults, &out);
    EXPECT_EQ(err.code, "unknown_name");
    EXPECT_EQ(err.field, "workload");

    err = serve::parseRequest(
        parseJson(R"({"workload":"gnn","partition":"diagonal"})"),
        defaults, &out);
    EXPECT_EQ(err.code, "unknown_name");
    EXPECT_EQ(err.field, "partition");

    // Fault knobs only make sense while training — order of keys
    // must not matter for the rejection.
    err = serve::parseRequest(
        parseJson(R"({"stuck_on_rate":0.01,"workload":"gnn"})"),
        defaults, &out);
    EXPECT_EQ(err.code, "bad_request");
    EXPECT_EQ(err.field, "stuck_on_rate");

    // Family-specific range validation surfaces as out_of_range at
    // resolve time instead of a worker fatal().
    err = serve::parseRequest(
        parseJson(R"({"workload":"gnn","micro_batch":100000})"),
        defaults, &out);
    ASSERT_TRUE(err.ok()) << err.message;
    serve::ResolvedRequest resolved;
    err = serve::resolveRequest(out, &resolved);
    EXPECT_EQ(err.code, "out_of_range");
}

TEST(ServeWorkloads, CacheKeysSeparateFamiliesAndPartitions)
{
    const serve::Request defaults;
    const auto hw = reram::AcceleratorConfig::paperDefault();
    const auto keyOf = [&](const std::string &body) {
        serve::Request req;
        auto err =
            serve::parseRequest(parseJson(body), defaults, &req);
        EXPECT_TRUE(err.ok()) << err.message;
        serve::ResolvedRequest resolved;
        err = serve::resolveRequest(req, &resolved);
        EXPECT_TRUE(err.ok()) << err.message;
        return serve::cacheKey(resolved, hw);
    };

    const auto train = keyOf(R"({"dataset":"Cora"})");
    const auto gnnRow =
        keyOf(R"({"workload":"gnn-infer","dataset":"Cora"})");
    const auto gnnNnz = keyOf(
        R"({"workload":"gnn","dataset":"Cora","partition":"nnz"})");
    const auto gnnNnzAlias =
        keyOf(R"({"partition":"nnz-balanced","dataset":"Cora",)"
              R"("workload":"gnn-infer"})");
    const auto cnn = keyOf(R"({"workload":"cnn"})");

    // Family and partitioning both key; spellings and key order do
    // not.
    EXPECT_NE(train, gnnRow);
    EXPECT_NE(gnnRow, gnnNnz);
    EXPECT_EQ(gnnNnz, gnnNnzAlias);
    EXPECT_NE(cnn, train);
    // The partitioning field must not split cache entries for
    // families that ignore it.
    EXPECT_EQ(keyOf(R"({"dataset":"Cora","partition":"nnz"})"),
              train);
}

TEST(StreamBuilder, MisuseFailsWithDistinctDiagnostics)
{
    // Three different mistakes must produce three different
    // messages, so a failing generator pinpoints its bug.
    EXPECT_DEATH(isa::StreamBuilder("empty").microBatches(4).build(),
                 "desc has no stages");
    EXPECT_DEATH(
        isa::StreamBuilder("no-mb").stage(10.0).microBatches(0).build(),
        "need at least one micro-batch");
    EXPECT_DEATH(isa::StreamBuilder("bad-retry")
                     .stage(10.0)
                     .microBatches(4)
                     .writeRetry(1.5, 0.1)
                     .build(),
                 "writeRetryProb must lie in");
}
