/**
 * @file
 * Unit tests for the allocation module: the indexed max-heap, the
 * baseline policies, Algorithm 1's greedy allocator (including
 * optimality against exhaustive search on small instances and the
 * Fig. 5 example), and the bottleneck-sweep reference.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "alloc/allocator.hh"
#include "alloc/basic.hh"
#include "alloc/dp.hh"
#include "alloc/greedy_heap.hh"
#include "common/rng.hh"
#include "pipeline/stage.hh"

namespace gopim::alloc {
namespace {

using pipeline::Stage;
using pipeline::StageType;

/** Two-stage problem modeling the paper's Fig. 5 setup. */
AllocationProblem
figure5Problem()
{
    AllocationProblem p;
    p.stages = {{StageType::Combination, 1}, {StageType::Aggregation, 1}};
    p.scalableTimesNs = {1.0, 6.0};
    p.fixedTimesNs = {0.0, 0.0};
    p.crossbarsPerReplica = {1, 1};
    p.spareCrossbars = 3;
    p.numMicroBatches = 2;
    return p;
}

/** A 4-stage problem with diverse costs for property tests. */
AllocationProblem
mixedProblem()
{
    AllocationProblem p;
    p.stages = {{StageType::Combination, 1},
                {StageType::Aggregation, 1},
                {StageType::LossCompute, 1},
                {StageType::GradientCompute, 1}};
    p.scalableTimesNs = {10.0, 600.0, 10.0, 50.0};
    p.fixedTimesNs = {0.0, 5.0, 0.0, 1.0};
    p.crossbarsPerReplica = {2, 30, 2, 15};
    p.spareCrossbars = 200;
    p.numMicroBatches = 8;
    return p;
}

TEST(Heap, PushTopUpdate)
{
    IndexedMaxHeap heap(5);
    EXPECT_TRUE(heap.empty());
    heap.push(0, 1.0);
    heap.push(1, 5.0);
    heap.push(2, 3.0);
    EXPECT_EQ(heap.size(), 3u);
    EXPECT_EQ(heap.topId(), 1u);
    EXPECT_DOUBLE_EQ(heap.topKey(), 5.0);

    heap.updateKey(0, 10.0);
    EXPECT_EQ(heap.topId(), 0u);
    heap.updateKey(0, 0.5);
    EXPECT_EQ(heap.topId(), 1u);
    EXPECT_DOUBLE_EQ(heap.keyOf(0), 0.5);
}

TEST(Heap, RemoveMaintainsOrder)
{
    IndexedMaxHeap heap(4);
    heap.push(0, 4.0);
    heap.push(1, 3.0);
    heap.push(2, 2.0);
    heap.push(3, 1.0);
    heap.remove(0);
    EXPECT_EQ(heap.topId(), 1u);
    EXPECT_FALSE(heap.contains(0));
    heap.remove(1);
    EXPECT_EQ(heap.topId(), 2u);
    EXPECT_EQ(heap.size(), 2u);
}

TEST(Heap, StressAgainstSort)
{
    Rng rng(11);
    IndexedMaxHeap heap(100);
    std::vector<double> keys(100);
    for (size_t i = 0; i < 100; ++i) {
        keys[i] = rng.uniform();
        heap.push(i, keys[i]);
    }
    for (int round = 0; round < 200; ++round) {
        const size_t id = rng.uniformInt(uint64_t{100});
        keys[id] = rng.uniform();
        heap.updateKey(id, keys[id]);
        const size_t best =
            std::max_element(keys.begin(), keys.end()) - keys.begin();
        EXPECT_EQ(heap.topId(), best);
    }
}

TEST(Problem, StageTimeFormula)
{
    const auto p = mixedProblem();
    // fixed + scalable / replicas.
    EXPECT_DOUBLE_EQ(stageTimeNs(p, 1, 1), 605.0);
    EXPECT_DOUBLE_EQ(stageTimeNs(p, 1, 6), 105.0);
    EXPECT_DOUBLE_EQ(stageTimeNs(p, 0, 2), 5.0);
}

TEST(Problem, ValidateCatchesMismatch)
{
    auto p = mixedProblem();
    p.scalableTimesNs.pop_back();
    EXPECT_DEATH(p.validate(), "mismatch");
}

TEST(SerialAllocator, AllOnes)
{
    const auto result = SerialAllocator().allocate(mixedProblem());
    EXPECT_EQ(result.replicas,
              (std::vector<uint32_t>{1, 1, 1, 1}));
    EXPECT_EQ(result.totalCrossbars, 2u + 30 + 2 + 15);
}

TEST(FixedRatio, SplitsByStageClass)
{
    auto p = mixedProblem();
    p.spareCrossbars = 300;
    const auto result = FixedRatioAllocator(1.0, 2.0).allocate(p);
    // CO/LC share 1/6 of 300 = 50 each -> 25 extra replicas at cost 2.
    EXPECT_EQ(result.replicas[0], 26u);
    EXPECT_EQ(result.replicas[2], 26u);
    // AG gets 100 -> 3 extra at cost 30; GC gets 100 -> 6 extra at 15.
    EXPECT_EQ(result.replicas[1], 4u);
    EXPECT_EQ(result.replicas[3], 7u);
}

TEST(SpaceProportional, EqualExtraReplicasPerStage)
{
    auto p = mixedProblem();
    p.spareCrossbars = 490; // 10x the 49-crossbar footprint
    const auto result = SpaceProportionalAllocator().allocate(p);
    // Every stage's share buys the same extra replica count.
    EXPECT_EQ(result.replicas[0], result.replicas[1]);
    EXPECT_EQ(result.replicas[1], result.replicas[2]);
    EXPECT_EQ(result.replicas[2], result.replicas[3]);
    EXPECT_EQ(result.replicas[0], 11u);
}

TEST(CombinationOnly, OnlyCoStagesReplicated)
{
    const auto result =
        CombinationOnlyAllocator().allocate(mixedProblem());
    EXPECT_GT(result.replicas[0], 1u); // CO
    EXPECT_EQ(result.replicas[1], 1u); // AG
    EXPECT_EQ(result.replicas[2], 1u); // LC
    EXPECT_EQ(result.replicas[3], 1u); // GC
}

TEST(GreedyHeap, Figure5PicksAllReplicasForLongStage)
{
    // The paper's Fig. 5(c): the optimal choice gives all three spare
    // crossbars to stage 2 (makespan 16), beating ReGraphX's 1:2
    // split (makespan 18).
    const auto p = figure5Problem();
    const auto result = GreedyHeapAllocator(0, 0.0).allocate(p);
    EXPECT_EQ(result.replicas[0], 1u);
    EXPECT_EQ(result.replicas[1], 4u);
    // times {1, 1.5}: makespan = 2.5 + (2-1) * 1.5 = 4.0.
    EXPECT_DOUBLE_EQ(makespanNs(p, result.replicas), 4.0);

    const auto regraphx = FixedRatioAllocator(1.0, 2.0).allocate(p);
    EXPECT_LT(makespanNs(p, result.replicas),
              makespanNs(p, regraphx.replicas));
}

TEST(GreedyHeap, RespectsBudget)
{
    auto p = mixedProblem();
    const auto result = GreedyHeapAllocator(0, 0.0).allocate(p);
    uint64_t spent = 0;
    for (size_t i = 0; i < p.numStages(); ++i)
        spent += static_cast<uint64_t>(result.replicas[i] - 1) *
                 p.crossbarsPerReplica[i];
    EXPECT_LE(spent, p.spareCrossbars);
}

TEST(GreedyHeap, NeverWorseThanAnyBaseline)
{
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Rng rng(seed);
        AllocationProblem p;
        const size_t n = 2 + rng.uniformInt(uint64_t{4});
        for (size_t i = 0; i < n; ++i) {
            p.stages.push_back(
                {static_cast<StageType>(rng.uniformInt(uint64_t{4})),
                 1});
            p.scalableTimesNs.push_back(rng.uniform(1.0, 500.0));
            p.fixedTimesNs.push_back(rng.uniform(0.0, 5.0));
            p.crossbarsPerReplica.push_back(
                1 + rng.uniformInt(uint64_t{40}));
        }
        p.spareCrossbars = 100 + rng.uniformInt(uint64_t{400});
        p.numMicroBatches =
            1 + static_cast<uint32_t>(rng.uniformInt(uint64_t{30}));

        const double greedy = makespanNs(
            p, GreedyHeapAllocator(0, 0.0).allocate(p).replicas);
        const double serial =
            makespanNs(p, SerialAllocator().allocate(p).replicas);
        const double fixed = makespanNs(
            p, FixedRatioAllocator().allocate(p).replicas);
        const double space = makespanNs(
            p, SpaceProportionalAllocator().allocate(p).replicas);
        EXPECT_LE(greedy, serial + 1e-9) << "seed " << seed;
        EXPECT_LE(greedy, fixed + 1e-9) << "seed " << seed;
        EXPECT_LE(greedy, space + 1e-9) << "seed " << seed;
    }
}

TEST(GreedyHeap, NearOptimalOnSmallInstances)
{
    for (uint64_t seed : {10u, 20u, 30u}) {
        Rng rng(seed);
        AllocationProblem p;
        for (size_t i = 0; i < 3; ++i) {
            p.stages.push_back({StageType::Combination, 1});
            p.scalableTimesNs.push_back(rng.uniform(1.0, 100.0));
            p.fixedTimesNs.push_back(0.0);
            p.crossbarsPerReplica.push_back(
                1 + rng.uniformInt(uint64_t{5}));
        }
        p.spareCrossbars = 10 + rng.uniformInt(uint64_t{10});
        p.numMicroBatches = 4;

        const double greedy = makespanNs(
            p, GreedyHeapAllocator(8, 0.0).allocate(p).replicas);
        const double optimal = makespanNs(
            p, ExhaustiveAllocator(8).allocate(p).replicas);
        EXPECT_LE(greedy, optimal * 1.25) << "seed " << seed;
        EXPECT_GE(greedy, optimal - 1e-9) << "seed " << seed;
    }
}

TEST(GreedyHeap, StopToleranceLimitsAllocation)
{
    auto p = mixedProblem();
    p.spareCrossbars = 1'000'000;
    const auto eager = GreedyHeapAllocator(0, 0.0).allocate(p);
    const auto tolerant = GreedyHeapAllocator(0, 1e-3).allocate(p);
    EXPECT_LT(tolerant.totalCrossbars, eager.totalCrossbars);
}

TEST(GreedyHeap, ReplicaCapRespected)
{
    auto p = figure5Problem();
    p.spareCrossbars = 100;
    const auto result = GreedyHeapAllocator(3, 0.0).allocate(p);
    for (auto r : result.replicas)
        EXPECT_LE(r, 3u);
}

TEST(GreedyHeap, FixedTimesNotOverReplicated)
{
    // A stage that is all fixed time gains nothing from replicas.
    AllocationProblem p;
    p.stages = {{StageType::Aggregation, 1},
                {StageType::Combination, 1}};
    p.scalableTimesNs = {0.0, 10.0};
    p.fixedTimesNs = {50.0, 0.0};
    p.crossbarsPerReplica = {1, 1};
    p.spareCrossbars = 10;
    p.numMicroBatches = 4;
    const auto result = GreedyHeapAllocator(0, 0.0).allocate(p);
    EXPECT_EQ(result.replicas[0], 1u);
    EXPECT_GT(result.replicas[1], 1u);
}

TEST(BottleneckSweep, MatchesExhaustiveOnSmallInstances)
{
    for (uint64_t seed : {40u, 50u}) {
        Rng rng(seed);
        AllocationProblem p;
        for (size_t i = 0; i < 3; ++i) {
            p.stages.push_back({StageType::Combination, 1});
            p.scalableTimesNs.push_back(rng.uniform(1.0, 50.0));
            p.fixedTimesNs.push_back(0.0);
            p.crossbarsPerReplica.push_back(
                1 + rng.uniformInt(uint64_t{3}));
        }
        p.spareCrossbars = 12;
        p.numMicroBatches = 6;

        const double sweep = makespanNs(
            p, BottleneckSweepAllocator(8).allocate(p).replicas);
        const double optimal = makespanNs(
            p, ExhaustiveAllocator(8).allocate(p).replicas);
        EXPECT_NEAR(sweep, optimal, optimal * 0.05) << "seed " << seed;
    }
}

TEST(Exhaustive, FindsKnownOptimum)
{
    const auto p = figure5Problem();
    const auto result = ExhaustiveAllocator(4).allocate(p);
    EXPECT_EQ(result.replicas[1], 4u);
    EXPECT_DOUBLE_EQ(makespanNs(p, result.replicas), 4.0);
}

} // namespace
} // namespace gopim::alloc
