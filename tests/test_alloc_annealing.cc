/**
 * @file
 * Unit tests for the simulated-annealing allocator and its
 * relationship to the greedy (Algorithm 1) solution quality.
 */

#include <gtest/gtest.h>

#include "alloc/annealing.hh"
#include "alloc/dp.hh"
#include "alloc/greedy_heap.hh"
#include "common/rng.hh"
#include "pipeline/stage.hh"

namespace gopim::alloc {
namespace {

using pipeline::Stage;
using pipeline::StageType;

AllocationProblem
randomProblem(uint64_t seed, size_t stages)
{
    Rng rng(seed);
    AllocationProblem p;
    for (size_t i = 0; i < stages; ++i) {
        p.stages.push_back(
            {static_cast<StageType>(rng.uniformInt(uint64_t{4})), 1});
        p.scalableTimesNs.push_back(rng.uniform(1.0, 300.0));
        p.fixedTimesNs.push_back(rng.uniform(0.0, 3.0));
        p.crossbarsPerReplica.push_back(
            1 + rng.uniformInt(uint64_t{20}));
    }
    p.spareCrossbars = 50 + rng.uniformInt(uint64_t{200});
    p.numMicroBatches =
        2 + static_cast<uint32_t>(rng.uniformInt(uint64_t{20}));
    return p;
}

TEST(Annealing, RespectsBudget)
{
    for (uint64_t seed : {1u, 2u, 3u}) {
        const auto p = randomProblem(seed, 6);
        const auto result =
            AnnealingAllocator({.iterations = 5000}).allocate(p);
        uint64_t used = 0;
        for (size_t i = 0; i < p.numStages(); ++i) {
            EXPECT_GE(result.replicas[i], 1u);
            used += static_cast<uint64_t>(result.replicas[i] - 1) *
                    p.crossbarsPerReplica[i];
        }
        EXPECT_LE(used, p.spareCrossbars) << "seed " << seed;
    }
}

TEST(Annealing, NeverWorseThanItsGreedyWarmStart)
{
    for (uint64_t seed : {5u, 6u, 7u, 8u}) {
        const auto p = randomProblem(seed, 5);
        const double greedy = makespanNs(
            p, GreedyHeapAllocator(4096, 0.0).allocate(p).replicas);
        const double annealed = makespanNs(
            p, AnnealingAllocator({.iterations = 8000})
                   .allocate(p)
                   .replicas);
        // Annealing keeps the best-seen state, which includes the
        // warm start.
        EXPECT_LE(annealed, greedy + 1e-9) << "seed " << seed;
    }
}

TEST(Annealing, FindsOptimumOnTinyProblem)
{
    AllocationProblem p;
    p.stages = {{StageType::Combination, 1},
                {StageType::Aggregation, 1}};
    p.scalableTimesNs = {1.0, 6.0};
    p.fixedTimesNs = {0.0, 0.0};
    p.crossbarsPerReplica = {1, 1};
    p.spareCrossbars = 3;
    p.numMicroBatches = 2;

    const double optimal =
        makespanNs(p, ExhaustiveAllocator(4).allocate(p).replicas);
    const double annealed = makespanNs(
        p, AnnealingAllocator({.iterations = 3000}).allocate(p)
               .replicas);
    EXPECT_DOUBLE_EQ(annealed, optimal);
}

TEST(Annealing, DeterministicForSameSeed)
{
    const auto p = randomProblem(9, 6);
    const auto a = AnnealingAllocator({.seed = 4}).allocate(p);
    const auto b = AnnealingAllocator({.seed = 4}).allocate(p);
    EXPECT_EQ(a.replicas, b.replicas);
}

TEST(Annealing, GreedyIsCloseToAnnealedQuality)
{
    // The paper's claim: the heap greedy decides in micro/milliseconds
    // with near-reference quality. Check the gap stays tight.
    for (uint64_t seed : {20u, 21u, 22u}) {
        const auto p = randomProblem(seed, 8);
        const double greedy = makespanNs(
            p, GreedyHeapAllocator(4096, 0.0).allocate(p).replicas);
        const double annealed = makespanNs(
            p, AnnealingAllocator({.iterations = 30000})
                   .allocate(p)
                   .replicas);
        EXPECT_LE(greedy, annealed * 1.15) << "seed " << seed;
    }
}

} // namespace
} // namespace gopim::alloc
