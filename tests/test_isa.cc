/**
 * @file
 * Tests for the src/isa command-stream layer and the replay engine:
 * lowering invariants (opcode layout, refresh placement, bit-exact
 * MVM/ROW_WRITE splits), the versioned binary trace format (byte-
 * exact round trips, the pinned golden fixture, every truncation/
 * corruption error path), and the headline contract — ReplayEngine
 * times a stream written to disk and read back bit-identically to
 * the live event-driven engine for every seed system and
 * fault/repair configuration.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/hash.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/options.hh"
#include "core/report.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "isa/isa.hh"
#include "isa/lower.hh"
#include "isa/trace_io.hh"
#include "isa/verify.hh"
#include "serve/request.hh"
#include "sim/engine.hh"
#include "sim/replay.hh"

namespace gopim {
namespace {

/** Self-deleting temp file path for disk round-trip tests. */
class TempTracePath
{
  public:
    explicit TempTracePath(const std::string &tag)
        : path_("/tmp/gopim_test_isa_" + tag + "_" +
                std::to_string(::getpid()) + ".trace")
    {
    }
    ~TempTracePath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/**
 * The same canonical bundle gopim_trace --selftest-write emits; the
 * golden-fixture test pins its exact bytes, so any change here (or
 * in the encoder) must come with a format version bump and a
 * regenerated tests/data/isa_golden_v1.trace.
 */
isa::TraceBundle
canonicalBundle()
{
    isa::TraceBundle bundle;
    bundle.streams.push_back(isa::StreamBuilder("selftest serial")
                                 .regime(isa::Regime::Serial)
                                 .microBatches(3)
                                 .seed(7)
                                 .stage(100.0)
                                 .stage(250.0, 2)
                                 .build());
    bundle.streams.push_back(
        isa::StreamBuilder("selftest intra-batch refresh")
            .regime(isa::Regime::IntraBatch)
            .microBatches(8, 4)
            .seed(11)
            .refresh(2, 500.0)
            .stage(64.0)
            .stage(128.0)
            .stage(32.0, 3)
            .build());
    bundle.streams.push_back(
        isa::StreamBuilder("selftest pipelined retries")
            .regime(isa::Regime::IntraInterBatch)
            .microBatches(6)
            .seed(42)
            .bufferSlots(2)
            .replicasAsServers(true)
            .writeRetry(0.25, 0.3)
            .stage(1000.0, 2)
            .stage(750.0, 1)
            .build());
    return bundle;
}

uint64_t
countOp(const isa::CommandStream &stream, isa::Opcode op)
{
    uint64_t count = 0;
    for (const auto &cmd : stream.commands)
        if (cmd.op == op)
            ++count;
    return count;
}

// ---------------------------------------------------------------
// Lowering invariants
// ---------------------------------------------------------------

TEST(Lowering, StreamBuilderEmitsCanonicalLayout)
{
    const auto stream = isa::StreamBuilder("layout")
                            .regime(isa::Regime::Serial)
                            .microBatches(4)
                            .stage(10.0)
                            .stage(20.0)
                            .stage(30.0)
                            .build();
    EXPECT_EQ(isa::validateStream(stream), "");
    // Serial: one chunk per micro-batch.
    EXPECT_EQ(countOp(stream, isa::Opcode::CfgStage), 3u);
    EXPECT_EQ(countOp(stream, isa::Opcode::Barrier), 4u);
    EXPECT_EQ(countOp(stream, isa::Opcode::Mvm), 12u);
    EXPECT_EQ(countOp(stream, isa::Opcode::RowWrite), 0u);
    EXPECT_EQ(countOp(stream, isa::Opcode::NocSend), 8u);
    EXPECT_EQ(countOp(stream, isa::Opcode::NocRecv), 8u);
    EXPECT_EQ(countOp(stream, isa::Opcode::Sync), 1u);
    // SYNC closes the stream and counts everything before it.
    const auto &last = stream.commands.back();
    EXPECT_EQ(last.op, isa::Opcode::Sync);
    EXPECT_EQ(last.operand, stream.commands.size() - 1);
}

TEST(Lowering, RefreshUsesGlobalMicroBatchIndex)
{
    // Serial regime chunks one micro-batch at a time; refresh must
    // still fire on the *global* index (after mb 1 and 3), exactly
    // like the event engine's sampler.
    const auto stream = isa::StreamBuilder("refresh")
                            .regime(isa::Regime::Serial)
                            .microBatches(4)
                            .refresh(2, 99.0)
                            .stage(10.0)
                            .stage(20.0)
                            .build();
    EXPECT_EQ(isa::validateStream(stream), "");
    std::vector<uint32_t> refreshMbs;
    for (const auto &cmd : stream.commands)
        if (cmd.op == isa::Opcode::Refresh) {
            refreshMbs.push_back(cmd.microBatch);
            EXPECT_DOUBLE_EQ(cmd.durationNs(), 99.0);
        }
    // Both stages refresh at mb 1 and mb 3.
    EXPECT_EQ(refreshMbs, (std::vector<uint32_t>{1, 1, 3, 3}));
}

TEST(Lowering, MvmRowWriteSplitIsBitExact)
{
    const double base = 123.456;
    const double fraction = 0.3;
    const auto stream = isa::StreamBuilder("split")
                            .microBatches(1)
                            .writeRetry(0.2, fraction)
                            .stage(base)
                            .build();
    bool sawMvm = false, sawWrite = false;
    for (const auto &cmd : stream.commands) {
        if (cmd.op == isa::Opcode::Mvm) {
            sawMvm = true;
            // The exact arithmetic sim::makeWriteRetrySampler uses.
            EXPECT_EQ(cmd.durationBits,
                      isa::Command::bitsOf(base * (1.0 - fraction)));
        }
        if (cmd.op == isa::Opcode::RowWrite) {
            sawWrite = true;
            EXPECT_EQ(cmd.durationBits,
                      isa::Command::bitsOf(base * fraction));
            EXPECT_EQ(cmd.operand, 1u); // nominal single attempt
        }
    }
    EXPECT_TRUE(sawMvm);
    EXPECT_TRUE(sawWrite);
}

TEST(Lowering, EmptyReplicasFingerprintLikeAllOnes)
{
    isa::ScheduleDesc bare;
    bare.stageTimesNs = {10.0, 20.0};
    bare.totalMicroBatches = 4;
    isa::ScheduleDesc ones = bare;
    ones.replicas = {1, 1};
    EXPECT_EQ(bare.fingerprint(), ones.fingerprint());
    isa::ScheduleDesc twos = bare;
    twos.replicas = {2, 1};
    EXPECT_NE(bare.fingerprint(), twos.fingerprint());
}

TEST(Lowering, ValidateStreamCatchesTampering)
{
    auto stream = isa::StreamBuilder("tamper")
                      .microBatches(3)
                      .stage(10.0)
                      .stage(20.0)
                      .build();
    ASSERT_EQ(isa::validateStream(stream), "");

    auto mutated = stream;
    mutated.commands[3].durationBits ^= 1; // nudge one duration
    EXPECT_NE(isa::validateStream(mutated), "");

    mutated = stream;
    mutated.commands.pop_back(); // drop the SYNC
    EXPECT_NE(isa::validateStream(mutated), "");

    mutated = stream;
    mutated.desc.totalMicroBatches = 99; // desc/commands mismatch
    EXPECT_NE(isa::validateStream(mutated), "");

    mutated = stream;
    mutated.desc.stageTimesNs.clear(); // structurally invalid desc
    EXPECT_NE(isa::validateStream(mutated), "");
}

TEST(Lowering, ApplyRepairPlanMirrorsAccelerator)
{
    isa::ScheduleDesc desc;
    desc.stageTimesNs = {10.0};

    fault::RepairPlan inactive;
    isa::applyRepairPlan(desc, inactive);
    EXPECT_EQ(desc.refreshEveryMicroBatches, 0u);

    fault::RepairPlan refresh;
    refresh.refreshEveryMicroBatches = 16;
    refresh.refreshStallNs = 2500.0;
    isa::applyRepairPlan(desc, refresh);
    EXPECT_EQ(desc.refreshEveryMicroBatches, 16u);
    EXPECT_DOUBLE_EQ(desc.refreshStallNs, 2500.0);
}

TEST(Lowering, NominalTimingMatchesReplayForDefaultKnobs)
{
    // Deterministic streams (no retries) time identically through
    // the closed-form preview and the event-path replay.
    const auto stream = isa::StreamBuilder("nominal")
                            .regime(isa::Regime::IntraBatch)
                            .microBatches(12, 4)
                            .refresh(3, 50.0)
                            .stage(10.0)
                            .stage(25.0)
                            .stage(15.0)
                            .build();
    const auto nominal = isa::nominalTiming(stream);
    const auto replayed =
        sim::ReplayEngine().replayStream(stream, sim::SimContext{});
    EXPECT_DOUBLE_EQ(nominal.makespanNs, replayed.makespanNs);
    ASSERT_EQ(nominal.busyNs.size(), replayed.busyNs.size());
    for (size_t i = 0; i < nominal.busyNs.size(); ++i)
        EXPECT_DOUBLE_EQ(nominal.busyNs[i], replayed.busyNs[i]);
}

// ---------------------------------------------------------------
// Binary trace format
// ---------------------------------------------------------------

TEST(TraceIo, RoundTripIsByteExact)
{
    const isa::TraceBundle bundle = canonicalBundle();
    const std::string bytes = isa::encodeBundle(bundle);

    isa::TraceBundle decoded;
    std::string error;
    ASSERT_TRUE(isa::decodeBundle(bytes, &decoded, &error)) << error;
    ASSERT_EQ(decoded.streams.size(), bundle.streams.size());
    for (size_t i = 0; i < bundle.streams.size(); ++i)
        EXPECT_EQ(decoded.streams[i], bundle.streams[i]);
    EXPECT_EQ(isa::encodeBundle(decoded), bytes);
}

TEST(TraceIo, DiskRoundTripPreservesStreams)
{
    const isa::TraceBundle bundle = canonicalBundle();
    TempTracePath path("roundtrip");
    std::string error;
    ASSERT_TRUE(isa::writeTraceFile(path.str(), bundle, &error))
        << error;
    isa::TraceBundle loaded;
    ASSERT_TRUE(isa::readTraceFile(path.str(), &loaded, &error))
        << error;
    ASSERT_EQ(loaded.streams.size(), bundle.streams.size());
    for (size_t i = 0; i < bundle.streams.size(); ++i) {
        EXPECT_EQ(loaded.streams[i], bundle.streams[i]);
        EXPECT_EQ(isa::validateStream(loaded.streams[i]), "");
    }
}

TEST(TraceIo, GoldenFixtureIsPinnedByteExact)
{
    // The fixture was written by gopim_trace --selftest-write; the
    // in-tree encoder must reproduce it bit for bit. If this fails
    // after a deliberate format change: bump kTraceFormatVersion,
    // regenerate the fixture, and add a new golden file rather than
    // silently rewriting history.
    std::ifstream in(std::string(GOPIM_TEST_DATA_DIR) +
                         "/isa_golden_v1.trace",
                     std::ios::binary);
    ASSERT_TRUE(in) << "missing tests/data/isa_golden_v1.trace";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string golden = buffer.str();

    EXPECT_EQ(isa::encodeBundle(canonicalBundle()), golden);

    isa::TraceBundle decoded;
    std::string error;
    ASSERT_TRUE(isa::decodeBundle(golden, &decoded, &error)) << error;
    ASSERT_EQ(decoded.streams.size(), 3u);
    for (const auto &stream : decoded.streams)
        EXPECT_EQ(isa::validateStream(stream), "");
}

TEST(TraceIo, BadMagicAndVersionAreDistinctErrors)
{
    std::string bytes = isa::encodeBundle(canonicalBundle());
    isa::TraceBundle bundle;
    std::string error;

    std::string notATrace = bytes;
    notATrace[0] = 'X';
    EXPECT_FALSE(isa::decodeBundle(notATrace, &bundle, &error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

    std::string wrongVersion = bytes;
    wrongVersion[4] = 99; // version u16 lives at bytes 4-5
    EXPECT_FALSE(isa::decodeBundle(wrongVersion, &bundle, &error));
    EXPECT_NE(error.find("unsupported trace version 99"),
              std::string::npos)
        << error;
}

TEST(TraceIo, EveryTruncationPrefixFailsGracefully)
{
    const std::string bytes = isa::encodeBundle(canonicalBundle());
    for (size_t len = 0; len < bytes.size(); ++len) {
        isa::TraceBundle bundle;
        std::string error;
        EXPECT_FALSE(isa::decodeBundle(bytes.substr(0, len), &bundle,
                                       &error))
            << "prefix of length " << len << " decoded successfully";
        EXPECT_FALSE(error.empty());
        EXPECT_TRUE(bundle.streams.empty());
    }
}

TEST(TraceIo, PayloadCorruptionIsCaughtByChecksum)
{
    const std::string bytes = isa::encodeBundle(canonicalBundle());
    // Flip one byte somewhere inside the first stream's payload
    // (past the 4+2+1 byte file header and the length varint).
    std::string corrupt = bytes;
    corrupt[16] = static_cast<char>(corrupt[16] ^ 0x40);
    isa::TraceBundle bundle;
    std::string error;
    EXPECT_FALSE(isa::decodeBundle(corrupt, &bundle, &error));
    EXPECT_NE(error.find("mismatch"), std::string::npos) << error;
}

TEST(TraceIo, TrailingGarbageIsRejected)
{
    std::string bytes = isa::encodeBundle(canonicalBundle());
    bytes += "extra";
    isa::TraceBundle bundle;
    std::string error;
    EXPECT_FALSE(isa::decodeBundle(bytes, &bundle, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(TraceIo, MissingFileReportsOpenError)
{
    isa::TraceBundle bundle;
    std::string error;
    EXPECT_FALSE(isa::readTraceFile("/nonexistent/gopim.trace",
                                    &bundle, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TraceIo, RecorderDeduplicatesByFingerprint)
{
    isa::StreamRecorder recorder;
    auto stream = isa::StreamBuilder("zebra")
                      .microBatches(2)
                      .stage(10.0)
                      .build();
    recorder.record(stream);
    stream.label = "aardvark"; // same desc, different producer label
    recorder.record(stream);
    EXPECT_EQ(recorder.streamCount(), 1u);
    // The lexicographically smallest label wins, making the drained
    // bundle independent of recording order.
    EXPECT_EQ(recorder.bundle().streams.front().label, "aardvark");
}

// ---------------------------------------------------------------
// Semantic verifier (isa::verifyStream)
// ---------------------------------------------------------------

bool
hasCode(const std::vector<isa::VerifyIssue> &issues,
        isa::VerifyCode code)
{
    for (const isa::VerifyIssue &issue : issues)
        if (issue.code == code)
            return true;
    return false;
}

/** Index of the first command with opcode `op` (asserts existence). */
size_t
firstOp(const isa::CommandStream &stream, isa::Opcode op)
{
    for (size_t i = 0; i < stream.commands.size(); ++i)
        if (stream.commands[i].op == op)
            return i;
    ADD_FAILURE() << "stream has no " << isa::toString(op);
    return 0;
}

TEST(Verify, EveryLoweredScheduleVerifiesClean)
{
    // Anything the canonical lowering produces must pass the flow
    // verifier — across regimes, refresh, retries and replicas.
    for (const auto regime :
         {isa::Regime::Serial, isa::Regime::IntraBatch,
          isa::Regime::IntraInterBatch}) {
        for (const uint32_t refreshEvery : {0u, 2u}) {
            for (const double retryFraction : {0.0, 0.3}) {
                isa::StreamBuilder builder("grid");
                builder.regime(regime)
                    .microBatches(6, 3)
                    .seed(5)
                    .stage(10.0)
                    .stage(25.0, 2)
                    .stage(40.0);
                if (refreshEvery != 0)
                    builder.refresh(refreshEvery, 75.0);
                if (retryFraction != 0.0)
                    builder.writeRetry(0.2, retryFraction);
                const auto stream = builder.build();
                EXPECT_TRUE(isa::verifyStream(stream).empty())
                    << isa::verifySummary(stream);
            }
        }
    }
    for (const auto &stream : canonicalBundle().streams)
        EXPECT_TRUE(isa::verifyStream(stream).empty())
            << stream.label << ": " << isa::verifySummary(stream);
}

TEST(Verify, GoldenTraceVerifiesClean)
{
    std::ifstream in(std::string(GOPIM_TEST_DATA_DIR) +
                         "/isa_golden_v1.trace",
                     std::ios::binary);
    ASSERT_TRUE(in) << "missing tests/data/isa_golden_v1.trace";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    isa::TraceBundle decoded;
    std::string error;
    ASSERT_TRUE(isa::decodeBundle(buffer.str(), &decoded, &error))
        << error;
    for (const auto &stream : decoded.streams)
        EXPECT_EQ(isa::verifySummary(stream), "") << stream.label;
}

TEST(Verify, InvalidDescShortCircuits)
{
    auto stream = isa::StreamBuilder("baddesc")
                      .microBatches(2)
                      .stage(10.0)
                      .build();
    stream.desc.stageTimesNs.clear();
    const auto issues = isa::verifyStream(stream);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].code, isa::VerifyCode::DescInvalid);
}

TEST(Verify, CfgPrologueOrderAndMismatch)
{
    const auto stream = isa::StreamBuilder("cfg")
                            .microBatches(2)
                            .stage(10.0)
                            .stage(20.0)
                            .build();
    ASSERT_TRUE(isa::verifyStream(stream).empty());

    // Prologue out of order: swap the two CFG_STAGEs.
    auto mutated = stream;
    std::swap(mutated.commands[0], mutated.commands[1]);
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::CfgOrder));

    // Work with no CFG_STAGE for its stage.
    mutated = stream;
    mutated.commands.erase(mutated.commands.begin(),
                           mutated.commands.begin() + 2);
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::CfgOrder));

    // Replica count contradicting the header.
    mutated = stream;
    mutated.commands[0].operand += 1;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::CfgMismatch));

    // Stage service-time bits contradicting the header.
    mutated = stream;
    mutated.commands[1].durationBits ^= 1;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::CfgMismatch));
}

TEST(Verify, OperandRangeAndDurationBits)
{
    const auto stream = isa::StreamBuilder("rng")
                            .microBatches(2)
                            .stage(10.0)
                            .stage(20.0)
                            .build();

    auto mutated = stream;
    const size_t mvm = firstOp(mutated, isa::Opcode::Mvm);
    mutated.commands[mvm].stage = 99;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::OperandRange));

    mutated = stream;
    mutated.commands[firstOp(mutated, isa::Opcode::Mvm)].microBatch =
        99;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::OperandRange));

    // A timed op whose bits decode to a negative duration.
    mutated = stream;
    mutated.commands[firstOp(mutated, isa::Opcode::Mvm)]
        .durationBits = isa::Command::bitsOf(-5.0);
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::DurationInvalid));

    // An untimed op carrying a payload.
    mutated = stream;
    mutated.commands[firstOp(mutated, isa::Opcode::NocSend)]
        .durationBits = 1;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::DurationInvalid));
}

TEST(Verify, NocPairingAndDeadlock)
{
    const auto stream = isa::StreamBuilder("noc")
                            .microBatches(2)
                            .stage(10.0)
                            .stage(20.0)
                            .build();

    // Receive moved ahead of its matching send: would block forever.
    auto mutated = stream;
    const size_t send = firstOp(mutated, isa::Opcode::NocSend);
    const size_t recv = firstOp(mutated, isa::Opcode::NocRecv);
    ASSERT_LT(send, recv);
    std::swap(mutated.commands[send], mutated.commands[recv]);
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::NocDeadlock));

    // Send that nothing ever receives.
    mutated = stream;
    mutated.commands.erase(mutated.commands.begin() +
                           firstOp(mutated, isa::Opcode::NocRecv));
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::NocUnmatched));

    // Send from the last stage: no downstream consumer exists.
    mutated = stream;
    mutated.commands[firstOp(mutated, isa::Opcode::NocSend)].stage =
        1;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::NocUnmatched));
}

TEST(Verify, BarrierBracketing)
{
    const auto stream = isa::StreamBuilder("barrier")
                            .microBatches(3)
                            .stage(10.0)
                            .build();

    auto mutated = stream;
    const size_t barrier = firstOp(mutated, isa::Opcode::Barrier);
    mutated.commands[barrier].microBatch += 1; // chunk out of order
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::BarrierOrder));

    mutated = stream;
    mutated.commands[firstOp(mutated, isa::Opcode::Barrier)]
        .operand += 1; // chunk size contradicts the header
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::BarrierOrder));

    // Work before any chunk opened.
    mutated = stream;
    mutated.commands.erase(mutated.commands.begin() +
                           firstOp(mutated, isa::Opcode::Barrier));
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::BarrierOrder));
}

TEST(Verify, RefreshInvariants)
{
    const auto stream = isa::StreamBuilder("refresh")
                            .regime(isa::Regime::IntraBatch)
                            .microBatches(8, 4)
                            .refresh(2, 500.0)
                            .stage(64.0)
                            .stage(128.0)
                            .build();
    ASSERT_TRUE(isa::verifyStream(stream).empty());

    // Off-cadence refresh (mb 1 -> 2 breaks the every-2 rhythm but
    // stays inside the same chunk).
    auto mutated = stream;
    const size_t refresh = firstOp(mutated, isa::Opcode::Refresh);
    ASSERT_EQ(mutated.commands[refresh].microBatch, 1u);
    mutated.commands[refresh].microBatch = 2;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::RefreshInvariant));

    // Stall bits contradicting the header.
    mutated = stream;
    mutated.commands[firstOp(mutated, isa::Opcode::Refresh)]
        .durationBits ^= 1;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::RefreshInvariant));

    // Refresh ops in a stream whose header declares no cadence.
    mutated = stream;
    mutated.desc.refreshEveryMicroBatches = 0;
    mutated.desc.refreshStallNs = 0.0;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::RefreshInvariant));
}

TEST(Verify, SyncTermination)
{
    const auto stream = isa::StreamBuilder("sync")
                            .microBatches(2)
                            .stage(10.0)
                            .build();

    auto mutated = stream;
    mutated.commands.pop_back();
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::SyncMissing));

    mutated = stream;
    mutated.commands.insert(mutated.commands.end() - 1,
                            mutated.commands.back());
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::SyncMisplaced));

    mutated = stream;
    mutated.commands.back().operand += 1;
    EXPECT_TRUE(hasCode(isa::verifyStream(mutated),
                        isa::VerifyCode::SyncOperand));
}

TEST(Verify, SummaryReportsFirstIssueAndCount)
{
    auto stream = isa::StreamBuilder("summary")
                      .microBatches(2)
                      .stage(10.0)
                      .build();
    EXPECT_EQ(isa::verifySummary(stream), "");
    stream.commands.pop_back(); // drop SYNC
    const std::string summary = isa::verifySummary(stream);
    EXPECT_NE(summary.find("sync-missing"), std::string::npos)
        << summary;
    EXPECT_NE(summary.find("issue(s)"), std::string::npos) << summary;
}

TEST(Verify, EveryGoldenByteFlipIsRejected)
{
    // Corruption sweep: flip each byte of the pinned golden trace in
    // turn. The decoder (magic/version/varint/checksum layers) must
    // reject the mutation with a structured error — and if a
    // mutation ever slips through decoding, the semantic verifier or
    // the canonical validator must catch it. No single-byte
    // corruption may produce a silently-accepted trace.
    std::ifstream in(std::string(GOPIM_TEST_DATA_DIR) +
                         "/isa_golden_v1.trace",
                     std::ios::binary);
    ASSERT_TRUE(in) << "missing tests/data/isa_golden_v1.trace";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string golden = buffer.str();
    ASSERT_FALSE(golden.empty());

    size_t decodeRejected = 0;
    for (size_t i = 0; i < golden.size(); ++i) {
        std::string corrupted = golden;
        corrupted[i] = static_cast<char>(corrupted[i] ^ 0xFF);
        isa::TraceBundle decoded;
        std::string error;
        if (!isa::decodeBundle(corrupted, &decoded, &error)) {
            EXPECT_FALSE(error.empty()) << "byte " << i;
            ++decodeRejected;
            continue;
        }
        bool caught = false;
        for (const auto &stream : decoded.streams) {
            if (!isa::verifyStream(stream).empty() ||
                !isa::validateStream(stream).empty())
                caught = true;
        }
        EXPECT_TRUE(caught)
            << "byte " << i << " flipped and nothing rejected it";
    }
    // The format checksums every payload byte, so the decoder alone
    // should reject the overwhelming majority outright.
    EXPECT_GT(decodeRejected, golden.size() * 9 / 10);
}

// ---------------------------------------------------------------
// Replay bit-identity (the acceptance criterion)
// ---------------------------------------------------------------

void
expectBitIdentical(const core::RunResult &event,
                   const core::RunResult &replay,
                   const std::string &what)
{
    EXPECT_EQ(replay.engineName, "replay") << what;
    EXPECT_EQ(event.makespanNs, replay.makespanNs) << what;
    EXPECT_EQ(event.energyPj, replay.energyPj) << what;
    EXPECT_EQ(event.eventsProcessed, replay.eventsProcessed) << what;
    ASSERT_EQ(event.idleFraction.size(), replay.idleFraction.size());
    for (size_t i = 0; i < event.idleFraction.size(); ++i)
        EXPECT_EQ(event.idleFraction[i], replay.idleFraction[i])
            << what << " stage " << i;
    ASSERT_EQ(event.blockedNs.size(), replay.blockedNs.size());
    for (size_t i = 0; i < event.blockedNs.size(); ++i)
        EXPECT_EQ(event.blockedNs[i], replay.blockedNs[i])
            << what << " stage " << i;
}

core::RunResult
runWith(core::SystemKind kind, const std::string &dataset,
        const sim::SimContext &ctx, const fault::FaultConfig &fault)
{
    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(), ctx);
    harness.setFaultConfig(fault);
    return harness.runOne(kind, gcn::Workload::paperDefault(dataset));
}

/**
 * Record `kind` with the event engine, write the trace to disk,
 * read it back, replay, and demand bit identity.
 */
void
checkDiskReplay(core::SystemKind kind, const std::string &dataset,
                sim::SimContext ctx, const fault::FaultConfig &fault,
                const std::string &tag)
{
    ctx.engine = sim::EngineKind::EventDriven;
    ctx.isaRecorder = std::make_shared<isa::StreamRecorder>();
    const auto event = runWith(kind, dataset, ctx, fault);

    TempTracePath path(tag);
    std::string error;
    ASSERT_TRUE(isa::writeTraceFile(path.str(),
                                    ctx.isaRecorder->bundle(),
                                    &error))
        << error;
    isa::TraceBundle loaded;
    ASSERT_TRUE(isa::readTraceFile(path.str(), &loaded, &error))
        << error;

    sim::SimContext replayCtx = ctx;
    replayCtx.isaRecorder = nullptr;
    replayCtx.engine = sim::EngineKind::Replay;
    replayCtx.engineOverride =
        std::make_shared<sim::ReplayEngine>(std::move(loaded));
    const auto replay = runWith(kind, dataset, replayCtx, fault);
    expectBitIdentical(event, replay,
                       toString(kind) + " on " + dataset);
}

TEST(Replay, BitIdenticalToEventForEverySeedSystemViaDisk)
{
    // Non-default knobs everywhere so the replay cannot accidentally
    // pass by reproducing defaults: stochastic retries, bounded
    // buffers, a non-default seed.
    sim::SimContext ctx;
    ctx.seed = 9;
    ctx.event.writeRetryProb = 0.2;
    ctx.event.writeFraction = 0.35;
    ctx.event.inputBufferSlots = 2;
    for (core::SystemKind kind : core::allSystemKinds())
        checkDiskReplay(kind, "ddi", ctx, {},
                        std::string("sys_") + toString(kind));
}

TEST(Replay, BitIdenticalAcrossSeeds)
{
    for (uint64_t seed : {1ull, 7ull, 99ull}) {
        sim::SimContext ctx;
        ctx.seed = seed;
        ctx.event.writeRetryProb = 0.3;
        ctx.event.writeFraction = 0.5;
        checkDiskReplay(core::SystemKind::GoPim, "Cora", ctx, {},
                        "seed_" + std::to_string(seed));
    }
}

TEST(Replay, BitIdenticalForEveryFaultRepairConfig)
{
    for (fault::RepairKind repair :
         {fault::RepairKind::None, fault::RepairKind::SpareRows,
          fault::RepairKind::EccDuplicate,
          fault::RepairKind::Refresh}) {
        fault::FaultConfig fault;
        fault.params.stuckOnRate = 0.01;
        fault.params.stuckOffRate = 0.005;
        fault.params.driftPerEpoch = 0.002;
        fault.repair = repair;
        fault.refreshPeriodMb = 16;

        sim::SimContext ctx;
        ctx.seed = 5;
        ctx.event.writeRetryProb = 0.1;
        ctx.event.writeFraction = 0.3;
        checkDiskReplay(core::SystemKind::GoPim, "ddi", ctx, fault,
                        std::string("repair_") + toString(repair));
    }
}

TEST(Replay, ReplicasAsServersBitIdentical)
{
    sim::SimContext ctx;
    ctx.event.replicasAsServers = true;
    checkDiskReplay(core::SystemKind::GoPim, "ddi", ctx, {},
                    "servers");
}

TEST(Replay, SelfReplayEqualsEventWithoutATraceFile)
{
    // --engine=replay with no trace: lower on the fly, replay, and
    // still match the event engine exactly.
    sim::SimContext event;
    event.engine = sim::EngineKind::EventDriven;
    event.seed = 3;
    event.event.writeRetryProb = 0.25;
    event.event.writeFraction = 0.4;
    sim::SimContext replay = event;
    replay.engine = sim::EngineKind::Replay;
    const auto a = runWith(core::SystemKind::GoPim, "ddi", event, {});
    const auto b =
        runWith(core::SystemKind::GoPim, "ddi", replay, {});
    EXPECT_EQ(a.engineName, "event-driven");
    expectBitIdentical(a, b, "self-replay");
}

TEST(ReplayDeath, RequestMissingFromTraceIsFatal)
{
    // Re-exec instead of bare fork(): the harness tests above leave
    // the process-wide worker pool running, and a forked child
    // without those threads deadlocks.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    // A trace-mode replay engine fed a request it has no stream for
    // must die with a clear user error, not guess.
    sim::SimContext ctx;
    ctx.engine = sim::EngineKind::Replay;
    ctx.engineOverride =
        std::make_shared<sim::ReplayEngine>(isa::TraceBundle{});
    EXPECT_EXIT(runWith(core::SystemKind::GoPim, "ddi", ctx, {}),
                ::testing::ExitedWithCode(1),
                "no stream for this run");
}

TEST(ReplayDeath, InvalidStreamIsFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto stream = isa::StreamBuilder("broken")
                      .microBatches(2)
                      .stage(10.0)
                      .build();
    stream.commands.pop_back();
    EXPECT_EXIT(sim::ReplayEngine().replayStream(stream,
                                                 sim::SimContext{}),
                ::testing::ExitedWithCode(1),
                "invalid command stream");
}

TEST(ReplayDeath, SemanticallyBrokenTraceIsFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Record a real run, then strip every SYNC terminator: the
    // loaded trace decodes fine but fails flow verification, and
    // trace-mode replay must refuse it before any timing happens.
    sim::SimContext record;
    record.engine = sim::EngineKind::EventDriven;
    record.isaRecorder = std::make_shared<isa::StreamRecorder>();
    runWith(core::SystemKind::GoPim, "ddi", record, {});
    isa::TraceBundle bundle = record.isaRecorder->bundle();
    ASSERT_FALSE(bundle.streams.empty());
    for (auto &stream : bundle.streams)
        stream.commands.pop_back();

    sim::SimContext replayCtx;
    replayCtx.engine = sim::EngineKind::Replay;
    replayCtx.engineOverride =
        std::make_shared<sim::ReplayEngine>(std::move(bundle));
    EXPECT_EXIT(runWith(core::SystemKind::GoPim, "ddi", replayCtx, {}),
                ::testing::ExitedWithCode(1),
                "fails semantic verification");
}

TEST(Replay, GridRecorderBundleIsIdenticalForAnyJobs)
{
    // The --jobs determinism guarantee extends to recorded traces:
    // any worker count must drain to the same trace bytes.
    auto runGridWithJobs = [](size_t jobs) {
        sim::SimContext ctx;
        ctx.engine = sim::EngineKind::EventDriven;
        ctx.isaRecorder = std::make_shared<isa::StreamRecorder>();
        core::ComparisonHarness harness(
            reram::AcceleratorConfig::paperDefault(), ctx);
        harness.runGrid(core::figure13Systems(), {"ddi"}, jobs);
        return isa::encodeBundle(ctx.isaRecorder->bundle());
    };
    const std::string serial = runGridWithJobs(1);
    const std::string parallel = runGridWithJobs(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------
// Engine registry + flag/serve integration (satellite fix)
// ---------------------------------------------------------------

TEST(Registry, AllEnginesRoundTripThroughNames)
{
    for (const sim::EngineInfo &info : sim::engineRegistry()) {
        EXPECT_EQ(sim::engineKindFromString(info.alias), info.kind);
        EXPECT_EQ(sim::engineKindFromString(info.canonical),
                  info.kind);
        EXPECT_EQ(sim::toString(info.kind), info.canonical);
        // The registry instance reports the canonical name.
        EXPECT_EQ(sim::engineFor(info.kind).name(), info.canonical);
    }
    sim::EngineKind kind;
    EXPECT_FALSE(sim::tryEngineKindFromString("warp-drive", &kind));
}

TEST(Registry, NameListAndFlagHelpCoverEveryEngine)
{
    const std::string list = sim::engineNameList();
    const std::string help = sim::engineFlagHelp();
    for (const sim::EngineInfo &info : sim::engineRegistry()) {
        EXPECT_NE(list.find(info.alias), std::string::npos) << list;
        EXPECT_NE(help.find(info.alias), std::string::npos) << help;
    }
    EXPECT_EQ(list, "closed, event, replay");
}

TEST(Registry, CanonicalRunConfigFollowsTheResolvedEngine)
{
    const auto hw = reram::AcceleratorConfig::paperDefault();
    const auto workload = gcn::Workload::paperDefault("ddi");
    auto system = core::makeSystem(core::SystemKind::GoPim);

    system.sim.engine = sim::EngineKind::EventDriven;
    const std::string plain =
        core::canonicalRunConfig(system, hw, workload).dump();
    EXPECT_NE(plain.find("event-driven"), std::string::npos);

    // A plugged-in override is what actually times the run, so it —
    // not the kind enum — must reach the cache key.
    system.sim.engineOverride =
        std::make_shared<sim::ReplayEngine>(isa::TraceBundle{});
    const std::string overridden =
        core::canonicalRunConfig(system, hw, workload).dump();
    EXPECT_NE(overridden.find("\"replay\""), std::string::npos);
    EXPECT_NE(plain, overridden);
}

TEST(SimFlags, IsaTraceOutAttachesARecorder)
{
    Flags flags("test", "test");
    core::addSimFlags(flags);
    const char *argv[] = {"test", "--engine=replay",
                          "--isa-trace-out=/tmp/x.trace"};
    ASSERT_TRUE(flags.parse(3, argv));
    const auto ctx = core::simContextFromFlags(flags);
    EXPECT_EQ(ctx.engine, sim::EngineKind::Replay);
    ASSERT_NE(ctx.isaRecorder, nullptr);
    EXPECT_EQ(ctx.isaRecorder->streamCount(), 0u);
}

TEST(SimFlagsDeath, IsaTraceInConflictsWithExplicitEngine)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Flags flags("test", "test");
    core::addSimFlags(flags);
    const char *argv[] = {"test", "--engine=event",
                          "--isa-trace-in=/tmp/x.trace"};
    ASSERT_TRUE(flags.parse(3, argv));
    EXPECT_EXIT(core::simContextFromFlags(flags),
                ::testing::ExitedWithCode(1),
                "implies --engine=replay");
}

TEST(Serve, RequestsAcceptReplayAndItReachesTheCacheKey)
{
    const auto hw = reram::AcceleratorConfig::paperDefault();
    auto keyFor = [&hw](const std::string &engine) {
        json::Value body;
        const std::string text = "{\"dataset\":\"ddi\",\"system\":"
                                 "\"GoPIM\",\"engine\":\"" +
                                 engine + "\"}";
        std::string parseError;
        EXPECT_TRUE(json::Value::parse(text, &body, &parseError))
            << parseError;
        serve::Request req;
        EXPECT_TRUE(
            serve::parseRequest(body, serve::Request{}, &req).ok());
        serve::ResolvedRequest resolved;
        EXPECT_TRUE(serve::resolveRequest(req, &resolved).ok());
        return serve::cacheKey(resolved, hw);
    };
    const std::string closed = keyFor("closed");
    const std::string event = keyFor("event");
    const std::string replay = keyFor("replay");
    EXPECT_NE(closed, event);
    EXPECT_NE(event, replay);
    EXPECT_NE(closed, replay);
}

TEST(Serve, UnknownEngineHintListsTheRegistry)
{
    json::Value body;
    std::string parseError;
    ASSERT_TRUE(json::Value::parse("{\"engine\":\"quantum\"}", &body,
                                   &parseError));
    serve::Request req;
    const auto err = serve::parseRequest(body, serve::Request{}, &req);
    EXPECT_EQ(err.code, "unknown_name");
    EXPECT_NE(err.message.find("closed, event, replay"),
              std::string::npos)
        << err.message;
}

} // namespace
} // namespace gopim
