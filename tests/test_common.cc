/**
 * @file
 * Unit tests for the common infrastructure: RNG determinism and
 * distribution sanity, streaming statistics, histograms, tables, and
 * math helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace gopim {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanConverges)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(3);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.uniformInt(uint64_t{7});
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformIntRangeInclusive)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(int64_t{-3}, int64_t{3});
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, NormalMomentsConverge)
{
    Rng rng(11);
    const int n = 100000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(13);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, DiscreteFollowsWeights)
{
    Rng rng(17);
    std::vector<double> weights = {1.0, 3.0};
    int ones = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ones += rng.discrete(weights) == 1;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(19);
    std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(23);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(Accumulator, BasicMoments)
{
    Accumulator acc;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 4u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombinedStream)
{
    Accumulator a, b, combined;
    Rng rng(29);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(5.0, 2.0);
        (i % 2 ? a : b).add(x);
        combined.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
}

TEST(Histogram, CountsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-100.0); // clamps into the first bucket
    h.add(100.0);  // clamps into the last bucket
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(9), 2u);
}

TEST(Histogram, ExactBucketEdgesLandDeterministically)
{
    // A sample exactly equal to a bucket's lower edge must land in
    // that bucket — x in [bucketLo(i), bucketLo(i+1)) — for every
    // edge, including edges like 0.3 that binary floating point
    // cannot represent exactly. The naive (x - lo) / width division
    // can round either side of the integer; add() settles the index
    // against the canonical edges instead.
    const double lo = 0.0;
    const double hi = 1.0;
    const size_t buckets = 10;
    Histogram h(lo, hi, buckets);
    for (size_t i = 0; i < buckets; ++i)
        h.add(h.bucketLo(i));
    EXPECT_EQ(h.total(), buckets);
    for (size_t i = 0; i < buckets; ++i)
        EXPECT_EQ(h.bucketCount(i), 1u) << "edge of bucket " << i;

    // Awkward width (1/3) and non-zero origin: same invariant.
    Histogram odd(2.0, 3.0, 3);
    for (size_t i = 0; i < odd.buckets(); ++i)
        odd.add(odd.bucketLo(i));
    for (size_t i = 0; i < odd.buckets(); ++i)
        EXPECT_EQ(odd.bucketCount(i), 1u) << "edge of bucket " << i;

    // Values a hair below an edge belong to the bucket below it.
    Histogram below(0.0, 1.0, 10);
    below.add(std::nextafter(below.bucketLo(5), 0.0));
    EXPECT_EQ(below.bucketCount(4), 1u);
    // The upper bound of the whole range clamps into the last bucket.
    below.add(1.0);
    EXPECT_EQ(below.bucketCount(below.buckets() - 1), 1u);
}

TEST(Histogram, QuantileMonotone)
{
    Histogram h(0.0, 100.0, 50);
    Rng rng(31);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.uniform(0.0, 100.0));
    EXPECT_LE(h.quantile(0.25), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 5.0);
}

TEST(Percentile, ExactOnSmallSamples)
{
    std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(MathUtils, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 5), 0u);
    EXPECT_EQ(ceilDiv(1, 5), 1u);
    EXPECT_EQ(ceilDiv(5, 5), 1u);
    EXPECT_EQ(ceilDiv(6, 5), 2u);
    EXPECT_EQ(ceilDiv(4267, 64), 67u);
}

TEST(MathUtils, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({10.0, 1000.0}), 100.0, 1e-9);
}

TEST(MathUtils, ExpectedDistinctBuckets)
{
    // No draws -> no buckets hit; many draws -> all buckets hit.
    EXPECT_DOUBLE_EQ(expectedDistinctBuckets(0.0, 100.0), 0.0);
    EXPECT_NEAR(expectedDistinctBuckets(1e6, 100.0), 100.0, 1e-6);
    // One draw hits exactly one bucket.
    EXPECT_NEAR(expectedDistinctBuckets(1.0, 100.0), 1.0, 1e-9);
    // Monotone in draws.
    EXPECT_LT(expectedDistinctBuckets(10.0, 100.0),
              expectedDistinctBuckets(20.0, 100.0));
}

TEST(Table, RendersAllCells)
{
    Table t("demo", {"a", "b"});
    t.row().cell("x").cell(1.5, 1);
    t.row().cell("y").cell(uint64_t{7});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t("", {"name", "value"});
    t.row().cell("has,comma").cell("has\"quote");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
    EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Format, HumanReadableUnits)
{
    EXPECT_EQ(formatTimeNs(12.0), "12.00 ns");
    EXPECT_EQ(formatTimeNs(1.5e6), "1.50 ms");
    EXPECT_EQ(formatEnergyPj(2.5e6), "2.50 uJ");
    EXPECT_EQ(formatRatio(3.25, 2), "3.25x");
}

} // namespace
} // namespace gopim
