/**
 * @file
 * Unit tests for the ML library: data handling, metrics, and every
 * regressor family (fit quality on synthetic functions, determinism,
 * interface contracts).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/bayes.hh"
#include "ml/data.hh"
#include "ml/gbt.hh"
#include "ml/linear.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "ml/svr.hh"
#include "ml/tree.hh"

namespace gopim::ml {
namespace {

/** y = 2 x0 - 3 x1 + 1 with optional noise. */
Dataset
linearData(size_t n, double noise, uint64_t seed)
{
    Rng rng(seed);
    Dataset data;
    for (size_t i = 0; i < n; ++i) {
        const float x0 = static_cast<float>(rng.uniform(-2.0, 2.0));
        const float x1 = static_cast<float>(rng.uniform(-2.0, 2.0));
        const double y =
            2.0 * x0 - 3.0 * x1 + 1.0 + rng.normal(0.0, noise);
        data.append({x0, x1}, y);
    }
    return data;
}

/** Nonlinear target: y = sin(2 x0) + x1^2. */
Dataset
nonlinearData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Dataset data;
    for (size_t i = 0; i < n; ++i) {
        const float x0 = static_cast<float>(rng.uniform(-2.0, 2.0));
        const float x1 = static_cast<float>(rng.uniform(-2.0, 2.0));
        data.append({x0, x1}, std::sin(2.0 * x0) + x1 * x1);
    }
    return data;
}

TEST(Data, AppendGrowsMatrix)
{
    Dataset d;
    d.append({1.0f, 2.0f}, 3.0);
    d.append({4.0f, 5.0f}, 6.0);
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.numFeatures(), 2u);
    EXPECT_FLOAT_EQ(d.x(1, 0), 4.0f);
    EXPECT_DOUBLE_EQ(d.y[1], 6.0);
}

TEST(Data, TrainTestSplitPartition)
{
    const Dataset d = linearData(100, 0.0, 1);
    Rng rng(2);
    const Split split = trainTestSplit(d, 0.8, rng);
    EXPECT_EQ(split.train.size(), 80u);
    EXPECT_EQ(split.test.size(), 20u);
    EXPECT_EQ(split.train.numFeatures(), 2u);
}

TEST(Data, StandardScalerNormalizes)
{
    const Dataset d = linearData(500, 0.0, 3);
    StandardScaler scaler;
    scaler.fit(d.x);
    const auto scaled = scaler.transform(d.x);
    for (size_t c = 0; c < scaled.cols(); ++c) {
        double sum = 0.0, sumSq = 0.0;
        for (size_t r = 0; r < scaled.rows(); ++r) {
            sum += scaled(r, c);
            sumSq += static_cast<double>(scaled(r, c)) * scaled(r, c);
        }
        const double mean = sum / static_cast<double>(scaled.rows());
        const double var =
            sumSq / static_cast<double>(scaled.rows()) - mean * mean;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(Metrics, KnownValues)
{
    const std::vector<double> truth = {1.0, 2.0, 3.0};
    const std::vector<double> pred = {1.0, 2.0, 5.0};
    EXPECT_NEAR(rmse(truth, pred), std::sqrt(4.0 / 3.0), 1e-12);
    EXPECT_NEAR(mae(truth, pred), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(rmse(truth, truth), 0.0);
    EXPECT_DOUBLE_EQ(r2(truth, truth), 1.0);
    EXPECT_LT(r2(truth, pred), 1.0);
}

TEST(Metrics, MapeSkipsZeroTruth)
{
    EXPECT_NEAR(mape({0.0, 2.0}, {5.0, 1.0}), 0.5, 1e-12);
}

TEST(Linear, RecoversExactCoefficients)
{
    const Dataset d = linearData(200, 0.0, 5);
    LinearRegressor lr(0.0);
    lr.fit(d);
    EXPECT_NEAR(lr.weights()[0], 2.0, 1e-3);
    EXPECT_NEAR(lr.weights()[1], -3.0, 1e-3);
    EXPECT_NEAR(lr.bias(), 1.0, 1e-3);
    EXPECT_NEAR(lr.predict({1.0f, 1.0f}), 0.0, 1e-3);
}

TEST(Linear, RidgeShrinksWeights)
{
    const Dataset d = linearData(100, 0.1, 7);
    LinearRegressor plain(1e-9), ridged(100.0);
    plain.fit(d);
    ridged.fit(d);
    EXPECT_LT(std::fabs(ridged.weights()[0]),
              std::fabs(plain.weights()[0]));
}

TEST(Linear, SolveSpdKnownSystem)
{
    // [[4,1],[1,3]] x = [1,2] -> x = [1/11, 7/11].
    const auto x = solveSpd({4, 1, 1, 3}, {1, 2}, 2);
    EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
    EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(Tree, FitsPiecewiseConstantExactly)
{
    Dataset d;
    for (int i = 0; i < 50; ++i) {
        const float x = static_cast<float>(i);
        d.append({x}, x < 25.0f ? 10.0 : 20.0);
    }
    DecisionTreeRegressor tree({.maxDepth = 3, .minSamplesLeaf = 1,
                                .minImpurityDecrease = 1e-12});
    tree.fit(d);
    EXPECT_NEAR(tree.predict({5.0f}), 10.0, 1e-9);
    EXPECT_NEAR(tree.predict({40.0f}), 20.0, 1e-9);
    EXPECT_LE(tree.depth(), 3u);
}

TEST(Tree, RespectsMinSamplesLeaf)
{
    const Dataset d = linearData(40, 0.0, 9);
    DecisionTreeRegressor tree({.maxDepth = 20, .minSamplesLeaf = 10,
                                .minImpurityDecrease = 1e-12});
    tree.fit(d);
    // With 40 samples and >= 10 per leaf, at most 4 leaves -> 7 nodes.
    EXPECT_LE(tree.nodeCount(), 7u);
}

TEST(Tree, BetterThanMeanOnNonlinear)
{
    const Dataset train = nonlinearData(500, 11);
    const Dataset test = nonlinearData(200, 12);
    DecisionTreeRegressor tree;
    tree.fit(train);
    const auto pred = tree.predictAll(test.x);

    double meanTarget = 0.0;
    for (double y : train.y)
        meanTarget += y;
    meanTarget /= static_cast<double>(train.size());
    const std::vector<double> baseline(test.size(), meanTarget);

    EXPECT_LT(rmse(test.y, pred), rmse(test.y, baseline) * 0.5);
}

TEST(Gbt, OutperformsSingleTree)
{
    const Dataset train = nonlinearData(600, 13);
    const Dataset test = nonlinearData(200, 14);

    DecisionTreeRegressor tree({.maxDepth = 4, .minSamplesLeaf = 3,
                                .minImpurityDecrease = 1e-12});
    tree.fit(train);
    GradientBoostedTrees gbt({.numTrees = 60, .learningRate = 0.15});
    gbt.fit(train);
    EXPECT_EQ(gbt.treeCount(), 60u);

    const double treeRmse = rmse(test.y, tree.predictAll(test.x));
    const double gbtRmse = rmse(test.y, gbt.predictAll(test.x));
    EXPECT_LT(gbtRmse, treeRmse);
}

TEST(Svr, FitsLinearFunction)
{
    const Dataset train = linearData(300, 0.02, 15);
    const Dataset test = linearData(100, 0.0, 16);
    LinearSvr svr({.epsilon = 0.01,
                   .c = 10.0,
                   .epochs = 300,
                   .learningRate = 0.01,
                   .seed = 7});
    svr.fit(train);
    EXPECT_LT(rmse(test.y, svr.predictAll(test.x)), 0.25);
}

TEST(Bayes, PredictsBinnedMeans)
{
    // Single informative feature.
    Dataset d;
    Rng rng(17);
    for (int i = 0; i < 400; ++i) {
        const float x = static_cast<float>(rng.uniform(0.0, 1.0));
        d.append({x}, x < 0.5f ? 1.0 : 3.0);
    }
    BinnedBayesRegressor br({.binsPerFeature = 8, .priorStrength = 1.0});
    br.fit(d);
    EXPECT_NEAR(br.predict({0.1f}), 1.0, 0.2);
    EXPECT_NEAR(br.predict({0.9f}), 3.0, 0.2);
}

TEST(Mlp, FitsLinearFunction)
{
    const Dataset train = linearData(400, 0.0, 19);
    const Dataset test = linearData(100, 0.0, 20);
    MlpRegressor mlp({.hiddenLayers = {32},
                      .epochs = 200,
                      .batchSize = 32,
                      .learningRate = 1e-3,
                      .weightDecay = 0.0,
                      .seed = 3});
    mlp.fit(train);
    EXPECT_LT(rmse(test.y, mlp.predictAll(test.x)), 0.3);
}

TEST(Mlp, FitsNonlinearBetterThanLinearModel)
{
    const Dataset train = nonlinearData(800, 21);
    const Dataset test = nonlinearData(200, 22);

    LinearRegressor lr;
    lr.fit(train);
    MlpRegressor mlp({.hiddenLayers = {64},
                      .epochs = 300,
                      .batchSize = 32,
                      .learningRate = 2e-3,
                      .weightDecay = 0.0,
                      .seed = 5});
    mlp.fit(train);

    EXPECT_LT(rmse(test.y, mlp.predictAll(test.x)),
              rmse(test.y, lr.predictAll(test.x)) * 0.5);
}

TEST(Mlp, NameReflectsLayerCount)
{
    MlpRegressor three({.hiddenLayers = {256}});
    MlpRegressor five({.hiddenLayers = {64, 64, 64}});
    EXPECT_EQ(three.name(), "MLP-3");
    EXPECT_EQ(five.name(), "MLP-5");
}

TEST(Mlp, ParameterCountMatchesArchitecture)
{
    const Dataset d = linearData(50, 0.0, 23);
    MlpRegressor mlp({.hiddenLayers = {8}, .epochs = 1});
    mlp.fit(d);
    // 2 -> 8 -> 1: (2*8 + 8) + (8*1 + 1) = 33.
    EXPECT_EQ(mlp.parameterCount(), 33u);
    EXPECT_EQ(mlp.layerCount(), 2u);
}

TEST(Mlp, DeterministicForSameSeed)
{
    const Dataset d = linearData(100, 0.05, 24);
    MlpRegressor a({.hiddenLayers = {16}, .epochs = 50, .seed = 9});
    MlpRegressor b({.hiddenLayers = {16}, .epochs = 50, .seed = 9});
    a.fit(d);
    b.fit(d);
    EXPECT_DOUBLE_EQ(a.predict({0.5f, 0.5f}), b.predict({0.5f, 0.5f}));
}

TEST(Regressors, PredictAllMatchesPredict)
{
    const Dataset d = linearData(60, 0.0, 25);
    LinearRegressor lr;
    lr.fit(d);
    const auto all = lr.predictAll(d.x);
    std::vector<float> row(d.numFeatures());
    for (size_t i = 0; i < d.size(); ++i) {
        row.assign(d.x.rowPtr(i), d.x.rowPtr(i) + d.numFeatures());
        EXPECT_DOUBLE_EQ(all[i], lr.predict(row));
    }
}

} // namespace
} // namespace gopim::ml
