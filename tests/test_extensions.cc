/**
 * @file
 * Unit tests for the extension modules: the ReRAM device noise model,
 * result serialization (JSON/CSV), and graph structural analysis.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hh"
#include "core/harness.hh"
#include "core/report.hh"
#include "graph/analysis.hh"
#include "graph/generators.hh"
#include "reram/noise.hh"
#include "tensor/init.hh"

namespace gopim {
namespace {

// ------------------------- device noise ------------------------- //

TEST(DeviceNoise, IdentityWhenDisabled)
{
    Rng rng(3);
    const auto m = tensor::uniformInit(16, 16, -1.0f, 1.0f, rng);
    reram::DeviceNoiseModel model({});
    EXPECT_EQ(model.program(m), m);
    EXPECT_DOUBLE_EQ(model.programmingRmse(m), 0.0);
}

TEST(DeviceNoise, LevelsMatchCellConfiguration)
{
    const auto cfg = reram::AcceleratorConfig::paperDefault();
    // 2 bits/cell x 2 slices = 4 bits -> 16 levels.
    EXPECT_EQ(reram::DeviceNoiseModel::levelsFor(cfg), 16u);
}

TEST(DeviceNoise, QuantizationSnapsToGrid)
{
    Rng rng(5);
    const auto m = tensor::uniformInit(32, 32, -2.0f, 2.0f, rng);
    reram::DeviceNoiseModel model({.quantLevels = 4});
    const auto q = model.program(m);

    // At 4 levels over a symmetric range there are at most 4 distinct
    // magnitude steps; verify values land on the implied grid.
    float maxAbs = 0.0f;
    for (size_t i = 0; i < m.size(); ++i)
        maxAbs = std::max(maxAbs, std::fabs(m.data()[i]));
    const float step = 2.0f * maxAbs / 3.0f;
    for (size_t i = 0; i < q.size(); ++i) {
        const float ratio = q.data()[i] / step;
        EXPECT_NEAR(ratio, std::round(ratio), 1e-4f);
    }
}

TEST(DeviceNoise, RmseGrowsWithSigma)
{
    Rng rng(7);
    const auto m = tensor::uniformInit(64, 64, -1.0f, 1.0f, rng);
    reram::DeviceNoiseModel low({.conductanceSigma = 0.03});
    reram::DeviceNoiseModel high({.conductanceSigma = 0.15});
    const double rLow = low.programmingRmse(m);
    const double rHigh = high.programmingRmse(m);
    EXPECT_GT(rLow, 0.0);
    EXPECT_GT(rHigh, rLow * 3.0);
    // Multiplicative noise: relative RMSE approximates sigma.
    EXPECT_NEAR(rLow, 0.03, 0.01);
}

TEST(DeviceNoise, MvmOutputErrorIsZeroForIdenticalWeights)
{
    Rng rng(11);
    const auto x = tensor::uniformInit(8, 16, -1.0f, 1.0f, rng);
    const auto w = tensor::uniformInit(16, 16, -1.0f, 1.0f, rng);
    EXPECT_DOUBLE_EQ(reram::mvmOutputError(x, w, w), 0.0);

    reram::DeviceNoiseModel noisy({.conductanceSigma = 0.1});
    EXPECT_GT(reram::mvmOutputError(x, w, noisy.program(w)), 0.0);
}

TEST(DeviceNoise, DeterministicPerSeed)
{
    Rng rng(9);
    const auto m = tensor::uniformInit(8, 8, -1.0f, 1.0f, rng);
    reram::DeviceNoiseModel a({.conductanceSigma = 0.1, .seed = 4});
    reram::DeviceNoiseModel b({.conductanceSigma = 0.1, .seed = 4});
    EXPECT_EQ(a.program(m), b.program(m));
}

// ------------------------- serialization ------------------------ //

class ReportTest : public ::testing::Test
{
  protected:
    ReportTest()
    {
        core::ComparisonHarness harness;
        rows_ = harness.runGrid(
            {core::SystemKind::Serial, core::SystemKind::GoPim},
            {"ddi"});
    }

    std::vector<core::ComparisonRow> rows_;
};

TEST_F(ReportTest, JsonContainsKeyFields)
{
    std::ostringstream os;
    core::writeGridJson(rows_, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"system\": \"GoPIM\""), std::string::npos);
    EXPECT_NE(json.find("\"dataset\": \"ddi\""), std::string::npos);
    EXPECT_NE(json.find("\"makespan_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"replicas\""), std::string::npos);
    // Crude structural sanity: balanced braces/brackets.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST_F(ReportTest, CsvHasHeaderAndRows)
{
    std::ostringstream os;
    core::writeGridCsv(rows_, os);
    const std::string csv = os.str();
    EXPECT_EQ(static_cast<size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              1u + 2u); // header + two systems
    EXPECT_NE(csv.find("dataset,system"), std::string::npos);
    EXPECT_NE(csv.find("ddi,GoPIM"), std::string::npos);
}

TEST(JsonEscape, HandlesSpecials)
{
    EXPECT_EQ(core::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(core::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(core::jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(core::jsonEscape("plain"), "plain");
}

// ------------------------- graph analysis ----------------------- //

TEST(Analysis, ComponentsOfDisjointCliques)
{
    // Two triangles plus one isolated vertex.
    const auto g = graph::Graph::fromEdges(
        7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
    const auto c = graph::connectedComponents(g);
    EXPECT_EQ(c.count, 3u);
    EXPECT_EQ(c.largestSize, 3u);
    EXPECT_EQ(c.componentOf[0], c.componentOf[2]);
    EXPECT_NE(c.componentOf[0], c.componentOf[3]);
}

TEST(Analysis, ClusteringOfTriangleAndStar)
{
    const auto triangle =
        graph::Graph::fromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
    EXPECT_DOUBLE_EQ(graph::clusteringCoefficient(triangle), 1.0);

    const auto star =
        graph::Graph::fromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
    EXPECT_DOUBLE_EQ(graph::clusteringCoefficient(star), 0.0);
}

TEST(Analysis, DegreeHistogramTotals)
{
    Rng rng(11);
    const auto g = graph::erdosRenyi(500, 0.02, rng);
    const auto h = graph::degreeHistogram(g, 16);
    EXPECT_EQ(h.total(), 500u);
}

TEST(Analysis, StarIsDisassortative)
{
    graph::Graph star = graph::Graph::fromEdges(
        11, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5},
             {0, 6}, {0, 7}, {0, 8}, {0, 9}, {0, 10}});
    EXPECT_LT(graph::degreeAssortativity(star), -0.5);
}

TEST(Analysis, PowerLawExponentRecovered)
{
    Rng rng(13);
    const auto degrees =
        graph::powerLawDegreeSequence(30000, 12.0, 2.1, 5000, rng);
    const auto g = graph::chungLu(degrees, rng);
    const double alpha = graph::powerLawExponent(g, 4);
    // Chung-Lu realization + clamping blur the exponent; expect the
    // heavy-tail regime rather than the exact 2.1.
    EXPECT_GT(alpha, 1.3);
    EXPECT_LT(alpha, 3.0);
}

TEST(Analysis, RegularGraphHasNoPowerLaw)
{
    // A cycle: all degrees 2; the MLE degenerates to 0 sentinel when
    // no vertex clears dMin... with dMin=2 all qualify but log sum is
    // positive; just check it runs and is finite.
    std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
    for (uint32_t v = 0; v < 50; ++v)
        edges.push_back({v, (v + 1) % 50});
    const auto cycle = graph::Graph::fromEdges(50, edges);
    const double alpha = graph::powerLawExponent(cycle, 2);
    EXPECT_TRUE(std::isfinite(alpha));
}

} // namespace
} // namespace gopim
