/**
 * @file
 * Unit tests for the link-prediction trainer: AUC computation, edge
 * splitting, learning on structured graphs, and the selective-update
 * staleness emulation on the link task.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gcn/link_trainer.hh"
#include "graph/generators.hh"

namespace gopim::gcn {
namespace {

TEST(RocAuc, PerfectSeparation)
{
    EXPECT_DOUBLE_EQ(rocAuc({2.0f, 3.0f}, {0.0f, 1.0f}), 1.0);
    EXPECT_DOUBLE_EQ(rocAuc({0.0f, 1.0f}, {2.0f, 3.0f}), 0.0);
}

TEST(RocAuc, ChanceAndTies)
{
    // Identical scores: every comparison is a tie -> 0.5.
    EXPECT_DOUBLE_EQ(rocAuc({1.0f, 1.0f}, {1.0f, 1.0f}), 0.5);
    // Interleaved scores.
    EXPECT_DOUBLE_EQ(rocAuc({1.0f, 3.0f}, {0.0f, 2.0f}), 0.75);
}

TEST(RocAuc, RandomScoresNearHalf)
{
    Rng rng(3);
    std::vector<float> pos, neg;
    for (int i = 0; i < 4000; ++i) {
        pos.push_back(static_cast<float>(rng.uniform()));
        neg.push_back(static_cast<float>(rng.uniform()));
    }
    EXPECT_NEAR(rocAuc(pos, neg), 0.5, 0.03);
}

class LinkTrainerTest : public ::testing::Test
{
  protected:
    LinkTrainerTest()
    {
        Rng rng(41);
        // Community structure makes links predictable.
        data_ = graph::degreeCorrectedPartition(500, 4, 14.0, 2.1,
                                                0.05, rng);
    }

    graph::LabeledGraph data_;
};

TEST_F(LinkTrainerTest, SplitsEdges)
{
    TrainerConfig cfg;
    LinkPredictionTrainer trainer(data_.graph, cfg, 0.2);
    EXPECT_NEAR(static_cast<double>(trainer.testEdgeCount()),
                static_cast<double>(data_.graph.numEdges()) * 0.2,
                2.0);
    EXPECT_EQ(trainer.trainEdgeCount() + trainer.testEdgeCount(),
              data_.graph.numEdges());
}

TEST_F(LinkTrainerTest, LearnsAboveChance)
{
    TrainerConfig cfg;
    cfg.epochs = 40;
    cfg.featureDim = 16;
    cfg.hiddenChannels = 16;
    LinkPredictionTrainer trainer(data_.graph, cfg);
    const auto result = trainer.train({});
    ASSERT_EQ(result.lossHistory.size(), 40u);
    EXPECT_LT(result.lossHistory.back(),
              result.lossHistory.front());
    EXPECT_GT(result.bestTestAuc, 0.70);
}

TEST_F(LinkTrainerTest, SelectiveUpdatingCostsLittleAuc)
{
    TrainerConfig cfg;
    cfg.epochs = 40;
    cfg.featureDim = 16;
    cfg.hiddenChannels = 16;
    LinkPredictionTrainer trainer(data_.graph, cfg);
    const auto full = trainer.train({});
    const auto selective = trainer.train(
        {.enabled = true, .theta = 0.5, .coldPeriod = 20});
    EXPECT_GT(selective.bestTestAuc, full.bestTestAuc - 0.06);
}

TEST_F(LinkTrainerTest, DeterministicForSameSeed)
{
    TrainerConfig cfg;
    cfg.epochs = 10;
    LinkPredictionTrainer a(data_.graph, cfg), b(data_.graph, cfg);
    EXPECT_DOUBLE_EQ(a.train({}).finalTestAuc,
                     b.train({}).finalTestAuc);
}

} // namespace
} // namespace gopim::gcn
