/**
 * @file
 * Fault subsystem tests: deterministic stuck-cell maps and their
 * repair primitives, fault-aware group remapping, the endurance wear
 * model (including ISU's reliability dividend), the repair policies'
 * closed-form plans, and the subsystem's integration contract — a
 * zero-fault configuration is bit-identical to the fault-free build
 * on both scheduling engines and in the functional trainer.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/harness.hh"
#include "core/report.hh"
#include "fault/model.hh"
#include "fault/repair.hh"
#include "fault/wear.hh"
#include "gcn/trainer.hh"
#include "gcn/workload.hh"
#include "graph/generators.hh"
#include "mapping/selective.hh"
#include "mapping/vertex_map.hh"
#include "tensor/init.hh"

namespace gopim {
namespace {

fault::FaultParams
stuckParams(double on, double off)
{
    fault::FaultParams params;
    params.stuckOnRate = on;
    params.stuckOffRate = off;
    return params;
}

// ------------------------- cell fault maps ---------------------- //

TEST(CellFaultMapTest, DeterministicPerSeed)
{
    const auto params = stuckParams(0.05, 0.05);
    const fault::CellFaultMap a(64, 64, params, 11);
    const fault::CellFaultMap b(64, 64, params, 11);
    const fault::CellFaultMap c(64, 64, params, 12);
    size_t same = 0, diffFromC = 0;
    for (size_t r = 0; r < 64; ++r) {
        for (size_t col = 0; col < 64; ++col) {
            same += a.at(r, col) == b.at(r, col);
            diffFromC += a.at(r, col) != c.at(r, col);
        }
    }
    EXPECT_EQ(same, 64u * 64u);
    EXPECT_GT(diffFromC, 0u);
}

TEST(CellFaultMapTest, FaultFractionTracksConfiguredRates)
{
    const fault::CellFaultMap map(128, 128, stuckParams(0.04, 0.06),
                                  17);
    EXPECT_NEAR(map.faultFraction(), 0.10, 0.02);
    EXPECT_GT(map.faultyRowCount(), 0u);
    const fault::CellFaultMap clean(128, 128, stuckParams(0.0, 0.0),
                                    17);
    EXPECT_DOUBLE_EQ(clean.faultFraction(), 0.0);
    EXPECT_EQ(clean.faultyRowCount(), 0u);
}

TEST(CellFaultMapTest, ApplyWritesStuckValues)
{
    Rng rng(3);
    const auto ideal = tensor::uniformInit(32, 32, -1.0f, 1.0f, rng);
    float maxAbs = 0.0f;
    for (size_t i = 0; i < ideal.size(); ++i)
        maxAbs = std::max(maxAbs, std::fabs(ideal.data()[i]));

    const fault::CellFaultMap map(32, 32, stuckParams(0.1, 0.1), 5);
    tensor::Matrix programmed = ideal;
    map.apply(programmed);

    using Cell = fault::CellFaultMap::Cell;
    size_t stuckOn = 0, stuckOff = 0;
    for (size_t r = 0; r < 32; ++r) {
        for (size_t c = 0; c < 32; ++c) {
            switch (map.at(r, c)) {
              case Cell::Ok:
                EXPECT_EQ(programmed.at(r, c), ideal.at(r, c));
                break;
              case Cell::StuckOff:
                EXPECT_EQ(programmed.at(r, c), 0.0f);
                ++stuckOff;
                break;
              case Cell::StuckOn:
                EXPECT_EQ(programmed.at(r, c), maxAbs);
                ++stuckOn;
                break;
            }
        }
    }
    EXPECT_GT(stuckOn, 0u);
    EXPECT_GT(stuckOff, 0u);
}

TEST(CellFaultMapTest, RepairRowsClearsWorstRowsFirst)
{
    fault::CellFaultMap map(64, 64, stuckParams(0.03, 0.03), 7);
    std::vector<size_t> before(64, 0);
    for (size_t r = 0; r < 64; ++r)
        for (size_t c = 0; c < 64; ++c)
            before[r] += map.at(r, c) != fault::CellFaultMap::Cell::Ok;

    const size_t faultyBefore = map.faultyRowCount();
    const size_t repaired = map.repairRows(0.25); // 16-row budget
    EXPECT_EQ(repaired, std::min<size_t>(16, faultyBefore));
    EXPECT_EQ(map.faultyRowCount(), faultyBefore - repaired);

    // Worst-first: every row the repair cleared had at least as many
    // faults as any row it left faulty.
    size_t minRepaired = 64 * 64, maxRemaining = 0;
    for (size_t r = 0; r < 64; ++r) {
        size_t now = 0;
        for (size_t c = 0; c < 64; ++c)
            now += map.at(r, c) != fault::CellFaultMap::Cell::Ok;
        if (before[r] > 0 && now == 0)
            minRepaired = std::min(minRepaired, before[r]);
        maxRemaining = std::max(maxRemaining, now);
    }
    EXPECT_GE(minRepaired, maxRemaining);

    // A full budget clears the map entirely.
    fault::CellFaultMap full(64, 64, stuckParams(0.03, 0.03), 7);
    full.repairRows(1.0);
    EXPECT_EQ(full.faultyRowCount(), 0u);
    EXPECT_DOUBLE_EQ(full.faultFraction(), 0.0);
}

TEST(CellFaultMapTest, EccMaskKeepsOnlyCoincidingFaults)
{
    const auto params = stuckParams(0.08, 0.08);
    const fault::CellFaultMap a(64, 64, params, 21);
    const fault::CellFaultMap b(64, 64, params, 22);

    // Masking against yourself is the identity: both copies always
    // agree, so nothing is repaired.
    const auto self = a.maskedWith(a);
    EXPECT_DOUBLE_EQ(self.faultFraction(), a.faultFraction());

    // Independent copies disagree almost everywhere: a surviving
    // fault must be present identically in both maps, so the rate
    // collapses toward rate^2.
    const auto masked = a.maskedWith(b);
    EXPECT_LT(masked.faultFraction(), a.faultFraction() * 0.5);
    for (size_t r = 0; r < 64; ++r) {
        for (size_t c = 0; c < 64; ++c) {
            if (masked.at(r, c) != fault::CellFaultMap::Cell::Ok) {
                EXPECT_EQ(masked.at(r, c), a.at(r, c));
                EXPECT_EQ(masked.at(r, c), b.at(r, c));
            }
        }
    }
}

// --------------------- fault-aware remapping -------------------- //

TEST(FaultRemapTest, ScoresAreDeterministicAndBounded)
{
    const auto a = fault::groupFaultScores(256, 0.01, 17);
    const auto b = fault::groupFaultScores(256, 0.01, 17);
    EXPECT_EQ(a, b);
    double sum = 0.0;
    for (const double s : a) {
        EXPECT_GE(s, 0.0);
        EXPECT_LT(s, 0.02);
        sum += s;
    }
    EXPECT_NEAR(sum / 256.0, 0.01, 0.002);
}

TEST(FaultRemapTest, RemapSteersLoadOntoHealthyGroupsAndLowersExposure)
{
    Rng rng(9);
    std::vector<double> load(32);
    for (auto &l : load)
        l = rng.uniform() * 10.0;
    const auto scores = fault::groupFaultScores(32, 0.01, 17);

    const auto physicalOf =
        mapping::remapGroupsByHealth(load, scores);
    ASSERT_EQ(physicalOf.size(), 32u);
    auto sorted = physicalOf;
    std::sort(sorted.begin(), sorted.end());
    for (uint32_t g = 0; g < 32; ++g)
        EXPECT_EQ(sorted[g], g); // a permutation

    // The heaviest logical group lands on the healthiest physical
    // group.
    const size_t heaviest = static_cast<size_t>(
        std::max_element(load.begin(), load.end()) - load.begin());
    const size_t healthiest = static_cast<size_t>(
        std::min_element(scores.begin(), scores.end()) -
        scores.begin());
    EXPECT_EQ(physicalOf[heaviest], healthiest);

    // Rearrangement inequality: exposure never increases.
    std::vector<double> seen(32);
    for (size_t g = 0; g < 32; ++g)
        seen[g] = scores[physicalOf[g]];
    EXPECT_LE(fault::writeExposure(load, seen),
              fault::writeExposure(load, scores));
}

// ----------------------------- wear ----------------------------- //

TEST(WearTest, ApproxWearRampsPastTheEnduranceRating)
{
    // At exactly the rating nothing is worn; 50% past it wears half
    // the (spread-out) population.
    const auto atRating = fault::approxWear(1.0, 100, 100.0);
    EXPECT_DOUBLE_EQ(atRating.wornRowFraction, 0.0);
    EXPECT_DOUBLE_EQ(atRating.lifetimeFraction, 1.0);

    const auto past = fault::approxWear(1.0, 150, 100.0);
    EXPECT_DOUBLE_EQ(past.wornRowFraction, 0.5);
    EXPECT_DOUBLE_EQ(past.meanWritesPerRowPerEpoch, 1.0);
}

TEST(WearTest, SelectiveUpdatingPaysAReliabilityDividend)
{
    // 256 vertices, skewed degrees, interleaved groups of 64.
    std::vector<uint32_t> degrees(256);
    for (size_t v = 0; v < degrees.size(); ++v)
        degrees[v] = static_cast<uint32_t>(256 - v);
    const auto assignment = mapping::mapVertices(
        degrees, 64, mapping::VertexMapStrategy::Interleaved);

    mapping::SelectiveUpdateParams params;
    params.theta = 0.5;
    params.coldPeriod = 20;
    const auto important = mapping::selectImportant(degrees, 0.5);
    const std::vector<bool> allHot(degrees.size(), true);

    const auto isu = fault::computeWear(assignment, important, params,
                                        150, 100.0);
    const auto full = fault::computeWear(assignment, allHot, params,
                                         150, 100.0);

    // Mean wear drops to theta + (1 - theta) / coldPeriod.
    EXPECT_NEAR(isu.meanWritesPerRowPerEpoch, 0.5 + 0.5 / 20.0, 1e-9);
    EXPECT_DOUBLE_EQ(full.meanWritesPerRowPerEpoch, 1.0);
    EXPECT_LT(isu.wornRowFraction, full.wornRowFraction);
    EXPECT_LE(isu.peakGroupWritesPerEpoch,
              full.peakGroupWritesPerEpoch);
}

// ------------------------- repair policies ---------------------- //

fault::RepairContext
sampleContext()
{
    fault::RepairContext ctx;
    ctx.params = stuckParams(0.005, 0.005);
    ctx.params.driftPerEpoch = 0.01;
    ctx.spareRowFraction = 0.05;
    ctx.refreshPeriodMb = 128;
    ctx.wornRowFraction = 0.002;
    ctx.writeExposure = 0.012;
    ctx.totalMicroBatches = 1024;
    return ctx;
}

TEST(RepairPolicyTest, PlansAreDeterministic)
{
    const auto ctx = sampleContext();
    for (const fault::RepairKind kind : fault::allRepairKinds()) {
        const auto &policy = fault::repairPolicyFor(kind);
        EXPECT_EQ(policy.name(), toString(kind));
        const auto a = policy.plan(ctx);
        const auto b = policy.plan(ctx);
        EXPECT_EQ(a.policy, b.policy);
        EXPECT_EQ(a.rawCellFaultRate, b.rawCellFaultRate);
        EXPECT_EQ(a.residualCellFaultRate, b.residualCellFaultRate);
        EXPECT_EQ(a.residualDriftPerEpoch, b.residualDriftPerEpoch);
        EXPECT_EQ(a.writeAmplification, b.writeAmplification);
        EXPECT_EQ(a.crossbarOverheadFactor, b.crossbarOverheadFactor);
        EXPECT_EQ(a.refreshEveryMicroBatches,
                  b.refreshEveryMicroBatches);
        EXPECT_EQ(a.refreshStallNs, b.refreshStallNs);
        EXPECT_EQ(a.rowWritesPerRefresh, b.rowWritesPerRefresh);
        EXPECT_EQ(a.remapStallNs, b.remapStallNs);
        // Stuck + worn cells: 0.005 + 0.005 + 0.002.
        EXPECT_DOUBLE_EQ(a.rawCellFaultRate, 0.012);
    }
}

TEST(RepairPolicyTest, NoneLeavesEverythingUnrepaired)
{
    const auto plan =
        fault::repairPolicyFor(fault::RepairKind::None)
            .plan(sampleContext());
    EXPECT_DOUBLE_EQ(plan.residualCellFaultRate,
                     plan.rawCellFaultRate);
    EXPECT_DOUBLE_EQ(plan.residualDriftPerEpoch, 0.01);
    EXPECT_GT(plan.writeAmplification, 1.0); // write-verify retries
    EXPECT_DOUBLE_EQ(plan.crossbarOverheadFactor, 1.0);
    EXPECT_EQ(plan.refreshEveryMicroBatches, 0u);
    EXPECT_DOUBLE_EQ(plan.remapStallNs, 0.0);
}

TEST(RepairPolicyTest, SpareRowsTradeCapacityForResidualRate)
{
    const auto plan =
        fault::repairPolicyFor(fault::RepairKind::SpareRows)
            .plan(sampleContext());
    EXPECT_LT(plan.residualCellFaultRate, plan.rawCellFaultRate);
    EXPECT_GT(plan.crossbarOverheadFactor, 1.0);
    EXPECT_GT(plan.remapStallNs, 0.0); // one-time re-programming
    // Spares cannot fix retention drift.
    EXPECT_DOUBLE_EQ(plan.residualDriftPerEpoch, 0.01);
}

TEST(RepairPolicyTest, EccSquaresTheResidualRate)
{
    const auto plan =
        fault::repairPolicyFor(fault::RepairKind::EccDuplicate)
            .plan(sampleContext());
    EXPECT_DOUBLE_EQ(plan.residualCellFaultRate,
                     plan.rawCellFaultRate * plan.rawCellFaultRate);
    EXPECT_DOUBLE_EQ(plan.writeAmplification, 2.0);
    EXPECT_DOUBLE_EQ(plan.crossbarOverheadFactor, 2.0);
}

TEST(RepairPolicyTest, RefreshFixesDriftAtAPipelineCost)
{
    const auto ctx = sampleContext();
    const auto plan =
        fault::repairPolicyFor(fault::RepairKind::Refresh).plan(ctx);
    EXPECT_DOUBLE_EQ(plan.residualDriftPerEpoch, 0.0);
    EXPECT_DOUBLE_EQ(plan.residualCellFaultRate,
                     plan.rawCellFaultRate); // stuck cells remain
    EXPECT_EQ(plan.refreshEveryMicroBatches, 128u);
    EXPECT_DOUBLE_EQ(plan.refreshStallNs,
                     static_cast<double>(ctx.rows) *
                         ctx.writeLatencyNs);
    EXPECT_EQ(plan.rowWritesPerRefresh, ctx.rows);
}

TEST(RepairPolicyTest, AccuracyEffectsMatchEachPolicy)
{
    fault::FaultConfig config;
    config.params = stuckParams(0.01, 0.02);
    config.params.driftPerEpoch = 0.005;
    config.spareRowFraction = 0.08;
    config.refreshPeriodEpochs = 4;

    config.repair = fault::RepairKind::None;
    auto fx = fault::accuracyEffectsFor(config);
    EXPECT_DOUBLE_EQ(fx.stuckOnRate, 0.01);
    EXPECT_DOUBLE_EQ(fx.stuckOffRate, 0.02);
    EXPECT_FALSE(fx.eccDuplicate);
    EXPECT_EQ(fx.refreshPeriodEpochs, 0u);
    EXPECT_DOUBLE_EQ(fx.spareRowFraction, 0.0);

    config.repair = fault::RepairKind::SpareRows;
    fx = fault::accuracyEffectsFor(config);
    EXPECT_DOUBLE_EQ(fx.spareRowFraction, 0.08);

    config.repair = fault::RepairKind::EccDuplicate;
    fx = fault::accuracyEffectsFor(config);
    EXPECT_TRUE(fx.eccDuplicate);

    config.repair = fault::RepairKind::Refresh;
    fx = fault::accuracyEffectsFor(config);
    EXPECT_EQ(fx.refreshPeriodEpochs, 4u);
    EXPECT_DOUBLE_EQ(fx.driftPerEpoch, 0.005);
}

TEST(RepairPolicyTest, RepairKindNamesRoundTrip)
{
    for (const fault::RepairKind kind : fault::allRepairKinds()) {
        fault::RepairKind parsed;
        ASSERT_TRUE(
            fault::tryRepairKindFromString(toString(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    fault::RepairKind kind;
    EXPECT_TRUE(fault::tryRepairKindFromString("spare", &kind));
    EXPECT_EQ(kind, fault::RepairKind::SpareRows);
    EXPECT_TRUE(fault::tryRepairKindFromString("ecc", &kind));
    EXPECT_EQ(kind, fault::RepairKind::EccDuplicate);
    EXPECT_FALSE(fault::tryRepairKindFromString("bogus", &kind));
}

// ----------------------- integration contract ------------------- //

TEST(FaultIntegrationTest, ZeroFaultConfigIsBitIdenticalBothEngines)
{
    // An explicitly-zero fault configuration must take the exact
    // pre-fault code path: same makespan bits, same energy bits, on
    // both scheduling engines, for GoPIM and a baseline.
    const auto workload = gcn::Workload::paperDefault("Cora");
    for (const auto engine : {sim::EngineKind::ClosedForm,
                              sim::EngineKind::EventDriven}) {
        sim::SimContext ctx;
        ctx.engine = engine;
        core::ComparisonHarness plain(
            reram::AcceleratorConfig::paperDefault(), ctx);
        core::ComparisonHarness zeroed(
            reram::AcceleratorConfig::paperDefault(), ctx);
        zeroed.setFaultConfig(fault::FaultConfig{});

        for (const auto kind :
             {core::SystemKind::Serial, core::SystemKind::GoPim}) {
            const auto a = plain.runOne(kind, workload);
            const auto b = zeroed.runOne(kind, workload);
            EXPECT_EQ(a.makespanNs, b.makespanNs);
            EXPECT_EQ(a.energyPj, b.energyPj);
            EXPECT_EQ(a.totalCrossbars, b.totalCrossbars);
            EXPECT_EQ(a.stageTimesNs, b.stageTimesNs);
            EXPECT_EQ(b.repairPolicy, "none");
            EXPECT_DOUBLE_EQ(b.rawFaultRate, 0.0);
            EXPECT_DOUBLE_EQ(b.writeAmplification, 1.0);
        }
    }
}

TEST(FaultIntegrationTest, FaultsBendTimingAndSurfaceInTheResult)
{
    const auto workload = gcn::Workload::paperDefault("Cora");
    core::ComparisonHarness healthy;
    core::ComparisonHarness faulty;
    fault::FaultConfig config;
    config.params.stuckOnRate = 0.01;
    faulty.setFaultConfig(config);

    const auto a = healthy.runOne(core::SystemKind::GoPim, workload);
    const auto b = faulty.runOne(core::SystemKind::GoPim, workload);
    EXPECT_GT(b.rawFaultRate, 0.0);
    EXPECT_GT(b.residualFaultRate, 0.0);
    EXPECT_GT(b.writeAmplification, 1.0);
    EXPECT_GT(b.makespanNs, a.makespanNs);

    // The result JSON carries the fault block for downstream tooling.
    const json::Value json = core::runResultToJson(b);
    const json::Value *block = json.find("fault");
    ASSERT_TRUE(block != nullptr);
    EXPECT_EQ(block->find("repair_policy")->asString(), "none");
    EXPECT_GT(block->find("raw_fault_rate")->asDouble(), 0.0);
}

TEST(FaultIntegrationTest, RepairPoliciesShiftTheMakespanTradeoff)
{
    const auto workload = gcn::Workload::paperDefault("Cora");
    fault::FaultConfig config;
    config.params.stuckOnRate = 0.01;

    std::vector<double> makespans;
    for (const fault::RepairKind kind : fault::allRepairKinds()) {
        config.repair = kind;
        core::ComparisonHarness harness;
        harness.setFaultConfig(config);
        const auto run =
            harness.runOne(core::SystemKind::GoPim, workload);
        EXPECT_EQ(run.repairPolicy, toString(kind));
        makespans.push_back(run.makespanNs);

        // Deterministic: the same configuration reproduces the same
        // bits on a fresh harness.
        core::ComparisonHarness again;
        again.setFaultConfig(config);
        EXPECT_EQ(
            again.runOne(core::SystemKind::GoPim, workload).makespanNs,
            run.makespanNs);
    }
    // ECC's doubled writes cost more than unrepaired retries here.
    EXPECT_GT(makespans[2], makespans[0]);
}

TEST(FaultIntegrationTest, TrainerZeroFaultRunsAreBitIdentical)
{
    Rng rng(3);
    const auto data =
        graph::degreeCorrectedPartition(300, 3, 10.0, 2.1, 0.2, rng);
    gcn::TrainerConfig base;
    base.epochs = 8;
    base.featureDim = 8;
    base.hiddenChannels = 16;

    gcn::TrainerConfig zeroed = base;
    zeroed.fault = fault::FaultConfig{}; // explicit zero

    const auto a = gcn::FunctionalTrainer(data, base).train({});
    const auto b = gcn::FunctionalTrainer(data, zeroed).train({});
    EXPECT_EQ(a.lossHistory, b.lossHistory);
    EXPECT_EQ(a.bestTestAccuracy, b.bestTestAccuracy);
    EXPECT_EQ(a.finalTestAccuracy, b.finalTestAccuracy);
    EXPECT_EQ(a.finalTrainLoss, b.finalTrainLoss);
}

TEST(FaultIntegrationTest, TrainerFaultInjectionIsDeterministic)
{
    Rng rng(3);
    const auto data =
        graph::degreeCorrectedPartition(300, 3, 10.0, 2.1, 0.2, rng);
    gcn::TrainerConfig config;
    config.epochs = 8;
    config.featureDim = 8;
    config.hiddenChannels = 16;
    config.fault.params.stuckOnRate = 0.02;
    config.fault.params.stuckOffRate = 0.02;

    const auto a = gcn::FunctionalTrainer(data, config).train({});
    const auto b = gcn::FunctionalTrainer(data, config).train({});
    EXPECT_EQ(a.lossHistory, b.lossHistory);
    EXPECT_EQ(a.bestTestAccuracy, b.bestTestAccuracy);

    // And faults actually reach the forward pass: the loss history
    // diverges from a healthy run.
    gcn::TrainerConfig healthy = config;
    healthy.fault = fault::FaultConfig{};
    const auto clean =
        gcn::FunctionalTrainer(data, healthy).train({});
    EXPECT_NE(a.lossHistory, clean.lossHistory);
}

} // namespace
} // namespace gopim
