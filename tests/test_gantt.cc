/**
 * @file
 * Unit tests for the ASCII Gantt renderer.
 */

#include <gtest/gtest.h>

#include "pipeline/gantt.hh"
#include "pipeline/schedule.hh"
#include "pipeline/stage.hh"

namespace gopim::pipeline {
namespace {

TEST(Gantt, ContainsAllStageLabels)
{
    const auto stages = buildTrainingStages(2);
    std::vector<double> times(stages.size(), 1.0);
    times[1] = 5.0;
    const auto schedule = schedulePipelined(times, 4);
    const auto text = renderGantt(stages, schedule);
    for (const auto &s : stages)
        EXPECT_NE(text.find(s.label()), std::string::npos)
            << s.label();
}

TEST(Gantt, RowsMatchStagesAndWidth)
{
    const auto stages = buildTrainingStages(1);
    const std::vector<double> times = {1.0, 2.0, 1.0, 1.0};
    const auto schedule = schedulePipelined(times, 3);
    GanttOptions options;
    options.width = 40;
    const auto text = renderGantt(stages, schedule, options);

    size_t rows = 0;
    size_t barCols = 0;
    std::istringstream lines(text);
    std::string line;
    std::getline(lines, line); // header
    while (std::getline(lines, line)) {
        ++rows;
        const auto open = line.find('|');
        const auto close = line.rfind('|');
        ASSERT_NE(open, std::string::npos);
        barCols = close - open - 1;
    }
    EXPECT_EQ(rows, stages.size());
    EXPECT_EQ(barCols, options.width);
}

TEST(Gantt, SerialShowsNoOverlap)
{
    const auto stages = buildTrainingStages(1);
    const std::vector<double> times = {1.0, 1.0, 1.0, 1.0};
    const auto schedule = scheduleSerial(times, 2);
    const auto text = renderGantt(stages, schedule);

    // In a serial schedule no two stages are busy in the same column:
    // per character column at most one non-'.' across stage rows.
    std::vector<std::string> bars;
    std::istringstream lines(text);
    std::string line;
    std::getline(lines, line);
    while (std::getline(lines, line)) {
        const auto open = line.find('|');
        bars.push_back(line.substr(open + 1,
                                   line.rfind('|') - open - 1));
    }
    for (size_t c = 0; c < bars.front().size(); ++c) {
        int busy = 0;
        for (const auto &bar : bars)
            busy += bar[c] != '.';
        EXPECT_LE(busy, 1) << "column " << c;
    }
}

TEST(Gantt, ElidesExcessMicroBatches)
{
    const auto stages = buildTrainingStages(1);
    const std::vector<double> times = {1.0, 1.0, 1.0, 1.0};
    const auto schedule = schedulePipelined(times, 100);
    GanttOptions options;
    options.maxMicroBatches = 8;
    const auto text = renderGantt(stages, schedule, options);
    EXPECT_NE(text.find("first 8 of 100"), std::string::npos);
}

} // namespace
} // namespace gopim::pipeline
