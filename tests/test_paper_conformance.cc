/**
 * @file
 * Paper-conformance sweeps: parameterized checks across ALL seven
 * Table III datasets that the catalog, the Table IV models, the
 * timing model, and the end-to-end systems satisfy the invariants
 * the paper's evaluation depends on.
 */

#include <gtest/gtest.h>

#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/systems.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"
#include "mapping/tiling.hh"

namespace gopim {
namespace {

class DatasetConformance
    : public ::testing::TestWithParam<const char *>
{
  protected:
    graph::DatasetSpec
    spec() const
    {
        return graph::DatasetCatalog::byName(GetParam());
    }
};

TEST_P(DatasetConformance, CatalogStatisticsAreSelfConsistent)
{
    const auto s = spec();
    EXPECT_GT(s.numVertices, 0u);
    EXPECT_GT(s.numEdges, 0u);
    EXPECT_GT(s.featureDim, 0u);
    // Table III's published average degrees do NOT always equal
    // 2E/V from its own vertex/edge counts (OGB's edge-counting
    // conventions vary per dataset: Cora's count is directed,
    // collab's includes multi-edges). The catalog reproduces the
    // published numbers verbatim; assert they are at least in the
    // same regime as the counts imply.
    const double directed = static_cast<double>(s.numEdges) /
                            static_cast<double>(s.numVertices);
    EXPECT_GE(s.avgDegree, directed * 0.5) << "degree vs counts";
    EXPECT_LE(s.avgDegree, directed * 2.0 * 1.5)
        << "degree vs counts";
    EXPECT_GT(s.stats().sparsity(), 0.0);
    EXPECT_LT(s.stats().sparsity(), 1.0);
}

TEST_P(DatasetConformance, ModelMatchesTableFour)
{
    const auto model = gcn::paperModelFor(GetParam());
    EXPECT_GE(model.numLayers, 2u);
    EXPECT_LE(model.numLayers, 3u);
    EXPECT_EQ(model.hiddenChannels, 256u);
    EXPECT_GT(model.learningRate, 0.0);
    EXPECT_LE(model.dropout, 0.5);
    // Layer dims chain correctly.
    for (uint32_t l = 1; l < model.numLayers; ++l)
        EXPECT_EQ(model.layerDims(l).second,
                  model.layerDims(l + 1).first);
}

TEST_P(DatasetConformance, SingleReplicasFitTheChip)
{
    const auto workload = gcn::Workload::paperDefault(GetParam());
    const auto hw = reram::AcceleratorConfig::paperDefault();
    uint64_t mandatory = 0;
    for (uint32_t l = 1; l <= workload.model.numLayers; ++l) {
        const auto [fin, fout] = workload.model.layerDims(l);
        mandatory +=
            mapping::crossbarsPerReplica(fin, fout, hw) * 2; // CO+LC
        mandatory += mapping::crossbarsPerReplica(
                         workload.dataset.numVertices, fout, hw) *
                     2; // AG+GC
    }
    EXPECT_LE(mandatory, hw.totalCrossbars())
        << "the 16 GB chip must hold one replica of every stage";
}

TEST_P(DatasetConformance, StageTimesArePositiveAndAgDominates)
{
    const auto workload = gcn::Workload::paperDefault(GetParam());
    const gcn::StageTimeModel model(
        reram::AcceleratorConfig::paperDefault());
    gcn::ExecutionPolicy policy;
    const auto artifacts = gcn::MappingArtifacts::fullUpdateApprox(
        workload.dataset.numVertices, 64);
    const auto costs = model.allCosts(workload, policy, artifacts);
    ASSERT_EQ(costs.size(), workload.model.numStages());

    double coMax = 0.0, agMin = 1e300;
    const auto stages =
        pipeline::buildTrainingStages(workload.model.numLayers);
    for (size_t i = 0; i < costs.size(); ++i) {
        EXPECT_GT(costs[i].totalNs(), 0.0) << stages[i].label();
        if (stages[i].type == pipeline::StageType::Combination)
            coMax = std::max(coMax, costs[i].totalNs());
        if (stages[i].type == pipeline::StageType::Aggregation)
            agMin = std::min(agMin, costs[i].totalNs());
    }
    // Section III-A: Aggregation outweighs Combination everywhere.
    EXPECT_GT(agMin, coMax);
}

TEST_P(DatasetConformance, GoPimWinsEndToEnd)
{
    core::ComparisonHarness harness;
    const auto workload = gcn::Workload::paperDefault(GetParam());
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);

    core::Accelerator serial(harness.hardware(),
                             core::makeSystem(core::SystemKind::Serial));
    core::Accelerator gopim(harness.hardware(),
                            core::makeSystem(core::SystemKind::GoPim));
    const auto s = serial.run(workload, profile);
    const auto g = gopim.run(workload, profile);
    EXPECT_GT(g.speedupOver(s), 1.0);
    EXPECT_GT(g.energySavingOver(s), 1.0);
    EXPECT_LT(g.avgIdleFraction, s.avgIdleFraction);
}

INSTANTIATE_TEST_SUITE_P(AllTableThreeDatasets, DatasetConformance,
                         ::testing::Values("ddi", "collab", "ppa",
                                           "proteins", "arxiv",
                                           "products", "Cora"));

// ------------------- failure injection (fatal paths) ------------ //

TEST(FailureInjection, UnknownDatasetIsFatal)
{
    EXPECT_DEATH(graph::DatasetCatalog::byName("imaginary"),
                 "unknown dataset");
    EXPECT_DEATH(gcn::paperModelFor("imaginary"), "no paper model");
}

TEST(FailureInjection, OversizedWorkloadIsFatal)
{
    // Shrink the chip until products' single replicas no longer fit.
    auto hw = reram::AcceleratorConfig::paperDefault();
    hw.chip.tilesPerChip = 16; // 4096 crossbars only
    const auto workload = gcn::Workload::paperDefault("products");
    const auto profile = gcn::VertexProfile::build(
        graph::DatasetCatalog::byName("Cora"), 1); // cheap profile
    core::Accelerator accel(hw,
                            core::makeSystem(core::SystemKind::GoPim));
    EXPECT_DEATH(accel.run(workload, profile), "does not fit");
}

TEST(FailureInjection, BadHardwareConfigIsFatal)
{
    auto hw = reram::AcceleratorConfig::paperDefault();
    hw.crossbar.readLatencyNs = -1.0;
    EXPECT_DEATH(hw.validate(), "latencies");

    auto hw2 = reram::AcceleratorConfig::paperDefault();
    hw2.pe.crossbarsPerPe = 0;
    EXPECT_DEATH(hw2.validate(), "hierarchy");
}

TEST(FailureInjection, EmptyScheduleIsFatal)
{
    EXPECT_DEATH(pipeline::schedulePipelined({}, 4), "no stages");
    EXPECT_DEATH(pipeline::schedulePipelined({1.0}, 0), "micro-batch");
}

} // namespace
} // namespace gopim
