/**
 * @file
 * Unit tests for the mapping module: tiling arithmetic against the
 * paper's published Table VI crossbar counts, vertex mapping
 * strategies (including the Fig. 7 OSU counter-example), and the
 * selective-update write-load computation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hh"
#include "graph/generators.hh"
#include "mapping/selective.hh"
#include "mapping/tiling.hh"
#include "mapping/vertex_map.hh"
#include "reram/config.hh"

namespace gopim::mapping {
namespace {

using reram::AcceleratorConfig;

TEST(Tiling, ReproducesTableSixCrossbarCounts)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    // ddi Combination: 256 x 256 weights -> 32 crossbars (Table VI).
    EXPECT_EQ(crossbarsPerReplica(256, 256, cfg), 32u);
    // ddi Aggregation: 4267 x 256 features -> 534 crossbars.
    EXPECT_EQ(crossbarsPerReplica(4267, 256, cfg), 534u);
}

TEST(Tiling, FootprintGeometry)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    const auto fp = tileMatrix(4267, 256, cfg);
    EXPECT_EQ(fp.rowGroups, 67u);   // ceil(4267/64)
    EXPECT_EQ(fp.colSegments, 8u);  // ceil(256*2/64)
    EXPECT_EQ(fp.crossbars, 534u);
}

TEST(Tiling, SmallMatrixStillOneCrossbar)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    EXPECT_EQ(crossbarsPerReplica(1, 1, cfg), 1u);
    EXPECT_EQ(crossbarsPerReplica(64, 32, cfg), 1u); // 64*32*2 = 4096
    EXPECT_EQ(crossbarsPerReplica(64, 33, cfg), 2u);
}

TEST(Tiling, MonotoneInBothDimensions)
{
    const auto cfg = AcceleratorConfig::paperDefault();
    EXPECT_LE(crossbarsPerReplica(100, 100, cfg),
              crossbarsPerReplica(200, 100, cfg));
    EXPECT_LE(crossbarsPerReplica(100, 100, cfg),
              crossbarsPerReplica(100, 200, cfg));
}

TEST(VertexMap, IndexBasedIsContiguous)
{
    const std::vector<uint32_t> degrees(130, 1);
    const auto assignment =
        mapVertices(degrees, 64, VertexMapStrategy::IndexBased);
    EXPECT_EQ(assignment.numGroups, 3u);
    EXPECT_EQ(assignment.groupOf[0], 0u);
    EXPECT_EQ(assignment.groupOf[63], 0u);
    EXPECT_EQ(assignment.groupOf[64], 1u);
    EXPECT_EQ(assignment.groupOf[129], 2u);
}

TEST(VertexMap, InterleavedRespectsCapacity)
{
    Rng rng(3);
    const auto degrees =
        graph::powerLawDegreeSequence(1000, 20.0, 2.1, 500, rng);
    const auto assignment =
        mapVertices(degrees, 64, VertexMapStrategy::Interleaved);

    std::vector<uint32_t> counts(assignment.numGroups, 0);
    for (auto g : assignment.groupOf)
        ++counts[g];
    for (auto c : counts)
        EXPECT_LE(c, 64u);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 1000u);
}

TEST(VertexMap, InterleavedBalancesDegrees)
{
    Rng rng(5);
    const auto degrees =
        graph::powerLawDegreeSequence(6400, 50.0, 2.1, 3000, rng);

    const auto indexMap =
        mapVertices(degrees, 64, VertexMapStrategy::IndexBased);
    const auto interleaved =
        mapVertices(degrees, 64, VertexMapStrategy::Interleaved);

    const auto skewIndex =
        minMax(perGroupAvgDegree(indexMap, degrees)).skew();
    const auto skewInter =
        minMax(perGroupAvgDegree(interleaved, degrees)).skew();

    // Interleaving must shrink the per-crossbar degree skew (Fig. 6
    // motivates; Section VI-B resolves).
    EXPECT_LT(skewInter, skewIndex * 0.5);
    EXPECT_LT(skewInter, 3.0);
}

TEST(VertexMap, StrategyNames)
{
    EXPECT_EQ(toString(VertexMapStrategy::IndexBased), "index-based");
    EXPECT_EQ(toString(VertexMapStrategy::Interleaved), "interleaved");
}

TEST(Selective, AdaptiveThetaRule)
{
    // Section VI-C: sparse (avg degree <= 8) -> 0.8; dense -> 0.5.
    EXPECT_DOUBLE_EQ(adaptiveTheta(3.9), 0.8);   // Cora
    EXPECT_DOUBLE_EQ(adaptiveTheta(8.0), 0.8);   // boundary
    EXPECT_DOUBLE_EQ(adaptiveTheta(8.2), 0.5);   // collab
    EXPECT_DOUBLE_EQ(adaptiveTheta(500.5), 0.5); // ddi
}

TEST(Selective, SelectsTopFractionByDegree)
{
    const std::vector<uint32_t> degrees = {300, 500, 250, 450,
                                           2,   15,  10,  1};
    const auto important = selectImportant(degrees, 0.5);
    // The Fig. 7 example: V1-V4 (degrees 300/500/250/450) selected.
    EXPECT_TRUE(important[0]);
    EXPECT_TRUE(important[1]);
    EXPECT_TRUE(important[2]);
    EXPECT_TRUE(important[3]);
    EXPECT_FALSE(important[4]);
    EXPECT_FALSE(important[5]);
    EXPECT_FALSE(important[6]);
    EXPECT_FALSE(important[7]);
}

TEST(Selective, ThetaExtremes)
{
    const std::vector<uint32_t> degrees = {5, 3, 1};
    const auto none = selectImportant(degrees, 0.0);
    const auto all = selectImportant(degrees, 1.0);
    EXPECT_EQ(std::count(none.begin(), none.end(), true), 0);
    EXPECT_EQ(std::count(all.begin(), all.end(), true), 3);
}

TEST(Selective, Figure7OsuCounterExample)
{
    // Eight vertices, two crossbars of four rows each, theta = 0.5.
    // Index mapping puts all four selected vertices on crossbar 1:
    // the update still takes 4 cycles (no improvement over full).
    const std::vector<uint32_t> degrees = {300, 500, 250, 450,
                                           2,   15,  10,  1};
    const auto important = selectImportant(degrees, 0.5);

    const auto osu = mapVertices(degrees, 4,
                                 VertexMapStrategy::IndexBased);
    const auto osuWrites = hotEpochWrites(osu, important);
    EXPECT_EQ(*std::max_element(osuWrites.begin(), osuWrites.end()),
              4u);

    // ISU deals the importance-ranked vertices round-robin: two
    // selected vertices per crossbar -> 2 cycles (Fig. 12).
    const auto isu = mapVertices(degrees, 4,
                                 VertexMapStrategy::Interleaved);
    const auto isuWrites = hotEpochWrites(isu, important);
    EXPECT_EQ(*std::max_element(isuWrites.begin(), isuWrites.end()),
              2u);
}

TEST(Selective, ExpectedWritesIncludeColdRefresh)
{
    const std::vector<uint32_t> degrees = {10, 1};
    const auto assignment =
        mapVertices(degrees, 1, VertexMapStrategy::IndexBased);
    const auto important = selectImportant(degrees, 0.5);
    const SelectiveUpdateParams params{.theta = 0.5, .coldPeriod = 20};
    const auto writes =
        expectedEpochWrites(assignment, important, params);
    ASSERT_EQ(writes.size(), 2u);
    EXPECT_DOUBLE_EQ(writes[0], 1.0);        // hot vertex
    EXPECT_DOUBLE_EQ(writes[1], 1.0 / 20.0); // cold vertex
}

TEST(Selective, EpochUpdateSlotsIsMaxGroupLoad)
{
    Rng rng(7);
    const auto degrees =
        graph::powerLawDegreeSequence(640, 30.0, 2.1, 300, rng);
    const auto important = selectImportant(degrees, 0.5);
    const SelectiveUpdateParams params{.theta = 0.5, .coldPeriod = 20};

    const auto index =
        mapVertices(degrees, 64, VertexMapStrategy::IndexBased);
    const auto inter =
        mapVertices(degrees, 64, VertexMapStrategy::Interleaved);

    const double slotsIndex = epochUpdateSlots(index, important, params);
    const double slotsInter = epochUpdateSlots(inter, important, params);

    // ISU's whole point: the bound drops toward the balanced load
    // 64 * (theta + (1-theta)/20) = 35.2.
    EXPECT_LT(slotsInter, slotsIndex);
    EXPECT_NEAR(slotsInter, 64 * (0.5 + 0.5 / 20.0), 3.0);
}

TEST(Selective, DroppedDegreeMassSmallUnderDegreeRanking)
{
    Rng rng(9);
    const auto degrees =
        graph::powerLawDegreeSequence(2000, 20.0, 2.1, 1000, rng);
    const auto important = selectImportant(degrees, 0.5);
    const uint64_t dropped = droppedDegreeMass(degrees, important);
    uint64_t total = 0;
    for (auto d : degrees)
        total += d;
    // Dropping the *low-degree* half must drop well under half the
    // degree mass (that is why accuracy survives).
    EXPECT_LT(dropped, total / 4);
}

} // namespace
} // namespace gopim::mapping
