/**
 * @file
 * Serving-layer tests: the shared JSON value type, the
 * content-addressed cache key (stable across request field
 * reordering), the LRU result cache, strict request validation, and
 * the Service determinism contract — a cached response carries the
 * exact result bytes a fresh simulation produced, and a concurrent
 * batch emits byte-identical output to a single-threaded run.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.hh"
#include "common/json.hh"
#include "obs/metrics.hh"
#include "serve/cache.hh"
#include "serve/request.hh"
#include "serve/service.hh"
#include "sim/engine.hh"

namespace gopim {
namespace {

// ---------------------------------------------------------------
// JSON value type
// ---------------------------------------------------------------

TEST(JsonTest, DumpCompactAndTyped)
{
    json::Value v = json::Value::object();
    v.set("b", true);
    v.set("i", 42);
    v.set("d", 1.5);
    v.set("s", "hi\n");
    json::Value arr = json::Value::array();
    arr.push(1);
    arr.push(json::Value());
    v.set("a", std::move(arr));
    EXPECT_EQ(v.dump(), "{\"b\":true,\"i\":42,\"d\":1.5,"
                        "\"s\":\"hi\\n\",\"a\":[1,null]}");
}

TEST(JsonTest, CanonicalSortsKeysRecursively)
{
    json::Value inner = json::Value::object();
    inner.set("z", 1);
    inner.set("a", 2);
    json::Value v = json::Value::object();
    v.set("outer", std::move(inner));
    v.set("alpha", 3);
    EXPECT_EQ(v.canonical(),
              "{\"alpha\":3,\"outer\":{\"a\":2,\"z\":1}}");
}

TEST(JsonTest, ParseRoundTrip)
{
    const std::string text =
        "{\"a\":[1,2.5,\"x\"],\"b\":{\"c\":true,\"d\":null}}";
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::Value::parse(text, &v, &error)) << error;
    EXPECT_EQ(v.dump(), text);
    EXPECT_TRUE(v.find("a")->at(0).isInt());
    EXPECT_FALSE(v.find("a")->at(1).isInt());
    EXPECT_DOUBLE_EQ(v.find("a")->at(1).asDouble(), 2.5);
}

TEST(JsonTest, ParseRejectsMalformedInput)
{
    json::Value v;
    EXPECT_FALSE(json::Value::parse("{\"a\":1} trailing", &v));
    EXPECT_FALSE(json::Value::parse("{\"a\":}", &v));
    EXPECT_FALSE(json::Value::parse("", &v));
    EXPECT_FALSE(json::Value::parse("{'a':1}", &v));
    EXPECT_FALSE(json::Value::parse("[1,2,]", &v));
}

TEST(JsonTest, ParseUnicodeEscapes)
{
    json::Value v;
    ASSERT_TRUE(json::Value::parse("\"\\u0041\\u00e9\"", &v));
    EXPECT_EQ(v.asString(), "A\xc3\xa9");
}

TEST(HashTest, Fnv1aIsStableAndDigestIsHex)
{
    const uint64_t h = fnv1a64("gopim");
    EXPECT_EQ(h, fnv1a64("gopim"));
    EXPECT_NE(h, fnv1a64("gopin"));
    const std::string digest = hexDigest64(h);
    EXPECT_EQ(digest.size(), 16u);
    EXPECT_EQ(digest.find_first_not_of("0123456789abcdef"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------

TEST(ResultCacheTest, HitMissAndEviction)
{
    serve::ResultCache cache(2);
    EXPECT_FALSE(cache.get("a").has_value());
    cache.put("a", "1");
    cache.put("b", "2");
    EXPECT_EQ(cache.get("a").value(), "1");
    EXPECT_EQ(cache.stats().evictions, 0u);

    // "a" was just promoted, so inserting "c" evicts "b".
    cache.put("c", "3");
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_EQ(cache.get("a").value(), "1");
    EXPECT_EQ(cache.get("c").value(), "3");
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching)
{
    serve::ResultCache cache(0);
    cache.put("a", "1");
    EXPECT_FALSE(cache.get("a").has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, PutRefreshesExistingEntry)
{
    serve::ResultCache cache(2);
    cache.put("a", "1");
    cache.put("a", "updated");
    EXPECT_EQ(cache.get("a").value(), "updated");
    EXPECT_EQ(cache.stats().entries, 1u);
}

// ---------------------------------------------------------------
// Request parsing and the cache key
// ---------------------------------------------------------------

std::string
keyOf(const std::string &text)
{
    json::Value body;
    std::string error;
    EXPECT_TRUE(json::Value::parse(text, &body, &error)) << error;
    serve::Request request;
    serve::RequestError err =
        serve::parseRequest(body, serve::Request{}, &request);
    EXPECT_TRUE(err.ok()) << err.message;
    serve::ResolvedRequest resolved;
    err = serve::resolveRequest(request, &resolved);
    EXPECT_TRUE(err.ok()) << err.message;
    return serve::cacheKey(resolved,
                           reram::AcceleratorConfig::paperDefault());
}

TEST(CacheKeyTest, StableAcrossFieldReordering)
{
    const std::string a = "{\"dataset\":\"Cora\",\"system\":\"GoPIM\","
                          "\"engine\":\"event\",\"seed\":7}";
    const std::string b = "{\"seed\":7,\"engine\":\"event\","
                          "\"system\":\"GoPIM\",\"dataset\":\"Cora\"}";
    EXPECT_EQ(keyOf(a), keyOf(b));
}

TEST(CacheKeyTest, SensitiveToEveryKnob)
{
    const std::string base = "{\"dataset\":\"Cora\"}";
    EXPECT_NE(keyOf(base), keyOf("{\"dataset\":\"ddi\"}"));
    EXPECT_NE(keyOf(base), keyOf("{\"dataset\":\"Cora\","
                                 "\"engine\":\"event\"}"));
    EXPECT_NE(keyOf(base), keyOf("{\"dataset\":\"Cora\",\"seed\":9}"));
    EXPECT_NE(keyOf(base),
              keyOf("{\"dataset\":\"Cora\",\"theta\":0.5}"));
    EXPECT_NE(keyOf(base),
              keyOf("{\"dataset\":\"Cora\",\"baseline\":\"Serial\"}"));
    // Fault knobs are part of the key: a repaired run must never be
    // served a healthy run's cached result.
    EXPECT_NE(keyOf(base),
              keyOf("{\"dataset\":\"Cora\","
                    "\"stuck_on_rate\":0.01}"));
    EXPECT_NE(keyOf("{\"dataset\":\"Cora\",\"stuck_on_rate\":0.01}"),
              keyOf("{\"dataset\":\"Cora\",\"stuck_on_rate\":0.01,"
                    "\"repair\":\"ecc\"}"));
    EXPECT_NE(keyOf("{\"dataset\":\"Cora\",\"stuck_on_rate\":0.01,"
                    "\"repair\":\"spare\",\"spare_rows\":0.05}"),
              keyOf("{\"dataset\":\"Cora\",\"stuck_on_rate\":0.01,"
                    "\"repair\":\"spare\",\"spare_rows\":0.1}"));
}

TEST(CacheKeyTest, IdAndTraceOutDoNotAffectTheKey)
{
    const std::string plain = "{\"dataset\":\"Cora\"}";
    const std::string decorated =
        "{\"dataset\":\"Cora\",\"id\":\"req-1\","
        "\"trace_out\":\"/tmp/t.json\"}";
    EXPECT_EQ(keyOf(plain), keyOf(decorated));
}

serve::RequestError
parseErrorOf(const std::string &text)
{
    json::Value body;
    std::string error;
    EXPECT_TRUE(json::Value::parse(text, &body, &error)) << error;
    serve::Request request;
    return serve::parseRequest(body, serve::Request{}, &request);
}

TEST(RequestTest, RejectsUnknownAndMalformedFields)
{
    EXPECT_EQ(parseErrorOf("{\"datset\":\"ddi\"}").code,
              "unknown_field");
    EXPECT_EQ(parseErrorOf("{\"dataset\":42}").code, "bad_type");
    EXPECT_EQ(parseErrorOf("{\"dataset\":\"nope\"}").code,
              "unknown_name");
    EXPECT_EQ(parseErrorOf("{\"system\":\"nope\"}").code,
              "unknown_name");
    EXPECT_EQ(parseErrorOf("{\"engine\":\"nope\"}").code,
              "unknown_name");
    EXPECT_EQ(parseErrorOf("{\"retry_prob\":1.0}").code,
              "out_of_range");
    EXPECT_EQ(parseErrorOf("{\"write_fraction\":1.5}").code,
              "out_of_range");
    EXPECT_EQ(parseErrorOf("{\"micro_batch\":0}").code,
              "out_of_range");
    EXPECT_TRUE(parseErrorOf("{\"retry_prob\":0.5,"
                             "\"write_fraction\":1.0}")
                    .ok());
}

TEST(RequestTest, UnknownFieldNamesTheOffendingKey)
{
    const serve::RequestError err =
        parseErrorOf("{\"dataset\":\"Cora\",\"spare_rws\":0.1}");
    EXPECT_EQ(err.code, "unknown_field");
    EXPECT_EQ(err.field, "spare_rws");
    EXPECT_NE(err.message.find("spare_rws"), std::string::npos);
}

TEST(RequestTest, UnknownFieldSuggestsNearestKnownKey)
{
    // A near-miss spelling gets a did-you-mean pointing at the real
    // field...
    const serve::RequestError typo =
        parseErrorOf("{\"datset\":\"ddi\"}");
    EXPECT_EQ(typo.code, "unknown_field");
    EXPECT_NE(typo.message.find("did you mean 'dataset'"),
              std::string::npos)
        << typo.message;
    const serve::RequestError typo2 =
        parseErrorOf("{\"micro_bath\":32}");
    EXPECT_NE(typo2.message.find("did you mean 'micro_batch'"),
              std::string::npos)
        << typo2.message;
    // ...while an unrelated key lists the schema instead of guessing.
    const serve::RequestError far =
        parseErrorOf("{\"zzzzzzzz\":1}");
    EXPECT_EQ(far.code, "unknown_field");
    EXPECT_EQ(far.message.find("did you mean"), std::string::npos)
        << far.message;
    EXPECT_NE(far.message.find("known fields"), std::string::npos)
        << far.message;
}

TEST(RequestTest, DefaultsFingerprintTracksExecutionDefaults)
{
    const reram::AcceleratorConfig hw =
        reram::AcceleratorConfig::paperDefault();
    serve::Request a;
    serve::Request b;
    EXPECT_EQ(serve::defaultsFingerprint(a, hw),
              serve::defaultsFingerprint(b, hw));
    // Any default a request may inherit must move the fingerprint.
    b.sim.seed = a.sim.seed + 1;
    EXPECT_NE(serve::defaultsFingerprint(a, hw),
              serve::defaultsFingerprint(b, hw));
}

TEST(RequestTest, FaultKnobsParseAndValidate)
{
    EXPECT_TRUE(parseErrorOf("{\"dataset\":\"Cora\","
                             "\"stuck_on_rate\":0.01,"
                             "\"stuck_off_rate\":0.02,"
                             "\"drift_rate\":0.001,"
                             "\"repair\":\"spare\","
                             "\"spare_rows\":0.1,"
                             "\"refresh_period\":128}")
                    .ok());
    EXPECT_EQ(parseErrorOf("{\"stuck_on_rate\":1.0}").code,
              "out_of_range");
    EXPECT_EQ(parseErrorOf("{\"stuck_off_rate\":-0.1}").code,
              "out_of_range");
    EXPECT_EQ(parseErrorOf("{\"repair\":\"nope\"}").code,
              "unknown_name");
    EXPECT_EQ(parseErrorOf("{\"repair\":42}").code, "bad_type");
    EXPECT_EQ(parseErrorOf("{\"refresh_period\":0}").code,
              "out_of_range");
}

TEST(RequestTest, DefaultsInheritServerContext)
{
    serve::Request defaults;
    defaults.sim.engine = sim::EngineKind::EventDriven;
    defaults.sim.seed = 99;
    json::Value body;
    ASSERT_TRUE(json::Value::parse("{\"dataset\":\"Cora\"}", &body));
    serve::Request request;
    ASSERT_TRUE(serve::parseRequest(body, defaults, &request).ok());
    EXPECT_EQ(request.sim.engine, sim::EngineKind::EventDriven);
    EXPECT_EQ(request.sim.seed, 99u);
    EXPECT_EQ(request.dataset, "Cora");
}

// ---------------------------------------------------------------
// Service: determinism and caching
// ---------------------------------------------------------------

/** The serialized result object embedded in a response line. */
std::string
resultPayload(const std::string &line)
{
    const std::string marker = "\"result\":";
    const size_t pos = line.find(marker);
    EXPECT_NE(pos, std::string::npos) << line;
    if (pos == std::string::npos)
        return "";
    // Strip the envelope's closing brace.
    return line.substr(pos + marker.size(),
                       line.size() - pos - marker.size() - 1);
}

bool
lineSays(const std::string &line, const std::string &fragment)
{
    return line.find(fragment) != std::string::npos;
}

TEST(ServiceTest, CachedResponseMatchesFreshRunBothEngines)
{
    for (const char *engine : {"closed", "event"}) {
        serve::ServiceConfig config;
        config.jobs = 1;
        serve::Service service(config);
        const std::string line =
            std::string("{\"dataset\":\"Cora\",\"engine\":\"") +
            engine + "\",\"baseline\":\"Serial\"}";

        const std::string fresh = service.handleLine(line);
        const std::string cached = service.handleLine(line);
        EXPECT_TRUE(lineSays(fresh, "\"cached\":false")) << fresh;
        EXPECT_TRUE(lineSays(cached, "\"cached\":true")) << cached;
        EXPECT_TRUE(lineSays(cached, "\"hits\":1")) << cached;
        EXPECT_TRUE(lineSays(cached, "\"misses\":1")) << cached;
        EXPECT_EQ(resultPayload(fresh), resultPayload(cached))
            << "engine " << engine;
        EXPECT_EQ(service.hits(), 1u);
        EXPECT_EQ(service.misses(), 1u);

        // The payload is itself valid JSON with a speedup field.
        json::Value result;
        std::string error;
        ASSERT_TRUE(
            json::Value::parse(resultPayload(fresh), &result, &error))
            << error;
        EXPECT_TRUE(result.find("speedup") != nullptr);
        EXPECT_EQ(result.find("baseline")->asString(), "Serial");
    }
}

TEST(ServiceTest, StableEnvelopeIsHistoryIndependent)
{
    serve::ServiceConfig config;
    config.jobs = 1;
    serve::Service service(config);
    const std::string line =
        "{\"id\":\"s1\",\"dataset\":\"Cora\"}";

    const std::string fresh =
        service.handleLine(line, serve::Envelope::Stable);
    const std::string cached =
        service.handleLine(line, serve::Envelope::Stable);
    // A hit and a miss render identically: the stable envelope is a
    // pure function of (id, key, result) — the property that keeps
    // cluster shards byte-comparable to a single process.
    EXPECT_EQ(fresh, cached);
    for (const char *counter : {"\"cached\":", "\"hits\":",
                                "\"misses\":", "\"trace\":"})
        EXPECT_EQ(fresh.find(counter), std::string::npos)
            << counter << " leaked into " << fresh;
    EXPECT_TRUE(lineSays(fresh, "\"id\":\"s1\"")) << fresh;
    EXPECT_TRUE(lineSays(fresh, "\"key\":\"")) << fresh;
    EXPECT_TRUE(lineSays(fresh, "\"result\":")) << fresh;

    // The Full envelope still carries the live cache metadata.
    const std::string full = service.handleLine(line);
    EXPECT_TRUE(lineSays(full, "\"cached\":true")) << full;
    // Same result payload either way.
    EXPECT_EQ(resultPayload(fresh), resultPayload(full));
}

TEST(ServiceTest, ErrorLineForBadRequests)
{
    serve::ServiceConfig config;
    config.jobs = 1;
    serve::Service service(config);
    const std::string bad =
        service.handleLine("{\"id\":\"r7\",\"dataset\":\"nope\"}");
    EXPECT_TRUE(lineSays(bad, "\"type\":\"error\"")) << bad;
    EXPECT_TRUE(lineSays(bad, "\"id\":\"r7\"")) << bad;
    EXPECT_TRUE(lineSays(bad, "\"code\":\"unknown_name\"")) << bad;
    const std::string garbage = service.handleLine("not json");
    EXPECT_TRUE(lineSays(garbage, "\"code\":\"bad_json\"")) << garbage;
    EXPECT_TRUE(lineSays(garbage, "invalid JSON")) << garbage;
}

TEST(ServiceTest, ErrorLineCarriesStructuredCodeAndField)
{
    serve::ServiceConfig config;
    config.jobs = 1;
    serve::Service service(config);
    const std::string line = service.handleLine(
        "{\"id\":\"r9\",\"dataset\":\"Cora\",\"bogus_knob\":1}");
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::Value::parse(line, &v, &error)) << error;
    EXPECT_EQ(v.find("type")->asString(), "error");
    EXPECT_EQ(v.find("id")->asString(), "r9");
    EXPECT_EQ(v.find("code")->asString(), "unknown_field");
    EXPECT_EQ(v.find("field")->asString(), "bogus_knob");
    ASSERT_TRUE(v.find("error") != nullptr);
    EXPECT_NE(v.find("error")->asString().find("bogus_knob"),
              std::string::npos);
}

/** A mixed 100-request batch with heavy duplication. */
std::string
mixedBatch()
{
    const char *datasets[] = {"Cora", "ddi"};
    const char *systems[] = {"GoPIM", "Serial"};
    const char *engines[] = {"closed", "event"};
    std::string batch;
    for (int i = 0; i < 100; ++i) {
        // 12 unique request shapes, each repeated ~8 times so the
        // batch exercises both the cache and in-flight coalescing.
        const int u = i % 12;
        batch += "{\"id\":\"req-" + std::to_string(i) +
                 "\",\"dataset\":\"" + datasets[u % 2] +
                 "\",\"system\":\"" + systems[(u / 2) % 2] +
                 "\",\"engine\":\"" + engines[(u / 4) % 2] +
                 "\",\"seed\":" + std::to_string(1 + u / 8) + "}\n";
    }
    return batch;
}

/** Run the batch through a Service with `jobs` workers. */
std::string
runBatch(size_t jobs, serve::Service::StreamStats *stats = nullptr)
{
    serve::ServiceConfig config;
    config.jobs = jobs;
    serve::Service service(config);
    std::istringstream in(mixedBatch());
    std::ostringstream out;
    const auto streamStats = service.processStream(in, out, true);
    if (stats)
        *stats = streamStats;
    return out.str();
}

TEST(ServiceTest, ConcurrentBatchIsBitIdenticalToSerial)
{
    serve::Service::StreamStats serialStats;
    const std::string serial = runBatch(1, &serialStats);
    const std::string concurrent = runBatch(4);
    EXPECT_EQ(serial, concurrent);
    EXPECT_EQ(serialStats.requests, 100u);
    EXPECT_EQ(serialStats.errors, 0u);

    // 12 unique request shapes -> 12 misses, 88 hits, and the final
    // stats line records them.
    std::istringstream lines(serial);
    std::string line, last;
    size_t count = 0;
    while (std::getline(lines, line)) {
        ++count;
        last = line;
    }
    EXPECT_EQ(count, 101u); // 100 responses + stats line
    json::Value statsLine;
    std::string error;
    ASSERT_TRUE(json::Value::parse(last, &statsLine, &error)) << error;
    EXPECT_EQ(statsLine.find("type")->asString(), "stats");
    EXPECT_EQ(statsLine.find("misses")->asInt(), 12);
    EXPECT_EQ(statsLine.find("hits")->asInt(), 88);
    EXPECT_EQ(statsLine.find("cache_entries")->asInt(), 12);
}

TEST(ServiceTest, BackpressureBoundsInFlightWork)
{
    // A queue bound of 1 with 2 workers forces the dispatcher to
    // block between submissions; the stream must still complete with
    // responses in input order.
    serve::ServiceConfig config;
    config.jobs = 2;
    config.maxQueue = 1;
    serve::Service service(config);
    std::string batch;
    for (int seed = 1; seed <= 6; ++seed)
        batch += "{\"id\":\"s" + std::to_string(seed) +
                 "\",\"dataset\":\"Cora\",\"seed\":" +
                 std::to_string(seed) + "}\n";
    std::istringstream in(batch);
    std::ostringstream out;
    const auto stats = service.processStream(in, out);
    EXPECT_EQ(stats.requests, 6u);
    EXPECT_EQ(stats.errors, 0u);
    std::istringstream lines(out.str());
    std::string line;
    for (int seed = 1; seed <= 6; ++seed) {
        ASSERT_TRUE(std::getline(lines, line));
        EXPECT_TRUE(
            lineSays(line, "\"id\":\"s" + std::to_string(seed) + "\""))
            << line;
    }
    EXPECT_EQ(service.misses(), 6u);
}

/** A fault-enabled batch: rates x repair policies, duplicated. */
std::string
faultBatch()
{
    const char *repairs[] = {"none", "spare", "ecc", "refresh"};
    const char *rates[] = {"0.001", "0.01"};
    std::string batch;
    int id = 0;
    for (int pass = 0; pass < 2; ++pass)
        for (const char *rate : rates)
            for (const char *repair : repairs)
                batch += "{\"id\":\"f" + std::to_string(id++) +
                         "\",\"dataset\":\"Cora\",\"system\":"
                         "\"GoPIM\",\"stuck_on_rate\":" +
                         rate + ",\"repair\":\"" + repair + "\"}\n";
    return batch;
}

TEST(ServiceTest, FaultBatchIsBitIdenticalAcrossWorkerCounts)
{
    std::string outputs[2];
    size_t jobs[] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        serve::ServiceConfig config;
        config.jobs = jobs[i];
        serve::Service service(config);
        std::istringstream in(faultBatch());
        std::ostringstream out;
        const auto stats = service.processStream(in, out, true);
        EXPECT_EQ(stats.errors, 0u);
        EXPECT_EQ(service.misses(), 8u); // 2 rates x 4 repairs
        EXPECT_EQ(service.hits(), 8u);   // second pass all cached
        outputs[i] = out.str();
    }
    EXPECT_EQ(outputs[0], outputs[1]);
    EXPECT_TRUE(lineSays(outputs[0], "\"repair_policy\":\"ecc-dup\""))
        << outputs[0];
}

TEST(ServiceTest, EvictionsStayOutOfResponseEnvelopes)
{
    // Capacity 1 forces evictions; the per-response envelope must not
    // leak them (they are timing-dependent under concurrency).
    serve::ServiceConfig config;
    config.jobs = 1;
    config.cacheCapacity = 1;
    serve::Service service(config);
    const std::string a =
        service.handleLine("{\"dataset\":\"Cora\"}");
    const std::string b = service.handleLine("{\"dataset\":\"ddi\"}");
    EXPECT_FALSE(lineSays(a, "eviction"));
    EXPECT_FALSE(lineSays(b, "eviction"));
    EXPECT_EQ(service.cacheStats().evictions, 1u);

    // The evicted entry re-simulates to the same bytes.
    const std::string again =
        service.handleLine("{\"dataset\":\"Cora\"}");
    EXPECT_TRUE(lineSays(again, "\"cached\":false"));
    EXPECT_EQ(resultPayload(a), resultPayload(again));
}

// ---------------------------------------------------------------
// Service: in-flight window, lock scope, and the stats extension
// ---------------------------------------------------------------

/**
 * Deterministic constant-time timing backend: the timeline is a pure
 * function of the request, so responses stay byte-identical across
 * worker counts while a simulation costs microseconds instead of
 * running a real engine — which is what lets the stress test push
 * tens of thousands of unique requests through the service.
 */
class StubEngine final : public sim::ScheduleEngine
{
  public:
    std::string name() const override { return "stub"; }

    sim::StageTimeline
    schedule(const sim::ScheduleRequest &request,
             const sim::SimContext &) const override
    {
        sim::StageTimeline timeline;
        double total = 0.0;
        for (double t : request.stageTimesNs)
            total += t;
        timeline.makespanNs =
            total * static_cast<double>(request.totalMicroBatches);
        timeline.busyNs = request.stageTimesNs;
        timeline.blockedNs.assign(request.stageTimesNs.size(), 0.0);
        timeline.idleFraction.assign(request.stageTimesNs.size(), 0.0);
        return timeline;
    }
};

/** `count` unique requests (distinct seeds -> distinct cache keys). */
std::string
uniqueBatch(int count)
{
    std::string batch;
    for (int seed = 1; seed <= count; ++seed)
        batch += "{\"dataset\":\"Cora\",\"seed\":" +
                 std::to_string(seed) + "}\n";
    return batch;
}

TEST(ServiceStressTest, InflightStaysBoundedOverUniqueStream)
{
    // Regression: inflight_ used to keep one entry per unique request
    // for the life of the stream, so a long stream of distinct
    // requests grew the coalescing map without bound. Entries must be
    // retired as responses are emitted.
    constexpr int kRequests = 10000;
    serve::ServiceConfig config;
    config.jobs = 4;
    config.maxQueue = 8;
    config.cacheCapacity = 64; // far smaller than the stream
    config.defaults.sim.engineOverride =
        std::make_shared<StubEngine>();
    config.metrics = std::make_shared<obs::MetricsRegistry>();
    serve::Service service(config);

    std::istringstream in(uniqueBatch(kRequests));
    std::ostringstream out;
    const auto stats = service.processStream(in, out, true);
    EXPECT_EQ(stats.requests, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_EQ(service.misses(), static_cast<uint64_t>(kRequests));
    EXPECT_EQ(service.hits(), 0u);

    // Bounded at the end and — via the recorded high-water mark — at
    // every dispatch along the way: at most maxQueue in-flight
    // simulations plus the entry just inserted and one whose slot
    // acquisition is still pending.
    const size_t bound = config.maxQueue + 2;
    EXPECT_LE(service.inflightSize(), bound);
    const obs::Gauge *highWater =
        config.metrics->findGauge("serve.inflight.max");
    ASSERT_NE(highWater, nullptr);
    EXPECT_GT(highWater->value(), 0);
    EXPECT_LE(highWater->value(), static_cast<int64_t>(bound));
}

TEST(ServiceStressTest, UniqueStreamIsBitIdenticalAcrossJobs)
{
    constexpr int kRequests = 10000;
    std::string outputs[2];
    const size_t jobs[] = {2, 8};
    for (int i = 0; i < 2; ++i) {
        serve::ServiceConfig config;
        config.jobs = jobs[i];
        config.defaults.sim.engineOverride =
            std::make_shared<StubEngine>();
        serve::Service service(config);
        std::istringstream in(uniqueBatch(kRequests));
        std::ostringstream out;
        const auto stats = service.processStream(in, out, true);
        EXPECT_EQ(stats.errors, 0u);
        outputs[i] = out.str();
    }
    EXPECT_EQ(outputs[0], outputs[1]);
}

/**
 * A timing backend that blocks inside schedule() until released —
 * pins a worker (and with maxQueue=1, the dispatcher) at a known
 * place so tests can probe the service from outside.
 */
class GateEngine final : public sim::ScheduleEngine
{
  public:
    std::string name() const override { return "gate"; }

    sim::StageTimeline
    schedule(const sim::ScheduleRequest &request,
             const sim::SimContext &ctx) const override
    {
        entered_.fetch_add(1);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return open_; });
        }
        return StubEngine().schedule(request, ctx);
    }

    void
    release() const
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            open_ = true;
        }
        cv_.notify_all();
    }

    int entered() const { return entered_.load(); }

  private:
    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    mutable bool open_ = false;
    mutable std::atomic<int> entered_{0};
};

TEST(ServiceTest, StatsStayResponsiveWhileDispatcherIsBlocked)
{
    // Regression: dispatch() used to hold dispatchMutex_ across the
    // backpressure wait, so once the queue filled, hits()/misses()/
    // statsJson() blocked until a worker finished. The wait now
    // happens outside the lock; counters must answer immediately even
    // with the dispatcher parked on a full queue.
    auto gate = std::make_shared<GateEngine>();
    serve::ServiceConfig config;
    config.jobs = 1;
    config.maxQueue = 1;
    config.defaults.sim.engineOverride = gate;
    serve::Service service(config);

    std::istringstream in(uniqueBatch(3));
    std::ostringstream out;
    std::thread stream([&] { service.processStream(in, out); });

    // Wait for the lone worker to block inside the gate, then give
    // the dispatcher time to reach the queue wait for request 2.
    while (gate->entered() == 0)
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    auto probe = std::async(std::launch::async, [&] {
        return std::make_pair(service.misses(),
                              service.statsJson({}).dump());
    });
    ASSERT_EQ(probe.wait_for(std::chrono::seconds(5)),
              std::future_status::ready)
        << "stats blocked behind the dispatcher's backpressure wait";
    const auto [misses, statsLine] = probe.get();
    EXPECT_EQ(misses, 2u); // request 2's decision landed pre-wait
    EXPECT_NE(statsLine.find("\"misses\":2"), std::string::npos)
        << statsLine;

    gate->release();
    stream.join();
    EXPECT_EQ(service.misses(), 3u);

    // All three responses were still emitted, in order.
    std::istringstream lines(out.str());
    std::string line;
    for (int seed = 1; seed <= 3; ++seed) {
        ASSERT_TRUE(std::getline(lines, line));
        EXPECT_TRUE(lineSays(line, "\"type\":\"result\"")) << line;
    }
}

TEST(ServiceTest, StatsQueryAnswersInStreamOrder)
{
    serve::ServiceConfig config;
    config.jobs = 2;
    config.defaults.sim.engineOverride =
        std::make_shared<StubEngine>();
    serve::Service service(config);

    const std::string batch =
        "{\"dataset\":\"Cora\",\"seed\":1}\n"
        "{\"dataset\":\"Cora\",\"seed\":1}\n"
        "{\"type\":\"stats\"}\n"
        "{\"dataset\":\"Cora\",\"seed\":2}\n";
    std::istringstream in(batch);
    std::ostringstream out;
    const auto stats = service.processStream(in, out);
    EXPECT_EQ(stats.requests, 4u); // the query counts as a request
    EXPECT_EQ(stats.errors, 0u);

    std::vector<std::string> lines;
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_TRUE(lineSays(lines[0], "\"type\":\"result\""));
    EXPECT_TRUE(lineSays(lines[1], "\"cached\":true"));

    // The third line is the snapshot: dispatch-order deterministic
    // counters (itself included in `requests`), live cache fields.
    json::Value snapshot;
    std::string error;
    ASSERT_TRUE(json::Value::parse(lines[2], &snapshot, &error))
        << error << ": " << lines[2];
    EXPECT_EQ(snapshot.find("type")->asString(), "stats");
    EXPECT_EQ(snapshot.find("requests")->asInt(), 3);
    EXPECT_EQ(snapshot.find("hits")->asInt(), 1);
    EXPECT_EQ(snapshot.find("misses")->asInt(), 1);
    EXPECT_NE(snapshot.find("cache_entries"), nullptr);
    EXPECT_TRUE(lineSays(lines[3], "\"type\":\"result\""));

    // A stats query is not a simulation: no hit/miss movement.
    EXPECT_EQ(service.hits(), 1u);
    EXPECT_EQ(service.misses(), 2u);
}

TEST(ServiceTest, MetricsRecordLatenciesAndOutcomes)
{
    serve::ServiceConfig config;
    config.jobs = 1;
    config.defaults.sim.engineOverride =
        std::make_shared<StubEngine>();
    config.metrics = std::make_shared<obs::MetricsRegistry>();
    serve::Service service(config);

    service.handleLine("{\"dataset\":\"Cora\"}");
    service.handleLine("{\"dataset\":\"Cora\"}");
    service.handleLine("{\"dataset\":\"nope\"}");

    const auto &m = *config.metrics;
    EXPECT_EQ(m.findCounter("serve.request.count")->value(), 3u);
    EXPECT_EQ(m.findCounter("serve.cache.miss.count")->value(), 1u);
    EXPECT_EQ(m.findCounter("serve.cache.hit.count")->value(), 1u);
    EXPECT_EQ(m.findCounter("serve.request.error.count")->value(), 1u);
    const obs::Histogram *latency =
        m.findHistogram("serve.request.latency_us");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->count(), 3u);
    ASSERT_NE(m.findHistogram("serve.queue.wait_us"), nullptr);
    EXPECT_EQ(m.findHistogram("serve.queue.wait_us")->count(), 1u);
}

} // namespace
} // namespace gopim
