/**
 * @file
 * Unit tests for the time predictor: Table I feature extraction, data
 * generation, MLP predictor accuracy against the simulator's ground
 * truth, and the profiling baseline's cost model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "ml/metrics.hh"
#include "predictor/datagen.hh"
#include "predictor/features.hh"
#include "predictor/predictor.hh"
#include "reram/config.hh"

namespace gopim::predictor {
namespace {

gcn::StageTimeModel
makeModel()
{
    return gcn::StageTimeModel(
        reram::AcceleratorConfig::paperDefault());
}

TEST(Features, TableOneExtraction)
{
    const auto w = gcn::Workload::paperDefault("ddi");
    const auto f = extractFeatures(w, 1);
    EXPECT_DOUBLE_EQ(f.rIfmCo, 64.0);   // micro-batch rows
    EXPECT_DOUBLE_EQ(f.cIfmCo, 256.0);  // F_in
    EXPECT_DOUBLE_EQ(f.rWCo, 256.0);
    EXPECT_DOUBLE_EQ(f.cWCo, 256.0);
    EXPECT_DOUBLE_EQ(f.cAAg, 4267.0);   // |V|
    EXPECT_DOUBLE_EQ(f.rFAg, 4267.0);
    EXPECT_DOUBLE_EQ(f.cFAg, 256.0);
    EXPECT_DOUBLE_EQ(f.layer, 1.0);
    EXPECT_GT(f.sparsity, 0.8);
    EXPECT_LT(f.sparsity, 1.0);
}

TEST(Features, VectorHasTenEntries)
{
    const auto w = gcn::Workload::paperDefault("collab");
    const auto v = extractFeatures(w, 2).toVector();
    EXPECT_EQ(v.size(), LayerFeatures::kNumFeatures);
    // Log scaling keeps magnitudes modest.
    for (float x : v)
        EXPECT_LT(std::fabs(x), 10.0f);
}

TEST(Datagen, RandomizerCoversParameterSpace)
{
    WorkloadRandomizer randomizer(5);
    uint64_t minV = UINT64_MAX, maxV = 0;
    for (int i = 0; i < 50; ++i) {
        const auto w = randomizer.next();
        minV = std::min(minV, w.dataset.numVertices);
        maxV = std::max(maxV, w.dataset.numVertices);
        EXPECT_GE(w.model.numLayers, 2u);
        EXPECT_LE(w.model.numLayers, 4u);
        EXPECT_GE(w.microBatchSize, 16u);
        EXPECT_LE(w.microBatchSize, 256u);
    }
    EXPECT_LT(minV, 20000u);
    EXPECT_GT(maxV, 500000u);
}

TEST(Datagen, SamplesPerStageType)
{
    const auto model = makeModel();
    const auto samples = generateSamples(model, 40, 7);
    // Each workload contributes numLayers samples per stage type.
    for (const auto &d : samples.perStageType) {
        EXPECT_GT(d.size(), 40u); // at least 2 layers per workload
        EXPECT_EQ(d.numFeatures(), LayerFeatures::kNumFeatures);
    }
    EXPECT_EQ(samples.totalSamples(),
              samples.perStageType[0].size() * 4);
}

TEST(Datagen, TargetsAreLogTimes)
{
    const auto model = makeModel();
    const auto samples = generateSamples(model, 20, 9);
    for (const auto &d : samples.perStageType)
        for (double y : d.y) {
            EXPECT_GT(y, 0.0);   // > 1 ns
            EXPECT_LT(y, 12.0);  // < 1000 s
        }
}

TEST(Predictor, LearnsStageTimesAccurately)
{
    const auto model = makeModel();
    const auto samples = generateSamples(model, 150, 11);

    ml::MlpParams params;
    params.hiddenLayers = {64};
    params.epochs = 150;
    TimePredictor predictor(params);
    predictor.fit(samples);
    EXPECT_TRUE(predictor.fitted());

    // Evaluate on unseen workloads against the exact model.
    const gcn::StageTimeModel &exact = model;
    ProfilingPredictor profiling(exact);
    WorkloadRandomizer randomizer(999);
    std::vector<double> truth, pred;
    for (int i = 0; i < 20; ++i) {
        const auto w = randomizer.next();
        const auto exactTimes = profiling.predictAllStageTimesNs(w);
        const auto mlTimes = predictor.predictAllStageTimesNs(w);
        for (size_t s = 0; s < exactTimes.size(); ++s) {
            truth.push_back(std::log10(exactTimes[s]));
            pred.push_back(std::log10(std::max(mlTimes[s], 1.0)));
        }
    }
    // Within ~0.25 decades RMSE on unseen workloads (the paper reports
    // 93.4% accuracy on unseen datasets).
    EXPECT_LT(ml::rmse(truth, pred), 0.25);
}

TEST(Predictor, ProfilingIsExact)
{
    const auto model = makeModel();
    ProfilingPredictor profiling(model);
    const auto w = gcn::Workload::paperDefault("ddi");

    const auto artifacts = gcn::MappingArtifacts::fullUpdateApprox(
        w.dataset.numVertices, model.config().crossbar.rows);
    gcn::ExecutionPolicy policy;
    const auto costs = model.allCosts(w, policy, artifacts);
    const auto times = profiling.predictAllStageTimesNs(w);
    ASSERT_EQ(times.size(), costs.size());
    for (size_t i = 0; i < times.size(); ++i)
        EXPECT_DOUBLE_EQ(times[i], costs[i].totalNs());
}

TEST(Predictor, ProfilingCostMatchesPaperScale)
{
    // The paper reports ~1688.9 s to profile the ppa workload once.
    const auto model = makeModel();
    ProfilingPredictor profiling(model);
    const auto w = gcn::Workload::paperDefault("ppa");
    const double seconds = profiling.profilingCostSeconds(w);
    EXPECT_GT(seconds, 100.0);
    EXPECT_LT(seconds, 20000.0);
}

} // namespace
} // namespace gopim::predictor
