/**
 * @file
 * Tests for the worker thread pool: results come back in submission
 * order, exceptions propagate through futures, parallelFor covers
 * every index exactly once — and the property the harness builds on:
 * runGrid over a thread pool is bit-identical to the serial path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/thread_pool.hh"
#include "core/harness.hh"
#include "core/report.hh"
#include "core/systems.hh"

namespace gopim {
namespace {

TEST(ThreadPool, ResultsArriveInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPool, AllTasksRunExactlyOnce)
{
    ThreadPool pool(8);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, ResolveJobsZeroMeansAllCores)
{
    EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
    EXPECT_EQ(ThreadPool::resolveJobs(5), 5u);
}

TEST(ParallelFor, CoversEveryIndexOnce)
{
    std::vector<int> hits(257, 0);
    parallelFor(hits.size(), 8,
                [&](size_t i) { hits[i] += 1; });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, InlineWhenSingleJob)
{
    const auto caller = std::this_thread::get_id();
    parallelFor(4, 1, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(parallelFor(16, 4,
                             [](size_t i) {
                                 if (i == 9)
                                     throw std::runtime_error("nine");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, RethrowsTheLowestFailingIndexFirst)
{
    // The exception contract parallel runs share with serial ones:
    // when several indices throw, the surviving exception is the
    // first by index, and every index is still attempted.
    std::atomic<int> attempts{0};
    try {
        parallelFor(64, 8, [&](size_t i) {
            ++attempts;
            if (i == 5 || i == 60)
                throw std::runtime_error(std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "5");
    }
    EXPECT_EQ(attempts.load(), 64);
}

TEST(ParallelFor, RunsOnTheSharedProcessPool)
{
    // parallelFor no longer spins up a pool per call: work lands on
    // the process-wide pool, whose lifetime task counter advances.
    ThreadPool &pool = processPool();
    const size_t threads = pool.threadCount();
    EXPECT_EQ(threads, ThreadPool::resolveJobs(0));

    const uint64_t before = pool.tasksSubmitted();
    parallelFor(32, 4, [](size_t) {});
    EXPECT_GT(pool.tasksSubmitted(), before);
    EXPECT_EQ(pool.threadCount(), threads);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock)
{
    // A chunk running on the shared pool must not wait on the pool
    // for its own nested parallelFor; nesting runs inline instead.
    std::atomic<int> inner{0};
    parallelFor(4, 4, [&](size_t) {
        parallelFor(8, 4, [&](size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, TracksUtilizationCounters)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.tasksSubmitted(), 0u);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i)
        futures.push_back(pool.submit([] {}));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(pool.tasksSubmitted(), 20u);
    EXPECT_EQ(pool.tasksCompleted(), 20u);
    EXPECT_LE(pool.maxQueueDepth(), 20u);
}

// The load-bearing property: a parallel grid is indistinguishable
// from the serial one, bit for bit, down to the rendered tables.
TEST(ParallelGrid, JobsOneEqualsJobsManyBitForBit)
{
    core::ComparisonHarness harness;
    const auto systems = core::figure13Systems();
    const std::vector<std::string> datasets = {"ddi", "Cora"};

    const auto serial = harness.runGrid(systems, datasets, 1);
    const auto parallel = harness.runGrid(systems, datasets, 8);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t d = 0; d < serial.size(); ++d) {
        EXPECT_EQ(serial[d].datasetName, parallel[d].datasetName);
        ASSERT_EQ(serial[d].results.size(),
                  parallel[d].results.size());
        for (size_t s = 0; s < serial[d].results.size(); ++s) {
            const auto &a = serial[d].results[s];
            const auto &b = parallel[d].results[s];
            EXPECT_EQ(a.systemName, b.systemName);
            // Bitwise, not approximate: the cells are stateless.
            EXPECT_EQ(a.makespanNs, b.makespanNs);
            EXPECT_EQ(a.energyPj, b.energyPj);
            EXPECT_EQ(a.replicas, b.replicas);
            EXPECT_EQ(a.idleFraction, b.idleFraction);
        }
    }

    // Rendered artifacts are byte-identical too.
    std::ostringstream csvSerial, csvParallel;
    core::writeGridCsv(serial, csvSerial);
    core::writeGridCsv(parallel, csvParallel);
    EXPECT_EQ(csvSerial.str(), csvParallel.str());
}

// Same property under the event-driven engine, whose queue is full
// of colliding timestamps (every stage of a drained chunk finishes
// on the same boundary): the explicit sequence-number tie-break in
// sim::EventQueue is what keeps --jobs=1 and --jobs=8 bit-identical
// here, rather than unspecified container behavior.
TEST(ParallelGrid, EventEngineCollidingTimestampsJobsInvariant)
{
    sim::SimContext ctx;
    ctx.engine = sim::EngineKind::EventDriven;
    ctx.seed = 7;
    core::ComparisonHarness harness(
        reram::AcceleratorConfig::paperDefault(), ctx);
    const auto systems = core::figure13Systems();
    const std::vector<std::string> datasets = {"ddi", "Cora"};

    const auto serial = harness.runGrid(systems, datasets, 1);
    const auto parallel = harness.runGrid(systems, datasets, 8);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t d = 0; d < serial.size(); ++d) {
        ASSERT_EQ(serial[d].results.size(),
                  parallel[d].results.size());
        for (size_t s = 0; s < serial[d].results.size(); ++s) {
            const auto &a = serial[d].results[s];
            const auto &b = parallel[d].results[s];
            EXPECT_EQ(a.makespanNs, b.makespanNs);
            EXPECT_EQ(a.energyPj, b.energyPj);
            EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
            EXPECT_GT(a.eventsProcessed, 0u);
            EXPECT_EQ(a.idleFraction, b.idleFraction);
            EXPECT_EQ(a.blockedNs, b.blockedNs);
        }
    }
}

} // namespace
} // namespace gopim
