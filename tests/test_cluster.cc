/**
 * @file
 * Cluster-layer tests: rendezvous placement (balanced, join-order
 * independent, minimally disruptive), the length-prefixed frame
 * codec, stale-Unix-socket reclamation, the worker-side framed pump
 * (byte-equal to Service::handleLine), and the router end to end —
 * including the headline chaos claim: a 3-shard cluster with workers
 * SIGKILLed and respawned mid-load emits a response stream
 * byte-identical to a single-process `gopim_serve --envelope=stable`
 * run.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "cluster/admission.hh"
#include "cluster/router.hh"
#include "cluster/shards.hh"
#include "cluster/wire.hh"
#include "cluster/worker.hh"
#include "common/flags.hh"
#include "common/hash.hh"
#include "common/net.hh"
#include "core/options.hh"
#include "obs/metrics.hh"
#include "serve/request.hh"
#include "serve/service.hh"
#include "sim/engine.hh"

namespace gopim {
namespace {

// ---------------------------------------------------------------
// Rendezvous placement
// ---------------------------------------------------------------

std::vector<std::string>
shardNames(size_t count)
{
    std::vector<std::string> names;
    for (size_t i = 0; i < count; ++i)
        names.push_back("shard" + std::to_string(i));
    return names;
}

/** Synthetic cache-key-shaped inputs (16-char hex digests). */
std::vector<std::string>
syntheticKeys(size_t count)
{
    std::vector<std::string> keys;
    for (size_t i = 0; i < count; ++i)
        keys.push_back(
            hexDigest64(fnv1a64("request-" + std::to_string(i))));
    return keys;
}

TEST(RendezvousTest, BalancedWithinPinnedBoundAcrossShardCounts)
{
    const std::vector<std::string> keys = syntheticKeys(4096);
    for (const size_t shardCount : {2u, 4u, 8u}) {
        const std::vector<std::string> names =
            shardNames(shardCount);
        std::vector<size_t> perShard(shardCount, 0);
        for (const std::string &key : keys)
            ++perShard[cluster::rendezvousShard(key, names)];
        const double avg = static_cast<double>(keys.size()) /
                           static_cast<double>(shardCount);
        const size_t hi =
            *std::max_element(perShard.begin(), perShard.end());
        const size_t lo =
            *std::min_element(perShard.begin(), perShard.end());
        // Pinned fairness bound: an FNV-chained rendezvous hash over
        // 4096 keys stays within ±25% of a perfect split.
        EXPECT_LE(static_cast<double>(hi), avg * 1.25)
            << shardCount << " shards";
        EXPECT_GE(static_cast<double>(lo), avg * 0.75)
            << shardCount << " shards";
    }
}

TEST(RendezvousTest, PlacementIgnoresJoinOrder)
{
    const std::vector<std::string> keys = syntheticKeys(256);
    std::vector<std::string> names = shardNames(5);
    std::vector<std::string> reversed(names.rbegin(), names.rend());
    std::vector<std::string> rotated = names;
    std::rotate(rotated.begin(), rotated.begin() + 2, rotated.end());
    for (const std::string &key : keys) {
        const std::string &winner =
            names[cluster::rendezvousShard(key, names)];
        EXPECT_EQ(winner,
                  reversed[cluster::rendezvousShard(key, reversed)]);
        EXPECT_EQ(winner,
                  rotated[cluster::rendezvousShard(key, rotated)]);
    }
}

TEST(RendezvousTest, AddingShardMovesOnlyKeysItWins)
{
    const std::vector<std::string> keys = syntheticKeys(2048);
    const std::vector<std::string> names = shardNames(4);
    std::vector<std::string> grown = names;
    grown.push_back("shard4");
    size_t moved = 0;
    for (const std::string &key : keys) {
        const std::string &before =
            names[cluster::rendezvousShard(key, names)];
        const std::string &after =
            grown[cluster::rendezvousShard(key, grown)];
        if (before != after) {
            // A key only ever moves TO the new shard.
            EXPECT_EQ(after, "shard4") << key;
            ++moved;
        }
    }
    // Roughly 1/5 of the keyspace belongs to the 5th shard.
    EXPECT_GT(moved, keys.size() / 10);
    EXPECT_LT(moved, keys.size() / 3);
}

TEST(RendezvousTest, EndpointParsing)
{
    cluster::ShardSpec spec;
    std::string error;
    ASSERT_TRUE(
        cluster::parseEndpoint("127.0.0.1:9100", &spec, &error))
        << error;
    EXPECT_EQ(spec.name, "127.0.0.1:9100");
    EXPECT_EQ(spec.host, "127.0.0.1");
    EXPECT_EQ(spec.port, 9100);
    EXPECT_FALSE(cluster::parseEndpoint("nohost", &spec, &error));
    EXPECT_FALSE(
        cluster::parseEndpoint("host:notaport", &spec, &error));
    EXPECT_FALSE(cluster::parseEndpoint("host:0", &spec, &error));
}

// ---------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------

struct SocketPair
{
    int a = -1;
    int b = -1;
    SocketPair()
    {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
            a = fds[0];
            b = fds[1];
        }
    }
    ~SocketPair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }
    void
    closeA()
    {
        ::close(a);
        a = -1;
    }
};

TEST(FrameTest, RoundTripIncludingEmptyPayload)
{
    SocketPair pair;
    ASSERT_GE(pair.a, 0);
    const std::vector<std::string> payloads = {
        "{\"dataset\":\"ddi\"}", "", std::string(70000, 'x')};
    for (const std::string &payload : payloads)
        ASSERT_TRUE(net::writeFrame(pair.a, payload));
    for (const std::string &payload : payloads) {
        std::string got;
        ASSERT_EQ(net::readFrame(pair.b, &got), net::IoStatus::Ok);
        EXPECT_EQ(got, payload);
    }
}

TEST(FrameTest, CleanCloseIsEofMidFrameCloseIsError)
{
    {
        SocketPair pair;
        pair.closeA();
        std::string got;
        EXPECT_EQ(net::readFrame(pair.b, &got), net::IoStatus::Eof);
    }
    {
        SocketPair pair;
        // Half a length header, then close: an error, not EOF.
        const char partial[2] = {0x10, 0x00};
        ASSERT_EQ(::write(pair.a, partial, 2), 2);
        pair.closeA();
        std::string got;
        std::string error;
        EXPECT_EQ(net::readFrame(pair.b, &got, &error),
                  net::IoStatus::Error);
        EXPECT_FALSE(error.empty());
    }
}

TEST(FrameTest, OversizedFrameRejected)
{
    SocketPair pair;
    // A forged oversized length prefix must not allocate; the reader
    // rejects it before reading the body.
    const uint32_t huge = (1u << 26) + 1;
    char header[4] = {static_cast<char>(huge & 0xff),
                      static_cast<char>((huge >> 8) & 0xff),
                      static_cast<char>((huge >> 16) & 0xff),
                      static_cast<char>((huge >> 24) & 0xff)};
    ASSERT_EQ(::write(pair.a, header, 4), 4);
    std::string got;
    std::string error;
    EXPECT_EQ(net::readFrame(pair.b, &got, &error),
              net::IoStatus::Error);
    EXPECT_NE(error.find("frame"), std::string::npos);
}

// ---------------------------------------------------------------
// Stale Unix sockets
// ---------------------------------------------------------------

TEST(UnixSocketTest, StaleSocketReclaimedLiveSocketRefused)
{
    const std::string path =
        testing::TempDir() + "gopim_stale_test.sock";
    ::unlink(path.c_str());

    // A listener that dies without unlinking leaves a stale file.
    std::string error;
    int fd = net::listenUnix(path, &error);
    ASSERT_GE(fd, 0) << error;

    // While it lives, the path must be refused, not stolen.
    std::string liveError;
    EXPECT_LT(net::listenUnix(path, &liveError), 0);
    EXPECT_NE(liveError.find("live"), std::string::npos)
        << liveError;

    ::close(fd); // dead server, socket file left behind

    bool removedStale = false;
    fd = net::listenUnix(path, &error, &removedStale);
    EXPECT_GE(fd, 0) << error;
    EXPECT_TRUE(removedStale);
    ::close(fd);
    ::unlink(path.c_str());
}

TEST(UnixSocketTest, RefusesNonSocketFile)
{
    const std::string path =
        testing::TempDir() + "gopim_notasocket.txt";
    {
        std::ofstream out(path);
        out << "hello\n";
    }
    std::string error;
    EXPECT_LT(net::listenUnix(path, &error), 0);
    EXPECT_NE(error.find("not a socket"), std::string::npos)
        << error;
    ::unlink(path.c_str());
}

// ---------------------------------------------------------------
// Worker-side framed pump
// ---------------------------------------------------------------

/** Constant-latency engine: keeps protocol tests instantaneous. */
class StubEngine final : public sim::ScheduleEngine
{
  public:
    std::string name() const override { return "stub"; }

    sim::StageTimeline
    schedule(const sim::ScheduleRequest &request,
             const sim::SimContext &) const override
    {
        sim::StageTimeline timeline;
        double total = 0.0;
        for (double t : request.stageTimesNs)
            total += t;
        timeline.makespanNs =
            total * static_cast<double>(request.totalMicroBatches);
        timeline.busyNs = request.stageTimesNs;
        timeline.blockedNs.assign(request.stageTimesNs.size(), 0.0);
        timeline.idleFraction.assign(request.stageTimesNs.size(),
                                     0.0);
        return timeline;
    }
};

serve::ServiceConfig
stubConfig(size_t jobs)
{
    serve::ServiceConfig config;
    config.jobs = jobs;
    config.defaults.sim.engineOverride =
        std::make_shared<StubEngine>();
    return config;
}

TEST(WorkerPumpTest, ResponsesMatchHandleLineByteForByte)
{
    serve::Service service(stubConfig(2));
    serve::Service reference(stubConfig(1));
    const serve::ServiceConfig config = stubConfig(1);
    const std::string fp = serve::defaultsFingerprint(
        config.defaults, config.hw);

    SocketPair pair;
    ASSERT_GE(pair.a, 0);
    cluster::WorkerOptions options;
    options.defaultsFp = fp;
    std::thread worker([&] {
        cluster::pumpFramedConnection(service, pair.b, options);
    });

    ASSERT_TRUE(net::writeFrame(
        pair.a, cluster::helloLine("test", serve::Envelope::Stable,
                                   fp)));
    std::string reply;
    ASSERT_EQ(net::readFrame(pair.a, &reply), net::IoStatus::Ok);
    ASSERT_EQ(cluster::checkHelloReply(reply, fp), "") << reply;

    std::vector<std::string> lines;
    for (int seed = 1; seed <= 24; ++seed)
        lines.push_back("{\"id\":\"q" + std::to_string(seed) +
                        "\",\"dataset\":\"ddi\",\"seed\":" +
                        std::to_string(seed % 5 + 1) + "}");
    lines.push_back("{\"unknown_key\":1}");
    lines.push_back("not json");
    for (const std::string &line : lines)
        ASSERT_TRUE(net::writeFrame(pair.a, line));
    for (const std::string &line : lines) {
        std::string response;
        ASSERT_EQ(net::readFrame(pair.a, &response),
                  net::IoStatus::Ok);
        EXPECT_EQ(response, reference.handleLine(
                                line, serve::Envelope::Stable));
    }
    pair.closeA();
    worker.join();
}

TEST(WorkerPumpTest, RejectsBadProtocolAndMismatchedDefaults)
{
    {
        serve::Service service(stubConfig(1));
        SocketPair pair;
        cluster::WorkerOptions options;
        options.defaultsFp = "0123456789abcdef";
        std::thread worker([&] {
            cluster::pumpFramedConnection(service, pair.b, options);
        });
        ASSERT_TRUE(
            net::writeFrame(pair.a, "{\"proto\":\"bogus.v9\"}"));
        std::string reply;
        ASSERT_EQ(net::readFrame(pair.a, &reply), net::IoStatus::Ok);
        EXPECT_NE(reply.find("protocol_mismatch"),
                  std::string::npos)
            << reply;
        worker.join();
    }
    {
        serve::Service service(stubConfig(1));
        SocketPair pair;
        cluster::WorkerOptions options;
        options.defaultsFp = "0123456789abcdef";
        std::thread worker([&] {
            cluster::pumpFramedConnection(service, pair.b, options);
        });
        ASSERT_TRUE(net::writeFrame(
            pair.a,
            cluster::helloLine("test", serve::Envelope::Stable,
                               "ffffffffffffffff")));
        std::string reply;
        ASSERT_EQ(net::readFrame(pair.a, &reply), net::IoStatus::Ok);
        EXPECT_NE(reply.find("defaults_mismatch"), std::string::npos)
            << reply;
        worker.join();
    }
}

// ---------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------

TEST(AdmissionTest, DepthDrivenDecisionsAndMetrics)
{
    obs::MetricsRegistry registry;
    cluster::AdmissionConfig config;
    config.maxInflightPerShard = 2;
    config.shedAbove = 4;
    cluster::AdmissionController admission(config, registry, 1);

    EXPECT_EQ(admission.decide(0), cluster::Admit::Accept);
    admission.onDispatch(0);
    admission.onDispatch(0);
    EXPECT_EQ(admission.decide(0), cluster::Admit::Block);
    admission.onDispatch(0);
    admission.onDispatch(0);
    EXPECT_EQ(admission.decide(0), cluster::Admit::Shed);
    admission.onShed(0);
    admission.onComplete(0);
    admission.onComplete(0);
    admission.onComplete(0);
    EXPECT_EQ(admission.decide(0), cluster::Admit::Accept);

    // The decisions above ARE the exported instruments.
    EXPECT_EQ(registry.findGauge("cluster.shard0.inflight")->value(),
              1);
    EXPECT_EQ(
        registry.findGauge("cluster.shard0.inflight.max")->value(),
        4);
    EXPECT_EQ(registry.findCounter("cluster.shed.count")->value(),
              1u);
}

// ---------------------------------------------------------------
// Router end to end (real worker processes)
// ---------------------------------------------------------------

#ifdef GOPIM_SERVE_BIN

std::string
tempDirFor(const std::string &tag)
{
    std::string tmpl = testing::TempDir() + tag + ".XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = ::mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return dir ? std::string(dir) : std::string();
}

/** The ≥1k-request chaos stream: mixed datasets/systems/seeds. */
std::string
chaosRequestStream(int repetitions)
{
    std::string stream;
    int id = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
        for (const char *dataset : {"ddi", "Cora"}) {
            for (const char *system :
                 {"GoPIM", "Serial", "ReGraphX"}) {
                for (int seed = 1; seed <= 3; ++seed) {
                    for (int microBatch : {32, 64}) {
                        stream +=
                            "{\"id\":\"r" + std::to_string(id++) +
                            "\",\"dataset\":\"" + dataset +
                            "\",\"system\":\"" + system +
                            "\",\"seed\":" + std::to_string(seed) +
                            ",\"micro_batch\":" +
                            std::to_string(microBatch) + "}\n";
                    }
                }
            }
        }
        // Invalid lines exercise the router-side error path, which
        // must also be byte-identical to the worker's.
        stream += "{\"dataset\":\"no-such-graph\"}\n";
        stream += "{\"bogus_field\":1}\n";
        stream += "this is not json\n";
    }
    return stream;
}

/** Golden bytes: the single-process stable-envelope run. */
std::string
singleProcessGolden(const std::string &requests,
                    const std::string &dir)
{
    const std::string inPath = dir + "/requests.jsonl";
    const std::string outPath = dir + "/golden.jsonl";
    {
        std::ofstream out(inPath);
        out << requests;
    }
    const std::string cmd = std::string(GOPIM_SERVE_BIN) +
                            " --envelope=stable --jobs=4 < " +
                            inPath + " > " + outPath +
                            " 2>/dev/null";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    std::ifstream in(outPath);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * The defaults a flag-less gopim_serve process serves with, derived
 * through the same addSimFlags path — the hello fingerprint check
 * requires the router side to match them exactly.
 */
serve::Request
workerDefaults()
{
    Flags flags("test", "");
    core::addSimFlags(flags);
    const char *argv[] = {"test"};
    flags.parse(1, const_cast<char **>(argv));
    serve::Request defaults;
    defaults.sim = core::simContextFromFlags(flags);
    defaults.fault = core::faultConfigFromFlags(flags);
    return defaults;
}

std::vector<cluster::ShardSpec>
spawnedShards(size_t count, const std::string &dir)
{
    std::vector<cluster::ShardSpec> specs;
    for (size_t i = 0; i < count; ++i) {
        cluster::ShardSpec spec;
        spec.name = "shard" + std::to_string(i);
        spec.command = {GOPIM_SERVE_BIN, "--jobs=2"};
        spec.portFile = dir + "/" + spec.name + ".port";
        specs.push_back(std::move(spec));
    }
    return specs;
}

TEST(RouterChaosTest, ByteIdentityAcrossWorkerKillAndRestart)
{
    const std::string dir = tempDirFor("gopim_cluster_chaos");
    ASSERT_FALSE(dir.empty());
    // 12 reps x 36 valid + 3 invalid = 468 + ... => make it >= 1000.
    const std::string requests = chaosRequestStream(26); // 1014 lines
    const std::string golden = singleProcessGolden(requests, dir);
    ASSERT_FALSE(golden.empty());

    cluster::RouterConfig config;
    config.shards = spawnedShards(3, dir);
    config.defaults = workerDefaults();
    config.chaosKillEvery = 150;
    config.chaosKillCount = 2;
    config.chaosSeed = 7;
    config.metrics = std::make_shared<obs::MetricsRegistry>();
    cluster::Router router(std::move(config));
    ASSERT_EQ(router.start(), "");

    std::istringstream in(requests);
    std::ostringstream out;
    const cluster::Router::StreamStats stats =
        router.processStream(in, out);

    EXPECT_EQ(stats.requests, 1014u);
    EXPECT_EQ(stats.chaosKills, 2u);
    EXPECT_GE(stats.restarts, 1u);
    EXPECT_EQ(stats.shed, 0u);
    // The headline claim: kill-and-restart under load changes
    // nothing about the response bytes or their order.
    EXPECT_EQ(out.str(), golden);
    // ...and the recovery is visible in the metrics the operator
    // exports.
    EXPECT_GE(router.metrics()
                  .findCounter("cluster.restart.count")
                  ->value(),
              1u);
    EXPECT_EQ(router.metrics()
                  .findCounter("cluster.chaos.kill.count")
                  ->value(),
              2u);
    EXPECT_EQ(
        router.metrics().findCounter("cluster.request.count")->value(),
        1014u);
}

TEST(RouterShedTest, UndersizedShardShedsVisiblyInMetrics)
{
    const std::string dir = tempDirFor("gopim_cluster_shed");
    ASSERT_FALSE(dir.empty());

    cluster::RouterConfig config;
    config.shards = spawnedShards(1, dir);
    config.defaults = workerDefaults();
    // Use a deliberately slow single worker thread.
    config.shards[0].command = {GOPIM_SERVE_BIN, "--jobs=1"};
    config.admission.maxInflightPerShard = 4;
    config.admission.shedAbove = 4;
    config.metrics = std::make_shared<obs::MetricsRegistry>();
    cluster::Router router(std::move(config));
    ASSERT_EQ(router.start(), "");

    // Unique seeds defeat the cache; the event engine and extra
    // epochs pad the per-request cost so the dispatcher outruns the
    // undersized shard.
    std::string requests;
    for (int i = 0; i < 64; ++i)
        requests += "{\"id\":\"s" + std::to_string(i) +
                    "\",\"dataset\":\"Cora\",\"engine\":\"event\","
                    "\"seed\":" +
                    std::to_string(i + 1) + ",\"epochs\":4}\n";
    std::istringstream in(requests);
    std::ostringstream out;
    const cluster::Router::StreamStats stats =
        router.processStream(in, out);

    EXPECT_EQ(stats.requests, 64u);
    EXPECT_GE(stats.shed, 1u) << "undersized shard never shed";
    // Every shed is a structured, machine-readable rejection...
    size_t overloadedLines = 0;
    std::istringstream lines(out.str());
    std::string line;
    size_t total = 0;
    while (std::getline(lines, line)) {
        ++total;
        if (line.find("\"code\":\"overloaded\"") !=
            std::string::npos)
            ++overloadedLines;
    }
    EXPECT_EQ(total, 64u); // in-order, one response per request
    EXPECT_EQ(overloadedLines, stats.shed);
    // ...and the shed counter the decision used is the one exported.
    EXPECT_EQ(router.metrics()
                  .findCounter("cluster.shed.count")
                  ->value(),
              stats.shed);
}

TEST(RouterStartTest, FailsFastOnDeadEndpoint)
{
    // Grab an ephemeral port, then close the listener so nothing is
    // behind it.
    std::string error;
    uint16_t port = 0;
    const int fd = net::listenTcp("127.0.0.1", 0, &port, &error);
    ASSERT_GE(fd, 0) << error;
    ::close(fd);

    cluster::ShardSpec spec;
    ASSERT_TRUE(cluster::parseEndpoint(
        "127.0.0.1:" + std::to_string(port), &spec, &error));
    cluster::RouterConfig config;
    config.shards = {spec};
    config.connectAttempts = 2;
    config.connectDelayMs = 10;
    cluster::Router router(std::move(config));
    const std::string problem = router.start();
    EXPECT_NE(problem.find("connect"), std::string::npos) << problem;
}

#endif // GOPIM_SERVE_BIN

} // namespace
} // namespace gopim
