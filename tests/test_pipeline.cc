/**
 * @file
 * Unit tests for the pipeline engine: the stage sequence, the exact
 * Eq. (3)-(6) schedule (including agreement of the recurrence with the
 * closed form), the serial baseline, intra-batch draining, idle
 * accounting, and the paper's Fig. 5 worked example.
 */

#include <gtest/gtest.h>

#include "pipeline/schedule.hh"
#include "pipeline/stage.hh"
#include "pipeline/stats.hh"

namespace gopim::pipeline {
namespace {

TEST(Stage, TrainingSequenceOrder)
{
    const auto stages = buildTrainingStages(2);
    ASSERT_EQ(stages.size(), 8u);
    // CO1 AG1 CO2 AG2 LC2 GC2 LC1 GC1 (Fig. 2).
    EXPECT_EQ(stages[0].label(), "CO1");
    EXPECT_EQ(stages[1].label(), "AG1");
    EXPECT_EQ(stages[2].label(), "CO2");
    EXPECT_EQ(stages[3].label(), "AG2");
    EXPECT_EQ(stages[4].label(), "LC2");
    EXPECT_EQ(stages[5].label(), "GC2");
    EXPECT_EQ(stages[6].label(), "LC1");
    EXPECT_EQ(stages[7].label(), "GC1");
}

TEST(Stage, FourStagesPerLayer)
{
    for (uint32_t layers : {1u, 2u, 3u, 5u})
        EXPECT_EQ(buildTrainingStages(layers).size(), 4u * layers);
}

TEST(Stage, TypePredicates)
{
    EXPECT_TRUE(mapsVertexFeatures(StageType::Aggregation));
    EXPECT_FALSE(mapsVertexFeatures(StageType::Combination));
    EXPECT_EQ(toString(StageType::LossCompute), "LC");
}

TEST(Schedule, SingleMicroBatchIsSumOfStages)
{
    const std::vector<double> times = {1.0, 6.0};
    const auto result = schedulePipelined(times, 1);
    EXPECT_DOUBLE_EQ(result.makespanNs, 7.0);
}

TEST(Schedule, RecurrenceMatchesClosedForm)
{
    // Eq. 6: T_A = sum + (B-1) * max, exact for identical jobs.
    const std::vector<double> times = {3.0, 1.0, 4.0, 1.5};
    for (uint32_t b : {1u, 2u, 5u, 32u}) {
        const auto exact = schedulePipelined(times, b);
        EXPECT_DOUBLE_EQ(exact.makespanNs,
                         pipelinedMakespanNs(times, b))
            << "B=" << b;
    }
}

TEST(Schedule, DependencyConstraintsHold)
{
    const std::vector<double> times = {2.0, 5.0, 1.0};
    const auto r = schedulePipelined(times, 4);
    for (size_t i = 0; i < times.size(); ++i) {
        for (uint32_t j = 0; j < 4; ++j) {
            const auto &w = r.windows[i][j];
            EXPECT_DOUBLE_EQ(w.endNs, w.startNs + times[i]);
            if (j > 0) { // Eq. 3
                EXPECT_GE(w.startNs, r.windows[i][j - 1].endNs);
            }
            if (i > 0) { // Eq. 4
                EXPECT_GE(w.startNs, r.windows[i - 1][j].endNs);
            }
        }
    }
}

TEST(Schedule, SerialIsProductOfBatchesAndStages)
{
    const std::vector<double> times = {2.0, 3.0};
    const auto r = scheduleSerial(times, 10);
    EXPECT_DOUBLE_EQ(r.makespanNs, 50.0);
    // Stage windows must not overlap anywhere in a serial schedule.
    EXPECT_GE(r.windows[0][1].startNs, r.windows[1][0].endNs);
}

TEST(Schedule, PipelineNeverSlowerThanSerialNeverFasterThanBottleneck)
{
    const std::vector<double> times = {1.0, 6.0, 2.0};
    const uint32_t b = 16;
    const auto pipe = schedulePipelined(times, b);
    const auto serial = scheduleSerial(times, b);
    EXPECT_LE(pipe.makespanNs, serial.makespanNs);
    EXPECT_GE(pipe.makespanNs, 6.0 * b); // bottleneck bound
}

TEST(Schedule, Figure5WorkedExample)
{
    // Fig. 5(a): two stages, times 1:6 per half micro-batch. Each
    // batch has two micro-batches, four batches shown; the paper's
    // timeline totals 52 units for the no-replica pipeline with
    // batch draining (intra-batch pipeline, 2 micro-batches/batch).
    const std::vector<double> times = {1.0, 6.0};
    const auto noReplica = scheduleIntraBatchOnly(times, 2, 4);
    EXPECT_DOUBLE_EQ(noReplica.makespanNs, 52.0);

    // Fig. 5(b): ReGraphX's 1:2 split gives stage 1 two-fold and
    // stage 2 three-fold speedups: times 0.5 and 2. Total 18 = 52-34.
    const std::vector<double> regraphx = {1.0 / 2.0, 6.0 / 3.0};
    const auto b = scheduleIntraBatchOnly(regraphx, 2, 4);
    EXPECT_DOUBLE_EQ(b.makespanNs, 52.0 - 34.0);

    // Fig. 5(c): all three spare crossbars on stage 2: times 1 and
    // 6/4. Total 16 = 52-36, beating ReGraphX.
    const std::vector<double> gopim = {1.0, 6.0 / 4.0};
    const auto c = scheduleIntraBatchOnly(gopim, 2, 4);
    EXPECT_DOUBLE_EQ(c.makespanNs, 52.0 - 36.0);
    EXPECT_LT(c.makespanNs, b.makespanNs);
}

TEST(Schedule, IntraBatchDrainsBetweenBatches)
{
    const std::vector<double> times = {1.0, 1.0};
    // 2 batches x 2 micro-batches: each batch takes 3, total 6;
    // the fully pipelined run would take 2 + 3 * 1 = 5.
    const auto drained = scheduleIntraBatchOnly(times, 2, 2);
    const auto full = schedulePipelined(times, 4);
    EXPECT_DOUBLE_EQ(drained.makespanNs, 6.0);
    EXPECT_DOUBLE_EQ(full.makespanNs, 5.0);
}

TEST(Schedule, IdleFractionsReflectImbalance)
{
    const std::vector<double> times = {1.0, 9.0};
    const auto r = schedulePipelined(times, 100);
    // Stage 2 is the bottleneck: nearly always busy. Stage 1 idles
    // roughly 90% of the time.
    EXPECT_GT(r.idleFraction[0], 0.85);
    EXPECT_LT(r.idleFraction[1], 0.05);
    EXPECT_NEAR(r.avgIdleFraction(),
                (r.idleFraction[0] + r.idleFraction[1]) / 2.0, 1e-12);
}

TEST(Schedule, BalancedStagesHaveLowIdle)
{
    const std::vector<double> times = {2.0, 2.0, 2.0};
    const auto r = schedulePipelined(times, 50);
    for (double idle : r.idleFraction)
        EXPECT_LT(idle, 0.1);
}

TEST(Stats, IdleReportTable)
{
    const auto stages = buildTrainingStages(1);
    const std::vector<double> times = {1.0, 5.0, 1.0, 1.0};
    const auto schedule = schedulePipelined(times, 20);
    const auto report = buildIdleReport(stages, schedule);
    ASSERT_EQ(report.stageLabels.size(), 4u);
    EXPECT_EQ(report.stageLabels[1], "AG1");
    EXPECT_GT(report.idlePercent[0], report.idlePercent[1]);

    const auto table = idleReportTable("test", report);
    EXPECT_EQ(table.rows(), 5u); // 4 stages + average row
}

TEST(Schedule, VariableTimesMatchUniformWhenConstant)
{
    const std::vector<double> times = {2.0, 5.0, 1.0};
    const uint32_t b = 7;
    std::vector<std::vector<double>> grid;
    for (double t : times)
        grid.emplace_back(b, t);
    const auto uniform = schedulePipelined(times, b);
    const auto variable = schedulePipelinedVariable(grid);
    EXPECT_DOUBLE_EQ(variable.makespanNs, uniform.makespanNs);
    for (size_t i = 0; i < times.size(); ++i)
        EXPECT_NEAR(variable.idleFraction[i],
                    uniform.idleFraction[i], 1e-12);
}

TEST(Schedule, RaggedLastMicroBatchShortensMakespan)
{
    // A real epoch's last micro-batch carries |V| mod B vertices and
    // finishes faster; the closed form over-estimates.
    const std::vector<double> times = {2.0, 6.0};
    const uint32_t b = 5;
    std::vector<std::vector<double>> grid;
    for (double t : times) {
        std::vector<double> row(b, t);
        row.back() = t * 0.25; // ragged tail
        grid.push_back(std::move(row));
    }
    const auto variable = schedulePipelinedVariable(grid);
    EXPECT_LT(variable.makespanNs, pipelinedMakespanNs(times, b));
    // Still bounded below by the bottleneck's total work.
    EXPECT_GE(variable.makespanNs, 6.0 * 4 + 1.5);
}

TEST(Schedule, VariableTimesRespectDependencies)
{
    std::vector<std::vector<double>> grid = {
        {1.0, 4.0, 1.0},
        {2.0, 1.0, 3.0},
    };
    const auto r = schedulePipelinedVariable(grid);
    for (size_t i = 0; i < grid.size(); ++i)
        for (size_t j = 0; j < 3; ++j) {
            if (j > 0) {
                EXPECT_GE(r.windows[i][j].startNs,
                          r.windows[i][j - 1].endNs);
            }
            if (i > 0) {
                EXPECT_GE(r.windows[i][j].startNs,
                          r.windows[i - 1][j].endNs);
            }
        }
    // Hand-computed: stage0 ends 1,5,6; stage1: 3, 6, 9.
    EXPECT_DOUBLE_EQ(r.makespanNs, 9.0);
}

TEST(Schedule, ZeroTimeStagesAreLegal)
{
    // Fully amortized fixed costs can make a stage time 0.
    const std::vector<double> times = {0.0, 2.0};
    const auto r = schedulePipelined(times, 3);
    EXPECT_DOUBLE_EQ(r.makespanNs, 6.0);
}

} // namespace
} // namespace gopim::pipeline
