/**
 * @file
 * Cross-module integration tests: end-to-end runs over the full
 * dataset catalog, parameterized sweeps over micro-batch sizes and
 * thetas (property-style), and consistency between the allocator,
 * schedule, and energy accounting on real workloads.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "alloc/allocator.hh"
#include "core/accelerator.hh"
#include "core/harness.hh"
#include "core/systems.hh"
#include "gcn/workload.hh"
#include "pipeline/schedule.hh"
#include "sim/pipeline_sim.hh"

namespace gopim::core {
namespace {

/** End-to-end run across every dataset in Fig. 13's set. */
class DatasetSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DatasetSweep, GoPimBeatsSerialEverywhere)
{
    ComparisonHarness harness;
    const auto workload = gcn::Workload::paperDefault(GetParam());
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);

    Accelerator serialAccel(harness.hardware(),
                            makeSystem(SystemKind::Serial));
    Accelerator gopimAccel(harness.hardware(),
                           makeSystem(SystemKind::GoPim));
    const auto serial = serialAccel.run(workload, profile);
    const auto gopim = gopimAccel.run(workload, profile);

    // Fig. 13a reports 10.2x-3454.3x over Serial across datasets.
    const double speedup = gopim.speedupOver(serial);
    EXPECT_GT(speedup, 5.0) << GetParam();
    EXPECT_LT(speedup, 50000.0) << GetParam();

    // Fig. 13b: GoPIM is the most energy-efficient system.
    EXPECT_GT(gopim.energySavingOver(serial), 1.0) << GetParam();

    // Budget fairness holds everywhere.
    EXPECT_LE(gopim.totalCrossbars,
              harness.hardware().totalCrossbars());
}

INSTANTIATE_TEST_SUITE_P(Figure13Datasets, DatasetSweep,
                         ::testing::Values("ddi", "collab", "proteins",
                                           "arxiv"));

/** Micro-batch scaling property (Fig. 16c). */
class MicroBatchSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(MicroBatchSweep, PipelineSpeedupGrowsWithMicroBatchCount)
{
    ComparisonHarness harness;
    auto workload = gcn::Workload::paperDefault("ddi");
    workload.microBatchSize = GetParam();
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);

    Accelerator serialAccel(harness.hardware(),
                            makeSystem(SystemKind::Serial));
    Accelerator gopimAccel(harness.hardware(),
                           makeSystem(SystemKind::GoPim));
    const auto serial = serialAccel.run(workload, profile);
    const auto gopim = gopimAccel.run(workload, profile);
    EXPECT_GT(gopim.speedupOver(serial), 3.0)
        << "micro-batch " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, MicroBatchSweep,
                         ::testing::Values(16, 32, 64, 128, 256));

/** Theta sweep property: smaller theta, smaller update bound. */
class ThetaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ThetaSweep, AggregationTimeMonotoneInTheta)
{
    const auto hw = reram::AcceleratorConfig::paperDefault();
    auto sys = makeSystem(SystemKind::GoPim);
    sys.policy.theta = GetParam();
    Accelerator accel(hw, sys);

    auto sysFull = makeSystem(SystemKind::GoPimVanilla);
    Accelerator accelFull(hw, sysFull);

    const auto workload = gcn::Workload::paperDefault("ddi");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    const auto partial = accel.run(workload, profile);
    const auto full = accelFull.run(workload, profile);

    // Selective updating never runs slower than full updating.
    EXPECT_LE(partial.makespanNs, full.makespanNs * 1.001)
        << "theta " << GetParam();
    // Fewer writes means less write wear.
    EXPECT_LT(partial.totalRowWrites, full.totalRowWrites)
        << "theta " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThetaSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(Integration, ScheduleEnergyConsistency)
{
    // The energy model's idle integral must match the schedule's idle
    // fractions: recompute energy by hand from the run result.
    ComparisonHarness harness;
    const auto workload = gcn::Workload::paperDefault("ddi");
    const auto gopim = harness.runOne(SystemKind::GoPim, workload);

    double idleCrossbarNs = 0.0;
    for (size_t i = 0; i < gopim.stages.size(); ++i)
        idleCrossbarNs +=
            static_cast<double>(gopim.stageCrossbars[i]) *
            gopim.idleFraction[i] * gopim.makespanNs;

    reram::EnergyModel energy(harness.hardware());
    const double recomputed = energy.totalEnergyPj(
        gopim.makespanNs, gopim.totalActivations, gopim.totalRowWrites,
        gopim.totalBufferBytes, idleCrossbarNs);
    EXPECT_NEAR(recomputed, gopim.energyPj, gopim.energyPj * 1e-9);
}

TEST(Integration, AllocationNeverExceedsBudgetOnLargeGraphs)
{
    // products is the stress case: one AG replica costs ~120k
    // crossbars, so the greedy allocator must stay within budget.
    ComparisonHarness harness;
    const auto workload = gcn::Workload::paperDefault("products");
    const auto gopim = harness.runOne(SystemKind::GoPim, workload);
    EXPECT_LE(gopim.totalCrossbars,
              harness.hardware().totalCrossbars());
    // Fewer replication opportunities on huge graphs (Section VII-F):
    // Aggregation replicas stay small.
    for (size_t i = 0; i < gopim.stages.size(); ++i) {
        if (gopim.stages[i].type == pipeline::StageType::Aggregation) {
            EXPECT_LT(gopim.replicas[i], 200u);
        }
    }
}

TEST(Integration, EventDrivenSimValidatesClosedFormOnRealWorkloads)
{
    // The whole evaluation rests on the Eq. 6 closed form; the
    // discrete-event engine must reproduce it on the actual GoPIM
    // stage times of a real workload.
    ComparisonHarness harness;
    for (const char *name : {"ddi", "Cora"}) {
        const auto workload = gcn::Workload::paperDefault(name);
        const auto run =
            harness.runOne(SystemKind::GoPim, workload);
        const uint32_t b = workload.microBatchesPerEpoch();

        std::vector<sim::StationConfig> stations;
        for (double t : run.stageTimesNs)
            stations.push_back({.serviceTimeNs = t});
        const auto simmed = sim::simulatePipeline(stations, b);
        const double closed =
            pipeline::pipelinedMakespanNs(run.stageTimesNs, b);
        EXPECT_NEAR(simmed.makespanNs, closed, 1e-6 * closed)
            << name;
        EXPECT_EQ(simmed.completed, b) << name;
    }
}

TEST(Integration, EpochScalingIsLinearForSerial)
{
    ComparisonHarness harness;
    auto workload = gcn::Workload::paperDefault("ddi");
    workload.epochs = 1;
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);
    Accelerator serial(harness.hardware(),
                       makeSystem(SystemKind::Serial));
    const auto one = serial.run(workload, profile);
    workload.epochs = 3;
    const auto three = serial.run(workload, profile);
    EXPECT_NEAR(three.makespanNs, one.makespanNs * 3.0,
                one.makespanNs * 0.01);
}

TEST(Integration, InterBatchPipelineAmortizesAcrossEpochs)
{
    // GoPIM pipelines across batch boundaries: multi-epoch runs grow
    // sublinearly relative to Serial's linear scaling.
    ComparisonHarness harness;
    auto workload = gcn::Workload::paperDefault("ddi");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);

    Accelerator gopim(harness.hardware(),
                      makeSystem(SystemKind::GoPim));
    workload.epochs = 1;
    const auto one = gopim.run(workload, profile);
    workload.epochs = 4;
    const auto four = gopim.run(workload, profile);
    EXPECT_LT(four.makespanNs, one.makespanNs * 4.0);
}

TEST(Integration, FeatureDimensionScalingSpeedupGrowthTapersOff)
{
    // Fig. 17a: GoPIM keeps its speedups as vertex feature dimensions
    // grow, but the gains taper off because larger dimensions need
    // more crossbars per replica, shrinking the replication headroom.
    ComparisonHarness harness;
    auto workload = gcn::Workload::paperDefault("ddi");
    const auto profile =
        gcn::VertexProfile::build(workload.dataset, workload.seed);

    std::vector<double> speedups;
    for (uint32_t dim : {256u, 512u, 1024u, 2048u}) {
        workload.model.inputChannels = dim;
        workload.model.hiddenChannels = dim;
        workload.model.outputChannels = dim;
        workload.dataset.featureDim = dim;
        Accelerator serial(harness.hardware(),
                           makeSystem(SystemKind::Serial));
        Accelerator gopim(harness.hardware(),
                          makeSystem(SystemKind::GoPim));
        speedups.push_back(
            gopim.run(workload, profile)
                .speedupOver(serial.run(workload, profile)));
        EXPECT_GT(speedups.back(), 1.0) << "dim " << dim;
    }
    // Growth ratio between successive dimension doublings must shrink
    // (the "speedups taper off" observation of Section VII-F).
    const double earlyGrowth = speedups[1] / speedups[0];
    const double lateGrowth = speedups[3] / speedups[2];
    EXPECT_LT(lateGrowth, earlyGrowth * 1.05);
}

} // namespace
} // namespace gopim::core
