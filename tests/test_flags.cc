/**
 * @file
 * Unit tests for the command-line flag parser: declaration, both
 * --name=value and --name value forms, type validation, defaults,
 * positional arguments, and help generation.
 */

#include <gtest/gtest.h>

#include "common/flags.hh"

namespace gopim {
namespace {

Flags
makeFlags()
{
    Flags flags("tool", "a test tool");
    flags.addString("dataset", "ddi", "dataset name");
    flags.addInt("epochs", 1, "training epochs");
    flags.addDouble("theta", 0.5, "update threshold");
    flags.addBool("csv", false, "emit csv");
    return flags;
}

TEST(Flags, DefaultsWhenUnset)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool"};
    ASSERT_TRUE(flags.parse(1, argv));
    EXPECT_EQ(flags.getString("dataset"), "ddi");
    EXPECT_EQ(flags.getInt("epochs"), 1);
    EXPECT_DOUBLE_EQ(flags.getDouble("theta"), 0.5);
    EXPECT_FALSE(flags.getBool("csv"));
    EXPECT_FALSE(flags.isSet("dataset"));
}

TEST(Flags, EqualsForm)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool", "--dataset=collab", "--epochs=5",
                          "--theta=0.8", "--csv=true"};
    ASSERT_TRUE(flags.parse(5, argv));
    EXPECT_EQ(flags.getString("dataset"), "collab");
    EXPECT_EQ(flags.getInt("epochs"), 5);
    EXPECT_DOUBLE_EQ(flags.getDouble("theta"), 0.8);
    EXPECT_TRUE(flags.getBool("csv"));
    EXPECT_TRUE(flags.isSet("dataset"));
}

TEST(Flags, SpaceSeparatedForm)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool", "--dataset", "ppa", "--epochs",
                          "-3"};
    ASSERT_TRUE(flags.parse(5, argv));
    EXPECT_EQ(flags.getString("dataset"), "ppa");
    EXPECT_EQ(flags.getInt("epochs"), -3);
}

TEST(Flags, BareBoolSetsTrue)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool", "--csv"};
    ASSERT_TRUE(flags.parse(2, argv));
    EXPECT_TRUE(flags.getBool("csv"));
}

TEST(Flags, PositionalArgumentsCollected)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool", "input.el", "--epochs=2",
                          "output.bin"};
    ASSERT_TRUE(flags.parse(4, argv));
    ASSERT_EQ(flags.positional().size(), 2u);
    EXPECT_EQ(flags.positional()[0], "input.el");
    EXPECT_EQ(flags.positional()[1], "output.bin");
}

TEST(Flags, HelpReturnsFalse)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool", "--help"};
    EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, HelpTextMentionsEveryFlag)
{
    const auto text = makeFlags().helpText();
    for (const char *name : {"dataset", "epochs", "theta", "csv"})
        EXPECT_NE(text.find(name), std::string::npos) << name;
}

TEST(FlagsDeath, UnknownFlagIsFatal)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool", "--bogus=1"};
    EXPECT_DEATH(flags.parse(2, argv), "unknown flag");
}

TEST(FlagsDeath, BadIntIsFatal)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool", "--epochs=three"};
    EXPECT_DEATH(flags.parse(2, argv), "integer");
}

TEST(FlagsDeath, BadDoubleIsFatal)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool", "--theta=half"};
    EXPECT_DEATH(flags.parse(2, argv), "number");
}

TEST(FlagsDeath, MissingValueIsFatal)
{
    auto flags = makeFlags();
    const char *argv[] = {"tool", "--dataset"};
    EXPECT_DEATH(flags.parse(2, argv), "expects a value");
}

} // namespace
} // namespace gopim
