/**
 * @file
 * Unit tests for the NoC substrate: mesh topology arithmetic, XY hop
 * counts, message latency/energy, reduction trees, and traffic
 * patterns.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "noc/router.hh"
#include "noc/topology.hh"
#include "noc/traffic.hh"

namespace gopim::noc {
namespace {

TEST(Topology, CoordinateRoundTrip)
{
    const MeshTopology mesh(4, 3);
    EXPECT_EQ(mesh.tileCount(), 12u);
    for (uint64_t id = 0; id < mesh.tileCount(); ++id)
        EXPECT_EQ(mesh.idOf(mesh.coordOf(id)), id);
    EXPECT_EQ(mesh.coordOf(5).x, 1u);
    EXPECT_EQ(mesh.coordOf(5).y, 1u);
}

TEST(Topology, ManhattanHops)
{
    const MeshTopology mesh(4, 4);
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 3), 3u);    // same row
    EXPECT_EQ(mesh.hops(0, 12), 3u);   // same column
    EXPECT_EQ(mesh.hops(0, 15), 6u);   // opposite corner = diameter
    EXPECT_EQ(mesh.hops(15, 0), 6u);   // symmetric
    EXPECT_EQ(mesh.diameter(), 6u);
}

TEST(Topology, ForTileCountCoversRequest)
{
    for (uint64_t tiles : {1u, 2u, 5u, 16u, 100u, 1000u}) {
        const auto mesh = MeshTopology::forTileCount(tiles);
        EXPECT_GE(mesh.tileCount(), tiles) << tiles;
        // Near-square: aspect ratio bounded.
        EXPECT_LE(mesh.cols(), mesh.rows() * 2 + 1) << tiles;
    }
}

TEST(Topology, MeanHopsMatchesExhaustive)
{
    const MeshTopology mesh(5, 3);
    double total = 0.0;
    for (uint64_t a = 0; a < mesh.tileCount(); ++a)
        for (uint64_t b = 0; b < mesh.tileCount(); ++b)
            total += mesh.hops(a, b);
    const double exhaustive =
        total / static_cast<double>(mesh.tileCount() *
                                    mesh.tileCount());
    EXPECT_NEAR(mesh.meanHops(), exhaustive, 1e-9);
}

TEST(Router, MessageLatencyComponents)
{
    const NocModel model(MeshTopology(4, 4));
    const auto &p = model.params();
    EXPECT_DOUBLE_EQ(model.messageLatencyNs(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(model.messageLatencyNs(3, 64),
                     3 * p.hopLatencyNs + 64.0 / p.linkBytesPerNs);
    // Monotone in both arguments.
    EXPECT_LT(model.messageLatencyNs(1, 64),
              model.messageLatencyNs(2, 64));
    EXPECT_LT(model.messageLatencyNs(2, 64),
              model.messageLatencyNs(2, 128));
}

TEST(Router, MessageEnergyScalesWithHopBytes)
{
    const NocModel model(MeshTopology(4, 4));
    EXPECT_DOUBLE_EQ(model.messageEnergyPj(2, 100),
                     model.messageEnergyPj(1, 200));
    EXPECT_DOUBLE_EQ(model.messageEnergyPj(0, 100), 0.0);
}

TEST(Router, ReductionTreeDepthLogarithmic)
{
    const NocModel model(MeshTopology(32, 32));
    EXPECT_DOUBLE_EQ(model.reductionLatencyNs(1, 64), 0.0);
    const double two = model.reductionLatencyNs(2, 64);
    const double four = model.reductionLatencyNs(4, 64);
    const double sixteen = model.reductionLatencyNs(16, 64);
    EXPECT_GT(two, 0.0);
    EXPECT_GT(four, two);
    EXPECT_GT(sixteen, four);
    // log-ish growth: 16 tiles is far less than 8x the 2-tile cost.
    EXPECT_LT(sixteen, two * 8.0);
}

TEST(Router, ReductionEnergyCountsAllMessages)
{
    const NocModel model(MeshTopology(8, 8));
    EXPECT_DOUBLE_EQ(model.reductionEnergyPj(1, 64), 0.0);
    // Energy grows roughly linearly with participants (n-1 merges).
    const double e4 = model.reductionEnergyPj(4, 64);
    const double e16 = model.reductionEnergyPj(16, 64);
    EXPECT_GT(e16, e4 * 2.0);
}

TEST(Traffic, RecorderAccumulates)
{
    const NocModel model(MeshTopology(4, 4));
    TrafficRecorder recorder(model);
    recorder.record(0, 15, 128); // 6 hops
    recorder.record(0, 0, 64);   // 0 hops
    EXPECT_EQ(recorder.stats().messages, 2u);
    EXPECT_EQ(recorder.stats().bytes, 192u);
    EXPECT_EQ(recorder.stats().hopBytes, 6u * 128);
    EXPECT_GT(recorder.stats().energyPj, 0.0);
    recorder.reset();
    EXPECT_EQ(recorder.stats().messages, 0u);
}

TEST(Traffic, UniformMatchesMeanHops)
{
    const NocModel model(MeshTopology(8, 8));
    TrafficRecorder recorder(model);
    Rng rng(3);
    uniformRandomTraffic(recorder, 20000, 64, rng);
    EXPECT_EQ(recorder.stats().messages, 20000u);
    EXPECT_NEAR(recorder.stats().avgHops(),
                model.topology().meanHops(), 0.15);
}

TEST(Traffic, HotspotShortensOrLengthensTowardCorner)
{
    const NocModel model(MeshTopology(8, 8));
    Rng rngA(5), rngB(5);
    TrafficRecorder uniform(model), hotspot(model);
    uniformRandomTraffic(uniform, 20000, 64, rngA);
    hotspotTraffic(hotspot, 20000, 64, 0.9, rngB);
    // Targeting corner tile 0 from uniform sources gives mean hops
    // (cols-1)/2 + (rows-1)/2 = 7, above uniform's ~5.25.
    EXPECT_GT(hotspot.stats().avgHops(), uniform.stats().avgHops());
}

} // namespace
} // namespace gopim::noc
