/**
 * @file
 * Content-addressed LRU result cache for the serving layer: maps a
 * canonical request hash (serve::cacheKey) to the serialized result
 * object a fresh simulation would produce. Because cached values are
 * the exact bytes the JSON writer emitted, a cache hit is
 * byte-identical to re-simulating — the property the determinism
 * tests pin down. Thread-safe; eviction is strict LRU.
 */

#ifndef GOPIM_SERVE_CACHE_HH
#define GOPIM_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace gopim::serve {

/** LRU map of cache key -> serialized result JSON. */
class ResultCache
{
  public:
    /** `capacity` = max resident entries (0 disables caching). */
    explicit ResultCache(size_t capacity);

    /** Lookup; promotes the entry to most-recently-used on hit. */
    std::optional<std::string> get(const std::string &key);

    /**
     * Insert (or refresh) an entry, evicting the least-recently-used
     * entries beyond capacity.
     */
    void put(const std::string &key, std::string value);

    struct Stats
    {
        size_t entries = 0;
        size_t capacity = 0;
        uint64_t evictions = 0;
    };
    Stats stats() const;

  private:
    mutable std::mutex mutex_;
    size_t capacity_;
    /** Front = most recently used. */
    std::list<std::pair<std::string, std::string>> lru_;
    // gopim-lint: allow(determinism-unordered) pure point lookups
    // into the LRU list; recency order lives in lru_, and no output
    // path iterates this index.
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        index_;
    uint64_t evictions_ = 0;
};

} // namespace gopim::serve

#endif // GOPIM_SERVE_CACHE_HH
