#include "serve/request.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"
#include "core/options.hh"
#include "core/report.hh"
#include "graph/datasets.hh"
#include "workload/cnn_infer.hh"

namespace gopim::serve {

namespace {

RequestError
badType(const char *field, const char *expected)
{
    return {"bad_type", field,
            std::string("field '") + field + "' must be " + expected};
}

RequestError
outOfRange(const char *field, const std::string &detail)
{
    return {"out_of_range", field,
            std::string("field '") + field + "' " + detail};
}

RequestError
unknownName(const char *field, const std::string &name,
            const std::string &hint)
{
    std::string message = std::string("unknown ") + field + " '" +
                          name + "'";
    if (!hint.empty())
        message += " (" + hint + ")";
    return {"unknown_name", field, message};
}

bool
getString(const json::Value &v, std::string *out, RequestError *err,
          const char *field)
{
    if (!v.isString()) {
        *err = badType(field, "a string");
        return false;
    }
    *out = v.asString();
    return true;
}

bool
getInt(const json::Value &v, int64_t min, int64_t max, int64_t *out,
       RequestError *err, const char *field)
{
    if (!v.isInt()) {
        *err = badType(field, "an integer");
        return false;
    }
    const int64_t value = v.asInt();
    if (value < min || value > max) {
        *err = outOfRange(field, "must be in [" + std::to_string(min) +
                                     ", " + std::to_string(max) +
                                     "], got " + std::to_string(value));
        return false;
    }
    *out = value;
    return true;
}

bool
getNumber(const json::Value &v, double *out, RequestError *err,
          const char *field)
{
    if (!v.isNumber()) {
        *err = badType(field, "a number");
        return false;
    }
    *out = v.asDouble();
    return true;
}

/** A number constrained to [0, 1) — the fault-rate flag ranges. */
bool
getUnitRate(const json::Value &v, double *out, RequestError *err,
            const char *field)
{
    double value = 0.0;
    if (!getNumber(v, &value, err, field))
        return false;
    if (value < 0.0 || value >= 1.0) {
        *err = outOfRange(field, "must be in [0, 1), got " +
                                     std::to_string(value));
        return false;
    }
    *out = value;
    return true;
}

/** Every top-level key parseRequest accepts, for typo hints. */
constexpr const char *kKnownFields[] = {
    "id",           "dataset",       "workload",    "partition",
    "system",       "baseline",      "engine",      "seed",
    "micro_batch",  "epochs",        "theta",       "buffer_slots",
    "retry_prob",   "write_fraction", "stuck_on_rate",
    "stuck_off_rate", "drift_rate",  "repair",      "spare_rows",
    "refresh_period", "trace_out",
};

/** Classic Levenshtein distance; inputs are short field names. */
size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        size_t diagonal = row[0];
        row[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            const size_t previous = row[j];
            const size_t substitute =
                diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min(
                {substitute, row[j] + 1, row[j - 1] + 1});
            diagonal = previous;
        }
    }
    return row[b.size()];
}

/**
 * Nearest-match hint for an unknown top-level key, the same registry
 * hint pattern the workload/engine names use: a close misspelling
 * names the intended field, anything else lists the schema.
 */
RequestError
unknownField(const std::string &key)
{
    std::string message = "unknown field '" + key + "'";
    const char *closest = nullptr;
    size_t best = std::max<size_t>(2, key.size() / 3) + 1;
    for (const char *known : kKnownFields) {
        const size_t distance = editDistance(key, known);
        if (distance < best) {
            best = distance;
            closest = known;
        }
    }
    if (closest) {
        message += std::string(" (did you mean '") + closest + "'?)";
    } else {
        message += " (known fields: ";
        bool first = true;
        for (const char *known : kKnownFields) {
            if (!first)
                message += ", ";
            message += known;
            first = false;
        }
        message += ")";
    }
    return {"unknown_field", key, message};
}

} // namespace

RequestError
parseRequest(const json::Value &body, const Request &defaults,
             Request *out)
{
    if (!body.isObject())
        return {"bad_request", "", "request must be a JSON object"};

    Request req = defaults;
    req.id.clear();
    req.traceOut.clear();
    RequestError err;
    // Fault knobs model device wear across training epochs; the
    // inference families have no notion of them, so remember whether
    // one was spelled out to reject the combination after the loop
    // (the `workload` key may come later in the object).
    std::string faultField;

    for (const auto &[key, value] : body.members()) {
        if (key == "id") {
            if (!getString(value, &req.id, &err, "id"))
                return err;
        } else if (key == "dataset") {
            if (!getString(value, &req.dataset, &err, "dataset"))
                return err;
            req.datasetSet = true;
        } else if (key == "workload") {
            std::string name;
            if (!getString(value, &name, &err, "workload"))
                return err;
            if (!workload::tryFamilyFromString(name, &req.family))
                return unknownName("workload", name,
                                   "try " +
                                       workload::familyNameList());
        } else if (key == "partition") {
            std::string name;
            if (!getString(value, &name, &err, "partition"))
                return err;
            if (!workload::tryPartitioningFromString(name,
                                                     &req.partition))
                return unknownName("partition", name,
                                   "try " +
                                       workload::partitionNameList());
        } else if (key == "system") {
            if (!getString(value, &req.system, &err, "system"))
                return err;
        } else if (key == "baseline") {
            if (!getString(value, &req.baseline, &err, "baseline"))
                return err;
        } else if (key == "engine") {
            std::string name;
            if (!getString(value, &name, &err, "engine"))
                return err;
            if (!sim::tryEngineKindFromString(name, &req.sim.engine))
                return unknownName("engine", name,
                                   "try " + sim::engineNameList());
        } else if (key == "seed") {
            int64_t seed = 0;
            if (!getInt(value, 0,
                        std::numeric_limits<int64_t>::max(), &seed,
                        &err, "seed"))
                return err;
            req.sim.seed = static_cast<uint64_t>(seed);
        } else if (key == "micro_batch") {
            int64_t mb = 0;
            if (!getInt(value, 1,
                        std::numeric_limits<uint32_t>::max(), &mb,
                        &err, "micro_batch"))
                return err;
            req.microBatch = static_cast<uint32_t>(mb);
        } else if (key == "epochs") {
            int64_t epochs = 0;
            if (!getInt(value, 1,
                        std::numeric_limits<uint32_t>::max(), &epochs,
                        &err, "epochs"))
                return err;
            req.epochs = static_cast<uint32_t>(epochs);
        } else if (key == "theta") {
            double theta = 0.0;
            if (!getNumber(value, &theta, &err, "theta"))
                return err;
            if (theta < 0.0 || theta > 1.0)
                return outOfRange("theta",
                                  "must be in [0, 1], got " +
                                      std::to_string(theta));
            req.theta = theta;
        } else if (key == "buffer_slots") {
            int64_t slots = 0;
            if (!getInt(value, -1,
                        std::numeric_limits<uint32_t>::max(), &slots,
                        &err, "buffer_slots"))
                return err;
            req.sim.event.inputBufferSlots =
                slots < 0 ? std::numeric_limits<uint32_t>::max()
                          : static_cast<uint32_t>(slots);
        } else if (key == "retry_prob") {
            if (!getNumber(value, &req.sim.event.writeRetryProb, &err,
                           "retry_prob"))
                return err;
        } else if (key == "write_fraction") {
            if (!getNumber(value, &req.sim.event.writeFraction, &err,
                           "write_fraction"))
                return err;
        } else if (key == "stuck_on_rate") {
            if (!getUnitRate(value, &req.fault.params.stuckOnRate,
                             &err, "stuck_on_rate"))
                return err;
            faultField = key;
        } else if (key == "stuck_off_rate") {
            if (!getUnitRate(value, &req.fault.params.stuckOffRate,
                             &err, "stuck_off_rate"))
                return err;
            faultField = key;
        } else if (key == "drift_rate") {
            if (!getUnitRate(value, &req.fault.params.driftPerEpoch,
                             &err, "drift_rate"))
                return err;
            faultField = key;
        } else if (key == "repair") {
            std::string name;
            if (!getString(value, &name, &err, "repair"))
                return err;
            if (!fault::tryRepairKindFromString(name,
                                                &req.fault.repair))
                return unknownName("repair", name,
                                   "try none, spare, ecc, refresh");
            faultField = key;
        } else if (key == "spare_rows") {
            if (!getUnitRate(value, &req.fault.spareRowFraction, &err,
                             "spare_rows"))
                return err;
            faultField = key;
        } else if (key == "refresh_period") {
            int64_t period = 0;
            if (!getInt(value, 1,
                        std::numeric_limits<uint32_t>::max(), &period,
                        &err, "refresh_period"))
                return err;
            req.fault.refreshPeriodMb =
                static_cast<uint32_t>(period);
            faultField = key;
        } else if (key == "trace_out") {
            if (!getString(value, &req.traceOut, &err, "trace_out"))
                return err;
        } else {
            return unknownField(key);
        }
    }

    // The same range semantics every CLI binary enforces via
    // core::addSimFlags.
    const std::string rangeError = core::eventKnobRangeError(
        req.sim.event.writeRetryProb, req.sim.event.writeFraction);
    if (!rangeError.empty())
        return {"out_of_range", "", rangeError};

    if (req.family != workload::FamilyKind::GcnTrain &&
        !faultField.empty())
        return {"bad_request", faultField,
                "field '" + faultField +
                    "' applies to the gcn-train family only"};

    if (req.family == workload::FamilyKind::CnnInfer) {
        // cnn-infer datasets are CNN presets, not graphs; an absent
        // key means "the default preset", not the server's default
        // graph.
        if (!req.datasetSet)
            req.dataset = workload::defaultCnnPreset();
        if (!workload::findCnnPreset(req.dataset))
            return unknownName("dataset", req.dataset,
                               "cnn-infer presets: " +
                                   workload::cnnPresetNameList());
    } else if (!graph::DatasetCatalog::findByName(req.dataset)) {
        return unknownName("dataset", req.dataset, "");
    }
    core::SystemKind kind;
    if (!core::systemFromString(req.system, &kind))
        return unknownName("system", req.system, "");
    if (!req.baseline.empty() &&
        !core::systemFromString(req.baseline, &kind))
        return unknownName("baseline", req.baseline, "");

    *out = std::move(req);
    return RequestError::none();
}

RequestError
resolveRequest(const Request &request, ResolvedRequest *out)
{
    ResolvedRequest resolved;
    resolved.request = request;
    const bool cnn =
        request.family == workload::FamilyKind::CnnInfer;
    if (cnn) {
        if (!workload::findCnnPreset(request.dataset))
            return unknownName("dataset", request.dataset,
                               "cnn-infer presets: " +
                                   workload::cnnPresetNameList());
    } else if (!graph::DatasetCatalog::findByName(request.dataset)) {
        return unknownName("dataset", request.dataset, "");
    }
    if (!core::systemFromString(request.system, &resolved.system))
        return unknownName("system", request.system, "");
    resolved.hasBaseline = !request.baseline.empty();
    if (resolved.hasBaseline &&
        !core::systemFromString(request.baseline, &resolved.baseline))
        return unknownName("baseline", request.baseline, "");

    if (cnn) {
        // No catalog graph behind a preset: the workload view is a
        // stub that carries only the fields canonicalRunConfig
        // serializes, so cache keys stay well defined.
        resolved.workload = gcn::Workload{};
        resolved.workload.dataset.name = request.dataset;
    } else {
        resolved.workload =
            gcn::Workload::paperDefault(request.dataset);
    }
    resolved.workload.microBatchSize = request.microBatch;
    resolved.workload.epochs = request.epochs;
    resolved.workload.seed = request.sim.seed;

    resolved.spec.family = request.family;
    resolved.spec.dataset = request.dataset;
    resolved.spec.partition = request.partition;
    resolved.spec.microBatchSize = request.microBatch;
    resolved.spec.epochs = request.epochs;
    resolved.spec.seed = request.sim.seed;
    // Family-specific range checks (e.g. inference micro-batch
    // ceilings) happen here so the worker never trips the runner's
    // fatal() path on a served request.
    if (const std::string problem =
            workload::familyFor(request.family)
                .validateSpec(resolved.spec);
        !problem.empty())
        return {"out_of_range", "", problem};
    *out = std::move(resolved);
    return RequestError::none();
}

core::SystemConfig
configuredSystem(const ResolvedRequest &resolved)
{
    core::SystemConfig system = core::makeSystem(resolved.system);
    system.sim = resolved.request.sim;
    system.fault = resolved.request.fault;
    // Mirror gopim_sim's --theta semantics: a positive threshold
    // forces selective updating on.
    if (resolved.request.theta > 0.0) {
        system.policy.selectiveUpdate = true;
        system.policy.theta = resolved.request.theta;
    }
    return system;
}

std::string
errorResponseLine(const std::string &id, const RequestError &error)
{
    std::string line = "{\"type\":\"error\"";
    if (!id.empty())
        line += ",\"id\":\"" + json::escape(id) + "\"";
    line += ",\"code\":\"" + json::escape(error.code) + "\"";
    if (!error.field.empty())
        line += ",\"field\":\"" + json::escape(error.field) + "\"";
    line += ",\"error\":\"" + json::escape(error.message) + "\"}";
    return line;
}

std::string
defaultsFingerprint(const Request &defaults,
                    const reram::AcceleratorConfig &hw)
{
    Request request;
    if (RequestError err = parseRequest(json::Value::object(),
                                        defaults, &request);
        !err.ok())
        fatal("serving defaults do not form a valid request: ",
              err.message);
    ResolvedRequest resolved;
    if (RequestError err = resolveRequest(request, &resolved);
        !err.ok())
        fatal("serving defaults do not resolve: ", err.message);
    return cacheKey(resolved, hw);
}

std::string
cacheKey(const ResolvedRequest &resolved,
         const reram::AcceleratorConfig &hw)
{
    const core::SystemConfig system = configuredSystem(resolved);
    json::Value config =
        core::canonicalRunConfig(system, hw, resolved.workload);
    config.set("baseline", resolved.hasBaseline
                               ? core::toString(resolved.baseline)
                               : "");
    // The family reshapes the whole run, so it always keys; the
    // partitioning only matters where a SpMM split exists (keying it
    // unconditionally would split cache entries on a field the other
    // families ignore).
    config.set("workload_family",
               workload::toString(resolved.request.family));
    if (resolved.request.family == workload::FamilyKind::GnnInfer)
        config.set("partition",
                   workload::toString(resolved.request.partition));
    return hexDigest64(fnv1a64(config.canonical()));
}

} // namespace gopim::serve
