#include "serve/request.hh"

#include <limits>

#include "common/hash.hh"
#include "core/options.hh"
#include "core/report.hh"
#include "graph/datasets.hh"

namespace gopim::serve {

namespace {

bool
getString(const json::Value &v, std::string *out, std::string *err,
          const char *field)
{
    if (!v.isString()) {
        *err = std::string("field '") + field + "' must be a string";
        return false;
    }
    *out = v.asString();
    return true;
}

bool
getInt(const json::Value &v, int64_t min, int64_t max, int64_t *out,
       std::string *err, const char *field)
{
    if (!v.isInt()) {
        *err = std::string("field '") + field +
               "' must be an integer";
        return false;
    }
    const int64_t value = v.asInt();
    if (value < min || value > max) {
        *err = std::string("field '") + field + "' must be in [" +
               std::to_string(min) + ", " + std::to_string(max) +
               "], got " + std::to_string(value);
        return false;
    }
    *out = value;
    return true;
}

bool
getNumber(const json::Value &v, double *out, std::string *err,
          const char *field)
{
    if (!v.isNumber()) {
        *err = std::string("field '") + field + "' must be a number";
        return false;
    }
    *out = v.asDouble();
    return true;
}

} // namespace

std::string
parseRequest(const json::Value &body, const Request &defaults,
             Request *out)
{
    if (!body.isObject())
        return "request must be a JSON object";

    Request req = defaults;
    req.id.clear();
    req.traceOut.clear();
    std::string err;

    for (const auto &[key, value] : body.members()) {
        if (key == "id") {
            if (!getString(value, &req.id, &err, "id"))
                return err;
        } else if (key == "dataset") {
            if (!getString(value, &req.dataset, &err, "dataset"))
                return err;
        } else if (key == "system") {
            if (!getString(value, &req.system, &err, "system"))
                return err;
        } else if (key == "baseline") {
            if (!getString(value, &req.baseline, &err, "baseline"))
                return err;
        } else if (key == "engine") {
            std::string name;
            if (!getString(value, &name, &err, "engine"))
                return err;
            if (!sim::tryEngineKindFromString(name, &req.sim.engine))
                return "unknown engine '" + name +
                       "' (try closed, event)";
        } else if (key == "seed") {
            int64_t seed = 0;
            if (!getInt(value, 0,
                        std::numeric_limits<int64_t>::max(), &seed,
                        &err, "seed"))
                return err;
            req.sim.seed = static_cast<uint64_t>(seed);
        } else if (key == "micro_batch") {
            int64_t mb = 0;
            if (!getInt(value, 1,
                        std::numeric_limits<uint32_t>::max(), &mb,
                        &err, "micro_batch"))
                return err;
            req.microBatch = static_cast<uint32_t>(mb);
        } else if (key == "epochs") {
            int64_t epochs = 0;
            if (!getInt(value, 1,
                        std::numeric_limits<uint32_t>::max(), &epochs,
                        &err, "epochs"))
                return err;
            req.epochs = static_cast<uint32_t>(epochs);
        } else if (key == "theta") {
            double theta = 0.0;
            if (!getNumber(value, &theta, &err, "theta"))
                return err;
            if (theta < 0.0 || theta > 1.0)
                return "field 'theta' must be in [0, 1], got " +
                       std::to_string(theta);
            req.theta = theta;
        } else if (key == "buffer_slots") {
            int64_t slots = 0;
            if (!getInt(value, -1,
                        std::numeric_limits<uint32_t>::max(), &slots,
                        &err, "buffer_slots"))
                return err;
            req.sim.event.inputBufferSlots =
                slots < 0 ? std::numeric_limits<uint32_t>::max()
                          : static_cast<uint32_t>(slots);
        } else if (key == "retry_prob") {
            if (!getNumber(value, &req.sim.event.writeRetryProb, &err,
                           "retry_prob"))
                return err;
        } else if (key == "write_fraction") {
            if (!getNumber(value, &req.sim.event.writeFraction, &err,
                           "write_fraction"))
                return err;
        } else if (key == "trace_out") {
            if (!getString(value, &req.traceOut, &err, "trace_out"))
                return err;
        } else {
            return "unknown field '" + key + "'";
        }
    }

    // The same range semantics every CLI binary enforces via
    // core::addSimFlags.
    const std::string rangeError = core::eventKnobRangeError(
        req.sim.event.writeRetryProb, req.sim.event.writeFraction);
    if (!rangeError.empty())
        return rangeError;

    if (!graph::DatasetCatalog::findByName(req.dataset))
        return "unknown dataset '" + req.dataset + "'";
    core::SystemKind kind;
    if (!core::systemFromString(req.system, &kind))
        return "unknown system '" + req.system + "'";
    if (!req.baseline.empty() &&
        !core::systemFromString(req.baseline, &kind))
        return "unknown baseline '" + req.baseline + "'";

    *out = std::move(req);
    return "";
}

std::string
resolveRequest(const Request &request, ResolvedRequest *out)
{
    ResolvedRequest resolved;
    resolved.request = request;
    if (!graph::DatasetCatalog::findByName(request.dataset))
        return "unknown dataset '" + request.dataset + "'";
    if (!core::systemFromString(request.system, &resolved.system))
        return "unknown system '" + request.system + "'";
    resolved.hasBaseline = !request.baseline.empty();
    if (resolved.hasBaseline &&
        !core::systemFromString(request.baseline, &resolved.baseline))
        return "unknown baseline '" + request.baseline + "'";

    resolved.workload = gcn::Workload::paperDefault(request.dataset);
    resolved.workload.microBatchSize = request.microBatch;
    resolved.workload.epochs = request.epochs;
    resolved.workload.seed = request.sim.seed;
    *out = std::move(resolved);
    return "";
}

core::SystemConfig
configuredSystem(const ResolvedRequest &resolved)
{
    core::SystemConfig system = core::makeSystem(resolved.system);
    system.sim = resolved.request.sim;
    // Mirror gopim_sim's --theta semantics: a positive threshold
    // forces selective updating on.
    if (resolved.request.theta > 0.0) {
        system.policy.selectiveUpdate = true;
        system.policy.theta = resolved.request.theta;
    }
    return system;
}

std::string
cacheKey(const ResolvedRequest &resolved,
         const reram::AcceleratorConfig &hw)
{
    const core::SystemConfig system = configuredSystem(resolved);
    json::Value config =
        core::canonicalRunConfig(system, hw, resolved.workload);
    config.set("baseline", resolved.hasBaseline
                               ? core::toString(resolved.baseline)
                               : "");
    return hexDigest64(fnv1a64(config.canonical()));
}

} // namespace gopim::serve
