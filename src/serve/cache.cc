#include "serve/cache.hh"

namespace gopim::serve {

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::optional<std::string>
ResultCache::get(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end())
        return std::nullopt;
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().second;
}

void
ResultCache::put(const std::string &key, std::string value)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {lru_.size(), capacity_, evictions_};
}

} // namespace gopim::serve
