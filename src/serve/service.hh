/**
 * @file
 * Long-lived batch simulation service. Accepts JSONL requests (one
 * object per line), dispatches fresh simulations onto a
 * common::ThreadPool with bounded-queue backpressure, serves
 * repeated requests from a content-addressed LRU result cache, and
 * emits JSONL responses in request order. A {"type":"stats"} line
 * is answered in place with a live stats snapshot (same shape as
 * the --stats trailer) without touching the simulation path.
 *
 * Determinism contract: request parsing and the hit/miss decision
 * happen serially in input order on the dispatcher thread (repeats
 * of an in-flight request coalesce onto its future), and responses
 * are emitted strictly in input order. The response bytes for a
 * given input stream are therefore identical for any worker count,
 * and a cache hit replays the exact bytes a fresh simulation would
 * have produced.
 */

#ifndef GOPIM_SERVE_SERVICE_HH
#define GOPIM_SERVE_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "reram/config.hh"
#include "serve/cache.hh"
#include "serve/request.hh"

namespace gopim::serve {

/**
 * Response envelope mode. Full is the historical single-process
 * shape: result lines carry live cache metadata ("cached", running
 * "hits"/"misses" counters, the trace path). Stable strips those —
 * a Stable result line is a pure function of the request identity
 * (id, cache key, result bytes), which is what lets a sharded
 * cluster (whose per-shard caches see different subsets and whose
 * workers may restart with cold caches) stay byte-identical to a
 * single-process run. The cluster transport always negotiates
 * Stable.
 */
enum class Envelope
{
    Full,
    Stable,
};

/** Everything a Service needs at construction. */
struct ServiceConfig
{
    /** Simulation worker threads (0 = all hardware threads). */
    size_t jobs = 1;
    /** Resident entries in the result cache. */
    size_t cacheCapacity = 256;
    /**
     * Backpressure bound: max simulations submitted but not yet
     * finished. The dispatcher blocks (stops reading input) when the
     * queue is full. 0 = twice the worker count.
     */
    size_t maxQueue = 0;
    reram::AcceleratorConfig hw =
        reram::AcceleratorConfig::paperDefault();
    /** Per-request defaults (typically from core::addSimFlags). */
    Request defaults;
    /**
     * Optional metrics registry (latency/queue-wait histograms,
     * hit/miss counters, in-flight depth). Never alters response
     * bytes; null disables all recording.
     */
    std::shared_ptr<obs::MetricsRegistry> metrics;
};

/** The batch simulation service. */
class Service
{
  private:
    /** One dispatched request: everything emission needs. */
    struct Output
    {
        std::string id;
        std::string key;            ///< cache key ("" for errors)
        RequestError error;         ///< !ok() = error response
        std::string prefix;         ///< envelope up to "result":
        bool immediate = false;     ///< result already in `value`
        bool raw = false;           ///< `value` is the whole line
        std::string value;          ///< cached result bytes
        std::shared_future<std::string> pending; ///< fresh result
        double dispatchedUs = 0.0;  ///< set only when metrics attached
    };

  public:
    explicit Service(ServiceConfig config);

    /** Drains in-flight simulations, then joins the workers. */
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * An accepted request whose response has not been rendered yet.
     * Returned by submit(); hand it back to ready()/finish(). Move-
     * only in spirit (cheap to move, holds a shared future).
     */
    class Pending
    {
      public:
        Pending() = default;

      private:
        friend class Service;
        Output output_;
    };

    /**
     * Parse/validate/route one JSONL line and start its simulation
     * (or resolve it against the cache). Serial per caller thread:
     * the hit/miss decision happens in call order, so callers that
     * submit in input order get deterministic bytes for any worker
     * count. May block on the bounded-queue backpressure.
     */
    Pending submit(const std::string &line,
                   Envelope envelope = Envelope::Full);

    /** True once finish() would not block. */
    bool ready(const Pending &pending) const;

    /**
     * Render the response line (no trailing newline), blocking until
     * the simulation completes if needed. Also retires the request's
     * coalescing entry and records its metrics; call exactly once.
     */
    std::string finish(Pending &pending);

    /**
     * Handle one JSONL request line synchronously; returns the
     * response line (no trailing newline).
     */
    std::string handleLine(const std::string &line,
                           Envelope envelope = Envelope::Full);

    struct StreamStats
    {
        uint64_t requests = 0;
        uint64_t errors = 0;
    };

    /**
     * Read JSONL requests from `in` until EOF, write one JSONL
     * response per request to `out` in input order. When `emitStats`
     * is set, a final {"type":"stats",...} line summarizes the
     * stream. Completed responses are flushed as soon as order
     * allows, so output streams while later requests still compute.
     */
    StreamStats processStream(std::istream &in, std::ostream &out,
                              bool emitStats = false,
                              Envelope envelope = Envelope::Full);

    /** Block until every submitted simulation has finished. */
    void drain();

    /** Cache-hit / miss counters (dispatch-order deterministic). */
    uint64_t hits() const;
    uint64_t misses() const;
    ResultCache::Stats cacheStats() const { return cache_.stats(); }

    /**
     * Coalescing-map entries currently held. Completed entries are
     * retired as their responses are emitted (plus a sweep on every
     * miss), so this stays bounded by the in-flight window rather
     * than growing with stream length.
     */
    size_t inflightSize() const;

    /** The stats line emitted by --stats, as a JSON object. */
    json::Value statsJson(const StreamStats &stream) const;

  private:
    /** Parse/validate/route one line; serial, in input order. */
    Output dispatch(const std::string &line, Envelope envelope);
    /** Render an Output to its final response line (may block). */
    std::string render(Output &output);
    /** Drop `key`'s coalescing entry once its future is ready. */
    void retireInflight(const std::string &key);

    /** Run one simulation and serialize its result object. */
    std::string simulate(const ResolvedRequest &resolved) const;

    void acquireQueueSlot();
    void releaseQueueSlot();

    /** Record request latency/outcome (no-op without a registry). */
    void observeEmitted(const Output &output);

    ServiceConfig config_;
    size_t maxQueue_;
    ResultCache cache_;

    /** Serializes dispatch: counters + coalescing map. */
    mutable std::mutex dispatchMutex_;
    /** In-flight result futures for request coalescing. */
    // gopim-lint: allow(determinism-unordered) keyed lookups and a
    // readiness sweep only; iteration order never reaches response
    // bytes (responses are emitted in request order from the deque).
    std::unordered_map<std::string, std::shared_future<std::string>>
        inflight_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    /** Per-stream request/error counts ({"type":"stats"} queries). */
    StreamStats stream_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    size_t pendingJobs_ = 0;

    // Declared last on purpose: destruction runs in reverse order,
    // so ~ThreadPool joins every worker before the cache, the
    // dispatch state, and the backpressure cv/mutex above are torn
    // down — workers may touch all of them right up to task exit
    // (TSan pinned the ~Service vs releaseQueueSlot race this
    // ordering removes).
    ThreadPool pool_;
};

} // namespace gopim::serve

#endif // GOPIM_SERVE_SERVICE_HH
