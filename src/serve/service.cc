#include "serve/service.hh"

#include <chrono>
#include <istream>
#include <ostream>
#include <utility>

#include <deque>

#include "common/logging.hh"
#include "core/accelerator.hh"
#include "core/report.hh"
#include "obs/profile.hh"
#include "sim/trace.hh"
#include "workload/runner.hh"

namespace gopim::serve {

Service::Service(ServiceConfig config)
    : config_(std::move(config)),
      maxQueue_(config_.maxQueue),
      cache_(config_.cacheCapacity),
      pool_(ThreadPool::resolveJobs(config_.jobs))
{
    if (maxQueue_ == 0)
        maxQueue_ = 2 * pool_.threadCount();
}

Service::~Service()
{
    drain();
}

void
Service::acquireQueueSlot()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    queueCv_.wait(lock, [this] { return pendingJobs_ < maxQueue_; });
    ++pendingJobs_;
}

void
Service::releaseQueueSlot()
{
    // Notify while still holding the lock: drain() (called from
    // ~Service) must not be able to observe pendingJobs_ == 0 and
    // proceed to destruction while this broadcast is still touching
    // queueCv_. Notify-after-unlock here was a TSan-reported race
    // against pthread_cond_destroy.
    std::lock_guard<std::mutex> lock(queueMutex_);
    --pendingJobs_;
    queueCv_.notify_all();
}

void
Service::drain()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    queueCv_.wait(lock, [this] { return pendingJobs_ == 0; });
}

uint64_t
Service::hits() const
{
    std::lock_guard<std::mutex> lock(dispatchMutex_);
    return hits_;
}

uint64_t
Service::misses() const
{
    std::lock_guard<std::mutex> lock(dispatchMutex_);
    return misses_;
}

size_t
Service::inflightSize() const
{
    std::lock_guard<std::mutex> lock(dispatchMutex_);
    return inflight_.size();
}

std::string
Service::simulate(const ResolvedRequest &resolved) const
{
    core::SystemConfig system = configuredSystem(resolved);

    // A per-request trace_out gets its own sink so the file holds
    // only this run; otherwise the server-wide sink (if any) records.
    std::shared_ptr<sim::ChromeTraceSink> sink;
    if (!resolved.request.traceOut.empty()) {
        sink = std::make_shared<sim::ChromeTraceSink>();
        system.sim.traceSink = sink;
    }

    // The inference families compile to a StagePlan and run through
    // the workload runner; gcn-train keeps the accelerator path with
    // its fault machinery (parseRequest rejects fault knobs for the
    // others).
    const bool familyRun =
        resolved.request.family != workload::FamilyKind::GcnTrain;
    core::RunResult run;
    gcn::VertexProfile profile;
    if (familyRun) {
        run = workload::runFamily(resolved.spec, system, config_.hw);
    } else {
        profile = gcn::VertexProfile::build(resolved.workload.dataset,
                                            resolved.workload.seed);
        core::Accelerator accel(config_.hw, system);
        run = accel.run(resolved.workload, profile);
    }

    json::Value result = core::runResultToJson(run);
    if (resolved.hasBaseline) {
        core::SystemConfig base = core::makeSystem(resolved.baseline);
        base.sim = resolved.request.sim;
        // The baseline runs in the same fault environment, so the
        // speedup isolates the system, not the device health.
        base.fault = resolved.request.fault;
        core::RunResult baseRun;
        if (familyRun) {
            baseRun = workload::runFamily(resolved.spec, base,
                                          config_.hw);
        } else {
            core::Accelerator baseAccel(config_.hw, base);
            baseRun = baseAccel.run(resolved.workload, profile);
        }
        result.set("baseline", baseRun.systemName);
        result.set("speedup", run.speedupOver(baseRun));
        result.set("energy_saving", run.energySavingOver(baseRun));
    }

    if (sink)
        sink->writeFile(resolved.request.traceOut);
    return result.dump();
}

Service::Output
Service::dispatch(const std::string &line, Envelope envelope)
{
    Output output;
    const bool metricsOn = config_.metrics != nullptr;
    if (metricsOn) {
        output.dispatchedUs = obs::profileNowUs();
        config_.metrics->counter("serve.request.count").add();
    }

    json::Value body;
    std::string parseError;
    if (!json::Value::parse(line, &body, &parseError)) {
        output.error = {"bad_json", "", "invalid JSON: " + parseError};
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        ++stream_.requests;
        return output;
    }
    if (body.isObject()) {
        // Echo the id even on validation failures.
        if (const json::Value *id = body.find("id");
            id && id->isString())
            output.id = id->asString();
        // {"type":"stats"} extension: a live stats snapshot, emitted
        // in order like any response. Handled before parseRequest —
        // it is a query, not a simulation request.
        if (const json::Value *type = body.find("type");
            type && type->isString() && type->asString() == "stats") {
            StreamStats current;
            {
                std::lock_guard<std::mutex> lock(dispatchMutex_);
                ++stream_.requests;
                current = stream_;
            }
            output.immediate = true;
            output.raw = true;
            output.value = statsJson(current).dump();
            return output;
        }
    }

    Request request;
    if (RequestError err =
            parseRequest(body, config_.defaults, &request);
        !err.ok()) {
        output.error = std::move(err);
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        ++stream_.requests;
        return output;
    }
    output.id = request.id;

    ResolvedRequest resolved;
    if (RequestError err = resolveRequest(request, &resolved);
        !err.ok()) {
        output.error = std::move(err);
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        ++stream_.requests;
        return output;
    }
    const std::string key = cacheKey(resolved, config_.hw);
    output.key = key;

    // The hit/miss decision is serial in input order: repeats of an
    // in-flight request coalesce onto its future, so the decision —
    // and therefore the response bytes — never depend on worker
    // timing. Only the decision happens under dispatchMutex_; the
    // (potentially long) backpressure wait below does not, so
    // hits()/misses()/statsJson() stay responsive while the
    // dispatcher is blocked on a full queue.
    bool cached = false;
    uint64_t hitsNow = 0, missesNow = 0;
    std::shared_ptr<std::promise<std::string>> promise;
    {
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        ++stream_.requests;
        if (auto value = cache_.get(key)) {
            cached = true;
            output.immediate = true;
            output.value = std::move(*value);
            ++hits_;
        } else if (const auto it = inflight_.find(key);
                   it != inflight_.end() &&
                   it->second.wait_for(std::chrono::seconds(0)) !=
                       std::future_status::ready) {
            // Workers cache_.put before their future turns ready, so
            // a ready future here means the entry was evicted — drop
            // it below and re-simulate.
            cached = true;
            output.pending = it->second;
            ++hits_;
        } else {
            if (it != inflight_.end())
                inflight_.erase(it);
            // Sweep completed futures: their results live in the
            // cache, so the coalescing map only needs genuinely
            // in-flight entries and stays bounded by the window even
            // when responses are never re-looked-up.
            for (auto sweep = inflight_.begin();
                 sweep != inflight_.end();) {
                if (sweep->second.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready)
                    sweep = inflight_.erase(sweep);
                else
                    ++sweep;
            }
            ++misses_;
            // The simulation completes through this promise, not the
            // pool task's own future, so the task can be submitted
            // after the lock is released while coalescers already
            // hold the shared future.
            promise = std::make_shared<std::promise<std::string>>();
            output.pending = promise->get_future().share();
            inflight_[key] = output.pending;
        }
        hitsNow = hits_;
        missesNow = misses_;
        if (metricsOn) {
            config_.metrics
                ->counter(cached ? "serve.cache.hit.count"
                                 : "serve.cache.miss.count")
                .add();
            config_.metrics->gauge("serve.inflight.max")
                .recordMax(static_cast<int64_t>(inflight_.size()));
        }
    }

    if (promise) {
        // Backpressure wait happens outside dispatchMutex_.
        if (metricsOn) {
            const double waitStartUs = obs::profileNowUs();
            acquireQueueSlot();
            config_.metrics
                ->histogram("serve.queue.wait_us",
                            obs::ProfileSpan::latencyBoundsUs())
                .observe(obs::profileNowUs() - waitStartUs);
        } else {
            acquireQueueSlot();
        }
        pool_.submit([this, resolved = std::move(resolved), key,
                      promise] {
            struct SlotGuard
            {
                Service *service;
                ~SlotGuard() { service->releaseQueueSlot(); }
            } guard{this};
            try {
                std::string result = simulate(resolved);
                // Put before set_value: a ready future always means
                // the result reached the cache (the coalescing logic
                // above depends on this ordering).
                cache_.put(key, result);
                promise->set_value(std::move(result));
            } catch (...) {
                promise->set_exception(std::current_exception());
            }
        });
    }

    output.prefix = "{\"type\":\"result\"";
    if (!output.id.empty())
        output.prefix += ",\"id\":\"" + json::escape(output.id) + "\"";
    output.prefix += ",\"key\":\"" + key + "\"";
    if (envelope == Envelope::Full) {
        // Live cache metadata: useful to a single-process client,
        // but dependent on this process's history — the Stable
        // envelope leaves it out so shards stay byte-comparable.
        output.prefix +=
            cached ? ",\"cached\":true" : ",\"cached\":false";
        output.prefix += ",\"hits\":" + std::to_string(hitsNow);
        output.prefix += ",\"misses\":" + std::to_string(missesNow);
        if (!cached && !request.traceOut.empty())
            output.prefix += ",\"trace\":\"" +
                             json::escape(request.traceOut) + "\"";
    }
    output.prefix += ",\"result\":";
    return output;
}

std::string
Service::render(Output &output)
{
    if (!output.error.ok())
        return errorResponseLine(output.id, output.error);
    if (output.raw)
        return output.value;
    std::string value;
    if (output.immediate) {
        value = std::move(output.value);
    } else {
        try {
            value = output.pending.get();
        } catch (const std::exception &e) {
            output.error = {"simulation_failed", "",
                            std::string("simulation failed: ") +
                                e.what()};
            return errorResponseLine(output.id, output.error);
        }
    }
    return output.prefix + value + "}";
}

void
Service::retireInflight(const std::string &key)
{
    if (key.empty())
        return;
    std::lock_guard<std::mutex> lock(dispatchMutex_);
    const auto it = inflight_.find(key);
    // Only drop ready entries: a later miss on the same key may have
    // replaced this output's future with a live one that in-flight
    // repeats still need to find.
    if (it != inflight_.end() &&
        it->second.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready)
        inflight_.erase(it);
}

void
Service::observeEmitted(const Output &output)
{
    if (!config_.metrics || output.raw)
        return;
    if (!output.error.ok())
        config_.metrics->counter("serve.request.error.count").add();
    config_.metrics
        ->histogram("serve.request.latency_us",
                    obs::ProfileSpan::latencyBoundsUs())
        .observe(obs::profileNowUs() - output.dispatchedUs);
}

Service::Pending
Service::submit(const std::string &line, Envelope envelope)
{
    Pending pending;
    pending.output_ = dispatch(line, envelope);
    return pending;
}

bool
Service::ready(const Pending &pending) const
{
    const Output &output = pending.output_;
    if (!output.error.ok() || output.immediate)
        return true;
    return output.pending.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

std::string
Service::finish(Pending &pending)
{
    Output &output = pending.output_;
    std::string response = render(output);
    retireInflight(output.key);
    observeEmitted(output);
    if (!output.error.ok()) {
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        ++stream_.errors;
    }
    return response;
}

std::string
Service::handleLine(const std::string &line, Envelope envelope)
{
    Pending pending = submit(line, envelope);
    return finish(pending);
}

Service::StreamStats
Service::processStream(std::istream &in, std::ostream &out,
                       bool emitStats, Envelope envelope)
{
    {
        // Coalescing is a per-stream notion; completed futures from
        // an earlier stream are already represented in the cache.
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        inflight_.clear();
        stream_ = {};
    }

    // Responses wait in a deque window: entries are released as they
    // are emitted, so memory tracks the in-flight window instead of
    // the whole stream.
    std::deque<Pending> window;

    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        window.push_back(submit(line, envelope));
        // Flush every response whose turn has come and whose result
        // is ready, so output streams while the pool keeps working.
        while (!window.empty() && ready(window.front())) {
            out << finish(window.front()) << '\n';
            window.pop_front();
        }
    }
    // Drain: emit the rest in order, blocking as needed.
    while (!window.empty()) {
        out << finish(window.front()) << '\n';
        window.pop_front();
    }

    StreamStats stats;
    {
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        stats = stream_;
    }
    if (config_.metrics)
        obs::recordPoolUtilization(*config_.metrics, "serve.pool",
                                   pool_.threadCount(),
                                   pool_.tasksSubmitted(),
                                   pool_.tasksCompleted(),
                                   pool_.maxQueueDepth());
    if (emitStats)
        out << statsJson(stats).dump() << '\n';
    out.flush();
    return stats;
}

json::Value
Service::statsJson(const StreamStats &stream) const
{
    const ResultCache::Stats cache = cache_.stats();
    json::Value v = json::Value::object();
    v.set("type", "stats");
    v.set("requests", stream.requests);
    v.set("errors", stream.errors);
    v.set("hits", hits());
    v.set("misses", misses());
    v.set("cache_entries", cache.entries);
    v.set("cache_capacity", cache.capacity);
    v.set("cache_evictions", cache.evictions);
    return v;
}

} // namespace gopim::serve
