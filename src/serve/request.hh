/**
 * @file
 * Request schema of the serving layer: one JSONL object per
 * simulation, strictly validated (unknown fields and out-of-range
 * values are rejected with the same semantics as the CLI flags
 * declared by core::addSimFlags), resolved onto the existing
 * workload/system machinery, and hashed into a content-addressed
 * cache key.
 */

#ifndef GOPIM_SERVE_REQUEST_HH
#define GOPIM_SERVE_REQUEST_HH

#include <string>

#include "common/json.hh"
#include "core/systems.hh"
#include "fault/model.hh"
#include "gcn/workload.hh"
#include "reram/config.hh"
#include "sim/context.hh"
#include "workload/family.hh"

namespace gopim::serve {

/**
 * Structured validation error. `code` is a stable machine-readable
 * identifier ("" = success):
 *   bad_json     the line is not parseable JSON (service layer)
 *   bad_request  the body is not a JSON object
 *   bad_type     a field holds the wrong JSON type
 *   out_of_range a value violates its CLI-flag range
 *   unknown_field an unrecognized top-level key
 *   unknown_name an unknown dataset/system/engine/repair name
 *   simulation_failed the run itself threw (service layer)
 * `field` names the offending top-level key when one exists.
 */
struct RequestError
{
    std::string code;
    std::string field;
    std::string message;

    bool ok() const { return code.empty(); }

    static RequestError none() { return {}; }
};

/**
 * One decoded simulation request. Field spellings mirror the CLI:
 *   id (string, echoed), dataset, system, baseline, engine,
 *   workload, partition, seed, micro_batch, epochs, theta,
 *   buffer_slots, retry_prob, write_fraction, trace_out,
 *   stuck_on_rate, stuck_off_rate, drift_rate, repair, spare_rows,
 *   refresh_period.
 * Unset fields inherit the server's defaults (its own --engine/
 * --seed/... flags). `workload` selects the family (the registry's
 * canonical names or aliases); for cnn-infer, `dataset` names a CNN
 * preset and defaults to workload::defaultCnnPreset(). Fault fields
 * are accepted for gcn-train only.
 */
struct Request
{
    std::string id;               ///< client correlation id ("" = none)
    std::string dataset = "ddi";
    bool datasetSet = false;      ///< dataset given explicitly
    std::string system = "GoPIM";
    workload::FamilyKind family = workload::FamilyKind::GcnTrain;
    workload::Partitioning partition =
        workload::Partitioning::RowSplit;
    std::string baseline;         ///< "" = no speedup comparison
    uint32_t microBatch = 64;
    uint32_t epochs = 1;
    double theta = 0.0;           ///< > 0 forces selective updating
    sim::SimContext sim;          ///< engine, seed, event knobs
    fault::FaultConfig fault;     ///< fault injection + repair knobs
    std::string traceOut;         ///< Chrome trace path ("" = none);
                                  ///< excluded from the cache key
};

/** A request bound to concrete catalog/system/engine objects. */
struct ResolvedRequest
{
    Request request;
    core::SystemKind system = core::SystemKind::GoPim;
    bool hasBaseline = false;
    core::SystemKind baseline = core::SystemKind::Serial;
    /**
     * GCN workload view. For cnn-infer (whose dataset is a preset,
     * not a catalog graph) this is a stub carrying only the
     * name/batching fields, used by the canonical cache-key config.
     */
    gcn::Workload workload;
    /** Family view of the same request (workload/runner.hh input). */
    workload::WorkloadSpec spec;
};

/**
 * Decode and validate one parsed JSONL object against `defaults`.
 * Strict: unknown fields, wrong types, unknown dataset/system/engine
 * names, and values outside the core::addSimFlags ranges are all
 * rejected with a structured RequestError (unknown top-level keys
 * get a nearest-match hint). Fills `out` only on success.
 */
RequestError parseRequest(const json::Value &body,
                          const Request &defaults, Request *out);

/**
 * The error response envelope ({"type":"error",...}) as one JSONL
 * line, machine-readable code/field first. Shared by the Service and
 * the cluster router so a request rejected at either layer produces
 * byte-identical bytes.
 */
std::string errorResponseLine(const std::string &id,
                              const RequestError &error);

/**
 * Fingerprint of the execution-relevant serving defaults: the cache
 * key the empty request {} resolves to under `defaults` + `hw`. Two
 * processes agreeing on this digest return byte-identical result
 * bytes for any request (every field a request may omit is covered
 * by the canonical run config), so the cluster hello exchanges it to
 * reject router/worker default mismatches up front.
 */
std::string defaultsFingerprint(const Request &defaults,
                                const reram::AcceleratorConfig &hw);

/** Bind catalog entries; RequestError::ok() on success. */
RequestError resolveRequest(const Request &request,
                            ResolvedRequest *out);

/**
 * The exact SystemConfig the service runs for a resolved request:
 * makeSystem(kind) with the request's sim context and theta policy
 * applied. Shared by the runner and the cache key so the key always
 * describes what would actually execute.
 */
core::SystemConfig configuredSystem(const ResolvedRequest &resolved);

/**
 * Content-addressed cache key: hex FNV-1a digest of the canonical
 * (sorted-key) JSON of core::canonicalRunConfig for this request on
 * `hw`, plus the baseline system name. Stable across request field
 * reordering and across processes.
 */
std::string cacheKey(const ResolvedRequest &resolved,
                     const reram::AcceleratorConfig &hw);

} // namespace gopim::serve

#endif // GOPIM_SERVE_REQUEST_HH
