#include "workload/family.hh"

#include <cmath>

#include "common/logging.hh"
#include "workload/cnn_infer.hh"
#include "workload/gcn_train.hh"
#include "workload/gnn_infer.hh"

namespace gopim::workload {

const std::vector<FamilyInfo> &
familyRegistry()
{
    static const std::vector<FamilyInfo> registry = {
        {FamilyKind::GcnTrain, "gcn-train", "train",
         "GCN training pipeline (CO/AG/LC/GC stages, the paper's "
         "workload)"},
        {FamilyKind::GnnInfer, "gnn-infer", "gnn",
         "GNN inference: SpMM aggregation + dense combination with "
         "row/col/nnz partitioning"},
        {FamilyKind::CnnInfer, "cnn-infer", "cnn",
         "CNN inference: conv-im2col layers chained as crossbar MVM "
         "stages"},
    };
    return registry;
}

std::string
familyNameList()
{
    std::string out;
    for (const auto &info : familyRegistry()) {
        if (!out.empty())
            out += ", ";
        out += info.canonical;
    }
    return out;
}

std::string
familyFlagHelp()
{
    std::string help = "workload family:";
    for (const auto &info : familyRegistry()) {
        help += "\n  ";
        help += info.canonical;
        help += " (";
        help += info.alias;
        help += "): ";
        help += info.summary;
    }
    return help;
}

bool
tryFamilyFromString(const std::string &name, FamilyKind *out)
{
    for (const auto &info : familyRegistry()) {
        if (name == info.canonical || name == info.alias) {
            *out = info.kind;
            return true;
        }
    }
    return false;
}

FamilyKind
familyFromString(const std::string &name)
{
    FamilyKind kind;
    if (!tryFamilyFromString(name, &kind))
        fatal("unknown workload family '", name, "' (expected one of ",
              familyNameList(), ")");
    return kind;
}

std::string
toString(FamilyKind kind)
{
    for (const auto &info : familyRegistry())
        if (info.kind == kind)
            return info.canonical;
    panic("unregistered workload family kind");
}

const std::vector<PartitionInfo> &
partitionRegistry()
{
    static const std::vector<PartitionInfo> registry = {
        {Partitioning::RowSplit, "row-split", "row",
         "contiguous vertex ranges; zero merge cost, bound by degree "
         "skew"},
        {Partitioning::ColSplit, "col-split", "col",
         "neighbor-id ranges; near-balanced plus a partial-sum merge "
         "tree"},
        {Partitioning::NnzBalanced, "nnz-balanced", "nnz",
         "LPT over row nnz; balanced parts plus indirection "
         "bookkeeping"},
    };
    return registry;
}

std::string
partitionNameList()
{
    std::string out;
    for (const auto &info : partitionRegistry()) {
        if (!out.empty())
            out += ", ";
        out += info.canonical;
    }
    return out;
}

std::string
partitionFlagHelp()
{
    std::string help = "SpMM partitioning for --workload=gnn-infer:";
    for (const auto &info : partitionRegistry()) {
        help += "\n  ";
        help += info.canonical;
        help += " (";
        help += info.alias;
        help += "): ";
        help += info.summary;
    }
    return help;
}

bool
tryPartitioningFromString(const std::string &name, Partitioning *out)
{
    for (const auto &info : partitionRegistry()) {
        if (name == info.canonical || name == info.alias) {
            *out = info.kind;
            return true;
        }
    }
    return false;
}

Partitioning
partitioningFromString(const std::string &name)
{
    Partitioning strategy;
    if (!tryPartitioningFromString(name, &strategy))
        fatal("unknown partitioning '", name, "' (expected one of ",
              partitionNameList(), ")");
    return strategy;
}

std::string
toString(Partitioning strategy)
{
    for (const auto &info : partitionRegistry())
        if (info.kind == strategy)
            return info.canonical;
    panic("unregistered partitioning strategy");
}

void
StagePlan::validate() const
{
    const size_t n = stages.size();
    GOPIM_ASSERT(n > 0, "stage plan has no stages");
    GOPIM_ASSERT(scalableTimesNs.size() == n &&
                     fixedTimesNs.size() == n &&
                     crossbarsPerReplica.size() == n &&
                     activationsPerMb.size() == n &&
                     rowWritesPerMb.size() == n &&
                     bufferBytesPerMb.size() == n,
                 "stage plan arrays disagree on stage count");
    GOPIM_ASSERT(totalMicroBatches > 0,
                 "stage plan has no micro-batches");
    for (size_t i = 0; i < n; ++i) {
        GOPIM_ASSERT(std::isfinite(scalableTimesNs[i]) &&
                         scalableTimesNs[i] >= 0.0,
                     "non-finite scalable stage time");
        GOPIM_ASSERT(std::isfinite(fixedTimesNs[i]) &&
                         fixedTimesNs[i] >= 0.0,
                     "non-finite fixed stage time");
        GOPIM_ASSERT(crossbarsPerReplica[i] > 0,
                     "stage occupies zero crossbars");
    }
}

const WorkloadFamily &
familyFor(FamilyKind kind)
{
    static const GcnTrainFamily gcnTrain;
    static const GnnInferFamily gnnInfer;
    static const CnnInferFamily cnnInfer;
    switch (kind) {
    case FamilyKind::GcnTrain:
        return gcnTrain;
    case FamilyKind::GnnInfer:
        return gnnInfer;
    case FamilyKind::CnnInfer:
        return cnnInfer;
    }
    panic("unregistered workload family kind");
}

} // namespace gopim::workload
