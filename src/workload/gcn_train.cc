#include "workload/gcn_train.hh"

#include "common/logging.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"

namespace gopim::workload {

namespace {

/** The paper's GoPIM execution policy (core/systems.cc, GoPim). */
gcn::ExecutionPolicy
goPimPolicy()
{
    gcn::ExecutionPolicy policy;
    policy.mapStrategy = mapping::VertexMapStrategy::Interleaved;
    policy.selectiveUpdate = true;
    policy.intraBatchPipeline = true;
    policy.interBatchPipeline = true;
    return policy;
}

} // namespace

std::string
GcnTrainFamily::validateSpec(const WorkloadSpec &spec) const
{
    if (graph::DatasetCatalog::findByName(spec.dataset) == nullptr)
        return "unknown dataset '" + spec.dataset +
               "' (gcn-train uses the Table III graph catalog)";
    if (spec.microBatchSize == 0 || spec.microBatchSize > 4096)
        return "micro-batch size must lie in [1, 4096]";
    if (spec.epochs == 0)
        return "need at least one training epoch";
    return "";
}

StagePlan
GcnTrainFamily::plan(const WorkloadSpec &spec,
                     const reram::AcceleratorConfig &hw) const
{
    const std::string problem = validateSpec(spec);
    GOPIM_ASSERT(problem.empty(), "invalid gcn-train spec");

    auto w = gcn::Workload::paperDefault(spec.dataset);
    w.microBatchSize = spec.microBatchSize;
    w.epochs = spec.epochs;
    w.seed = spec.seed;

    const gcn::ExecutionPolicy policy = goPimPolicy();
    const auto profile =
        gcn::VertexProfile::build(w.dataset, w.seed);
    const auto artifacts = gcn::MappingArtifacts::build(
        profile, policy, w.dataset, hw.crossbar.rows);
    const gcn::StageTimeModel timeModel(hw);
    const auto costs = timeModel.allCosts(w, policy, artifacts);

    StagePlan plan;
    plan.label = "gcn-train on " + spec.dataset;
    plan.stages = pipeline::buildTrainingStages(w.model.numLayers);
    for (const auto &cost : costs) {
        plan.scalableTimesNs.push_back(cost.scalableNs);
        plan.fixedTimesNs.push_back(cost.fixedNs);
        plan.crossbarsPerReplica.push_back(cost.crossbarsPerReplica);
        plan.activationsPerMb.push_back(cost.activationsPerMb);
        plan.rowWritesPerMb.push_back(cost.rowWritesPerMb);
        plan.bufferBytesPerMb.push_back(cost.bufferBytesPerMb);
    }
    plan.totalMicroBatches = w.microBatchesPerEpoch() * w.epochs;
    plan.microBatchesPerEpoch = w.microBatchesPerEpoch();
    plan.regime = sim::Regime::IntraInterBatch;
    plan.maxUsefulReplicas = w.microBatchSize * 4;
    plan.validate();
    return plan;
}

} // namespace gopim::workload
