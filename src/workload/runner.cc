#include "workload/runner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"
#include "sim/engine.hh"
#include "sim/trace.hh"

namespace gopim::workload {

alloc::AllocationProblem
allocationProblem(const StagePlan &plan,
                  const reram::AcceleratorConfig &hw)
{
    plan.validate();
    alloc::AllocationProblem problem;
    problem.stages = plan.stages;
    problem.numMicroBatches = plan.microBatchesPerEpoch;
    problem.maxUsefulReplicas = plan.maxUsefulReplicas;
    problem.scalableTimesNs = plan.scalableTimesNs;
    problem.fixedTimesNs = plan.fixedTimesNs;
    problem.crossbarsPerReplica = plan.crossbarsPerReplica;
    uint64_t mandatory = 0;
    for (const uint64_t xbars : plan.crossbarsPerReplica)
        mandatory += xbars;
    const uint64_t budget = hw.totalCrossbars();
    if (mandatory > budget) {
        fatal("workload '", plan.label, "' does not fit: needs ",
              mandatory, " crossbars for single replicas, chip has ",
              budget);
    }
    problem.spareCrossbars = budget - mandatory;
    return problem;
}

std::vector<double>
perturbedEstimates(const StagePlan &plan, double relErr, uint64_t seed)
{
    GOPIM_ASSERT(relErr >= 0.0 && relErr < 1.0,
                 "relative estimate error must lie in [0, 1)");
    Rng rng(seed);
    std::vector<double> estimates;
    estimates.reserve(plan.numStages());
    for (size_t i = 0; i < plan.numStages(); ++i) {
        const double exact =
            plan.scalableTimesNs[i] + plan.fixedTimesNs[i];
        estimates.push_back(exact *
                            (1.0 + rng.uniform(-relErr, relErr)));
    }
    return estimates;
}

core::RunResult
runPlan(const StagePlan &plan, const core::SystemConfig &system,
        const reram::AcceleratorConfig &hw,
        const std::vector<double> &estimatedStageTimesNs)
{
    alloc::AllocationProblem problem = allocationProblem(plan, hw);
    const uint64_t mandatory = hw.totalCrossbars() -
                               problem.spareCrossbars;

    // Estimates steer only the allocation decision; the final stage
    // times below always come from the exact plan (the same contract
    // as core::Accelerator::runWithEstimates).
    if (!estimatedStageTimesNs.empty()) {
        GOPIM_ASSERT(estimatedStageTimesNs.size() == plan.numStages(),
                     "estimate vector size mismatch");
        for (size_t i = 0; i < plan.numStages(); ++i) {
            const double total =
                plan.scalableTimesNs[i] + plan.fixedTimesNs[i];
            const double ratio =
                total > 0.0 ? estimatedStageTimesNs[i] / total : 1.0;
            problem.scalableTimesNs[i] *= ratio;
            problem.fixedTimesNs[i] *= ratio;
        }
    }

    alloc::AllocationResult allocation;
    if (system.allocator) {
        allocation = system.allocator->allocate(problem);
    } else {
        allocation.replicas.assign(plan.numStages(), 1);
        allocation.totalCrossbars = mandatory;
    }

    std::vector<double> stageTimes(plan.numStages());
    std::vector<uint32_t> effectiveReplicas(plan.numStages());
    for (size_t i = 0; i < plan.numStages(); ++i) {
        const uint32_t effective = std::min(
            allocation.replicas[i], problem.maxUsefulReplicas);
        effectiveReplicas[i] = effective;
        stageTimes[i] = plan.fixedTimesNs[i] +
                        plan.scalableTimesNs[i] /
                            static_cast<double>(effective);
    }

    sim::SimContext ctx = system.sim;
    ctx.recordWindows = ctx.recordWindows || ctx.traceSink != nullptr;
    if (ctx.isaRecorder)
        ctx.isaStreamLabel = system.name + " on " + plan.label;

    sim::ScheduleRequest request;
    request.stageTimesNs = stageTimes;
    request.replicas = effectiveReplicas;
    request.totalMicroBatches = plan.totalMicroBatches;
    request.microBatchesPerBatch = system.microBatchesPerBatch;
    switch (system.pipelineMode) {
    case core::PipelineMode::Serial:
        request.regime = sim::Regime::Serial;
        break;
    case core::PipelineMode::IntraBatch:
        request.regime = sim::Regime::IntraBatch;
        break;
    case core::PipelineMode::IntraInterBatch:
        request.regime = plan.regime;
        break;
    }
    if (ctx.event.replicasAsServers) {
        for (size_t i = 0; i < plan.numStages(); ++i)
            request.stageTimesNs[i] =
                plan.fixedTimesNs[i] + plan.scalableTimesNs[i];
    }

    const sim::ScheduleEngine &engine = sim::resolveEngine(ctx);
    const sim::StageTimeline schedule = engine.schedule(request, ctx);
    if (ctx.traceSink)
        ctx.traceSink->record({system.name, plan.label, engine.name()},
                              plan.stages, schedule);

    if (ctx.metrics) {
        obs::MetricsRegistry &m = *ctx.metrics;
        m.counter("workload.run.count").add();
        m.counter("alloc.crossbars_allocated")
            .add(allocation.totalCrossbars);
        auto &replicasHist = m.histogram(
            "alloc.replicas_per_stage",
            obs::Histogram::exponentialBounds(1.0, 2.0, 12));
        for (uint32_t r : allocation.replicas)
            replicasHist.observe(static_cast<double>(r));
    }

    uint64_t activations = 0;
    uint64_t bufferBytes = 0;
    uint64_t replicatedWrites = 0;
    for (size_t i = 0; i < plan.numStages(); ++i) {
        activations += plan.activationsPerMb[i] *
                       plan.totalMicroBatches;
        bufferBytes += plan.bufferBytesPerMb[i] *
                       plan.totalMicroBatches;
        // Replicated regions receive every write in parallel: wear and
        // energy multiply, the latency does not.
        replicatedWrites += plan.rowWritesPerMb[i] *
                            plan.totalMicroBatches *
                            allocation.replicas[i];
    }

    core::RunResult result;
    result.systemName = system.name;
    result.datasetName = plan.label;
    result.makespanNs = schedule.makespanNs;
    result.replicas = allocation.replicas;
    result.totalCrossbars = allocation.totalCrossbars;
    result.stageCrossbars.resize(plan.numStages());
    for (size_t i = 0; i < plan.numStages(); ++i)
        result.stageCrossbars[i] =
            static_cast<uint64_t>(allocation.replicas[i]) *
            plan.crossbarsPerReplica[i];
    result.stageTimesNs = stageTimes;
    result.idleFraction = schedule.idleFraction;
    result.avgIdleFraction = schedule.avgIdleFraction();
    result.engineName = engine.name();
    result.blockedNs = schedule.blockedNs;
    result.eventsProcessed = schedule.eventsProcessed;
    result.totalActivations = activations;
    result.totalRowWrites = replicatedWrites;
    result.totalBufferBytes = bufferBytes;
    result.stages = plan.stages;

    double idleCrossbarNs = 0.0;
    for (size_t i = 0; i < plan.numStages(); ++i) {
        idleCrossbarNs +=
            static_cast<double>(result.stageCrossbars[i]) *
            schedule.idleFraction[i] * schedule.makespanNs;
    }
    result.energyPj = reram::EnergyModel(hw).totalEnergyPj(
        schedule.makespanNs, activations, replicatedWrites,
        bufferBytes, idleCrossbarNs);
    return result;
}

core::RunResult
runFamily(const WorkloadSpec &spec, const core::SystemConfig &system,
          const reram::AcceleratorConfig &hw,
          const std::vector<double> &estimatedStageTimesNs)
{
    const WorkloadFamily &family = familyFor(spec.family);
    if (const std::string problem = family.validateSpec(spec);
        !problem.empty())
        fatal(family.name(), ": ", problem);
    const StagePlan plan = family.plan(spec, hw);
    core::RunResult result =
        runPlan(plan, system, hw, estimatedStageTimesNs);
    result.datasetName = spec.dataset;
    return result;
}

} // namespace gopim::workload
