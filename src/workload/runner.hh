/**
 * @file
 * Workload runner: executes a compiled StagePlan on the accelerator
 * substrate — replica allocation, pipelining on the configured
 * scheduling engine (with ISA recording/replay riding along), and
 * energy accounting — producing the same core::RunResult the
 * GCN-training path emits, so every downstream reporter (tables,
 * JSON, serve envelopes) works on inference runs unchanged.
 *
 * The arithmetic deliberately mirrors core::Accelerator's fault-free
 * path (accelerator.cc): estimate-driven allocation scales the
 * modeled times only for the allocator's decision, effective replicas
 * cap at the plan's parallelism ceiling, and replicas-as-servers mode
 * hands the engine single-replica times. tests/test_workload.cc pins
 * the gcn-train family to the accelerator path bit-for-bit.
 */

#ifndef GOPIM_WORKLOAD_RUNNER_HH
#define GOPIM_WORKLOAD_RUNNER_HH

#include "alloc/allocator.hh"
#include "core/accelerator.hh"
#include "core/result.hh"
#include "workload/family.hh"

namespace gopim::workload {

/**
 * Build the replica-allocation problem for a plan on `hw`. fatal()s
 * when even single replicas of every stage exceed the chip budget.
 */
alloc::AllocationProblem
allocationProblem(const StagePlan &plan,
                  const reram::AcceleratorConfig &hw);

/**
 * Deterministic stage-time estimates for predictor-style allocation
 * studies: the plan's exact single-replica times perturbed by a
 * relative error drawn per stage from [-relErr, +relErr] (seeded).
 * Families without a trained predictor (the inference ones) use this
 * to exercise the estimate-driven allocation path.
 */
std::vector<double> perturbedEstimates(const StagePlan &plan,
                                       double relErr, uint64_t seed);

/**
 * Run a compiled plan under a system configuration (allocator,
 * pipelining mode, sim context). `estimatedStageTimesNs` optionally
 * drives the allocation decision (final times stay exact); empty
 * means allocate on the exact model.
 */
core::RunResult
runPlan(const StagePlan &plan, const core::SystemConfig &system,
        const reram::AcceleratorConfig &hw,
        const std::vector<double> &estimatedStageTimesNs = {});

/**
 * Compile and run: validate the spec against its family (fatal() with
 * the family's diagnostic on bad specs), build the plan, and execute
 * it under `system`. The one-call entry point for tools and serving.
 */
core::RunResult
runFamily(const WorkloadSpec &spec, const core::SystemConfig &system,
          const reram::AcceleratorConfig &hw,
          const std::vector<double> &estimatedStageTimesNs = {});

} // namespace gopim::workload

#endif // GOPIM_WORKLOAD_RUNNER_HH
