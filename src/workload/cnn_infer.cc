#include "workload/cnn_infer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "mapping/tiling.hh"
#include "reram/latency.hh"

namespace gopim::workload {

const std::vector<CnnPreset> &
cnnPresetRegistry()
{
    static const std::vector<CnnPreset> registry = {
        {"mnist", "LeNet-scale chain on 1x28x28 digits", 1, 28, 28,
         10000,
         {{8, 3, 1}, {16, 3, 2}, {32, 3, 2}}},
        {"cifar", "VGG-scale chain on 3x32x32 images", 3, 32, 32,
         10000,
         {{32, 3, 1}, {64, 3, 2}, {128, 3, 2}, {128, 3, 2}}},
        {"tiny-imagenet", "deeper chain on 3x64x64 images", 3, 64, 64,
         10000,
         {{64, 3, 1},
          {128, 3, 2},
          {256, 3, 2},
          {512, 3, 2},
          {512, 3, 2}}},
    };
    return registry;
}

const CnnPreset *
findCnnPreset(const std::string &name)
{
    for (const auto &preset : cnnPresetRegistry())
        if (name == preset.name)
            return &preset;
    return nullptr;
}

std::string
cnnPresetNameList()
{
    std::string out;
    for (const auto &preset : cnnPresetRegistry()) {
        if (!out.empty())
            out += ", ";
        out += preset.name;
    }
    return out;
}

const char *
defaultCnnPreset()
{
    return "cifar";
}

std::string
CnnInferFamily::validateSpec(const WorkloadSpec &spec) const
{
    if (findCnnPreset(spec.dataset) == nullptr)
        return "unknown CNN preset '" + spec.dataset +
               "' (cnn-infer presets: " + cnnPresetNameList() + ")";
    if (spec.microBatchSize == 0 || spec.microBatchSize > 4096)
        return "micro-batch size must lie in [1, 4096]";
    if (spec.epochs == 0)
        return "need at least one inference pass (epochs >= 1)";
    return "";
}

StagePlan
CnnInferFamily::plan(const WorkloadSpec &spec,
                     const reram::AcceleratorConfig &hw) const
{
    const std::string problem = validateSpec(spec);
    GOPIM_ASSERT(problem.empty(), "invalid cnn-infer spec");
    const CnnPreset &preset = *findCnnPreset(spec.dataset);

    const reram::LatencyModel latency(hw);
    const uint64_t mb = spec.microBatchSize;

    StagePlan plan;
    plan.label = "cnn-infer[" + std::string(preset.name) + "]";
    uint32_t inC = preset.inChannels;
    uint32_t height = preset.inHeight;
    uint32_t width = preset.inWidth;
    uint32_t layerIdx = 0;
    for (const ConvLayer &layer : preset.layers) {
        ++layerIdx;
        const uint32_t outH =
            std::max(1u, (height - layer.kernel) / layer.stride + 1);
        const uint32_t outW =
            std::max(1u, (width - layer.kernel) / layer.stride + 1);
        // im2col: one MVM input vector per output position per image.
        const uint64_t mappedRows = static_cast<uint64_t>(
            layer.kernel) * layer.kernel * inC;
        const uint64_t inputsPerMb =
            mb * static_cast<uint64_t>(outH) * outW;

        plan.stages.push_back(
            {pipeline::StageType::Combination, layerIdx});
        plan.scalableTimesNs.push_back(
            latency.mvmStreamLatencyNs(inputsPerMb, mappedRows, 1));
        // SMART-style chaining: before a stage produces anything, the
        // previous stage must fill kernel-1 rows of its line buffer.
        // That priming is pipeline-fixed — replicas all wait for it.
        plan.fixedTimesNs.push_back(
            static_cast<double>(layer.kernel - 1) *
            latency.windowLatencyNs());
        const uint64_t xbars = mapping::crossbarsPerReplica(
            mappedRows, layer.outChannels, hw);
        plan.crossbarsPerReplica.push_back(xbars);
        plan.activationsPerMb.push_back(inputsPerMb * xbars);
        plan.rowWritesPerMb.push_back(0);
        plan.bufferBytesPerMb.push_back(
            mb * static_cast<uint64_t>(inC) * height * width *
            (hw.crossbar.valueBits / 8));

        inC = layer.outChannels;
        height = outH;
        width = outW;
    }

    plan.microBatchesPerEpoch =
        static_cast<uint32_t>(ceilDiv(preset.numImages, mb));
    plan.totalMicroBatches = plan.microBatchesPerEpoch * spec.epochs;
    plan.regime = sim::Regime::IntraInterBatch;
    plan.maxUsefulReplicas = spec.microBatchSize * 4;
    plan.validate();
    return plan;
}

} // namespace gopim::workload
