#include "workload/gnn_infer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "common/rng.hh"
#include "gcn/workload.hh"
#include "graph/datasets.hh"
#include "mapping/tiling.hh"
#include "reram/latency.hh"

namespace gopim::workload {

namespace {

/**
 * Vertex cap for the measurement instance. Degree distributions are
 * scale-free, so a capped Chung-Lu sample measures the same relative
 * nnz imbalance as the full graph at a fraction of the build cost.
 */
constexpr uint64_t kMaxProfileVertices = 32768;

/** Partition count ceiling (PyGim's PIM-core grid is this order). */
constexpr uint32_t kMaxParts = 256;

uint32_t
partsFor(uint64_t numVertices, const reram::AcceleratorConfig &hw)
{
    const uint64_t byRows =
        ceilDiv(numVertices, static_cast<uint64_t>(hw.crossbar.rows));
    return static_cast<uint32_t>(std::clamp<uint64_t>(
        byRows, 2, static_cast<uint64_t>(kMaxParts)));
}

double
imbalanceOf(const std::vector<uint64_t> &partNnz, uint64_t totalNnz)
{
    if (totalNnz == 0 || partNnz.empty())
        return 1.0;
    const uint64_t maxPart =
        *std::max_element(partNnz.begin(), partNnz.end());
    const double mean = static_cast<double>(totalNnz) /
                        static_cast<double>(partNnz.size());
    return std::max(1.0, static_cast<double>(maxPart) / mean);
}

} // namespace

PartitionProfile
profilePartitioning(const graph::Graph &g, Partitioning strategy,
                    uint32_t parts)
{
    GOPIM_ASSERT(parts > 0, "need at least one partition");
    const uint64_t v = g.numVertices();
    std::vector<uint64_t> partNnz(parts, 0);
    uint64_t totalNnz = 0;

    PartitionProfile profile;
    profile.strategy = strategy;
    profile.parts = parts;

    switch (strategy) {
    case Partitioning::RowSplit: {
        // Contiguous vertex ranges: partition p owns rows
        // [p*span, (p+1)*span). All of a row's nonzeros stay local,
        // so there is no merge, but a range of hubs overloads its
        // partition.
        const uint64_t span = std::max<uint64_t>(1, ceilDiv(v, parts));
        for (graph::VertexId u = 0; u < v; ++u) {
            const uint32_t d = g.degree(u);
            partNnz[std::min<uint64_t>(u / span, parts - 1)] += d;
            totalNnz += d;
        }
        profile.mergeWindows = 0;
        break;
    }
    case Partitioning::ColSplit: {
        // Edges bucketed by neighbor-id range: every partition sees a
        // slice of each row, so rows need a cross-partition
        // partial-sum reduction — a log-depth merge tree per
        // micro-batch.
        const uint64_t span = std::max<uint64_t>(1, ceilDiv(v, parts));
        for (graph::VertexId u = 0; u < v; ++u) {
            for (const graph::VertexId n : g.neighbors(u)) {
                partNnz[std::min<uint64_t>(n / span, parts - 1)] += 1;
                ++totalNnz;
            }
        }
        profile.mergeWindows = static_cast<uint32_t>(std::ceil(
            std::log2(static_cast<double>(std::max(2u, parts)))));
        break;
    }
    case Partitioning::NnzBalanced: {
        // LPT: rows in descending-degree order each go to the
        // currently least-loaded partition. Near-perfect balance; the
        // gather indirection costs one extra window pass.
        for (const graph::VertexId u : g.verticesByDegreeDesc()) {
            const auto lightest = std::min_element(partNnz.begin(),
                                                   partNnz.end());
            const uint32_t d = g.degree(u);
            *lightest += d;
            totalNnz += d;
        }
        profile.mergeWindows = 1;
        break;
    }
    }

    profile.imbalance = imbalanceOf(partNnz, totalNnz);
    return profile;
}

std::string
GnnInferFamily::validateSpec(const WorkloadSpec &spec) const
{
    if (graph::DatasetCatalog::findByName(spec.dataset) == nullptr)
        return "unknown dataset '" + spec.dataset +
               "' (gnn-infer uses the Table III graph catalog)";
    if (spec.microBatchSize == 0 || spec.microBatchSize > 4096)
        return "micro-batch size must lie in [1, 4096]";
    if (spec.epochs == 0)
        return "need at least one inference pass (epochs >= 1)";
    return "";
}

StagePlan
GnnInferFamily::plan(const WorkloadSpec &spec,
                     const reram::AcceleratorConfig &hw) const
{
    const std::string problem = validateSpec(spec);
    GOPIM_ASSERT(problem.empty(), "invalid gnn-infer spec");

    auto w = gcn::Workload::paperDefault(spec.dataset);
    w.microBatchSize = spec.microBatchSize;
    w.epochs = spec.epochs;
    w.seed = spec.seed;

    // Measure the split quality on a capped materialized instance;
    // the imbalance ratio transfers to the full-size analytic time.
    const uint64_t v = w.dataset.numVertices;
    const double scale = v > kMaxProfileVertices
                             ? static_cast<double>(kMaxProfileVertices) /
                                   static_cast<double>(v)
                             : 1.0;
    Rng rng(spec.seed);
    const graph::Graph g =
        graph::DatasetCatalog::materialize(w.dataset, scale, rng);
    const uint32_t parts = partsFor(v, hw);
    const PartitionProfile split =
        profilePartitioning(g, spec.partition, parts);

    // Cross-partition merge: each input's partial sums reduce through
    // a tree of depth mergeWindows. The adder tree works on all P
    // partitions concurrently, so one level costs a window pass
    // spread over the partitions; the reduction itself cannot be
    // replicated away, so it lands on the fixed (unscalable) side.
    const reram::LatencyModel latency(hw);
    const double mergeNs = static_cast<double>(split.mergeWindows) *
                           static_cast<double>(w.microBatchSize) *
                           latency.windowLatencyNs() /
                           static_cast<double>(split.parts);

    StagePlan plan;
    plan.label = "gnn-infer[" + toString(spec.partition) + "] on " +
                 spec.dataset;
    for (uint32_t layer = 1; layer <= w.model.numLayers; ++layer) {
        const auto [fin, fout] = w.model.layerDims(layer);

        // SpMM aggregation. The balanced share of the adjacency
        // stream is replica-divisible; the straggler partition's
        // excess over the mean is not — every replica carries the
        // same partition structure, so each micro-batch barrier
        // waits out the same straggler tail. That excess plus the
        // merge tree land on the fixed side, which is exactly what
        // makes the strategy choice matter on a replica-rich chip.
        plan.stages.push_back(
            {pipeline::StageType::Aggregation, layer});
        const double spmmNs =
            latency.mvmStreamLatencyNs(w.microBatchSize, v, 1);
        const double stragglerNs = spmmNs *
                                   (split.imbalance - 1.0) /
                                   static_cast<double>(split.parts);
        plan.scalableTimesNs.push_back(spmmNs);
        plan.fixedTimesNs.push_back(mergeNs + stragglerNs);
        const uint64_t agXbars =
            mapping::crossbarsPerReplica(v, fout, hw);
        plan.crossbarsPerReplica.push_back(agXbars);
        plan.activationsPerMb.push_back(
            static_cast<uint64_t>(w.microBatchSize) * agXbars);
        plan.rowWritesPerMb.push_back(0);
        plan.bufferBytesPerMb.push_back(
            static_cast<uint64_t>(w.microBatchSize) * fout *
            (hw.crossbar.valueBits / 8));

        // Dense combination: the weight-matrix MVM, identical to the
        // training CO stage minus the weight updates.
        plan.stages.push_back(
            {pipeline::StageType::Combination, layer});
        plan.scalableTimesNs.push_back(
            latency.mvmStreamLatencyNs(w.microBatchSize, fin, 1));
        plan.fixedTimesNs.push_back(0.0);
        const uint64_t coXbars =
            mapping::crossbarsPerReplica(fin, fout, hw);
        plan.crossbarsPerReplica.push_back(coXbars);
        plan.activationsPerMb.push_back(
            static_cast<uint64_t>(w.microBatchSize) * coXbars);
        plan.rowWritesPerMb.push_back(0);
        plan.bufferBytesPerMb.push_back(
            static_cast<uint64_t>(w.microBatchSize) * fin *
            (hw.crossbar.valueBits / 8));
    }

    plan.totalMicroBatches = w.microBatchesPerEpoch() * w.epochs;
    plan.microBatchesPerEpoch = w.microBatchesPerEpoch();
    plan.regime = sim::Regime::IntraInterBatch;
    plan.maxUsefulReplicas = w.microBatchSize * 4;
    plan.validate();
    return plan;
}

} // namespace gopim::workload
