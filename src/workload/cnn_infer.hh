/**
 * @file
 * CNN inference family: convolutional layers lowered onto crossbar
 * MVMs via im2col and chained as pipeline stages in the SMART style
 * (each layer streams its output rows into the next layer's line
 * buffer, so the whole network pipelines across micro-batches).
 *
 * One conv layer of kernel k over inC input channels producing outC
 * output channels is an MVM with k*k*inC mapped rows and outC
 * columns, evaluated once per output position — im2col turns the
 * sliding window into outH*outW input vectors per image. The spec's
 * `dataset` names a CNN preset (a small catalog of layer chains)
 * rather than a graph.
 */

#ifndef GOPIM_WORKLOAD_CNN_INFER_HH
#define GOPIM_WORKLOAD_CNN_INFER_HH

#include "workload/family.hh"

namespace gopim::workload {

/** One convolutional layer of a preset. */
struct ConvLayer
{
    uint32_t outChannels = 0;
    uint32_t kernel = 3;
    uint32_t stride = 1;
};

/** A named CNN inference preset: input shape + conv chain. */
struct CnnPreset
{
    const char *name;
    const char *summary;
    uint32_t inChannels;
    uint32_t inHeight;
    uint32_t inWidth;
    /** Images per inference pass (one "epoch"). */
    uint32_t numImages;
    std::vector<ConvLayer> layers;
};

/** All registered CNN presets (the cnn-infer dataset catalog). */
const std::vector<CnnPreset> &cnnPresetRegistry();

/** Lookup by name; nullptr on unknown names. */
const CnnPreset *findCnnPreset(const std::string &name);

/** Comma-separated preset names for hints and flag help. */
std::string cnnPresetNameList();

/** Default preset substituted when --workload=cnn-infer has no
 *  explicit dataset. */
const char *defaultCnnPreset();

/** The cnn-infer family (registered in familyRegistry). */
class CnnInferFamily final : public WorkloadFamily
{
  public:
    FamilyKind kind() const override { return FamilyKind::CnnInfer; }
    std::string validateSpec(const WorkloadSpec &spec) const override;
    StagePlan plan(const WorkloadSpec &spec,
                   const reram::AcceleratorConfig &hw) const override;
};

} // namespace gopim::workload

#endif // GOPIM_WORKLOAD_CNN_INFER_HH
