/**
 * @file
 * GCN training re-expressed as a workload family: the paper's 4L-stage
 * CO/AG/LC/GC pipeline under the GoPIM execution policy (interleaved
 * vertex mapping + selective updating), compiled through the same
 * StageTimeModel the accelerator core uses.
 *
 * The family view fixes the execution policy to the paper's GoPIM
 * preset so the plan is a pure function of the spec — what varies
 * across runs is the allocator and pipelining regime the runner
 * applies on top. Fault injection and the non-GoPIM policy presets
 * stay on the core::Accelerator path (core/systems.hh); the family's
 * fault-free plan is asserted bit-identical to that path in
 * tests/test_workload.cc.
 */

#ifndef GOPIM_WORKLOAD_GCN_TRAIN_HH
#define GOPIM_WORKLOAD_GCN_TRAIN_HH

#include "workload/family.hh"

namespace gopim::workload {

/** The gcn-train family (registered in familyRegistry). */
class GcnTrainFamily final : public WorkloadFamily
{
  public:
    FamilyKind kind() const override { return FamilyKind::GcnTrain; }
    std::string validateSpec(const WorkloadSpec &spec) const override;
    StagePlan plan(const WorkloadSpec &spec,
                   const reram::AcceleratorConfig &hw) const override;
};

} // namespace gopim::workload

#endif // GOPIM_WORKLOAD_GCN_TRAIN_HH
