/**
 * @file
 * GNN inference family: serving-style forward passes where each layer
 * is a sparse aggregation (SpMM over the graph CSR) followed by a
 * dense combination MVM, with a selectable SpMM partitioning strategy
 * in the PyGim style (row-split / col-split / nnz-balanced).
 *
 * The partitioning strategy does not change what is computed — it
 * changes how evenly the adjacency nonzeros spread over the P
 * crossbar partitions and what merge work the split leaves behind:
 *
 *  - row-split      contiguous vertex ranges. No cross-partition
 *                   merge, but the straggler partition carries the
 *                   degree skew of its range: its excess work over
 *                   the mean is a per-micro-batch bubble replication
 *                   cannot hide (every replica has the same split).
 *  - col-split      edges bucketed by neighbor-id range. Every
 *                   output row is scattered over partitions and
 *                   needs a partial-sum reduction tree: a fixed
 *                   merge cost of ceil(log2 P) P-way-parallel window
 *                   levels per micro-batch.
 *  - nnz-balanced   LPT assignment of rows (descending degree) to
 *                   the least-loaded partition. Near-perfect balance
 *                   at the price of an indirection gather, modeled
 *                   as one merge level per micro-batch.
 *
 * The imbalance factors are measured on a materialized Chung-Lu
 * instance of the dataset (vertex count capped, degree distribution
 * preserved) and applied to the full-size analytic SpMM time, so
 * plans stay cheap to build and deterministic in the spec seed.
 */

#ifndef GOPIM_WORKLOAD_GNN_INFER_HH
#define GOPIM_WORKLOAD_GNN_INFER_HH

#include "graph/graph.hh"
#include "workload/family.hh"

namespace gopim::workload {

/** Measured split quality of one partitioning of one graph. */
struct PartitionProfile
{
    Partitioning strategy = Partitioning::RowSplit;
    uint32_t parts = 1;
    /** max partition nnz / mean partition nnz (>= 1). */
    double imbalance = 1.0;
    /** Merge window passes per micro-batch left after the split. */
    uint32_t mergeWindows = 0;
};

/**
 * Partition `g`'s nonzeros over `parts` partitions with `strategy`
 * and measure the resulting balance. Deterministic in its inputs.
 */
PartitionProfile profilePartitioning(const graph::Graph &g,
                                     Partitioning strategy,
                                     uint32_t parts);

/** The gnn-infer family (registered in familyRegistry). */
class GnnInferFamily final : public WorkloadFamily
{
  public:
    FamilyKind kind() const override { return FamilyKind::GnnInfer; }
    std::string validateSpec(const WorkloadSpec &spec) const override;
    StagePlan plan(const WorkloadSpec &spec,
                   const reram::AcceleratorConfig &hw) const override;
};

} // namespace gopim::workload

#endif // GOPIM_WORKLOAD_GNN_INFER_HH
