/**
 * @file
 * Workload families: the front-ends that turn a workload description
 * into a scheduling problem on the PIM substrate (ROADMAP item 3).
 *
 * A WorkloadFamily compiles a WorkloadSpec into a StagePlan — stage
 * descriptors, per-micro-batch scalable/fixed times, crossbar
 * footprints, and energy event counts — the backend-independent
 * contract the runner (workload/runner.hh) feeds through replica
 * allocation, the scheduling engines, and ISA lowering. Three
 * concrete families are registered:
 *
 *  - gcn-train   the paper's GCN-training pipeline, re-expressed as
 *                a family (workload/gcn_train.hh);
 *  - gnn-infer   PyGim-style GNN serving: sparse aggregation (SpMM)
 *                + dense combination with selectable row-split /
 *                col-split / nnz-balanced partitioning, driven by
 *                the graph CSR structures (workload/gnn_infer.hh);
 *  - cnn-infer   SMART-style CNN inference: conv-im2col layers
 *                chained as pipeline stages of crossbar MVMs
 *                (workload/cnn_infer.hh).
 *
 * The registry mirrors the engine registry (sim/context.hh): one
 * table is the single source of truth for canonical names, aliases,
 * and summaries, from which --workload flag help, parse hints, and
 * serve-layer error messages all derive.
 */

#ifndef GOPIM_WORKLOAD_FAMILY_HH
#define GOPIM_WORKLOAD_FAMILY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/stage.hh"
#include "reram/config.hh"
#include "sim/engine.hh"

namespace gopim::workload {

/** Workload family selector. */
enum class FamilyKind : uint8_t
{
    GcnTrain, ///< GCN training pipeline (the paper's workload)
    GnnInfer, ///< SpMM + dense combination GNN inference (PyGim)
    CnnInfer, ///< conv-im2col CNN inference (SMART-style chaining)
};

/**
 * One registered workload family: the single source of truth for its
 * spellings and one-line summary (the engine-registry pattern).
 */
struct FamilyInfo
{
    FamilyKind kind;
    /** Canonical name ("gcn-train"). */
    const char *canonical;
    /** Short spelling accepted by --workload and serve requests. */
    const char *alias;
    /** One-line description for flag help and --list-workloads. */
    const char *summary;
};

/** All registered families, in FamilyKind declaration order. */
const std::vector<FamilyInfo> &familyRegistry();

/** Comma-separated canonical-name list for hints. */
std::string familyNameList();

/** Multi-line --workload help text derived from the registry. */
std::string familyFlagHelp();

/** Parse an alias or canonical name; fatal() otherwise. */
FamilyKind familyFromString(const std::string &name);

/** Non-fatal parse; returns false on unknown names. */
bool tryFamilyFromString(const std::string &name, FamilyKind *out);

std::string toString(FamilyKind kind);

/** SpMM partitioning strategy of the GNN-inference family (PyGim). */
enum class Partitioning : uint8_t
{
    RowSplit,    ///< contiguous vertex ranges; no merge, skew-bound
    ColSplit,    ///< neighbor-id ranges; balanced-ish + merge step
    NnzBalanced, ///< LPT over row nnz; balanced + bookkeeping cost
};

/** One registered partitioning strategy (same table pattern). */
struct PartitionInfo
{
    Partitioning kind;
    const char *canonical;
    const char *alias;
    const char *summary;
};

/** All partitioning strategies, in declaration order. */
const std::vector<PartitionInfo> &partitionRegistry();

/** Comma-separated canonical-name list for hints. */
std::string partitionNameList();

/** Multi-line --partition help text derived from the registry. */
std::string partitionFlagHelp();

/** Parse an alias or canonical name; fatal() otherwise. */
Partitioning partitioningFromString(const std::string &name);

/** Non-fatal parse; returns false on unknown names. */
bool tryPartitioningFromString(const std::string &name,
                               Partitioning *out);

std::string toString(Partitioning strategy);

/**
 * One workload instance, independent of system/allocator choice.
 * `dataset` names a graph-catalog entry for the GNN families and a
 * CNN input preset (workload/cnn_infer.hh) for cnn-infer. `epochs`
 * counts training epochs for gcn-train and full inference passes
 * (request batches) for the inference families.
 */
struct WorkloadSpec
{
    FamilyKind family = FamilyKind::GcnTrain;
    std::string dataset = "ddi";
    /** SpMM partitioning (gnn-infer only; ignored elsewhere). */
    Partitioning partition = Partitioning::RowSplit;
    uint32_t microBatchSize = 64;
    uint32_t epochs = 1;
    uint64_t seed = 1;
};

/**
 * A family's compiled scheduling problem: everything the runner
 * needs to allocate replicas, time the pipeline on any engine, and
 * account energy — per micro-batch, in pipeline-stage order.
 */
struct StagePlan
{
    /** Human label ("gnn-infer[nnz-balanced] on Cora"). */
    std::string label;
    std::vector<pipeline::Stage> stages;
    /** Replica-divisible compute time per stage (ns/micro-batch). */
    std::vector<double> scalableTimesNs;
    /** Fixed time not reduced by replication (ns/micro-batch). */
    std::vector<double> fixedTimesNs;
    /** Crossbars one replica of each stage occupies. */
    std::vector<uint64_t> crossbarsPerReplica;
    /** Energy event counts per micro-batch, per stage. */
    std::vector<uint64_t> activationsPerMb;
    std::vector<uint64_t> rowWritesPerMb;
    std::vector<uint64_t> bufferBytesPerMb;
    uint32_t totalMicroBatches = 1;
    /** Micro-batches covering the input once (allocator horizon). */
    uint32_t microBatchesPerEpoch = 1;
    uint32_t microBatchesPerBatch = 8;
    sim::Regime regime = sim::Regime::IntraInterBatch;
    /** Effective-parallelism ceiling fed to the allocator (0 = off). */
    uint32_t maxUsefulReplicas = 0;

    size_t numStages() const { return stages.size(); }

    /** Panics on inconsistent array sizes or non-finite times. */
    void validate() const;
};

/**
 * A workload family: compiles specs into stage plans. Implementations
 * are stateless and shared (familyFor), so plans can be built
 * concurrently from grid workers.
 */
class WorkloadFamily
{
  public:
    virtual ~WorkloadFamily() = default;

    virtual FamilyKind kind() const = 0;

    /** Canonical registry name ("gnn-infer"). */
    std::string name() const { return toString(kind()); }

    /**
     * Check the spec against this family's catalog (dataset or CNN
     * preset names, micro-batch bounds). "" when runnable, else a
     * diagnostic suitable for a CLI fatal() or a serve request error.
     */
    virtual std::string validateSpec(const WorkloadSpec &spec) const = 0;

    /**
     * Compile the spec into a stage plan on `hw`. Deterministic:
     * equal (spec, hw) pairs produce identical plans, which is what
     * makes family runs cacheable and replayable. Panics on a spec
     * that validateSpec rejects.
     */
    virtual StagePlan plan(const WorkloadSpec &spec,
                           const reram::AcceleratorConfig &hw) const = 0;
};

/** Shared immutable family instance for a kind (never null). */
const WorkloadFamily &familyFor(FamilyKind kind);

} // namespace gopim::workload

#endif // GOPIM_WORKLOAD_FAMILY_HH
