#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace gopim::graph {

std::vector<uint32_t>
powerLawDegreeSequence(uint64_t numVertices, double avgDegree, double alpha,
                       uint32_t maxDegree, Rng &rng)
{
    GOPIM_ASSERT(numVertices > 0, "empty degree sequence requested");
    GOPIM_ASSERT(avgDegree >= 1.0, "average degree must be >= 1");
    GOPIM_ASSERT(alpha > 1.0, "power-law exponent must exceed 1");

    // Draw from a Pareto with x_min = 1 via inverse transform, then
    // rescale to hit the requested mean. Clamping to [1, maxDegree]
    // biases the mean, so refine the scale with fixed-point steps.
    std::vector<double> raw(numVertices);
    double total = 0.0;
    for (auto &d : raw) {
        const double u = std::max(rng.uniform(), 1e-12);
        d = std::pow(u, -1.0 / (alpha - 1.0));
        d = std::min(d, static_cast<double>(maxDegree));
        total += d;
    }
    double scale = avgDegree * static_cast<double>(numVertices) / total;
    for (int iter = 0; iter < 8; ++iter) {
        double clampedTotal = 0.0;
        for (double d : raw)
            clampedTotal += std::clamp(
                d * scale, 1.0, static_cast<double>(maxDegree));
        const double achieved =
            clampedTotal / static_cast<double>(numVertices);
        if (std::abs(achieved - avgDegree) < 0.01 * avgDegree)
            break;
        scale *= avgDegree / achieved;
    }

    std::vector<uint32_t> degrees(numVertices);
    for (uint64_t i = 0; i < numVertices; ++i) {
        const double d = std::clamp(raw[i] * scale, 1.0,
                                    static_cast<double>(maxDegree));
        // Stochastic rounding preserves the mean.
        const auto floorD = static_cast<uint32_t>(d);
        degrees[i] = floorD + (rng.uniform() <
                               d - static_cast<double>(floorD) ? 1u : 0u);
        degrees[i] = std::max(degrees[i], 1u);
    }
    return degrees;
}

Graph
chungLu(const std::vector<uint32_t> &targetDegrees, Rng &rng)
{
    const auto n = static_cast<VertexId>(targetDegrees.size());
    GOPIM_ASSERT(n > 1, "Chung-Lu needs at least two vertices");

    double weightSum = 0.0;
    for (uint32_t d : targetDegrees)
        weightSum += d;
    GOPIM_ASSERT(weightSum > 0.0, "Chung-Lu: zero total degree");

    // Efficient Chung-Lu sampling (Miller & Hagberg): process vertices
    // in descending weight order; for each u, skip ahead geometrically
    // among candidate partners v > u.
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        return targetDegrees[a] > targetDegrees[b];
    });

    std::vector<std::pair<VertexId, VertexId>> edges;
    edges.reserve(static_cast<size_t>(weightSum / 2.0));

    for (VertexId i = 0; i < n; ++i) {
        const VertexId u = order[i];
        const double wu = targetDegrees[u];
        if (wu <= 0.0)
            break;
        VertexId j = i + 1;
        // Probability cap with the largest remaining weight.
        double p = std::min(
            1.0, wu * targetDegrees[order[std::min(j, n - 1)]] / weightSum);
        while (j < n && p > 0.0) {
            if (p < 1.0) {
                const double r = std::max(rng.uniform(), 1e-300);
                j += static_cast<VertexId>(std::log(r) / std::log(1.0 - p));
            }
            if (j < n) {
                const VertexId v = order[j];
                const double q =
                    std::min(1.0, wu * targetDegrees[v] / weightSum);
                if (rng.uniform() < q / p)
                    edges.emplace_back(u, v);
                p = q;
                ++j;
            }
        }
    }
    return Graph::fromEdges(n, std::move(edges));
}

Graph
erdosRenyi(VertexId numVertices, double p, Rng &rng)
{
    GOPIM_ASSERT(p >= 0.0 && p <= 1.0, "edge probability out of range");
    std::vector<std::pair<VertexId, VertexId>> edges;
    if (p <= 0.0 || numVertices < 2)
        return Graph::fromEdges(numVertices, std::move(edges));

    // Geometric skipping over the upper triangle.
    const double logq = std::log(1.0 - p);
    const uint64_t totalPairs =
        static_cast<uint64_t>(numVertices) * (numVertices - 1) / 2;
    uint64_t idx = 0;
    while (true) {
        const double r = std::max(rng.uniform(), 1e-300);
        uint64_t skip = p >= 1.0
                            ? 0
                            : static_cast<uint64_t>(std::log(r) / logq);
        idx += skip;
        if (idx >= totalPairs)
            break;
        // Decode linear index into (u, v) in the upper triangle.
        const double fid = static_cast<double>(idx);
        auto u = static_cast<VertexId>(
            (2.0 * numVertices - 1.0 -
             std::sqrt((2.0 * numVertices - 1.0) *
                           (2.0 * numVertices - 1.0) -
                       8.0 * fid)) /
            2.0);
        uint64_t rowStart =
            static_cast<uint64_t>(u) * numVertices -
            static_cast<uint64_t>(u) * (u + 1) / 2;
        while (u + 1 < numVertices) {
            const uint64_t nextRow =
                rowStart + (numVertices - u - 1);
            if (idx < nextRow)
                break;
            rowStart = nextRow;
            ++u;
        }
        const auto v = static_cast<VertexId>(u + 1 + (idx - rowStart));
        if (v < numVertices)
            edges.emplace_back(u, v);
        ++idx;
    }
    return Graph::fromEdges(numVertices, std::move(edges));
}

Graph
rmat(VertexId numVertices, uint64_t numEdges, double a, double b,
     double c, Rng &rng)
{
    GOPIM_ASSERT(numVertices >= 2, "R-MAT needs at least two vertices");
    const double d = 1.0 - a - b - c;
    GOPIM_ASSERT(a > 0.0 && b >= 0.0 && c >= 0.0 && d > 0.0,
                 "R-MAT probabilities must be positive and sum to 1");

    uint32_t levels = 0;
    while ((1ull << levels) < numVertices)
        ++levels;

    std::vector<std::pair<VertexId, VertexId>> edges;
    edges.reserve(numEdges);
    uint64_t placed = 0;
    uint64_t attempts = 0;
    const uint64_t maxAttempts = numEdges * 20 + 1000;
    while (placed < numEdges && attempts < maxAttempts) {
        ++attempts;
        uint64_t u = 0, v = 0;
        for (uint32_t level = 0; level < levels; ++level) {
            const double r = rng.uniform();
            u <<= 1;
            v <<= 1;
            if (r < a) {
                // top-left quadrant: no bits set
            } else if (r < a + b) {
                v |= 1;
            } else if (r < a + b + c) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if (u >= numVertices || v >= numVertices || u == v)
            continue;
        edges.emplace_back(static_cast<VertexId>(u),
                           static_cast<VertexId>(v));
        ++placed;
    }
    return Graph::fromEdges(numVertices, std::move(edges));
}

LabeledGraph
plantedPartition(VertexId numVertices, int numClasses, double pIn,
                 double pOut, Rng &rng)
{
    GOPIM_ASSERT(numClasses > 0, "need at least one class");
    LabeledGraph out;
    out.numClasses = numClasses;
    out.labels.resize(numVertices);
    for (VertexId v = 0; v < numVertices; ++v)
        out.labels[v] = static_cast<int>(v) % numClasses;

    std::vector<std::pair<VertexId, VertexId>> edges;
    for (VertexId u = 0; u < numVertices; ++u) {
        for (VertexId v = u + 1; v < numVertices; ++v) {
            const double p =
                out.labels[u] == out.labels[v] ? pIn : pOut;
            if (rng.bernoulli(p))
                edges.emplace_back(u, v);
        }
    }
    out.graph = Graph::fromEdges(numVertices, std::move(edges));
    return out;
}

LabeledGraph
degreeCorrectedPartition(VertexId numVertices, int numClasses,
                         double avgDegree, double alpha, double mixing,
                         Rng &rng)
{
    GOPIM_ASSERT(mixing >= 0.0 && mixing <= 1.0,
                 "mixing must be in [0, 1]");
    LabeledGraph out;
    out.numClasses = numClasses;
    out.labels.resize(numVertices);
    for (VertexId v = 0; v < numVertices; ++v)
        out.labels[v] = static_cast<int>(rng.uniformInt(
            static_cast<uint64_t>(numClasses)));

    const auto weights = powerLawDegreeSequence(
        numVertices, avgDegree, alpha,
        std::max<uint32_t>(8, numVertices / 2), rng);
    double weightSum = 0.0;
    for (auto w : weights)
        weightSum += w;

    // Chung-Lu style sampling, but retain cross-class edges only with
    // probability `mixing` (and intra-class always), then top up with
    // random intra-class edges to keep the expected density.
    std::vector<std::pair<VertexId, VertexId>> edges;
    const auto expectedEdges = static_cast<uint64_t>(
        avgDegree * numVertices / 2.0);
    edges.reserve(expectedEdges);

    // Weighted endpoint sampler (alias-free: cumulative + binary search).
    std::vector<double> cumWeights(numVertices);
    double acc = 0.0;
    for (VertexId v = 0; v < numVertices; ++v) {
        acc += weights[v];
        cumWeights[v] = acc;
    }
    auto sampleVertex = [&]() {
        const double r = rng.uniform() * acc;
        const auto it = std::lower_bound(cumWeights.begin(),
                                         cumWeights.end(), r);
        return static_cast<VertexId>(it - cumWeights.begin());
    };

    uint64_t made = 0;
    uint64_t attempts = 0;
    const uint64_t maxAttempts = expectedEdges * 20 + 1000;
    while (made < expectedEdges && attempts < maxAttempts) {
        ++attempts;
        const VertexId u = sampleVertex();
        const VertexId v = sampleVertex();
        if (u == v)
            continue;
        const bool sameClass = out.labels[u] == out.labels[v];
        if (!sameClass && !rng.bernoulli(mixing))
            continue;
        edges.emplace_back(std::min(u, v), std::max(u, v));
        ++made;
    }
    out.graph = Graph::fromEdges(numVertices, std::move(edges));
    return out;
}

} // namespace gopim::graph
