/**
 * @file
 * CSR graph representation and builder.
 *
 * Graphs are undirected and stored as symmetric CSR. Vertex degrees
 * drive both the ISU vertex-importance ranking and the Aggregation
 * timing model, so degree accessors are first-class here.
 */

#ifndef GOPIM_GRAPH_GRAPH_HH
#define GOPIM_GRAPH_GRAPH_HH

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gopim::graph {

using VertexId = uint32_t;

/** Immutable undirected graph in CSR form. */
class Graph
{
  public:
    Graph() = default;

    /**
     * Build from an edge list (undirected; both directions are added).
     * Self-loops are kept once; duplicate edges are removed.
     */
    static Graph fromEdges(VertexId numVertices,
                           std::vector<std::pair<VertexId, VertexId>> edges);

    VertexId numVertices() const { return numVertices_; }

    /** Number of undirected edges (each counted once). */
    uint64_t numEdges() const { return numEdges_; }

    /** Degree of vertex v (self-loop counts once). */
    uint32_t degree(VertexId v) const
    {
        return static_cast<uint32_t>(rowPtr_[v + 1] - rowPtr_[v]);
    }

    /** Neighbor list of vertex v. */
    std::span<const VertexId> neighbors(VertexId v) const
    {
        return {colIdx_.data() + rowPtr_[v],
                colIdx_.data() + rowPtr_[v + 1]};
    }

    /** All vertex degrees, indexed by vertex id. */
    std::vector<uint32_t> degrees() const;

    /** Average degree (2E/V for undirected graphs without self loops). */
    double averageDegree() const;

    /** Edge density: |E| / (V*(V-1)/2). */
    double density() const;

    /** True if an edge {u, v} exists (binary search in CSR row). */
    bool hasEdge(VertexId u, VertexId v) const;

    /**
     * Vertex ids sorted by descending degree (ties broken by id to keep
     * the order deterministic). This is the ISU importance ranking.
     */
    std::vector<VertexId> verticesByDegreeDesc() const;

  private:
    VertexId numVertices_ = 0;
    uint64_t numEdges_ = 0;
    std::vector<uint64_t> rowPtr_;
    std::vector<VertexId> colIdx_;
};

/**
 * Summary statistics of a graph, sufficient for the analytic timing
 * model when the full edge structure is not materialized.
 */
struct GraphStats
{
    uint64_t numVertices = 0;
    uint64_t numEdges = 0;
    double avgDegree = 0.0;
    double maxDegree = 0.0;

    /** Sparsity of the adjacency matrix: 1 - nnz / V^2. */
    double sparsity() const;
};

/** Extract summary statistics from a materialized graph. */
GraphStats computeStats(const Graph &g);

} // namespace gopim::graph

#endif // GOPIM_GRAPH_GRAPH_HH
