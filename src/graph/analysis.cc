#include "graph/analysis.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.hh"

namespace gopim::graph {

Components
connectedComponents(const Graph &g)
{
    Components result;
    constexpr uint32_t kUnlabeled = UINT32_MAX;
    result.componentOf.assign(g.numVertices(), kUnlabeled);

    std::vector<uint64_t> sizes;
    std::deque<VertexId> frontier;
    for (VertexId seed = 0; seed < g.numVertices(); ++seed) {
        if (result.componentOf[seed] != kUnlabeled)
            continue;
        const uint32_t label = result.count++;
        uint64_t size = 0;
        frontier.push_back(seed);
        result.componentOf[seed] = label;
        while (!frontier.empty()) {
            const VertexId v = frontier.front();
            frontier.pop_front();
            ++size;
            for (VertexId u : g.neighbors(v)) {
                if (result.componentOf[u] == kUnlabeled) {
                    result.componentOf[u] = label;
                    frontier.push_back(u);
                }
            }
        }
        sizes.push_back(size);
    }
    result.largestSize =
        sizes.empty() ? 0 : *std::max_element(sizes.begin(),
                                              sizes.end());
    return result;
}

double
clusteringCoefficient(const Graph &g, uint32_t sampleVertices)
{
    const VertexId n = g.numVertices();
    if (n == 0)
        return 0.0;

    const uint32_t step =
        sampleVertices > 0 && sampleVertices < n
            ? std::max<uint32_t>(1, n / sampleVertices)
            : 1;

    uint64_t closed = 0; // ordered closed wedges (2 x triangles x 3)
    uint64_t wedges = 0;
    for (VertexId v = 0; v < n; v += step) {
        const auto nbrs = g.neighbors(v);
        if (nbrs.size() < 2)
            continue;
        wedges += static_cast<uint64_t>(nbrs.size()) *
                  (nbrs.size() - 1) / 2;
        // Count edges among neighbors via sorted intersection.
        for (size_t i = 0; i < nbrs.size(); ++i) {
            for (size_t j = i + 1; j < nbrs.size(); ++j) {
                if (g.hasEdge(nbrs[i], nbrs[j]))
                    ++closed;
            }
        }
    }
    if (wedges == 0)
        return 0.0;
    return static_cast<double>(closed) / static_cast<double>(wedges);
}

Histogram
degreeHistogram(const Graph &g, size_t buckets)
{
    double maxDeg = 1.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        maxDeg = std::max(maxDeg, static_cast<double>(g.degree(v)));
    Histogram h(0.0, maxDeg + 1.0, buckets);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        h.add(static_cast<double>(g.degree(v)));
    return h;
}

double
degreeAssortativity(const Graph &g)
{
    // Pearson correlation of (deg(u), deg(v)) over directed edges.
    double sumX = 0.0, sumY = 0.0, sumXY = 0.0, sumX2 = 0.0,
           sumY2 = 0.0;
    uint64_t m = 0;
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        const double du = g.degree(u);
        for (VertexId v : g.neighbors(u)) {
            const double dv = g.degree(v);
            sumX += du;
            sumY += dv;
            sumXY += du * dv;
            sumX2 += du * du;
            sumY2 += dv * dv;
            ++m;
        }
    }
    if (m == 0)
        return 0.0;
    const double n = static_cast<double>(m);
    const double cov = sumXY / n - (sumX / n) * (sumY / n);
    const double varX = sumX2 / n - (sumX / n) * (sumX / n);
    const double varY = sumY2 / n - (sumY / n) * (sumY / n);
    if (varX <= 0.0 || varY <= 0.0)
        return 0.0;
    return cov / std::sqrt(varX * varY);
}

double
powerLawExponent(const Graph &g, uint32_t dMin)
{
    GOPIM_ASSERT(dMin >= 1, "dMin must be >= 1");
    double logSum = 0.0;
    uint64_t count = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const uint32_t d = g.degree(v);
        if (d >= dMin) {
            logSum += std::log(static_cast<double>(d) /
                               (static_cast<double>(dMin) - 0.5));
            ++count;
        }
    }
    if (count == 0 || logSum <= 0.0)
        return 0.0;
    return 1.0 + static_cast<double>(count) / logSum;
}

} // namespace gopim::graph
