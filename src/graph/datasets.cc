#include "graph/datasets.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "graph/generators.hh"

namespace gopim::graph {

GraphStats
DatasetSpec::stats() const
{
    GraphStats s;
    s.numVertices = numVertices;
    s.numEdges = numEdges;
    s.avgDegree = avgDegree;
    // Power-law tail estimate for the maximum degree.
    s.maxDegree = std::min<double>(
        static_cast<double>(numVertices) - 1.0,
        avgDegree * std::sqrt(static_cast<double>(numVertices)));
    return s;
}

const std::vector<DatasetSpec> &
DatasetCatalog::all()
{
    // Table III of the paper, verbatim statistics.
    static const std::vector<DatasetSpec> specs = {
        {"ddi", TaskType::LinkPrediction, 4267, 1334889, 500.5, 256},
        {"collab", TaskType::LinkPrediction, 235868, 1285465, 8.2, 128},
        {"ppa", TaskType::LinkPrediction, 576289, 30326273, 73.7, 58},
        {"proteins", TaskType::NodePrediction, 132534, 39561252, 597.0, 8},
        {"arxiv", TaskType::NodePrediction, 169343, 1166243, 13.7, 128},
        {"products", TaskType::NodePrediction, 2449029, 61859140, 50.5,
         100},
        {"Cora", TaskType::NodePrediction, 2708, 10556, 3.9, 1433},
    };
    return specs;
}

const DatasetSpec &
DatasetCatalog::byName(const std::string &name)
{
    const DatasetSpec *spec = findByName(name);
    if (!spec)
        fatal("unknown dataset '", name, "'");
    return *spec;
}

const DatasetSpec *
DatasetCatalog::findByName(const std::string &name)
{
    for (const auto &spec : all())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

std::vector<DatasetSpec>
DatasetCatalog::figure13Set()
{
    return {byName("ddi"), byName("collab"), byName("ppa"),
            byName("proteins"), byName("arxiv")};
}

std::vector<DatasetSpec>
DatasetCatalog::motivationSet()
{
    return {byName("ddi"), byName("collab"), byName("ppa"),
            byName("proteins"), byName("arxiv"), byName("products")};
}

std::vector<uint32_t>
DatasetCatalog::degreeSequence(const DatasetSpec &spec, double scale,
                               Rng &rng)
{
    GOPIM_ASSERT(scale > 0.0 && scale <= 1.0,
                 "dataset scale must be in (0, 1]");
    const auto n = std::max<uint64_t>(
        2, static_cast<uint64_t>(
               static_cast<double>(spec.numVertices) * scale));
    const auto maxDeg = static_cast<uint32_t>(
        std::min<double>(static_cast<double>(n) - 1.0,
                         spec.avgDegree * 50.0));
    return powerLawDegreeSequence(n, spec.avgDegree, 2.1,
                                  std::max<uint32_t>(maxDeg, 2), rng);
}

Graph
DatasetCatalog::materialize(const DatasetSpec &spec, double scale,
                            Rng &rng)
{
    const auto degrees = degreeSequence(spec, scale, rng);
    return chungLu(degrees, rng);
}

DatasetSpec
DatasetCatalog::scaled(const DatasetSpec &spec, double scale)
{
    GOPIM_ASSERT(scale > 0.0 && scale <= 1.0,
                 "dataset scale must be in (0, 1]");
    DatasetSpec out = spec;
    out.numVertices = std::max<uint64_t>(
        2, static_cast<uint64_t>(
               static_cast<double>(spec.numVertices) * scale));
    out.numEdges = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(spec.numEdges) * scale));
    // Average degree is preserved by design.
    return out;
}

} // namespace gopim::graph
