#include "graph/graph.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace gopim::graph {

Graph
Graph::fromEdges(VertexId numVertices,
                 std::vector<std::pair<VertexId, VertexId>> edges)
{
    Graph g;
    g.numVertices_ = numVertices;

    // Symmetrize: add both directions; keep self-loops single.
    std::vector<std::pair<VertexId, VertexId>> directed;
    directed.reserve(edges.size() * 2);
    for (auto [u, v] : edges) {
        GOPIM_ASSERT(u < numVertices && v < numVertices,
                     "edge endpoint out of range");
        directed.emplace_back(u, v);
        if (u != v)
            directed.emplace_back(v, u);
    }
    std::sort(directed.begin(), directed.end());
    directed.erase(std::unique(directed.begin(), directed.end()),
                   directed.end());

    g.rowPtr_.assign(static_cast<size_t>(numVertices) + 1, 0);
    for (auto [u, v] : directed)
        ++g.rowPtr_[u + 1];
    std::partial_sum(g.rowPtr_.begin(), g.rowPtr_.end(),
                     g.rowPtr_.begin());
    g.colIdx_.resize(directed.size());
    {
        std::vector<uint64_t> cursor(g.rowPtr_.begin(),
                                     g.rowPtr_.end() - 1);
        for (auto [u, v] : directed)
            g.colIdx_[cursor[u]++] = v;
    }

    // Count undirected edges: self-loops appear once, others twice.
    uint64_t selfLoops = 0;
    for (auto [u, v] : directed)
        if (u == v)
            ++selfLoops;
    g.numEdges_ = (directed.size() - selfLoops) / 2 + selfLoops;
    return g;
}

std::vector<uint32_t>
Graph::degrees() const
{
    std::vector<uint32_t> d(numVertices_);
    for (VertexId v = 0; v < numVertices_; ++v)
        d[v] = degree(v);
    return d;
}

double
Graph::averageDegree() const
{
    if (numVertices_ == 0)
        return 0.0;
    return static_cast<double>(colIdx_.size()) /
           static_cast<double>(numVertices_);
}

double
Graph::density() const
{
    if (numVertices_ < 2)
        return 0.0;
    const double v = static_cast<double>(numVertices_);
    return static_cast<double>(numEdges_) / (v * (v - 1.0) / 2.0);
}

bool
Graph::hasEdge(VertexId u, VertexId v) const
{
    GOPIM_ASSERT(u < numVertices_ && v < numVertices_,
                 "hasEdge: vertex out of range");
    const auto nbrs = neighbors(u);
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<VertexId>
Graph::verticesByDegreeDesc() const
{
    std::vector<VertexId> order(numVertices_);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [this](VertexId a, VertexId b) {
                         const auto da = degree(a), db = degree(b);
                         return da != db ? da > db : a < b;
                     });
    return order;
}

double
GraphStats::sparsity() const
{
    if (numVertices == 0)
        return 1.0;
    const double v = static_cast<double>(numVertices);
    // Symmetric adjacency: ~2E nonzeros.
    return 1.0 - 2.0 * static_cast<double>(numEdges) / (v * v);
}

GraphStats
computeStats(const Graph &g)
{
    GraphStats s;
    s.numVertices = g.numVertices();
    s.numEdges = g.numEdges();
    s.avgDegree = g.averageDegree();
    double maxDeg = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        maxDeg = std::max(maxDeg, static_cast<double>(g.degree(v)));
    s.maxDegree = maxDeg;
    return s;
}

} // namespace gopim::graph
