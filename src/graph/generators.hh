/**
 * @file
 * Synthetic graph generators.
 *
 * These substitute for the OGB datasets (see DESIGN.md §1): every
 * mechanism GoPIM evaluates depends on graph statistics (vertex count,
 * degree distribution, density), which the generators reproduce.
 */

#ifndef GOPIM_GRAPH_GENERATORS_HH
#define GOPIM_GRAPH_GENERATORS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "graph/graph.hh"

namespace gopim::graph {

/**
 * Sample a power-law degree sequence with the given average degree.
 *
 * Degrees follow a truncated Pareto-like distribution with exponent
 * `alpha` (typical social/biological graphs: 2.0-2.5), rescaled so the
 * sample mean matches `avgDegree`, clamped to [1, maxDegree].
 */
std::vector<uint32_t> powerLawDegreeSequence(uint64_t numVertices,
                                             double avgDegree,
                                             double alpha,
                                             uint32_t maxDegree,
                                             Rng &rng);

/**
 * Chung-Lu graph: edge {u,v} sampled with probability proportional to
 * w_u * w_v, where weights are the target degree sequence. Realized
 * degrees approximate the targets in expectation.
 */
Graph chungLu(const std::vector<uint32_t> &targetDegrees, Rng &rng);

/** Erdos-Renyi G(n, p). */
Graph erdosRenyi(VertexId numVertices, double p, Rng &rng);

/**
 * R-MAT recursive-matrix generator (Chakrabarti et al.): numEdges
 * samples placed by recursive quadrant descent with probabilities
 * (a, b, c, d = 1-a-b-c). Produces the community + power-law
 * structure typical of web/social graphs. numVertices is rounded up
 * to a power of two internally; ids beyond numVertices are rejected.
 */
Graph rmat(VertexId numVertices, uint64_t numEdges, double a, double b,
           double c, Rng &rng);

/**
 * Planted-partition (stochastic block model) graph for the functional
 * accuracy experiments: `numClasses` equal communities, intra-class
 * edge probability pIn, inter-class pOut, plus per-class label vector.
 */
struct LabeledGraph
{
    Graph graph;
    std::vector<int> labels;
    int numClasses = 0;
};

LabeledGraph plantedPartition(VertexId numVertices, int numClasses,
                              double pIn, double pOut, Rng &rng);

/**
 * Planted-partition variant with power-law degree heterogeneity
 * (degree-corrected SBM): multiplies edge probabilities by per-vertex
 * power-law weights so that hub vertices emerge, which is what makes
 * degree-based selective updating meaningful.
 */
LabeledGraph degreeCorrectedPartition(VertexId numVertices, int numClasses,
                                      double avgDegree, double alpha,
                                      double mixing, Rng &rng);

} // namespace gopim::graph

#endif // GOPIM_GRAPH_GENERATORS_HH
