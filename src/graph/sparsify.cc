#include "graph/sparsify.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace gopim::graph {

namespace {

/** Collect each undirected edge once as (min, max) pairs. */
std::vector<std::pair<VertexId, VertexId>>
undirectedEdges(const Graph &g)
{
    std::vector<std::pair<VertexId, VertexId>> edges;
    edges.reserve(g.numEdges());
    for (VertexId u = 0; u < g.numVertices(); ++u)
        for (VertexId v : g.neighbors(u))
            if (u <= v)
                edges.emplace_back(u, v);
    return edges;
}

} // namespace

Graph
dropEdges(const Graph &g, double keepProb, Rng &rng)
{
    GOPIM_ASSERT(keepProb >= 0.0 && keepProb <= 1.0,
                 "keep probability out of range");
    auto edges = undirectedEdges(g);
    std::vector<std::pair<VertexId, VertexId>> kept;
    kept.reserve(static_cast<size_t>(
        static_cast<double>(edges.size()) * keepProb));
    for (auto e : edges)
        if (rng.bernoulli(keepProb))
            kept.push_back(e);
    return Graph::fromEdges(g.numVertices(), std::move(kept));
}

Graph
keepTopEdgesByDegreeProduct(const Graph &g, double keepFraction)
{
    GOPIM_ASSERT(keepFraction >= 0.0 && keepFraction <= 1.0,
                 "keep fraction out of range");
    auto edges = undirectedEdges(g);
    const auto keepCount = static_cast<size_t>(
        static_cast<double>(edges.size()) * keepFraction);
    std::stable_sort(edges.begin(), edges.end(),
                     [&g](const auto &a, const auto &b) {
                         const uint64_t pa =
                             static_cast<uint64_t>(g.degree(a.first)) *
                             g.degree(a.second);
                         const uint64_t pb =
                             static_cast<uint64_t>(g.degree(b.first)) *
                             g.degree(b.second);
                         return pa > pb;
                     });
    edges.resize(keepCount);
    return Graph::fromEdges(g.numVertices(), std::move(edges));
}

Graph
pruneLowDegreeVertices(const Graph &g, uint32_t minDegree)
{
    std::vector<std::pair<VertexId, VertexId>> kept;
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        if (g.degree(u) < minDegree)
            continue;
        for (VertexId v : g.neighbors(u))
            if (u <= v && g.degree(v) >= minDegree)
                kept.emplace_back(u, v);
    }
    return Graph::fromEdges(g.numVertices(), std::move(kept));
}

} // namespace gopim::graph
