/**
 * @file
 * Graph sparsification utilities (Section II-C of the paper).
 *
 * Two heuristic families are provided: random edge dropping (DropEdge
 * style) and degree-product ranking (keep edges between important
 * vertices). SlimGNN-like's "input subgraph pruning" baseline uses the
 * random variant; GoPIM itself sparsifies *updates*, not edges (see
 * mapping/selective.hh), but these utilities let the baselines be
 * reproduced faithfully.
 */

#ifndef GOPIM_GRAPH_SPARSIFY_HH
#define GOPIM_GRAPH_SPARSIFY_HH

#include "common/rng.hh"
#include "graph/graph.hh"

namespace gopim::graph {

/** Uniformly drop edges, keeping each with probability keepProb. */
Graph dropEdges(const Graph &g, double keepProb, Rng &rng);

/**
 * Keep the top keepFraction of edges ranked by the degree product of
 * their endpoints (higher product = more structurally important in the
 * heuristic-sparsification literature).
 */
Graph keepTopEdgesByDegreeProduct(const Graph &g, double keepFraction);

/**
 * Remove vertices whose degree is below `minDegree` (their edges go
 * with them). Vertex ids are preserved; removed vertices become
 * isolated.
 */
Graph pruneLowDegreeVertices(const Graph &g, uint32_t minDegree);

} // namespace gopim::graph

#endif // GOPIM_GRAPH_SPARSIFY_HH
