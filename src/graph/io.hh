/**
 * @file
 * Graph persistence: text edge-list and a compact binary CSR format,
 * so users can feed their own graphs to the simulator and cache
 * generated ones between runs.
 */

#ifndef GOPIM_GRAPH_IO_HH
#define GOPIM_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "graph/graph.hh"

namespace gopim::graph {

/**
 * Parse a text edge list: one "u v" pair per line, '#' comments and
 * blank lines ignored; vertex count is max id + 1 unless a
 * "# vertices N" header is present. fatal() on malformed input.
 */
Graph readEdgeList(std::istream &in);

/** Load an edge-list file; fatal() if it cannot be opened. */
Graph loadEdgeList(const std::string &path);

/** Write a graph as a text edge list (one undirected edge per line). */
void writeEdgeList(const Graph &g, std::ostream &out);

/**
 * Binary CSR snapshot (magic + counts + row pointers + columns),
 * little-endian, for fast reload of large generated graphs.
 */
void saveBinary(const Graph &g, const std::string &path);

/** Load a binary CSR snapshot; fatal() on bad magic or truncation. */
Graph loadBinary(const std::string &path);

} // namespace gopim::graph

#endif // GOPIM_GRAPH_IO_HH
