#include "graph/io.hh"

#include <cstdint>
#include <fstream>
#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace gopim::graph {

Graph
readEdgeList(std::istream &in)
{
    std::vector<std::pair<VertexId, VertexId>> edges;
    VertexId declaredVertices = 0;
    VertexId maxVertex = 0;
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream header(line.substr(1));
            std::string word;
            header >> word;
            if (word == "vertices") {
                uint64_t n = 0;
                if (header >> n)
                    declaredVertices = static_cast<VertexId>(n);
            }
            continue;
        }
        std::istringstream fields(line);
        uint64_t u = 0, v = 0;
        if (!(fields >> u >> v))
            fatal("edge list line ", lineNo, " malformed: '", line,
                  "'");
        edges.emplace_back(static_cast<VertexId>(u),
                           static_cast<VertexId>(v));
        maxVertex = std::max({maxVertex, static_cast<VertexId>(u),
                              static_cast<VertexId>(v)});
    }
    const VertexId numVertices = std::max<VertexId>(
        declaredVertices, edges.empty() ? 0 : maxVertex + 1);
    return Graph::fromEdges(numVertices, std::move(edges));
}

Graph
loadEdgeList(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open edge list '", path, "'");
    return readEdgeList(in);
}

void
writeEdgeList(const Graph &g, std::ostream &out)
{
    out << "# vertices " << g.numVertices() << "\n";
    for (VertexId u = 0; u < g.numVertices(); ++u)
        for (VertexId v : g.neighbors(u))
            if (u <= v)
                out << u << ' ' << v << "\n";
}

namespace {

constexpr uint64_t kMagic = 0x47504D4743535200ULL; // "GPMGCSR\0"

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in, const char *what)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!in)
        fatal("binary graph truncated while reading ", what);
    return value;
}

} // namespace

void
saveBinary(const Graph &g, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    writePod(out, kMagic);
    writePod(out, static_cast<uint64_t>(g.numVertices()));
    writePod(out, g.numEdges());
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        const auto nbrs = g.neighbors(u);
        writePod(out, static_cast<uint64_t>(nbrs.size()));
        for (VertexId v : nbrs)
            writePod(out, v);
    }
    if (!out)
        fatal("write failure on '", path, "'");
}

Graph
loadBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open binary graph '", path, "'");
    if (readPod<uint64_t>(in, "magic") != kMagic)
        fatal("'", path, "' is not a GoPIM binary graph");
    const auto numVertices = readPod<uint64_t>(in, "vertex count");
    const auto numEdges = readPod<uint64_t>(in, "edge count");

    std::vector<std::pair<VertexId, VertexId>> edges;
    edges.reserve(numEdges);
    for (uint64_t u = 0; u < numVertices; ++u) {
        const auto degree = readPod<uint64_t>(in, "degree");
        for (uint64_t i = 0; i < degree; ++i) {
            const auto v = readPod<VertexId>(in, "neighbor");
            if (u <= v)
                edges.emplace_back(static_cast<VertexId>(u), v);
        }
    }
    Graph g = Graph::fromEdges(static_cast<VertexId>(numVertices),
                               std::move(edges));
    if (g.numEdges() != numEdges)
        fatal("'", path, "' edge count mismatch: header says ",
              numEdges, ", data has ", g.numEdges());
    return g;
}

} // namespace gopim::graph
