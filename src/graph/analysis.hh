/**
 * @file
 * Structural graph analysis: connected components, clustering
 * coefficient, degree histograms, and degree-assortativity — the
 * statistics used to check synthetic catalog graphs against their
 * OGB references and by the graph_stats tool.
 */

#ifndef GOPIM_GRAPH_ANALYSIS_HH
#define GOPIM_GRAPH_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "graph/graph.hh"

namespace gopim::graph {

/** Connected-component labeling result. */
struct Components
{
    std::vector<uint32_t> componentOf; ///< label per vertex
    uint32_t count = 0;
    uint64_t largestSize = 0;
};

/** Label connected components via BFS. */
Components connectedComponents(const Graph &g);

/**
 * Global clustering coefficient: 3 x triangles / open wedges.
 * Exact triangle counting via sorted-neighbor intersection — use the
 * `sampleVertices` cap for very large graphs (0 = exact).
 */
double clusteringCoefficient(const Graph &g,
                             uint32_t sampleVertices = 0);

/** Histogram of vertex degrees on a log-ish scale. */
Histogram degreeHistogram(const Graph &g, size_t buckets = 32);

/**
 * Degree assortativity (Pearson correlation of endpoint degrees over
 * edges); negative for hub-to-leaf graphs, positive for social-style
 * graphs.
 */
double degreeAssortativity(const Graph &g);

/**
 * Estimate the power-law exponent alpha of the degree distribution
 * by the discrete MLE alpha = 1 + n / sum(ln(d_i / d_min)) over
 * vertices with degree >= dMin.
 */
double powerLawExponent(const Graph &g, uint32_t dMin = 2);

} // namespace gopim::graph

#endif // GOPIM_GRAPH_ANALYSIS_HH
