/**
 * @file
 * Dataset catalog mirroring Table III of the paper.
 *
 * Each entry records the published statistics of the OGB dataset (or
 * Cora) it stands in for; synthetic graphs and degree sequences are
 * generated on demand to match those statistics (see DESIGN.md §1).
 */

#ifndef GOPIM_GRAPH_DATASETS_HH
#define GOPIM_GRAPH_DATASETS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "graph/graph.hh"

namespace gopim::graph {

/** Prediction task type of a dataset (Table III "Category"). */
enum class TaskType { LinkPrediction, NodePrediction };

/** Catalog entry with the published Table III statistics. */
struct DatasetSpec
{
    std::string name;
    TaskType task = TaskType::NodePrediction;
    uint64_t numVertices = 0;
    uint64_t numEdges = 0;
    double avgDegree = 0.0;
    uint32_t featureDim = 0;

    /** Paper classification: avg degree <= 8 is "sparse" (§VI-C). */
    bool isSparse() const { return avgDegree <= 8.0; }

    /** Summary statistics view used by the timing model. */
    GraphStats stats() const;
};

/** Registry of the seven datasets in Table III. */
class DatasetCatalog
{
  public:
    /** All seven entries in Table III order. */
    static const std::vector<DatasetSpec> &all();

    /** Lookup by name; fatal() on unknown names. */
    static const DatasetSpec &byName(const std::string &name);

    /** Non-fatal lookup; nullptr on unknown names. */
    static const DatasetSpec *findByName(const std::string &name);

    /** The five datasets used in Fig. 13 (overall comparison). */
    static std::vector<DatasetSpec> figure13Set();

    /** The six datasets used in the motivation study (Figs. 4 and 6). */
    static std::vector<DatasetSpec> motivationSet();

    /**
     * Sample a degree sequence matching the spec's vertex count and
     * average degree (power-law, alpha = 2.1). `scale` divides the
     * vertex count (degree distribution is preserved); use < 1 scale
     * only for the very large graphs where full materialization is
     * unnecessary for the timing model.
     */
    static std::vector<uint32_t> degreeSequence(const DatasetSpec &spec,
                                                double scale, Rng &rng);

    /**
     * Materialize a synthetic graph matching the (scaled) spec via
     * Chung-Lu sampling on the degree sequence above.
     */
    static Graph materialize(const DatasetSpec &spec, double scale,
                             Rng &rng);

    /** Spec with vertex/edge counts scaled by `scale` (stats only). */
    static DatasetSpec scaled(const DatasetSpec &spec, double scale);
};

} // namespace gopim::graph

#endif // GOPIM_GRAPH_DATASETS_HH
