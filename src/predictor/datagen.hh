/**
 * @file
 * Training-data generation for the time predictor.
 *
 * Randomized workloads are executed through the analytic stage time
 * model to produce (features, time) samples per stage type — the same
 * closed loop the paper builds by profiling workloads on its own
 * simulator (Section V-A). Targets are log10(time_ns), standardized;
 * RMSE values reported by Fig. 9 benches are on that normalized scale.
 */

#ifndef GOPIM_PREDICTOR_DATAGEN_HH
#define GOPIM_PREDICTOR_DATAGEN_HH

#include <array>
#include <cstdint>

#include "common/rng.hh"
#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "ml/data.hh"
#include "pipeline/stage.hh"

namespace gopim::predictor {

/** One dataset per stage type (CO, AG, LC, GC). */
struct StageSampleSet
{
    std::array<ml::Dataset, 4> perStageType;

    static size_t indexOf(pipeline::StageType t)
    {
        return static_cast<size_t>(t);
    }

    size_t totalSamples() const;
};

/** Randomized workload generator for predictor training. */
class WorkloadRandomizer
{
  public:
    explicit WorkloadRandomizer(uint64_t seed);

    /** Draw a random workload spanning the catalog's parameter space. */
    gcn::Workload next();

  private:
    Rng rng_;
};

/**
 * Generate `numWorkloads` random workloads and record each layer's
 * per-stage-type (features, log10 time) samples (the paper gathers
 * 2200 samples; each workload contributes numLayers samples per type).
 */
StageSampleSet generateSamples(const gcn::StageTimeModel &model,
                               size_t numWorkloads, uint64_t seed);

/** Samples for one specific workload (used in generalization tests). */
void appendWorkloadSamples(const gcn::StageTimeModel &model,
                           const gcn::Workload &workload,
                           StageSampleSet &out);

} // namespace gopim::predictor

#endif // GOPIM_PREDICTOR_DATAGEN_HH
