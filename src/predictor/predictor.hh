/**
 * @file
 * The execution-time predictor (Section V-A): one MLP per stage type
 * over the Table I features, trained on generated samples, plus the
 * profiling baseline that returns exact simulator times at a much
 * higher (modeled) collection cost.
 */

#ifndef GOPIM_PREDICTOR_PREDICTOR_HH
#define GOPIM_PREDICTOR_PREDICTOR_HH

#include <array>
#include <memory>

#include "gcn/time_model.hh"
#include "gcn/workload.hh"
#include "ml/data.hh"
#include "ml/mlp.hh"
#include "pipeline/stage.hh"
#include "predictor/datagen.hh"

namespace gopim::predictor {

/** MLP-based stage-time predictor. */
class TimePredictor
{
  public:
    /** mlpParams configures each per-stage-type MLP identically. */
    explicit TimePredictor(ml::MlpParams mlpParams = {});

    /** Train all four per-stage-type models on the sample set. */
    void fit(const StageSampleSet &samples);

    /** Predicted single-replica time of one stage (ns). */
    double predictStageTimeNs(const gcn::Workload &workload,
                              const pipeline::Stage &stage) const;

    /** Predicted times of all 4L stages (ns). */
    std::vector<double> predictAllStageTimesNs(
        const gcn::Workload &workload) const;

    bool fitted() const { return fitted_; }

  private:
    ml::MlpParams mlpParams_;
    std::array<std::unique_ptr<ml::MlpRegressor>, 4> models_;
    std::array<ml::StandardScaler, 4> scalers_;
    bool fitted_ = false;
};

/**
 * Profiling baseline: returns the simulator's exact stage times. Its
 * modeled collection cost (the paper reports 1688.9 s per profile on
 * ppa) is exposed so the Table VII overhead comparison can be made.
 */
class ProfilingPredictor
{
  public:
    explicit ProfilingPredictor(const gcn::StageTimeModel &model);

    double predictStageTimeNs(const gcn::Workload &workload,
                              const pipeline::Stage &stage) const;

    std::vector<double> predictAllStageTimesNs(
        const gcn::Workload &workload) const;

    /** Modeled wall-clock cost of collecting one profile (seconds). */
    double profilingCostSeconds(const gcn::Workload &workload) const;

  private:
    const gcn::StageTimeModel &model_;
};

} // namespace gopim::predictor

#endif // GOPIM_PREDICTOR_PREDICTOR_HH
