/**
 * @file
 * Table I input features of the execution-time predictor: the matrix
 * dimensions of the layer's Combination and Aggregation MVMs, the
 * graph sparsity, and the layer index.
 */

#ifndef GOPIM_PREDICTOR_FEATURES_HH
#define GOPIM_PREDICTOR_FEATURES_HH

#include <cstdint>
#include <vector>

#include "gcn/workload.hh"

namespace gopim::predictor {

/** The ten Table I features of one GCN layer. */
struct LayerFeatures
{
    double rIfmCo = 0.0; ///< rows of the CO input matrix (micro-batch)
    double cIfmCo = 0.0; ///< cols of the CO input matrix (F_in)
    double rWCo = 0.0;   ///< rows of the mapped CO weight matrix
    double cWCo = 0.0;   ///< cols of the mapped CO weight matrix
    double rAAg = 0.0;   ///< rows of the adjacency input (micro-batch)
    double cAAg = 0.0;   ///< cols of the adjacency input (|V|)
    double rFAg = 0.0;   ///< rows of the mapped AG feature matrix (|V|)
    double cFAg = 0.0;   ///< cols of the mapped AG feature matrix
    double sparsity = 0.0; ///< adjacency sparsity of the graph
    double layer = 0.0;  ///< layer index k

    /** Flatten to the predictor's 10-float input vector (log-scaled
     *  dimensions, which linearizes the multiplicative cost model). */
    std::vector<float> toVector() const;

    static constexpr size_t kNumFeatures = 10;
};

/** Extract the Table I features of layer `layer` of a workload. */
LayerFeatures extractFeatures(const gcn::Workload &workload,
                              uint32_t layer);

} // namespace gopim::predictor

#endif // GOPIM_PREDICTOR_FEATURES_HH
