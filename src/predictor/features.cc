#include "predictor/features.hh"

#include <cmath>

#include "common/logging.hh"

namespace gopim::predictor {

std::vector<float>
LayerFeatures::toVector() const
{
    auto lg = [](double v) {
        return static_cast<float>(std::log10(std::max(v, 1.0)));
    };
    return {lg(rIfmCo), lg(cIfmCo), lg(rWCo),
            lg(cWCo),   lg(rAAg),   lg(cAAg),
            lg(rFAg),   lg(cFAg),   static_cast<float>(sparsity),
            static_cast<float>(layer)};
}

LayerFeatures
extractFeatures(const gcn::Workload &workload, uint32_t layer)
{
    const auto [fin, fout] = workload.model.layerDims(layer);
    LayerFeatures f;
    f.rIfmCo = workload.microBatchSize;
    f.cIfmCo = fin;
    f.rWCo = fin;
    f.cWCo = fout;
    f.rAAg = workload.microBatchSize;
    f.cAAg = static_cast<double>(workload.dataset.numVertices);
    f.rFAg = static_cast<double>(workload.dataset.numVertices);
    f.cFAg = fout;
    f.sparsity = workload.dataset.stats().sparsity();
    f.layer = layer;
    return f;
}

} // namespace gopim::predictor
