#include "predictor/datagen.hh"

#include <cmath>

#include "common/logging.hh"
#include "predictor/features.hh"

namespace gopim::predictor {

size_t
StageSampleSet::totalSamples() const
{
    size_t total = 0;
    for (const auto &d : perStageType)
        total += d.size();
    return total;
}

WorkloadRandomizer::WorkloadRandomizer(uint64_t seed) : rng_(seed) {}

gcn::Workload
WorkloadRandomizer::next()
{
    gcn::Workload w;
    // Log-uniform vertex counts spanning the catalog's range.
    const double logV = rng_.uniform(std::log10(2e3), std::log10(3e6));
    w.dataset.name = "synthetic";
    w.dataset.numVertices =
        static_cast<uint64_t>(std::pow(10.0, logV));
    w.dataset.avgDegree = rng_.uniform(2.0, 600.0);
    w.dataset.numEdges = static_cast<uint64_t>(
        w.dataset.avgDegree *
        static_cast<double>(w.dataset.numVertices) / 2.0);
    w.dataset.featureDim =
        static_cast<uint32_t>(rng_.uniformInt(8, 1024));

    w.model.name = "synthetic";
    w.model.numLayers =
        static_cast<uint32_t>(rng_.uniformInt(2, 4));
    w.model.inputChannels = w.dataset.featureDim;
    w.model.hiddenChannels =
        static_cast<uint32_t>(rng_.uniformInt(32, 512));
    w.model.outputChannels =
        static_cast<uint32_t>(rng_.uniformInt(8, 512));

    w.microBatchSize = static_cast<uint32_t>(
        static_cast<uint64_t>(1) << rng_.uniformInt(4, 8)); // 16..256
    w.seed = rng_.next();
    return w;
}

void
appendWorkloadSamples(const gcn::StageTimeModel &model,
                      const gcn::Workload &workload, StageSampleSet &out)
{
    // Predictor samples describe the un-replicated pipeline under the
    // default policy (Section V-A predicts times *without* replicas).
    // Full updates make the mapping irrelevant to the stage times, so
    // the cheap analytic artifacts suffice (no degree materialization).
    gcn::ExecutionPolicy policy;
    const auto artifacts = gcn::MappingArtifacts::fullUpdateApprox(
        workload.dataset.numVertices, model.config().crossbar.rows);

    const auto stages =
        pipeline::buildTrainingStages(workload.model.numLayers);
    for (const auto &stage : stages) {
        const auto cost =
            model.cost(workload, policy, artifacts, stage);
        const auto features =
            extractFeatures(workload, stage.layer).toVector();
        const double target = std::log10(std::max(cost.totalNs(), 1.0));
        out.perStageType[StageSampleSet::indexOf(stage.type)].append(
            features, target);
    }
}

StageSampleSet
generateSamples(const gcn::StageTimeModel &model, size_t numWorkloads,
                uint64_t seed)
{
    GOPIM_ASSERT(numWorkloads > 0, "need at least one workload");
    WorkloadRandomizer randomizer(seed);
    StageSampleSet out;
    for (size_t i = 0; i < numWorkloads; ++i)
        appendWorkloadSamples(model, randomizer.next(), out);
    return out;
}

} // namespace gopim::predictor
