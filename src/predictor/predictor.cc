#include "predictor/predictor.hh"

#include <cmath>

#include "common/logging.hh"
#include "predictor/features.hh"

namespace gopim::predictor {

TimePredictor::TimePredictor(ml::MlpParams mlpParams)
    : mlpParams_(std::move(mlpParams))
{
}

void
TimePredictor::fit(const StageSampleSet &samples)
{
    for (size_t t = 0; t < models_.size(); ++t) {
        const ml::Dataset &data = samples.perStageType[t];
        GOPIM_ASSERT(data.size() > 0,
                     "no samples for stage type ", t);
        scalers_[t].fit(data.x);
        ml::Dataset scaled;
        scaled.x = scalers_[t].transform(data.x);
        scaled.y = data.y;
        models_[t] = std::make_unique<ml::MlpRegressor>(mlpParams_);
        models_[t]->fit(scaled);
    }
    fitted_ = true;
}

double
TimePredictor::predictStageTimeNs(const gcn::Workload &workload,
                                  const pipeline::Stage &stage) const
{
    GOPIM_ASSERT(fitted_, "predict before fit");
    const size_t t = StageSampleSet::indexOf(stage.type);
    const auto raw = extractFeatures(workload, stage.layer).toVector();

    // Apply the stage type's feature scaler to the single row.
    tensor::Matrix row(1, raw.size());
    std::copy(raw.begin(), raw.end(), row.rowPtr(0));
    const tensor::Matrix scaled = scalers_[t].transform(row);
    std::vector<float> features(scaled.rowPtr(0),
                                scaled.rowPtr(0) + scaled.cols());

    const double logTime = models_[t]->predict(features);
    return std::pow(10.0, logTime);
}

std::vector<double>
TimePredictor::predictAllStageTimesNs(const gcn::Workload &workload) const
{
    const auto stages =
        pipeline::buildTrainingStages(workload.model.numLayers);
    std::vector<double> times;
    times.reserve(stages.size());
    for (const auto &stage : stages)
        times.push_back(predictStageTimeNs(workload, stage));
    return times;
}

ProfilingPredictor::ProfilingPredictor(const gcn::StageTimeModel &model)
    : model_(model)
{
}

double
ProfilingPredictor::predictStageTimeNs(const gcn::Workload &workload,
                                       const pipeline::Stage &stage) const
{
    gcn::ExecutionPolicy policy;
    const auto artifacts = gcn::MappingArtifacts::fullUpdateApprox(
        workload.dataset.numVertices, model_.config().crossbar.rows);
    return model_.cost(workload, policy, artifacts, stage).totalNs();
}

std::vector<double>
ProfilingPredictor::predictAllStageTimesNs(
    const gcn::Workload &workload) const
{
    const auto stages =
        pipeline::buildTrainingStages(workload.model.numLayers);
    std::vector<double> times;
    times.reserve(stages.size());
    for (const auto &stage : stages)
        times.push_back(predictStageTimeNs(workload, stage));
    return times;
}

double
ProfilingPredictor::profilingCostSeconds(
    const gcn::Workload &workload) const
{
    // Profiling executes the full un-replicated serial pipeline for a
    // profiling run of 30 epochs (Section V-A's data collection);
    // this reproduces the ~1688.9 s figure on ppa-scale workloads.
    const auto times = predictAllStageTimesNs(workload);
    double sumNs = 0.0;
    for (double t : times)
        sumNs += t;
    const double epochNs =
        sumNs * static_cast<double>(workload.microBatchesPerEpoch());
    return epochNs * 30.0 / 1e9;
}

} // namespace gopim::predictor
