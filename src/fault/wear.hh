/**
 * @file
 * Endurance wear model driven by the training schedule's *actual*
 * update traffic: per-row-group write counters derived from the
 * selective-update policy (mapping/selective.hh), accumulated over
 * the run's epochs against the chip's per-cell write endurance.
 *
 * This is where ISU pays a reliability dividend the paper never
 * measures: theta < 1 means only the important fraction of rows is
 * rewritten every epoch while cold rows are written once per cold
 * period, so mean per-row wear drops to
 * theta + (1 - theta) / coldPeriod — a directly measurable lifetime
 * extension on top of the timing win.
 */

#ifndef GOPIM_FAULT_WEAR_HH
#define GOPIM_FAULT_WEAR_HH

#include <cstdint>
#include <vector>

#include "mapping/selective.hh"
#include "mapping/vertex_map.hh"

namespace gopim::fault {

/** Accumulated wear at the end of a run. */
struct WearState
{
    /** Expected row writes per epoch, averaged over all rows. */
    double meanWritesPerRowPerEpoch = 0.0;
    /** Expected row writes per epoch in the most-written group. */
    double peakGroupWritesPerEpoch = 0.0;
    /**
     * Endurance consumed by the hottest rows over the whole run
     * (epochs x hottest per-row rate / endurance); > 1 means those
     * rows outlived their rating before the run ended.
     */
    double lifetimeFraction = 0.0;
    /** Fraction of rows driven past their endurance by run end. */
    double wornRowFraction = 0.0;
    /** Per-group expected row writes per epoch (remap weights). */
    std::vector<double> groupWritesPerEpoch;
};

/**
 * Wear from a concrete vertex assignment and importance selection:
 * important rows are rewritten every epoch, cold rows once per cold
 * period (mapping::expectedEpochWrites supplies the per-group
 * totals). `writeEndurance` is the per-cell lifetime write rating.
 */
WearState computeWear(const mapping::VertexAssignment &assignment,
                      const std::vector<bool> &important,
                      const mapping::SelectiveUpdateParams &params,
                      uint32_t epochs, double writeEndurance);

/**
 * Analytic fallback when no assignment was materialized (the large-
 * graph full-update path): every row is written `updateFraction`
 * times per epoch in expectation, uniformly across groups.
 */
WearState approxWear(double updateFraction, uint32_t epochs,
                     double writeEndurance);

} // namespace gopim::fault

#endif // GOPIM_FAULT_WEAR_HH
