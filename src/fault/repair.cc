#include "fault/repair.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gopim::fault {

namespace {

/**
 * Combined per-cell fault rate: stuck cells plus worn rows (a worn
 * row reads back as stuck, so its whole width counts).
 */
double
rawCellFaultRate(const RepairContext &ctx)
{
    return std::min(1.0, ctx.params.stuckOnRate +
                             ctx.params.stuckOffRate +
                             ctx.wornRowFraction);
}

/**
 * Write-verify amplification: programming pulses are retried on
 * cells that fail verification, so write time scales with the fault
 * severity the write traffic actually lands on (up to four extra
 * verify/retry pulses at full exposure before the writer gives up).
 */
double
writeAmpFromExposure(double exposure)
{
    return 1.0 + 4.0 * std::clamp(exposure, 0.0, 1.0);
}

/** Fraction of rows containing >= 1 faulty cell at `cellRate`. */
double
rowFaultRate(double cellRate, uint32_t cols)
{
    return 1.0 - std::pow(1.0 - std::min(1.0, cellRate),
                          static_cast<double>(cols));
}

class NoRepair : public RepairPolicy
{
  public:
    std::string name() const override { return "none"; }

    RepairPlan
    plan(const RepairContext &ctx) const override
    {
        RepairPlan plan;
        plan.policy = name();
        plan.rawCellFaultRate = rawCellFaultRate(ctx);
        plan.residualCellFaultRate = plan.rawCellFaultRate;
        plan.residualDriftPerEpoch = ctx.params.driftPerEpoch;
        plan.writeAmplification =
            writeAmpFromExposure(ctx.writeExposure);
        return plan;
    }

    AccuracyEffects
    accuracyEffects(const FaultConfig &config) const override
    {
        AccuracyEffects effects;
        effects.stuckOnRate = config.params.stuckOnRate;
        effects.stuckOffRate = config.params.stuckOffRate;
        effects.driftPerEpoch = config.params.driftPerEpoch;
        return effects;
    }
};

class SpareRowRepair : public RepairPolicy
{
  public:
    std::string name() const override { return "spare-rows"; }

    RepairPlan
    plan(const RepairContext &ctx) const override
    {
        RepairPlan plan;
        plan.policy = name();
        plan.rawCellFaultRate = rawCellFaultRate(ctx);

        // Spares cover the worst rows first; coverage is the share
        // of faulty rows the spare budget can absorb.
        const double faultyRows =
            rowFaultRate(plan.rawCellFaultRate, ctx.cols);
        const double coverage =
            faultyRows > 0.0
                ? std::min(1.0, ctx.spareRowFraction / faultyRows)
                : 1.0;
        plan.residualCellFaultRate =
            plan.rawCellFaultRate * (1.0 - coverage);
        // Spares cannot fix retention drift.
        plan.residualDriftPerEpoch = ctx.params.driftPerEpoch;
        plan.writeAmplification =
            writeAmpFromExposure(ctx.writeExposure * (1.0 - coverage));
        // Rows held back as spares shrink usable crossbar capacity.
        plan.crossbarOverheadFactor =
            1.0 / (1.0 - std::min(0.5, ctx.spareRowFraction));
        // One-time reconfiguration: re-program every remapped row.
        const double repairedRows =
            coverage * faultyRows * static_cast<double>(ctx.rows);
        plan.remapStallNs = repairedRows * ctx.writeLatencyNs;
        return plan;
    }

    AccuracyEffects
    accuracyEffects(const FaultConfig &config) const override
    {
        AccuracyEffects effects;
        effects.stuckOnRate = config.params.stuckOnRate;
        effects.stuckOffRate = config.params.stuckOffRate;
        effects.driftPerEpoch = config.params.driftPerEpoch;
        effects.spareRowFraction = config.spareRowFraction;
        return effects;
    }
};

class EccDuplicateRepair : public RepairPolicy
{
  public:
    std::string name() const override { return "ecc-dup"; }

    RepairPlan
    plan(const RepairContext &ctx) const override
    {
        RepairPlan plan;
        plan.policy = name();
        plan.rawCellFaultRate = rawCellFaultRate(ctx);
        // A fault survives only when both independent copies are
        // corrupted in the same cell.
        plan.residualCellFaultRate =
            plan.rawCellFaultRate * plan.rawCellFaultRate;
        plan.residualDriftPerEpoch = ctx.params.driftPerEpoch;
        // Every weight is written twice; duplication also doubles
        // the crossbars backing each replica.
        plan.writeAmplification = 2.0;
        plan.crossbarOverheadFactor = 2.0;
        return plan;
    }

    AccuracyEffects
    accuracyEffects(const FaultConfig &config) const override
    {
        AccuracyEffects effects;
        effects.stuckOnRate = config.params.stuckOnRate;
        effects.stuckOffRate = config.params.stuckOffRate;
        effects.driftPerEpoch = config.params.driftPerEpoch;
        effects.eccDuplicate = true;
        return effects;
    }
};

class RefreshRepair : public RepairPolicy
{
  public:
    std::string name() const override { return "refresh"; }

    RepairPlan
    plan(const RepairContext &ctx) const override
    {
        GOPIM_ASSERT(ctx.refreshPeriodMb > 0,
                     "refresh period must be >= 1 micro-batch");
        RepairPlan plan;
        plan.policy = name();
        plan.rawCellFaultRate = rawCellFaultRate(ctx);
        // Re-programming fixes drift, not stuck cells.
        plan.residualCellFaultRate = plan.rawCellFaultRate;
        plan.residualDriftPerEpoch = 0.0;
        plan.writeAmplification =
            writeAmpFromExposure(ctx.writeExposure);
        plan.refreshEveryMicroBatches = ctx.refreshPeriodMb;
        // A refresh re-programs every row of the crossbar, stalling
        // the pipeline for the full array write.
        plan.refreshStallNs =
            static_cast<double>(ctx.rows) * ctx.writeLatencyNs;
        plan.rowWritesPerRefresh = ctx.rows;
        return plan;
    }

    AccuracyEffects
    accuracyEffects(const FaultConfig &config) const override
    {
        AccuracyEffects effects;
        effects.stuckOnRate = config.params.stuckOnRate;
        effects.stuckOffRate = config.params.stuckOffRate;
        effects.driftPerEpoch = config.params.driftPerEpoch;
        effects.refreshPeriodEpochs =
            std::max(1u, config.refreshPeriodEpochs);
        return effects;
    }
};

} // namespace

const RepairPolicy &
repairPolicyFor(RepairKind kind)
{
    static const NoRepair none;
    static const SpareRowRepair spare;
    static const EccDuplicateRepair ecc;
    static const RefreshRepair refresh;
    switch (kind) {
      case RepairKind::None:
        return none;
      case RepairKind::SpareRows:
        return spare;
      case RepairKind::EccDuplicate:
        return ecc;
      case RepairKind::Refresh:
        return refresh;
    }
    panic("unknown repair kind");
}

AccuracyEffects
accuracyEffectsFor(const FaultConfig &config)
{
    return repairPolicyFor(config.repair).accuracyEffects(config);
}

} // namespace gopim::fault
