#include "fault/wear.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gopim::fault {

namespace {

/**
 * Fraction of a row population worn out when each row receives
 * `writesPerEpoch * epochs` writes against `endurance`. Modeled as a
 * deterministic ramp: rows reach their rating at 1.0x and the whole
 * population is dead by 2.0x (cell-to-cell endurance spread).
 */
double
wornShare(double writesPerEpoch, uint32_t epochs, double endurance)
{
    GOPIM_ASSERT(endurance > 0.0, "endurance must be positive");
    const double consumed =
        writesPerEpoch * static_cast<double>(epochs) / endurance;
    return std::clamp(consumed - 1.0, 0.0, 1.0);
}

} // namespace

WearState
computeWear(const mapping::VertexAssignment &assignment,
            const std::vector<bool> &important,
            const mapping::SelectiveUpdateParams &params,
            uint32_t epochs, double writeEndurance)
{
    GOPIM_ASSERT(assignment.groupOf.size() == important.size(),
                 "assignment/importance size mismatch");
    WearState wear;
    wear.groupWritesPerEpoch =
        mapping::expectedEpochWrites(assignment, important, params);

    double total = 0.0;
    for (const double writes : wear.groupWritesPerEpoch) {
        total += writes;
        wear.peakGroupWritesPerEpoch =
            std::max(wear.peakGroupWritesPerEpoch, writes);
    }
    const auto numRows = static_cast<double>(important.size());
    wear.meanWritesPerRowPerEpoch = total / numRows;

    // Hot rows (important, or every row without selective updating)
    // are rewritten once per epoch; cold rows once per cold period.
    size_t hotRows = 0;
    for (const bool hot : important)
        hotRows += hot;
    const double hotShare = static_cast<double>(hotRows) / numRows;
    const double coldRate =
        1.0 / static_cast<double>(std::max(1u, params.coldPeriod));

    wear.lifetimeFraction = static_cast<double>(epochs) /
                            writeEndurance *
                            (hotRows > 0 ? 1.0 : coldRate);
    wear.wornRowFraction =
        hotShare * wornShare(1.0, epochs, writeEndurance) +
        (1.0 - hotShare) * wornShare(coldRate, epochs, writeEndurance);
    return wear;
}

WearState
approxWear(double updateFraction, uint32_t epochs,
           double writeEndurance)
{
    GOPIM_ASSERT(updateFraction >= 0.0 && updateFraction <= 1.0,
                 "update fraction must be in [0, 1]");
    WearState wear;
    wear.meanWritesPerRowPerEpoch = updateFraction;
    wear.peakGroupWritesPerEpoch = updateFraction;
    wear.lifetimeFraction =
        static_cast<double>(epochs) / writeEndurance;
    wear.wornRowFraction =
        wornShare(updateFraction, epochs, writeEndurance);
    return wear;
}

} // namespace gopim::fault
