/**
 * @file
 * Repair strategies behind a common RepairPolicy interface. Each
 * policy turns a fault/wear situation into
 *
 *  - a timing plan (RepairPlan): write-time amplification from
 *    re-write pulses on faulty cells, crossbar capacity overhead,
 *    periodic refresh events that steal pipeline cycles (executed by
 *    the scheduling engines via sim::EventKnobs), and one-time remap
 *    reconfiguration stalls;
 *  - accuracy effects (AccuracyEffects): the residual fault/drift
 *    exposure the functional trainer's crossbar image still sees
 *    after repair.
 *
 * All plans are closed-form and deterministic: the same context
 * always produces the same plan, which the property tests assert.
 */

#ifndef GOPIM_FAULT_REPAIR_HH
#define GOPIM_FAULT_REPAIR_HH

#include <cstdint>
#include <string>

#include "fault/model.hh"
#include "fault/wear.hh"

namespace gopim::fault {

/** Everything a policy needs to cost a repair for one run. */
struct RepairContext
{
    FaultParams params;
    double spareRowFraction = 0.05;
    uint32_t refreshPeriodMb = 512;
    /** Crossbar geometry (rows/cols) and row-write latency. */
    uint32_t rows = 64;
    uint32_t cols = 64;
    double writeLatencyNs = 50.88;
    /** Endurance-worn rows behave like stuck cells (wear.hh). */
    double wornRowFraction = 0.0;
    /**
     * Mapping-aware fault severity the write traffic actually lands
     * on (fault::writeExposure after any fault-aware remap); equals
     * the raw cell fault rate when no mapping information exists.
     */
    double writeExposure = 0.0;
    uint32_t totalMicroBatches = 1;
};

/** Deterministic timing consequences of a repair decision. */
struct RepairPlan
{
    std::string policy = "none";
    /** Cell fault rate before repair (stuck + worn). */
    double rawCellFaultRate = 0.0;
    /** Cell fault rate still visible after repair. */
    double residualCellFaultRate = 0.0;
    /** Drift per epoch still visible after repair. */
    double residualDriftPerEpoch = 0.0;
    /** Multiplier on write-bound (fixed) stage time + write events. */
    double writeAmplification = 1.0;
    /** Multiplier on crossbars per replica (spares / duplication). */
    double crossbarOverheadFactor = 1.0;
    /** Refresh cadence in micro-batches (0 = no refresh events). */
    uint32_t refreshEveryMicroBatches = 0;
    /** Pipeline stall per refresh event (ns). */
    double refreshStallNs = 0.0;
    /** Row-write energy events each refresh adds. */
    uint64_t rowWritesPerRefresh = 0;
    /** One-time reconfiguration stall (spare-row programming). */
    double remapStallNs = 0.0;
};

/** Residual non-idealities the accuracy path must emulate. */
struct AccuracyEffects
{
    double stuckOnRate = 0.0;
    double stuckOffRate = 0.0;
    double driftPerEpoch = 0.0;
    /** Trainer-side refresh cadence in epochs (0 = never). */
    uint32_t refreshPeriodEpochs = 0;
    /** Mask faults against an independent duplicate map (ECC). */
    bool eccDuplicate = false;
    /** Spare-row repair budget for CellFaultMap::repairRows. */
    double spareRowFraction = 0.0;
};

/** A repair strategy: costing + residual-fault semantics. */
class RepairPolicy
{
  public:
    virtual ~RepairPolicy() = default;

    /** Short identifier matching toString(RepairKind). */
    virtual std::string name() const = 0;

    /** Deterministic timing plan for one run. */
    virtual RepairPlan plan(const RepairContext &ctx) const = 0;

    /** What the trainer still sees after this repair. */
    virtual AccuracyEffects
    accuracyEffects(const FaultConfig &config) const = 0;
};

/** Shared immutable policy instance for a kind (never null). */
const RepairPolicy &repairPolicyFor(RepairKind kind);

/** Convenience: policy lookup + accuracyEffects in one call. */
AccuracyEffects accuracyEffectsFor(const FaultConfig &config);

} // namespace gopim::fault

#endif // GOPIM_FAULT_REPAIR_HH
