/**
 * @file
 * ReRAM device fault models: stuck-at-ON/OFF cell maps (Bernoulli
 * per-cell), time-dependent conductance drift, and the configuration
 * record that selects a repair strategy. Long-running GCN *training*
 * rewrites weight cells every epoch, so device reliability is a
 * first-class axis here: the fault subsystem turns fault rates and
 * endurance wear into (a) timing overheads through the repair
 * policies (fault/repair.hh) and (b) accuracy effects through the
 * functional trainer's fault-aware crossbar image.
 */

#ifndef GOPIM_FAULT_MODEL_HH
#define GOPIM_FAULT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.hh"

namespace gopim::fault {

/** Device-level fault parameters (all rates are per cell). */
struct FaultParams
{
    /** Bernoulli rate of cells stuck at maximum conductance. */
    double stuckOnRate = 0.0;
    /** Bernoulli rate of cells stuck at minimum conductance. */
    double stuckOffRate = 0.0;
    /**
     * Relative conductance lost per epoch since the last re-program
     * (retention drift toward G_min); repaired only by refresh.
     */
    double driftPerEpoch = 0.0;
    /** Seed for fault-map placement (independent of the sim seed). */
    uint64_t seed = 17;

    /** Any non-zero fault mechanism configured? */
    bool any() const
    {
        return stuckOnRate > 0.0 || stuckOffRate > 0.0 ||
               driftPerEpoch > 0.0;
    }
};

/** Repair strategy selector (policies live in fault/repair.hh). */
enum class RepairKind
{
    None,         ///< faults land unmitigated
    SpareRows,    ///< remap faulty/worn rows onto provisioned spares
    EccDuplicate, ///< duplicate columns; a fault must hit both copies
    Refresh,      ///< periodically re-program (fixes drift, not stuck)
};

std::string toString(RepairKind kind);

/** Non-fatal parse of "none"/"spare"/"ecc"/"refresh" (+ long forms). */
bool tryRepairKindFromString(const std::string &name, RepairKind *out);

/** Parse or fatal() — the CLI entry-point form. */
RepairKind repairKindFromString(const std::string &name);

/** All repair kinds in sweep order. */
const std::vector<RepairKind> &allRepairKinds();

/**
 * Complete fault/repair configuration carried by core::SystemConfig
 * and the serve request schema. Default-constructed it is disabled
 * and every integration point takes the exact pre-fault code path —
 * the zero-fault bit-identity tests rely on that.
 */
struct FaultConfig
{
    FaultParams params;
    RepairKind repair = RepairKind::None;
    /** Fraction of rows provisioned as spares (SpareRows). */
    double spareRowFraction = 0.05;
    /** Micro-batches between re-program refreshes (Refresh, timing). */
    uint32_t refreshPeriodMb = 512;
    /** Epochs between refreshes seen by the trainer (Refresh). */
    uint32_t refreshPeriodEpochs = 5;

    /** Anything for the integration layers to do? */
    bool enabled() const
    {
        return params.any() || repair != RepairKind::None;
    }
};

/**
 * Per-cell stuck-fault map for one crossbar-mapped matrix, placed by
 * a Bernoulli draw per cell from an explicit seed (deterministic and
 * independent of traversal order elsewhere). Used by the functional
 * trainer to corrupt the programmed weight image and by tests.
 */
class CellFaultMap
{
  public:
    enum class Cell : uint8_t
    {
        Ok = 0,
        StuckOff = 1,
        StuckOn = 2,
    };

    CellFaultMap(size_t rows, size_t cols, const FaultParams &params,
                 uint64_t seed);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    Cell at(size_t r, size_t c) const { return cells_[r * cols_ + c]; }

    /** Fraction of cells carrying any stuck fault. */
    double faultFraction() const;

    /** Rows containing at least one stuck cell. */
    size_t faultyRowCount() const;

    /**
     * Overwrite a programmed matrix the way the stuck cells would
     * read back: stuck-OFF cells read G_min (0), stuck-ON cells read
     * the maximum programmed magnitude (the positive rail of the
     * differential pair).
     */
    void apply(tensor::Matrix &programmed) const;

    /**
     * Spare-row repair: clear the faults of up to
     * floor(fraction * rows) rows, worst (most faulty) rows first,
     * ties toward the lower row index. Rows without faults consume
     * no budget. Returns the number of rows actually remapped.
     */
    size_t repairRows(double fraction);

    /**
     * ECC-style duplicate-and-compare masking: a fault survives only
     * where `other` holds the same fault in the same cell (both
     * copies corrupted identically — otherwise the comparator picks
     * the healthy copy).
     */
    CellFaultMap maskedWith(const CellFaultMap &other) const;

  private:
    CellFaultMap(size_t rows, size_t cols);

    size_t rows_;
    size_t cols_;
    std::vector<Cell> cells_;
};

/**
 * Deterministic per-row-group fault severity: each physical row
 * group's fraction of faulty cells, drawn uniformly in
 * [0, 2 * cellFaultRate) so the mean matches the cell rate but
 * groups differ — which is what makes fault-aware remapping
 * (mapping::remapGroupsByHealth) worth doing.
 */
std::vector<double> groupFaultScores(uint32_t numGroups,
                                     double cellFaultRate,
                                     uint64_t seed);

/**
 * Write-traffic-weighted mean fault severity: the expected fault
 * rate a row write lands on, given per-group write loads and
 * per-group fault scores. Lower is better; fault-aware remapping
 * exists to reduce exactly this number.
 */
double writeExposure(const std::vector<double> &groupWrites,
                     const std::vector<double> &groupFaultScores);

} // namespace gopim::fault

#endif // GOPIM_FAULT_MODEL_HH
