#include "fault/model.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace gopim::fault {

std::string
toString(RepairKind kind)
{
    switch (kind) {
      case RepairKind::None:
        return "none";
      case RepairKind::SpareRows:
        return "spare-rows";
      case RepairKind::EccDuplicate:
        return "ecc-dup";
      case RepairKind::Refresh:
        return "refresh";
    }
    panic("unknown repair kind");
}

bool
tryRepairKindFromString(const std::string &name, RepairKind *out)
{
    if (name == "none") {
        *out = RepairKind::None;
        return true;
    }
    if (name == "spare" || name == "spare-rows") {
        *out = RepairKind::SpareRows;
        return true;
    }
    if (name == "ecc" || name == "ecc-dup") {
        *out = RepairKind::EccDuplicate;
        return true;
    }
    if (name == "refresh") {
        *out = RepairKind::Refresh;
        return true;
    }
    return false;
}

RepairKind
repairKindFromString(const std::string &name)
{
    RepairKind kind;
    if (!tryRepairKindFromString(name, &kind))
        fatal("unknown repair policy '", name,
              "' (try none, spare, ecc, refresh)");
    return kind;
}

const std::vector<RepairKind> &
allRepairKinds()
{
    static const std::vector<RepairKind> kinds = {
        RepairKind::None, RepairKind::SpareRows,
        RepairKind::EccDuplicate, RepairKind::Refresh};
    return kinds;
}

CellFaultMap::CellFaultMap(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, Cell::Ok)
{
}

CellFaultMap::CellFaultMap(size_t rows, size_t cols,
                           const FaultParams &params, uint64_t seed)
    : CellFaultMap(rows, cols)
{
    GOPIM_ASSERT(rows > 0 && cols > 0, "fault map needs a shape");
    GOPIM_ASSERT(params.stuckOnRate >= 0.0 && params.stuckOnRate < 1.0,
                 "stuck-on rate must be in [0, 1)");
    GOPIM_ASSERT(
        params.stuckOffRate >= 0.0 && params.stuckOffRate < 1.0,
        "stuck-off rate must be in [0, 1)");
    Rng rng(seed);
    for (auto &cell : cells_) {
        const double u = rng.uniform();
        if (u < params.stuckOffRate)
            cell = Cell::StuckOff;
        else if (u < params.stuckOffRate + params.stuckOnRate)
            cell = Cell::StuckOn;
    }
}

double
CellFaultMap::faultFraction() const
{
    size_t faulty = 0;
    for (const Cell cell : cells_)
        faulty += cell != Cell::Ok;
    return static_cast<double>(faulty) /
           static_cast<double>(cells_.size());
}

size_t
CellFaultMap::faultyRowCount() const
{
    size_t count = 0;
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t c = 0; c < cols_; ++c) {
            if (at(r, c) != Cell::Ok) {
                ++count;
                break;
            }
        }
    }
    return count;
}

void
CellFaultMap::apply(tensor::Matrix &programmed) const
{
    GOPIM_ASSERT(programmed.rows() == rows_ &&
                     programmed.cols() == cols_,
                 "fault map / matrix shape mismatch");
    float maxAbs = 0.0f;
    const float *p = programmed.data();
    for (size_t i = 0; i < programmed.size(); ++i)
        maxAbs = std::max(maxAbs, std::fabs(p[i]));

    float *out = programmed.data();
    for (size_t i = 0; i < cells_.size(); ++i) {
        switch (cells_[i]) {
          case Cell::Ok:
            break;
          case Cell::StuckOff:
            out[i] = 0.0f;
            break;
          case Cell::StuckOn:
            out[i] = maxAbs;
            break;
        }
    }
}

size_t
CellFaultMap::repairRows(double fraction)
{
    GOPIM_ASSERT(fraction >= 0.0 && fraction <= 1.0,
                 "spare-row fraction must be in [0, 1]");
    const size_t budget =
        static_cast<size_t>(fraction * static_cast<double>(rows_));

    // Rank rows by fault count descending, ties toward lower index.
    std::vector<std::pair<size_t, size_t>> rowFaults; // (count, row)
    for (size_t r = 0; r < rows_; ++r) {
        size_t count = 0;
        for (size_t c = 0; c < cols_; ++c)
            count += at(r, c) != Cell::Ok;
        if (count > 0)
            rowFaults.push_back({count, r});
    }
    std::sort(rowFaults.begin(), rowFaults.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
              });

    const size_t repaired = std::min(budget, rowFaults.size());
    for (size_t i = 0; i < repaired; ++i) {
        const size_t r = rowFaults[i].second;
        std::fill(cells_.begin() + static_cast<long>(r * cols_),
                  cells_.begin() + static_cast<long>((r + 1) * cols_),
                  Cell::Ok);
    }
    return repaired;
}

CellFaultMap
CellFaultMap::maskedWith(const CellFaultMap &other) const
{
    GOPIM_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                 "ECC mask shape mismatch");
    CellFaultMap out(rows_, cols_);
    for (size_t i = 0; i < cells_.size(); ++i) {
        if (cells_[i] != Cell::Ok && cells_[i] == other.cells_[i])
            out.cells_[i] = cells_[i];
    }
    return out;
}

std::vector<double>
groupFaultScores(uint32_t numGroups, double cellFaultRate,
                 uint64_t seed)
{
    GOPIM_ASSERT(numGroups > 0, "need at least one group");
    GOPIM_ASSERT(cellFaultRate >= 0.0, "fault rate must be >= 0");
    Rng rng(seed);
    std::vector<double> scores(numGroups);
    for (auto &score : scores)
        score = 2.0 * cellFaultRate * rng.uniform();
    return scores;
}

double
writeExposure(const std::vector<double> &groupWrites,
              const std::vector<double> &groupFaultScores)
{
    GOPIM_ASSERT(groupWrites.size() == groupFaultScores.size(),
                 "writes/scores size mismatch");
    double weighted = 0.0, total = 0.0;
    for (size_t g = 0; g < groupWrites.size(); ++g) {
        weighted += groupWrites[g] * groupFaultScores[g];
        total += groupWrites[g];
    }
    return total > 0.0 ? weighted / total : 0.0;
}

} // namespace gopim::fault
