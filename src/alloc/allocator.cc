#include "alloc/allocator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "pipeline/schedule.hh"

namespace gopim::alloc {

void
AllocationProblem::validate() const
{
    const size_t n = stages.size();
    if (n == 0)
        fatal("allocation problem with no stages");
    if (scalableTimesNs.size() != n || fixedTimesNs.size() != n ||
        crossbarsPerReplica.size() != n)
        fatal("allocation problem: array size mismatch");
    for (size_t i = 0; i < n; ++i) {
        if (scalableTimesNs[i] < 0.0 || fixedTimesNs[i] < 0.0)
            fatal("allocation problem: negative stage time");
        if (crossbarsPerReplica[i] == 0)
            fatal("allocation problem: zero-crossbar stage");
    }
    if (numMicroBatches == 0)
        fatal("allocation problem: zero micro-batches");
}

double
stageTimeNs(const AllocationProblem &problem, size_t stage,
            uint32_t replicas)
{
    GOPIM_ASSERT(stage < problem.numStages(), "stage out of range");
    GOPIM_ASSERT(replicas >= 1, "stage needs at least one replica");
    uint32_t effective = replicas;
    if (problem.maxUsefulReplicas > 0)
        effective = std::min(effective, problem.maxUsefulReplicas);
    return problem.fixedTimesNs[stage] +
           problem.scalableTimesNs[stage] /
               static_cast<double>(effective);
}

std::vector<double>
stageTimesNs(const AllocationProblem &problem,
             const std::vector<uint32_t> &replicas)
{
    GOPIM_ASSERT(replicas.size() == problem.numStages(),
                 "replica vector size mismatch");
    std::vector<double> times(problem.numStages());
    for (size_t i = 0; i < times.size(); ++i)
        times[i] = stageTimeNs(problem, i, replicas[i]);
    return times;
}

double
makespanNs(const AllocationProblem &problem,
           const std::vector<uint32_t> &replicas)
{
    return pipeline::pipelinedMakespanNs(
        stageTimesNs(problem, replicas), problem.numMicroBatches);
}

AllocationResult
Allocator::finish(const AllocationProblem &problem,
                  std::vector<uint32_t> replicas)
{
    GOPIM_ASSERT(replicas.size() == problem.numStages(),
                 "replica vector size mismatch");
    AllocationResult result;
    result.totalCrossbars = 0;
    for (size_t i = 0; i < replicas.size(); ++i) {
        replicas[i] = std::max(replicas[i], 1u);
        result.totalCrossbars +=
            static_cast<uint64_t>(replicas[i]) *
            problem.crossbarsPerReplica[i];
    }
    result.replicas = std::move(replicas);
    return result;
}

} // namespace gopim::alloc
