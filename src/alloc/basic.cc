#include "alloc/basic.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gopim::alloc {

namespace {

using pipeline::StageType;

/** True for stages in the Combination class (forward/backward MVMs). */
bool
isCombinationClass(StageType t)
{
    return t == StageType::Combination || t == StageType::LossCompute;
}

/**
 * Split the spare budget across stages proportionally to `weights`,
 * converting each share into whole replicas of that stage's footprint.
 */
std::vector<uint32_t>
proportionalReplicas(const AllocationProblem &problem,
                     const std::vector<double> &weights)
{
    double weightSum = 0.0;
    for (double w : weights)
        weightSum += w;

    std::vector<uint32_t> replicas(problem.numStages(), 1);
    if (weightSum <= 0.0)
        return replicas;

    for (size_t i = 0; i < problem.numStages(); ++i) {
        const double share = static_cast<double>(problem.spareCrossbars) *
                             weights[i] / weightSum;
        const auto extra = static_cast<uint32_t>(
            share / static_cast<double>(problem.crossbarsPerReplica[i]));
        replicas[i] += extra;
        // Even naive policies know the available parallelism bound.
        if (problem.maxUsefulReplicas > 0)
            replicas[i] =
                std::min(replicas[i], problem.maxUsefulReplicas);
    }
    return replicas;
}

} // namespace

AllocationResult
SerialAllocator::allocate(const AllocationProblem &problem) const
{
    problem.validate();
    return finish(problem,
                  std::vector<uint32_t>(problem.numStages(), 1));
}

FixedRatioAllocator::FixedRatioAllocator(double comboWeight,
                                         double aggWeight)
    : comboWeight_(comboWeight), aggWeight_(aggWeight)
{
    GOPIM_ASSERT(comboWeight > 0.0 && aggWeight > 0.0,
                 "ratio weights must be positive");
}

AllocationResult
FixedRatioAllocator::allocate(const AllocationProblem &problem) const
{
    problem.validate();
    std::vector<double> weights(problem.numStages());
    for (size_t i = 0; i < problem.numStages(); ++i)
        weights[i] = isCombinationClass(problem.stages[i].type)
                         ? comboWeight_
                         : aggWeight_;
    return finish(problem, proportionalReplicas(problem, weights));
}

AllocationResult
SpaceProportionalAllocator::allocate(
    const AllocationProblem &problem) const
{
    problem.validate();
    std::vector<double> weights(problem.numStages());
    for (size_t i = 0; i < problem.numStages(); ++i)
        weights[i] =
            static_cast<double>(problem.crossbarsPerReplica[i]);
    return finish(problem, proportionalReplicas(problem, weights));
}

AllocationResult
CombinationOnlyAllocator::allocate(const AllocationProblem &problem) const
{
    problem.validate();
    std::vector<double> weights(problem.numStages(), 0.0);
    bool any = false;
    for (size_t i = 0; i < problem.numStages(); ++i) {
        if (problem.stages[i].type == pipeline::StageType::Combination) {
            weights[i] =
                static_cast<double>(problem.crossbarsPerReplica[i]);
            any = true;
        }
    }
    if (!any)
        return finish(problem,
                      std::vector<uint32_t>(problem.numStages(), 1));
    return finish(problem, proportionalReplicas(problem, weights));
}

} // namespace gopim::alloc
