#include "alloc/annealing.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "alloc/greedy_heap.hh"

namespace gopim::alloc {

AnnealingAllocator::AnnealingAllocator(AnnealingParams params)
    : params_(params)
{
    GOPIM_ASSERT(params_.iterations >= 1, "need at least one step");
    GOPIM_ASSERT(params_.coolingRate > 0.0 &&
                     params_.coolingRate < 1.0,
                 "cooling rate must be in (0, 1)");
}

AllocationResult
AnnealingAllocator::allocate(const AllocationProblem &problem) const
{
    problem.validate();
    const size_t n = problem.numStages();
    Rng rng(params_.seed);

    // Warm start from the greedy solution; annealing then explores
    // single-replica add/remove/move perturbations around it.
    std::vector<uint32_t> current =
        GreedyHeapAllocator(params_.maxReplicasPerStage, 0.0)
            .allocate(problem)
            .replicas;

    auto spareUsed = [&](const std::vector<uint32_t> &r) {
        uint64_t used = 0;
        for (size_t i = 0; i < n; ++i)
            used += static_cast<uint64_t>(r[i] - 1) *
                    problem.crossbarsPerReplica[i];
        return used;
    };

    double currentCost = makespanNs(problem, current);
    std::vector<uint32_t> best = current;
    double bestCost = currentCost;
    double temperature = params_.initialTemperature * currentCost;

    for (uint32_t iter = 0; iter < params_.iterations; ++iter) {
        std::vector<uint32_t> candidate = current;

        // Perturbation: add one replica, remove one, or move one.
        const auto move = rng.uniformInt(uint64_t{3});
        const auto stage = static_cast<size_t>(
            rng.uniformInt(static_cast<uint64_t>(n)));
        if (move == 0) {
            if (candidate[stage] < params_.maxReplicasPerStage)
                ++candidate[stage];
        } else if (move == 1) {
            if (candidate[stage] > 1)
                --candidate[stage];
        } else {
            const auto other = static_cast<size_t>(
                rng.uniformInt(static_cast<uint64_t>(n)));
            if (candidate[stage] > 1 &&
                candidate[other] < params_.maxReplicasPerStage) {
                --candidate[stage];
                ++candidate[other];
            }
        }
        if (spareUsed(candidate) > problem.spareCrossbars)
            continue;

        const double candidateCost = makespanNs(problem, candidate);
        const double delta = candidateCost - currentCost;
        if (delta <= 0.0 ||
            rng.uniform() < std::exp(-delta / std::max(temperature,
                                                       1e-12))) {
            current = std::move(candidate);
            currentCost = candidateCost;
            if (currentCost < bestCost) {
                bestCost = currentCost;
                best = current;
            }
        }
        temperature *= params_.coolingRate;
    }
    return finish(problem, std::move(best));
}

} // namespace gopim::alloc
