/**
 * @file
 * Baseline allocation policies from the paper's comparison set:
 * Serial (no replicas), FixedRatio (ReGraphX's 1:2 CO:AG split),
 * SpaceProportional (SlimGNN-like, budget split by space footprint,
 * which yields equal extra replica counts per stage — the Pipelayer
 * behavior), and CombinationOnly (ReFlip replicates CO stages only).
 */

#ifndef GOPIM_ALLOC_BASIC_HH
#define GOPIM_ALLOC_BASIC_HH

#include "alloc/allocator.hh"

namespace gopim::alloc {

/** No replication at all: every stage keeps one replica. */
class SerialAllocator : public Allocator
{
  public:
    AllocationResult allocate(
        const AllocationProblem &problem) const override;
    std::string name() const override { return "Serial"; }
};

/**
 * Fixed-ratio split between Combination-class stages (CO, LC) and
 * Aggregation-class stages (AG, GC), ReGraphX style (1:2 default).
 */
class FixedRatioAllocator : public Allocator
{
  public:
    FixedRatioAllocator(double comboWeight = 1.0, double aggWeight = 2.0);

    AllocationResult allocate(
        const AllocationProblem &problem) const override;
    std::string name() const override { return "FixedRatio(1:2)"; }

  private:
    double comboWeight_;
    double aggWeight_;
};

/**
 * Budget split proportional to each stage's space footprint
 * (crossbars per replica). Every stage ends up with roughly the same
 * number of extra replicas, which is how SlimGNN-like behaves.
 */
class SpaceProportionalAllocator : public Allocator
{
  public:
    AllocationResult allocate(
        const AllocationProblem &problem) const override;
    std::string name() const override { return "SpaceProportional"; }
};

/** Replicas only for Combination stages (ReFlip). */
class CombinationOnlyAllocator : public Allocator
{
  public:
    AllocationResult allocate(
        const AllocationProblem &problem) const override;
    std::string name() const override { return "CombinationOnly"; }
};

} // namespace gopim::alloc

#endif // GOPIM_ALLOC_BASIC_HH
