#include "alloc/dp.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/logging.hh"

namespace gopim::alloc {

BottleneckSweepAllocator::BottleneckSweepAllocator(
    uint32_t maxReplicasPerStage)
    : maxReplicas_(maxReplicasPerStage)
{
    GOPIM_ASSERT(maxReplicas_ >= 1, "replica cap must be >= 1");
}

AllocationResult
BottleneckSweepAllocator::allocate(const AllocationProblem &problem) const
{
    problem.validate();
    const size_t n = problem.numStages();

    // Candidate bottleneck times: every achievable stage time.
    std::vector<double> candidates;
    for (size_t i = 0; i < n; ++i)
        for (uint32_t r = 1; r <= maxReplicas_; ++r)
            candidates.push_back(stageTimeNs(problem, i, r));
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());

    double bestMakespan = std::numeric_limits<double>::infinity();
    std::vector<uint32_t> bestReplicas(n, 1);

    for (double tau : candidates) {
        // Minimal replicas bringing every stage to <= tau.
        std::vector<uint32_t> replicas(n, 1);
        uint64_t used = 0;
        bool feasible = true;
        for (size_t i = 0; i < n; ++i) {
            uint32_t r = 1;
            while (r <= maxReplicas_ &&
                   stageTimeNs(problem, i, r) > tau)
                ++r;
            if (r > maxReplicas_ ||
                stageTimeNs(problem, i, r) > tau) {
                feasible = false;
                break;
            }
            replicas[i] = r;
            used += static_cast<uint64_t>(r - 1) *
                    problem.crossbarsPerReplica[i];
        }
        if (!feasible || used > problem.spareCrossbars)
            continue;

        // Spend leftover budget on the best per-crossbar time deltas
        // (reduces the sum term of Eq. 6 below the tau ceiling).
        uint64_t leftover = problem.spareCrossbars - used;
        auto gain = [&](size_t i) {
            if (replicas[i] >= maxReplicas_)
                return 0.0;
            return (stageTimeNs(problem, i, replicas[i]) -
                    stageTimeNs(problem, i, replicas[i] + 1)) /
                   static_cast<double>(problem.crossbarsPerReplica[i]);
        };
        using Item = std::pair<double, size_t>;
        std::priority_queue<Item> pq;
        for (size_t i = 0; i < n; ++i)
            pq.push({gain(i), i});
        while (!pq.empty() && pq.top().first > 0.0) {
            auto [g, i] = pq.top();
            pq.pop();
            // Lazy re-evaluation: skip stale entries.
            if (g != gain(i))
                continue;
            if (problem.crossbarsPerReplica[i] > leftover)
                continue;
            ++replicas[i];
            leftover -= problem.crossbarsPerReplica[i];
            pq.push({gain(i), i});
        }

        const double ms = makespanNs(problem, replicas);
        if (ms < bestMakespan) {
            bestMakespan = ms;
            bestReplicas = replicas;
        }
    }
    return finish(problem, std::move(bestReplicas));
}

ExhaustiveAllocator::ExhaustiveAllocator(uint32_t maxReplicasPerStage)
    : maxReplicas_(maxReplicasPerStage)
{
    GOPIM_ASSERT(maxReplicas_ >= 1, "replica cap must be >= 1");
}

AllocationResult
ExhaustiveAllocator::allocate(const AllocationProblem &problem) const
{
    problem.validate();
    const size_t n = problem.numStages();
    GOPIM_ASSERT(n <= 6, "exhaustive search limited to <= 6 stages");

    std::vector<uint32_t> current(n, 1);
    std::vector<uint32_t> best(n, 1);
    double bestMakespan = std::numeric_limits<double>::infinity();

    // Depth-first enumeration with budget pruning.
    auto recurse = [&](auto &&self, size_t depth,
                       uint64_t budgetUsed) -> void {
        if (budgetUsed > problem.spareCrossbars)
            return;
        if (depth == n) {
            const double ms = makespanNs(problem, current);
            if (ms < bestMakespan) {
                bestMakespan = ms;
                best = current;
            }
            return;
        }
        for (uint32_t r = 1; r <= maxReplicas_; ++r) {
            current[depth] = r;
            const uint64_t cost =
                budgetUsed + static_cast<uint64_t>(r - 1) *
                                 problem.crossbarsPerReplica[depth];
            if (cost > problem.spareCrossbars)
                break;
            self(self, depth + 1, cost);
        }
        current[depth] = 1;
    };
    recurse(recurse, 0, 0);

    return finish(problem, std::move(best));
}

} // namespace gopim::alloc
