#include "alloc/greedy_heap.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace gopim::alloc {

IndexedMaxHeap::IndexedMaxHeap(size_t universe)
    : position_(universe, kAbsent)
{
}

bool
IndexedMaxHeap::contains(size_t id) const
{
    GOPIM_ASSERT(id < position_.size(), "heap id out of universe");
    return position_[id] != kAbsent;
}

void
IndexedMaxHeap::push(size_t id, double key)
{
    GOPIM_ASSERT(!contains(id), "heap id already present");
    heap_.push_back({id, key});
    position_[id] = heap_.size() - 1;
    siftUp(heap_.size() - 1);
}

size_t
IndexedMaxHeap::topId() const
{
    GOPIM_ASSERT(!heap_.empty(), "top of empty heap");
    return heap_.front().id;
}

double
IndexedMaxHeap::topKey() const
{
    GOPIM_ASSERT(!heap_.empty(), "top of empty heap");
    return heap_.front().key;
}

void
IndexedMaxHeap::updateKey(size_t id, double key)
{
    GOPIM_ASSERT(contains(id), "updateKey on absent id");
    const size_t pos = position_[id];
    const double old = heap_[pos].key;
    heap_[pos].key = key;
    if (key > old)
        siftUp(pos);
    else
        siftDown(pos);
}

void
IndexedMaxHeap::remove(size_t id)
{
    GOPIM_ASSERT(contains(id), "remove of absent id");
    const size_t pos = position_[id];
    swapEntries(pos, heap_.size() - 1);
    position_[id] = kAbsent;
    heap_.pop_back();
    if (pos < heap_.size()) {
        siftUp(pos);
        siftDown(pos);
    }
}

double
IndexedMaxHeap::keyOf(size_t id) const
{
    GOPIM_ASSERT(contains(id), "keyOf absent id");
    return heap_[position_[id]].key;
}

void
IndexedMaxHeap::swapEntries(size_t a, size_t b)
{
    std::swap(heap_[a], heap_[b]);
    position_[heap_[a].id] = a;
    position_[heap_[b].id] = b;
}

void
IndexedMaxHeap::siftUp(size_t pos)
{
    while (pos > 0) {
        const size_t parent = (pos - 1) / 2;
        if (heap_[parent].key >= heap_[pos].key)
            break;
        swapEntries(parent, pos);
        pos = parent;
    }
}

void
IndexedMaxHeap::siftDown(size_t pos)
{
    while (true) {
        const size_t left = 2 * pos + 1;
        const size_t right = 2 * pos + 2;
        size_t largest = pos;
        if (left < heap_.size() &&
            heap_[left].key > heap_[largest].key)
            largest = left;
        if (right < heap_.size() &&
            heap_[right].key > heap_[largest].key)
            largest = right;
        if (largest == pos)
            break;
        swapEntries(pos, largest);
        pos = largest;
    }
}

GreedyHeapAllocator::GreedyHeapAllocator(uint32_t maxReplicasPerStage,
                                         double relStopTol)
    : maxReplicas_(maxReplicasPerStage), relStopTol_(relStopTol)
{
    GOPIM_ASSERT(relStopTol >= 0.0, "stop tolerance must be >= 0");
}

AllocationResult
GreedyHeapAllocator::allocate(const AllocationProblem &problem) const
{
    problem.validate();
    const size_t n = problem.numStages();
    std::vector<uint32_t> replicas(n, 1);
    uint64_t spare = problem.spareCrossbars;
    const double bottleneckWeight =
        static_cast<double>(problem.numMicroBatches - 1);

    // H_p: current execution time of each stage.
    IndexedMaxHeap hp(n);
    for (size_t i = 0; i < n; ++i)
        hp.push(i, stageTimeNs(problem, i, 1));

    // Adjustment value of granting one replica to stage i: makespan
    // reduction per crossbar spent. The Eq. 6 bottleneck term gives
    // the current H_p top an extra (B - 1) weight on its time delta.
    auto adjustValue = [&](size_t i) {
        if (maxReplicas_ > 0 && replicas[i] >= maxReplicas_)
            return 0.0;
        // stageTimeNs honors the problem's effective-parallelism
        // ceiling, so the delta vanishes once replicas stop helping.
        const double delta = stageTimeNs(problem, i, replicas[i]) -
                             stageTimeNs(problem, i, replicas[i] + 1);
        const double weight =
            hp.topId() == i ? 1.0 + bottleneckWeight : 1.0;
        return delta * weight /
               static_cast<double>(problem.crossbarsPerReplica[i]);
    };

    // H_v: adjustment values.
    IndexedMaxHeap hv(n);
    for (size_t i = 0; i < n; ++i)
        hv.push(i, adjustValue(i));

    // Running sum of stage times for the Eq. 6 makespan.
    double timeSum = 0.0;
    for (size_t i = 0; i < n; ++i)
        timeSum += stageTimeNs(problem, i, 1);

    // Stages priced out of the remaining budget leave H_v; track them
    // to re-admit nobody (budget only shrinks).
    while (!hv.empty() && hv.topKey() > 0.0) {
        const size_t v = hv.topId();
        if (problem.crossbarsPerReplica[v] > spare) {
            hv.remove(v);
            continue;
        }
        // Diminishing-returns pruning: a stage leaves the candidate
        // set only when even its *optimistic* gain — the one it would
        // have as the pipeline bottleneck, where the (B-1) weight of
        // Eq. 6 applies — buys less than relStopTol of the makespan.
        // Pruning on the current (possibly weight-1) gain would
        // permanently starve stages that become the bottleneck later.
        const double makespan =
            timeSum + bottleneckWeight * hp.topKey();
        const double delta = stageTimeNs(problem, v, replicas[v]) -
                             stageTimeNs(problem, v, replicas[v] + 1);
        const double optimisticGain =
            delta * (1.0 + bottleneckWeight);
        if (optimisticGain < relStopTol_ * makespan) {
            hv.remove(v);
            continue;
        }
        const size_t oldBottleneck = hp.topId();

        // Grant one replica to the best-value stage (Alg. 1 line 7).
        timeSum -= stageTimeNs(problem, v, replicas[v]);
        ++replicas[v];
        timeSum += stageTimeNs(problem, v, replicas[v]);
        spare -= problem.crossbarsPerReplica[v];
        hp.updateKey(v, stageTimeNs(problem, v, replicas[v]));
        hv.updateKey(v, adjustValue(v));

        // If the bottleneck moved, both the old and new bottleneck
        // stages change weight in the adjustment value (Alg. 1's
        // top-down heap repair after comparing H_v and H_p tops).
        const size_t newBottleneck = hp.topId();
        if (newBottleneck != oldBottleneck) {
            if (hv.contains(oldBottleneck))
                hv.updateKey(oldBottleneck, adjustValue(oldBottleneck));
            if (hv.contains(newBottleneck))
                hv.updateKey(newBottleneck, adjustValue(newBottleneck));
        }
    }

    // Right-sizing pass: the grant loop optimizes the makespan alone
    // and can leave cheap stages far faster than the bottleneck; those
    // surplus replicas only burn crossbars and idle energy. Trim any
    // replica whose removal keeps the stage at or under the bottleneck
    // time and costs less than the same relStopTol makespan fraction
    // the grant rule used — keeping stage times balanced, which is
    // what slashes the crossbar idle time (Fig. 15).
    {
        double maxTime = 0.0;
        for (size_t i = 0; i < n; ++i)
            maxTime = std::max(maxTime,
                               stageTimeNs(problem, i, replicas[i]));
        double timeSumNow = 0.0;
        for (size_t i = 0; i < n; ++i)
            timeSumNow += stageTimeNs(problem, i, replicas[i]);
        const double makespanNow =
            timeSumNow + bottleneckWeight * maxTime;
        for (size_t i = 0; i < n; ++i) {
            while (replicas[i] > 1) {
                const double slower =
                    stageTimeNs(problem, i, replicas[i] - 1);
                const double delta =
                    slower - stageTimeNs(problem, i, replicas[i]);
                if (slower > maxTime ||
                    delta >= relStopTol_ * makespanNow)
                    break;
                --replicas[i];
            }
        }
    }
    return finish(problem, std::move(replicas));
}

} // namespace gopim::alloc
