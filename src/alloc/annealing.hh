/**
 * @file
 * Simulated-annealing allocator: a stochastic global-search reference
 * for the allocation ablation (bench/ablation_allocators). It explores
 * replica vectors by moving single replicas between stages; useful to
 * check how close Algorithm 1's greedy gets to a strong local optimum
 * at a fraction of the decision time.
 */

#ifndef GOPIM_ALLOC_ANNEALING_HH
#define GOPIM_ALLOC_ANNEALING_HH

#include <cstdint>

#include "alloc/allocator.hh"

namespace gopim::alloc {

/** Annealing schedule parameters. */
struct AnnealingParams
{
    uint32_t iterations = 20000;
    double initialTemperature = 0.2; ///< relative to initial makespan
    double coolingRate = 0.9995;
    uint64_t seed = 23;
    /** Cap per-stage replicas explored. */
    uint32_t maxReplicasPerStage = 4096;
};

/** Simulated-annealing replica allocator. */
class AnnealingAllocator : public Allocator
{
  public:
    explicit AnnealingAllocator(AnnealingParams params = {});

    AllocationResult allocate(
        const AllocationProblem &problem) const override;
    std::string name() const override { return "Annealing"; }

  private:
    AnnealingParams params_;
};

} // namespace gopim::alloc

#endif // GOPIM_ALLOC_ANNEALING_HH
