/**
 * @file
 * Reference allocators: a bottleneck-sweep optimizer (the expensive
 * "dynamic programming" style decision procedure the paper contrasts
 * Algorithm 1 against) and an exhaustive search for small instances
 * (ground truth in unit tests).
 */

#ifndef GOPIM_ALLOC_DP_HH
#define GOPIM_ALLOC_DP_HH

#include "alloc/allocator.hh"

namespace gopim::alloc {

/**
 * Near-exact reference optimizer. For each candidate bottleneck time
 * tau (every achievable stage time is a candidate), compute the
 * minimal replicas bringing every stage under tau, then spend leftover
 * budget greedily on the largest per-crossbar time deltas; keep the
 * tau with the best Eq. 6 makespan. Polynomial but far slower than
 * Algorithm 1 — this is the decision-cost baseline of Section V-B.
 */
class BottleneckSweepAllocator : public Allocator
{
  public:
    /** Caps the per-stage replica candidates enumerated per tau. */
    explicit BottleneckSweepAllocator(uint32_t maxReplicasPerStage = 4096);

    AllocationResult allocate(
        const AllocationProblem &problem) const override;
    std::string name() const override { return "BottleneckSweep"; }

  private:
    uint32_t maxReplicas_;
};

/**
 * Exhaustive search over replica vectors (bounded per stage); exact
 * ground truth for tiny problems in tests. Exponential: use only with
 * a handful of stages and small bounds.
 */
class ExhaustiveAllocator : public Allocator
{
  public:
    explicit ExhaustiveAllocator(uint32_t maxReplicasPerStage = 8);

    AllocationResult allocate(
        const AllocationProblem &problem) const override;
    std::string name() const override { return "Exhaustive"; }

  private:
    uint32_t maxReplicas_;
};

} // namespace gopim::alloc

#endif // GOPIM_ALLOC_DP_HH
