/**
 * @file
 * GoPIM's max-heap greedy crossbar allocator (Algorithm 1).
 *
 * Two indexed max-heaps drive the decision: H_v keys stages by the
 * makespan reduction per crossbar of adding one more replica (the
 * "adjustment value"), H_p keys stages by their current execution time
 * so the pipeline bottleneck (which carries the (B-1) weight in Eq. 6)
 * is known in O(1). Each iteration grants one replica to the H_v top,
 * updates both heaps, and repeats until the spare budget cannot buy
 * any beneficial replica.
 */

#ifndef GOPIM_ALLOC_GREEDY_HEAP_HH
#define GOPIM_ALLOC_GREEDY_HEAP_HH

#include <cstdint>
#include <vector>

#include "alloc/allocator.hh"

namespace gopim::alloc {

/**
 * Binary max-heap over a fixed id universe with updatable keys.
 * Exposed for unit testing; used by the greedy allocator for both
 * H_v and H_p.
 */
class IndexedMaxHeap
{
  public:
    /** Heap over ids 0..universe-1; starts empty. */
    explicit IndexedMaxHeap(size_t universe);

    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }
    bool contains(size_t id) const;

    /** Insert id with the given key; id must not be present. */
    void push(size_t id, double key);

    /** Id with the maximum key. */
    size_t topId() const;

    /** Maximum key. */
    double topKey() const;

    /** Change the key of a present id (up or down). */
    void updateKey(size_t id, double key);

    /** Remove a present id. */
    void remove(size_t id);

    /** Current key of a present id. */
    double keyOf(size_t id) const;

  private:
    struct Entry
    {
        size_t id;
        double key;
    };

    void siftUp(size_t pos);
    void siftDown(size_t pos);
    void swapEntries(size_t a, size_t b);

    std::vector<Entry> heap_;
    std::vector<size_t> position_; ///< id -> heap index, npos if absent
    static constexpr size_t kAbsent = static_cast<size_t>(-1);
};

/** GoPIM's Algorithm 1 allocator. */
class GreedyHeapAllocator : public Allocator
{
  public:
    /**
     * maxReplicasPerStage caps per-stage replication (0 = unlimited).
     * relStopTol stops the loop once one more replica would improve
     * the makespan by less than this fraction — replicating past the
     * point of diminishing returns only burns leakage power, which is
     * why Table VI's allocations stay well under the chip budget.
     */
    explicit GreedyHeapAllocator(uint32_t maxReplicasPerStage = 0,
                                 double relStopTol = 1e-4);

    AllocationResult allocate(
        const AllocationProblem &problem) const override;
    std::string name() const override { return "GreedyHeap"; }

  private:
    uint32_t maxReplicas_;
    double relStopTol_;
};

} // namespace gopim::alloc

#endif // GOPIM_ALLOC_GREEDY_HEAP_HH
