/**
 * @file
 * Crossbar replica allocation interface (Section V-B).
 *
 * Every stage starts with one mandatory replica of its mapped matrix;
 * an allocator distributes the remaining crossbar budget as extra
 * replicas. Stage time decomposes into a scalable part (MVM compute,
 * divided by the replica count) and a fixed part (vertex update
 * writes, which every replica must receive in parallel).
 */

#ifndef GOPIM_ALLOC_ALLOCATOR_HH
#define GOPIM_ALLOC_ALLOCATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/stage.hh"

namespace gopim::alloc {

/** Input to an allocation decision. */
struct AllocationProblem
{
    /** Stage descriptors (types drive the fixed-ratio baselines). */
    std::vector<pipeline::Stage> stages;
    /** Per-stage scalable time with one replica (ns/micro-batch). */
    std::vector<double> scalableTimesNs;
    /** Per-stage fixed time, not reduced by replication (ns/mb). */
    std::vector<double> fixedTimesNs;
    /** Crossbars required for one replica of each stage. */
    std::vector<uint64_t> crossbarsPerReplica;
    /** Spare crossbars beyond the mandatory single replicas. */
    uint64_t spareCrossbars = 0;
    /** Micro-batches per pipeline fill (B in Eq. 6). */
    uint32_t numMicroBatches = 1;
    /**
     * Effective-parallelism ceiling: a stage only has so many inputs
     * in flight, so replicas beyond this count cannot shorten it
     * (0 = unlimited). Naive allocators may still *grant* more; the
     * surplus burns crossbars without buying time.
     */
    uint32_t maxUsefulReplicas = 0;

    size_t numStages() const { return stages.size(); }

    /** Validate array sizes and values; fatal() on inconsistency. */
    void validate() const;
};

/** Output: replica count per stage (>= 1 each). */
struct AllocationResult
{
    std::vector<uint32_t> replicas;
    /** Total crossbars consumed including the mandatory replicas. */
    uint64_t totalCrossbars = 0;
};

/** Stage time under a given replica count. */
double stageTimeNs(const AllocationProblem &problem, size_t stage,
                   uint32_t replicas);

/** All stage times under a replica vector. */
std::vector<double> stageTimesNs(const AllocationProblem &problem,
                                 const std::vector<uint32_t> &replicas);

/** Pipelined makespan (Eq. 6) under a replica vector. */
double makespanNs(const AllocationProblem &problem,
                  const std::vector<uint32_t> &replicas);

/** Abstract allocation policy. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /** Decide replica counts for the problem. */
    virtual AllocationResult allocate(
        const AllocationProblem &problem) const = 0;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

  protected:
    /** Fill totalCrossbars and clamp replicas to >= 1. */
    static AllocationResult finish(const AllocationProblem &problem,
                                   std::vector<uint32_t> replicas);
};

} // namespace gopim::alloc

#endif // GOPIM_ALLOC_ALLOCATOR_HH
