#include "common/net.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace gopim::net {

namespace {

void
setError(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
}

std::string
errnoString()
{
    return std::strerror(errno);
}

/** Numeric IPv4 only, with "localhost" as the one spelled name. */
bool
resolveIpv4(const std::string &host, in_addr *out)
{
    const std::string numeric =
        (host.empty() || host == "localhost") ? "127.0.0.1" : host;
    return ::inet_pton(AF_INET, numeric.c_str(), out) == 1;
}

/** recv() exactly `size` bytes. Eof only when nothing was read yet. */
IoStatus
readExactly(int fd, char *buf, size_t size, std::string *error)
{
    size_t off = 0;
    while (off < size) {
        const ssize_t n = ::recv(fd, buf + off, size - off, 0);
        if (n == 0) {
            if (off == 0)
                return IoStatus::Eof;
            setError(error, "connection closed mid-frame");
            return IoStatus::Error;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (off == 0 && errno == ECONNRESET)
                return IoStatus::Eof;
            setError(error, std::string("recv(): ") + errnoString());
            return IoStatus::Error;
        }
        off += static_cast<size_t>(n);
    }
    return IoStatus::Ok;
}

} // namespace

Fd &
Fd::operator=(Fd &&other) noexcept
{
    if (this != &other) {
        reset(other.fd_);
        other.fd_ = -1;
    }
    return *this;
}

void
Fd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

int
Fd::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

bool
writeAll(int fd, std::string_view data)
{
    size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a peer that died must surface as EPIPE, not
        // as a process-killing SIGPIPE — the router treats write
        // failures as worker-death events and recovers.
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
writeFrame(int fd, std::string_view payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    const uint32_t size = static_cast<uint32_t>(payload.size());
    char header[4];
    header[0] = static_cast<char>(size & 0xff);
    header[1] = static_cast<char>((size >> 8) & 0xff);
    header[2] = static_cast<char>((size >> 16) & 0xff);
    header[3] = static_cast<char>((size >> 24) & 0xff);
    std::string frame;
    frame.reserve(sizeof(header) + payload.size());
    frame.append(header, sizeof(header));
    frame.append(payload);
    return writeAll(fd, frame);
}

IoStatus
readFrame(int fd, std::string *payload, std::string *error)
{
    char header[4];
    const IoStatus headerStatus =
        readExactly(fd, header, sizeof(header), error);
    if (headerStatus != IoStatus::Ok)
        return headerStatus;
    const uint32_t size =
        static_cast<uint32_t>(static_cast<unsigned char>(header[0])) |
        static_cast<uint32_t>(static_cast<unsigned char>(header[1]))
            << 8 |
        static_cast<uint32_t>(static_cast<unsigned char>(header[2]))
            << 16 |
        static_cast<uint32_t>(static_cast<unsigned char>(header[3]))
            << 24;
    if (size > kMaxFrameBytes) {
        setError(error, "frame length " + std::to_string(size) +
                            " exceeds the " +
                            std::to_string(kMaxFrameBytes) +
                            "-byte limit");
        return IoStatus::Error;
    }
    payload->resize(size);
    if (size == 0)
        return IoStatus::Ok;
    const IoStatus bodyStatus =
        readExactly(fd, payload->data(), size, error);
    if (bodyStatus == IoStatus::Eof) {
        setError(error, "connection closed mid-frame");
        return IoStatus::Error;
    }
    return bodyStatus;
}

int
listenTcp(const std::string &host, uint16_t port, uint16_t *boundPort,
          std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (!resolveIpv4(host, &addr.sin_addr)) {
        setError(error, "unresolvable host '" + host +
                            "' (numeric IPv4 or 'localhost')");
        return -1;
    }
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        setError(error, "socket(): " + errnoString());
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error, "bind(" + host + ":" + std::to_string(port) +
                            "): " + errnoString());
        return -1;
    }
    if (::listen(fd.get(), 64) != 0) {
        setError(error, "listen(): " + errnoString());
        return -1;
    }
    if (boundPort) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd.get(),
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0) {
            setError(error, "getsockname(): " + errnoString());
            return -1;
        }
        *boundPort = ntohs(bound.sin_port);
    }
    return fd.release();
}

int
connectTcp(const std::string &host, uint16_t port, std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (!resolveIpv4(host, &addr.sin_addr)) {
        setError(error, "unresolvable host '" + host +
                            "' (numeric IPv4 or 'localhost')");
        return -1;
    }
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        setError(error, "socket(): " + errnoString());
        return -1;
    }
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error, "connect(" + host + ":" +
                            std::to_string(port) +
                            "): " + errnoString());
        return -1;
    }
    return fd.release();
}

int
listenUnix(const std::string &path, std::string *error,
           bool *removedStale)
{
    if (removedStale)
        *removedStale = false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        setError(error, "socket path too long: " + path);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);

    struct stat st{};
    if (::lstat(path.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode)) {
            setError(error, path + " exists and is not a socket; "
                                   "refusing to replace it");
            return -1;
        }
        // Probe: a connectable socket belongs to a live server.
        Fd probe(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (probe.valid() &&
            ::connect(probe.get(),
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            setError(error, "socket " + path +
                                " is in use by a live server "
                                "(stop it or pick another path)");
            return -1;
        }
        // Nobody answered: the previous server died without
        // unlinking. Reclaim the path.
        ::unlink(path.c_str());
        if (removedStale)
            *removedStale = true;
    }

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        setError(error, "socket(): " + errnoString());
        return -1;
    }
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error,
                 "bind(" + path + "): " + errnoString());
        return -1;
    }
    if (::listen(fd.get(), 16) != 0) {
        setError(error, "listen(" + path + "): " + errnoString());
        return -1;
    }
    return fd.release();
}

int
acceptWithTimeout(int listenFd, int timeoutMs)
{
    pollfd pfd{listenFd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeoutMs);
    if (rc <= 0 || !(pfd.revents & POLLIN))
        return -1;
    return ::accept(listenFd, nullptr, nullptr);
}

} // namespace gopim::net
