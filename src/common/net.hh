/**
 * @file
 * Socket and framing helpers shared by the serving and cluster
 * layers: an RAII file descriptor, TCP/Unix listeners (the Unix
 * variant reclaims stale socket files instead of failing with an
 * opaque bind error), loopback TCP connect, and a length-prefixed
 * frame codec (4-byte little-endian length + payload) used by the
 * cluster transport.
 *
 * Everything reports failures through out-parameters rather than
 * fatal(): the callers (worker restart, reconnect loops) treat I/O
 * errors as recoverable events, not user errors.
 */

#ifndef GOPIM_COMMON_NET_HH
#define GOPIM_COMMON_NET_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace gopim::net {

/** RAII file descriptor (move-only; close on destruction). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &operator=(Fd &&other) noexcept;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    /** Close the held fd (if any) and adopt `fd`. */
    void reset(int fd = -1);
    /** Give up ownership without closing. */
    int release();

  private:
    int fd_ = -1;
};

/**
 * Frames above this size are rejected by both codec directions — a
 * corrupt length prefix must not trigger a multi-gigabyte allocation.
 */
inline constexpr size_t kMaxFrameBytes = size_t{1} << 26;

/** Write all of `data` (SIGPIPE-safe); false on any error. */
bool writeAll(int fd, std::string_view data);

/** Outcome of a frame read. */
enum class IoStatus
{
    Ok,   ///< one complete frame delivered
    Eof,  ///< stream ended cleanly between frames
    Error ///< short read mid-frame, oversized frame, or socket error
};

/** Encode and send one frame; false on error or oversized payload. */
bool writeFrame(int fd, std::string_view payload);

/**
 * Read one frame. Eof only when the peer closed between frames; a
 * close mid-frame is an Error (`error` gets a one-line reason).
 */
IoStatus readFrame(int fd, std::string *payload,
                   std::string *error = nullptr);

/**
 * TCP listener bound to `host` (numeric IPv4 or "localhost"); port 0
 * picks an ephemeral port, reported via `boundPort`. Returns the
 * listening fd, or -1 with `error` filled.
 */
int listenTcp(const std::string &host, uint16_t port,
              uint16_t *boundPort, std::string *error);

/** Connect to host:port; returns the fd, or -1 with `error` filled. */
int connectTcp(const std::string &host, uint16_t port,
               std::string *error);

/**
 * Unix-domain listener with stale-socket handling: if `path` already
 * exists as a socket, probe it — a live server yields an error (never
 * steal a running server's path), a dead one is unlinked and the path
 * reclaimed (`removedStale` reports this so callers can log it). A
 * non-socket file at `path` is an error. Returns the listening fd, or
 * -1 with `error` filled.
 */
int listenUnix(const std::string &path, std::string *error,
               bool *removedStale = nullptr);

/**
 * poll()-based accept: returns the connected fd, or -1 on timeout /
 * transient failure (callers loop on a stop flag).
 */
int acceptWithTimeout(int listenFd, int timeoutMs);

} // namespace gopim::net

#endif // GOPIM_COMMON_NET_HH
