#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace gopim {

namespace {

/** SplitMix64 step used to expand the user seed into generator state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    GOPIM_ASSERT(n > 0, "uniformInt(0) is undefined");
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % n;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    GOPIM_ASSERT(lo <= hi, "empty integer range");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(uniformInt(span));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::discrete(const std::vector<double> &weights)
{
    GOPIM_ASSERT(!weights.empty(), "discrete() needs weights");
    double total = 0.0;
    for (double w : weights)
        total += w;
    GOPIM_ASSERT(total > 0.0, "discrete() needs positive total weight");
    double draw = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace gopim
