/**
 * @file
 * Minimal JSON value type with a writer and a strict parser, shared
 * by the serving layer (JSONL requests/responses, cache keys) and
 * the result reporters (--json / --json-out machine-readable bench
 * output).
 *
 * Design points that matter to callers:
 *  - Objects preserve insertion order for dump(), and canonical()
 *    re-serializes with keys sorted recursively, so two semantically
 *    equal documents hash identically regardless of field order.
 *  - Numbers keep int64 exactness when possible; doubles serialize
 *    via std::to_chars (shortest round-trip form), so serialization
 *    is deterministic and bit-stable — the property the serving
 *    cache's byte-identical-response guarantee rests on.
 */

#ifndef GOPIM_COMMON_JSON_HH
#define GOPIM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace gopim::json {

/** Escape a string's content for embedding in a JSON literal. */
std::string escape(const std::string &s);

/** Shortest round-trip rendering of a double ("null" if not finite). */
std::string formatDouble(double value);

/** One JSON value: null, bool, number, string, array, or object. */
class Value
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    Value() = default; ///< null
    Value(std::nullptr_t) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Double), double_(d) {}
    Value(int64_t i) : kind_(Kind::Int), int_(i) {}
    Value(const char *s) : kind_(Kind::String), string_(s) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    /** Any other integer type narrows onto int64. */
    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool> &&
                                   !std::is_same_v<T, int64_t>,
                               int> = 0>
    Value(T i) : Value(static_cast<int64_t>(i))
    {
    }

    static Value array() { return Value(Kind::Array); }
    static Value object() { return Value(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; panic (assert) on kind mismatch. */
    bool asBool() const;
    int64_t asInt() const;    ///< Int, or a Double with integral value
    double asDouble() const;  ///< any number
    const std::string &asString() const;

    // Array interface.
    void push(Value v);
    size_t size() const;
    const Value &at(size_t index) const;
    const std::vector<Value> &items() const;

    // Object interface (insertion-ordered; set() overwrites in place).
    Value &set(const std::string &key, Value v);
    const Value *find(const std::string &key) const;
    const std::vector<std::pair<std::string, Value>> &members() const;

    /** Compact serialization, object keys in insertion order. */
    std::string dump() const;
    /** Pretty serialization: objects indented, arrays kept inline. */
    std::string dumpIndented(int indent = 0) const;
    /** Compact serialization with object keys sorted recursively. */
    std::string canonical() const;

    /**
     * Strict parse of a complete JSON document. Returns false and
     * fills `error` (when given) on malformed input or trailing
     * garbage; `out` is untouched on failure.
     */
    static bool parse(const std::string &text, Value *out,
                      std::string *error = nullptr);

  private:
    explicit Value(Kind kind) : kind_(kind) {}

    void write(std::string &out, int indent, int depth,
               bool sortKeys) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

} // namespace gopim::json

#endif // GOPIM_COMMON_JSON_HH
