/**
 * @file
 * Fixed-size worker thread pool for embarrassingly parallel grid
 * sweeps (the comparison harness's dataset x system cells).
 *
 * Tasks are plain std::function jobs; submit() returns a
 * std::future so callers retrieve results — and rethrown exceptions
 * — in submission order regardless of completion order, which keeps
 * parallel runs bit-identical to serial ones.
 */

#ifndef GOPIM_COMMON_THREAD_POOL_HH
#define GOPIM_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gopim {

/** Fixed pool of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (>= 1; 0 is clamped to 1). */
    explicit ThreadPool(size_t threads);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a callable; the future yields its result or rethrows
     * what it threw. Tasks start in FIFO order.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        auto future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    size_t threadCount() const { return workers_.size(); }

    /** Tasks enqueued over the pool's lifetime. */
    uint64_t tasksSubmitted() const
    {
        return tasksSubmitted_.load(std::memory_order_relaxed);
    }
    /** Tasks finished (including ones that threw). */
    uint64_t tasksCompleted() const
    {
        return tasksCompleted_.load(std::memory_order_relaxed);
    }
    /** High-water mark of tasks waiting in the queue. */
    uint64_t maxQueueDepth() const
    {
        return maxQueueDepth_.load(std::memory_order_relaxed);
    }

    /**
     * Sensible worker count for `jobs`: 0 means "all hardware
     * threads", otherwise `jobs` itself.
     */
    static size_t resolveJobs(size_t jobs);

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    // Utilization counters are relaxed atomics: they are monotone
    // sums/maxima with no payload, so no acquire/release pairing is
    // required. Exact totals are only read after the pool quiesces —
    // the destructor's join() (or a submit future's get()) supplies
    // the happens-before that makes every relaxed update visible;
    // mid-run reads are advisory snapshots and may lag.
    std::atomic<uint64_t> tasksSubmitted_{0};
    std::atomic<uint64_t> tasksCompleted_{0};
    std::atomic<uint64_t> maxQueueDepth_{0};
    // Last member on purpose: members destroy in reverse declaration
    // order, so everything the worker threads touch must outlive
    // them (the concurrency-join-order lint rule).
    std::vector<std::thread> workers_;
};

/**
 * Process-wide shared pool sized to the hardware thread count.
 * Created on first use, lives for the process. parallelFor() runs on
 * it instead of constructing a fresh pool per call, so repeated
 * grid sweeps pay thread spawn/join cost once.
 */
ThreadPool &processPool();

/**
 * Run fn(i) for i in [0, count) with `jobs`-way parallelism and
 * block until all complete; exceptions are rethrown (the first, by
 * index; every index is still attempted). With jobs <= 1 the loop
 * runs inline on the caller's thread.
 *
 * Work executes on the shared processPool() as `jobs` contiguous
 * index chunks, so the effective concurrency is
 * min(jobs, hardware threads). Nested parallelFor calls from inside
 * a chunk run inline — the pool never deadlocks waiting on itself.
 */
void parallelFor(size_t count, size_t jobs,
                 const std::function<void(size_t)> &fn);

} // namespace gopim

#endif // GOPIM_COMMON_THREAD_POOL_HH
