/**
 * @file
 * Lightweight statistics primitives used throughout the simulator:
 * streaming accumulators, counters, and fixed-bucket histograms.
 */

#ifndef GOPIM_COMMON_STATS_HH
#define GOPIM_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace gopim {

/**
 * Streaming accumulator tracking count, sum, min, max, mean, and
 * variance (Welford's algorithm) of a sequence of samples.
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    /** Reset to the empty state. */
    void reset();

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance; zero for fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi) with out-of-range samples clamped
 * into the first/last bucket.
 */
class Histogram
{
  public:
    /** Create a histogram with the given bucket count over [lo, hi). */
    Histogram(double lo, double hi, size_t buckets);

    /** Record one sample. */
    void add(double x);

    size_t buckets() const { return counts_.size(); }
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }
    uint64_t total() const { return total_; }

    /** Lower edge of bucket i. */
    double bucketLo(size_t i) const;

    /** Approximate p-quantile (q in [0, 1]) from bucket midpoints. */
    double quantile(double q) const;

    /** Render a compact one-line summary for logs. */
    std::string summary() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/** Compute the p-th percentile (0-100) of a copy-sorted sample vector. */
double percentile(std::vector<double> values, double p);

} // namespace gopim

#endif // GOPIM_COMMON_STATS_HH
