/**
 * @file
 * Minimal command-line flag parser for the tools and benchmark
 * binaries: --name=value and --name value forms, typed accessors with
 * defaults, and automatic --help text.
 */

#ifndef GOPIM_COMMON_FLAGS_HH
#define GOPIM_COMMON_FLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gopim {

/** Declarative flag registry + parser. */
class Flags
{
  public:
    /** programName and description feed the --help text. */
    Flags(std::string programName, std::string description);

    /** Declare flags before parse(). */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    void addInt(const std::string &name, int64_t def,
                const std::string &help);
    void addDouble(const std::string &name, double def,
                   const std::string &help);
    void addBool(const std::string &name, bool def,
                 const std::string &help);

    /**
     * Attach a [min, max] range to a declared int flag; parse()
     * rejects out-of-range values. Declaring the constraint next to
     * the flag keeps every binary's validation identical (the checks
     * used to be re-implemented per tool).
     */
    void setIntRange(const std::string &name, int64_t min, int64_t max);

    /**
     * Attach a range to a declared double flag. `maxExclusive`
     * selects [min, max) instead of [min, max].
     */
    void setDoubleRange(const std::string &name, double min, double max,
                        bool maxExclusive = false);

    /**
     * Parse argv. Returns false (after printing help) if --help was
     * requested; fatal() on unknown flags, malformed values, or
     * values outside a declared range.
     */
    bool parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** True if the flag was set on the command line (vs default). */
    bool isSet(const std::string &name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render the --help text. */
    std::string helpText() const;

  private:
    enum class Type { String, Int, Double, Bool };

    struct Entry
    {
        Type type;
        std::string value; ///< current value, textual
        std::string def;
        std::string help;
        bool set = false;
        bool hasRange = false;
        int64_t intMin = 0, intMax = 0;
        double doubleMin = 0.0, doubleMax = 0.0;
        bool maxExclusive = false;
    };

    const Entry &lookup(const std::string &name, Type type) const;

    std::string programName_;
    std::string description_;
    std::map<std::string, Entry> entries_;
    std::vector<std::string> order_; ///< declaration order for help
    std::vector<std::string> positional_;
};

} // namespace gopim

#endif // GOPIM_COMMON_FLAGS_HH
