/**
 * @file
 * Minimal command-line flag parser for the tools and benchmark
 * binaries: --name=value and --name value forms, typed accessors with
 * defaults, and automatic --help text.
 */

#ifndef GOPIM_COMMON_FLAGS_HH
#define GOPIM_COMMON_FLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gopim {

/** Declarative flag registry + parser. */
class Flags
{
  public:
    /** programName and description feed the --help text. */
    Flags(std::string programName, std::string description);

    /** Declare flags before parse(). */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    void addInt(const std::string &name, int64_t def,
                const std::string &help);
    void addDouble(const std::string &name, double def,
                   const std::string &help);
    void addBool(const std::string &name, bool def,
                 const std::string &help);

    /**
     * Parse argv. Returns false (after printing help) if --help was
     * requested; fatal() on unknown flags or malformed values.
     */
    bool parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** True if the flag was set on the command line (vs default). */
    bool isSet(const std::string &name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render the --help text. */
    std::string helpText() const;

  private:
    enum class Type { String, Int, Double, Bool };

    struct Entry
    {
        Type type;
        std::string value; ///< current value, textual
        std::string def;
        std::string help;
        bool set = false;
    };

    const Entry &lookup(const std::string &name, Type type) const;

    std::string programName_;
    std::string description_;
    std::map<std::string, Entry> entries_;
    std::vector<std::string> order_; ///< declaration order for help
    std::vector<std::string> positional_;
};

} // namespace gopim

#endif // GOPIM_COMMON_FLAGS_HH
