/**
 * @file
 * Status and error reporting helpers, modeled on the gem5 logging split:
 * inform() for status, warn() for suspicious-but-survivable conditions,
 * fatal() for user errors (clean exit), and panic() for internal
 * invariant violations (abort).
 */

#ifndef GOPIM_COMMON_LOGGING_HH
#define GOPIM_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace gopim {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global log level; messages above this level are suppressed. */
LogLevel logLevel();

/** Set the global log level (e.g.\ from a benchmark's --quiet flag). */
void setLogLevel(LogLevel level);

namespace detail {

/** Emit one formatted log line to stderr with the given tag. */
void emit(const char *tag, const std::string &msg);

/** Fold a parameter pack into a single string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Informational message; shown at Info level and above. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Debug message; shown only at Debug level. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit("debug", detail::concat(std::forward<Args>(args)...));
}

/** Warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/**
 * Unrecoverable user-level error (bad configuration, invalid argument).
 * Prints the message and exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emit("fatal", detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Internal invariant violation: something that should never happen
 * regardless of user input. Prints the message and aborts.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit("panic", detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/** Assert-like helper that panics with a message when cond is false. */
#define GOPIM_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond))                                                       \
            ::gopim::panic("assertion failed: ", #cond, ": ",              \
                           ##__VA_ARGS__);                                 \
    } while (0)

} // namespace gopim

#endif // GOPIM_COMMON_LOGGING_HH
