/**
 * @file
 * Deterministic random number generation for simulation reproducibility.
 *
 * All stochastic components (graph generators, ML initializers, workload
 * randomizers) draw from a Rng seeded explicitly by the caller, so every
 * experiment in EXPERIMENTS.md is bit-reproducible.
 */

#ifndef GOPIM_COMMON_RNG_HH
#define GOPIM_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gopim {

/**
 * xoshiro256** generator with SplitMix64 seeding.
 *
 * Chosen over std::mt19937_64 for speed (graph generation streams
 * billions of draws for the largest catalog entries) and for a stable
 * cross-platform sequence independent of the standard library.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached second draw). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /**
     * Draw an index from a discrete distribution proportional to
     * weights (need not be normalized). Linear scan; intended for
     * small weight vectors.
     */
    size_t discrete(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = uniformInt(static_cast<uint64_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

  private:
    uint64_t s_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace gopim

#endif // GOPIM_COMMON_RNG_HH
