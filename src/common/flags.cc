#include "common/flags.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace gopim {

Flags::Flags(std::string programName, std::string description)
    : programName_(std::move(programName)),
      description_(std::move(description))
{
}

void
Flags::addString(const std::string &name, const std::string &def,
                 const std::string &help)
{
    GOPIM_ASSERT(!entries_.count(name), "duplicate flag ", name);
    entries_[name] = {Type::String, def, def, help, false};
    order_.push_back(name);
}

void
Flags::addInt(const std::string &name, int64_t def,
              const std::string &help)
{
    GOPIM_ASSERT(!entries_.count(name), "duplicate flag ", name);
    entries_[name] = {Type::Int, std::to_string(def),
                      std::to_string(def), help, false};
    order_.push_back(name);
}

void
Flags::addDouble(const std::string &name, double def,
                 const std::string &help)
{
    GOPIM_ASSERT(!entries_.count(name), "duplicate flag ", name);
    std::ostringstream os;
    os << def;
    entries_[name] = {Type::Double, os.str(), os.str(), help, false};
    order_.push_back(name);
}

void
Flags::addBool(const std::string &name, bool def,
               const std::string &help)
{
    GOPIM_ASSERT(!entries_.count(name), "duplicate flag ", name);
    const std::string text = def ? "true" : "false";
    entries_[name] = {Type::Bool, text, text, help, false};
    order_.push_back(name);
}

void
Flags::setIntRange(const std::string &name, int64_t min, int64_t max)
{
    auto it = entries_.find(name);
    GOPIM_ASSERT(it != entries_.end() && it->second.type == Type::Int,
                 "setIntRange on undeclared int flag ", name);
    it->second.hasRange = true;
    it->second.intMin = min;
    it->second.intMax = max;
}

void
Flags::setDoubleRange(const std::string &name, double min, double max,
                      bool maxExclusive)
{
    auto it = entries_.find(name);
    GOPIM_ASSERT(it != entries_.end() &&
                     it->second.type == Type::Double,
                 "setDoubleRange on undeclared double flag ", name);
    it->second.hasRange = true;
    it->second.doubleMin = min;
    it->second.doubleMax = max;
    it->second.maxExclusive = maxExclusive;
}

bool
Flags::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(helpText().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        bool haveValue = false;
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            haveValue = true;
        }
        auto it = entries_.find(arg);
        if (it == entries_.end())
            fatal("unknown flag --", arg, " (see --help)");
        Entry &entry = it->second;

        if (!haveValue) {
            if (entry.type == Type::Bool) {
                value = "true"; // bare --flag sets a bool
                haveValue = true;
            } else if (i + 1 < argc) {
                value = argv[++i];
                haveValue = true;
            } else {
                fatal("flag --", arg, " expects a value");
            }
        }

        // Validate by type (and declared range).
        switch (entry.type) {
          case Type::Int: {
            char *end = nullptr;
            const int64_t parsed =
                std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                fatal("flag --", arg, " expects an integer, got '",
                      value, "'");
            if (entry.hasRange &&
                (parsed < entry.intMin || parsed > entry.intMax))
                fatal("flag --", arg, " must be in [", entry.intMin,
                      ", ", entry.intMax, "], got ", parsed);
            break;
          }
          case Type::Double: {
            char *end = nullptr;
            const double parsed = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                fatal("flag --", arg, " expects a number, got '",
                      value, "'");
            if (entry.hasRange &&
                (parsed < entry.doubleMin ||
                 parsed > entry.doubleMax ||
                 (entry.maxExclusive && parsed == entry.doubleMax)))
                fatal("flag --", arg, " must be in [", entry.doubleMin,
                      ", ", entry.doubleMax,
                      entry.maxExclusive ? ")" : "]", ", got ",
                      parsed);
            break;
          }
          case Type::Bool:
            if (value != "true" && value != "false" && value != "1" &&
                value != "0")
                fatal("flag --", arg, " expects true/false, got '",
                      value, "'");
            break;
          case Type::String:
            break;
        }
        entry.value = value;
        entry.set = true;
    }
    return true;
}

const Flags::Entry &
Flags::lookup(const std::string &name, Type type) const
{
    const auto it = entries_.find(name);
    GOPIM_ASSERT(it != entries_.end(), "undeclared flag ", name);
    GOPIM_ASSERT(it->second.type == type, "flag ", name,
                 " accessed with wrong type");
    return it->second;
}

std::string
Flags::getString(const std::string &name) const
{
    return lookup(name, Type::String).value;
}

int64_t
Flags::getInt(const std::string &name) const
{
    return std::strtoll(lookup(name, Type::Int).value.c_str(), nullptr,
                        10);
}

double
Flags::getDouble(const std::string &name) const
{
    return std::strtod(lookup(name, Type::Double).value.c_str(),
                       nullptr);
}

bool
Flags::getBool(const std::string &name) const
{
    const std::string &v = lookup(name, Type::Bool).value;
    return v == "true" || v == "1";
}

bool
Flags::isSet(const std::string &name) const
{
    const auto it = entries_.find(name);
    GOPIM_ASSERT(it != entries_.end(), "undeclared flag ", name);
    return it->second.set;
}

std::string
Flags::helpText() const
{
    std::ostringstream os;
    os << programName_ << " - " << description_ << "\n\nFlags:\n";
    for (const auto &name : order_) {
        const Entry &e = entries_.at(name);
        os << "  --" << name << " (default: " << e.def << ")\n      "
           << e.help << "\n";
    }
    os << "  --help\n      Show this message.\n";
    return os.str();
}

} // namespace gopim
