/**
 * @file
 * Deterministic non-cryptographic hashing (64-bit FNV-1a) for
 * content-addressed keys: the serving layer hashes a canonical JSON
 * description of a run's inputs to decide whether a cached result can
 * stand in for a fresh simulation. FNV-1a is stable across platforms
 * and runs, unlike std::hash.
 */

#ifndef GOPIM_COMMON_HASH_HH
#define GOPIM_COMMON_HASH_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace gopim {

inline constexpr uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ULL;

/** 64-bit FNV-1a over `data`, chainable via `seed`. */
uint64_t fnv1a64(std::string_view data,
                 uint64_t seed = kFnv1aOffsetBasis);

/** Fixed-width (16 char) lowercase hex rendering of a 64-bit hash. */
std::string hexDigest64(uint64_t hash);

} // namespace gopim

#endif // GOPIM_COMMON_HASH_HH
