#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace gopim {

void
Accumulator::add(double x)
{
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(count_) *
               static_cast<double>(other.count_) / total;
    mean_ = (mean_ * static_cast<double>(count_) +
             other.mean_ * static_cast<double>(other.count_)) / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    GOPIM_ASSERT(hi > lo, "histogram range must be non-empty");
    GOPIM_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    const auto last = static_cast<int64_t>(counts_.size()) - 1;
    auto idx = static_cast<int64_t>(std::floor((x - lo_) / width_));
    idx = std::clamp<int64_t>(idx, 0, last);
    // The division is only an estimate: (x - lo_) / width_ can round
    // just below an integer for x exactly on a bucket edge. Settle
    // against the canonical edges so bucket i holds exactly
    // [bucketLo(i), bucketLo(i+1)) and an edge sample lands in one
    // deterministic bucket.
    while (idx > 0 && x < bucketLo(static_cast<size_t>(idx)))
        --idx;
    while (idx < last && x >= bucketLo(static_cast<size_t>(idx) + 1))
        ++idx;
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
}

double
Histogram::bucketLo(size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<uint64_t>(
        q * static_cast<double>(total_));
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target)
            return bucketLo(i) + width_ * 0.5;
    }
    return hi_ - width_ * 0.5;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "n=" << total_ << " p50=" << quantile(0.5)
       << " p90=" << quantile(0.9) << " p99=" << quantile(0.99);
    return os.str();
}

double
percentile(std::vector<double> values, double p)
{
    GOPIM_ASSERT(!values.empty(), "percentile of empty sample");
    std::sort(values.begin(), values.end());
    const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(values.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace gopim
