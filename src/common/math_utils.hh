/**
 * @file
 * Small numeric helpers shared across subsystems.
 */

#ifndef GOPIM_COMMON_MATH_UTILS_HH
#define GOPIM_COMMON_MATH_UTILS_HH

#include <cstdint>
#include <vector>

namespace gopim {

/** Integer ceiling division; b must be positive. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Arithmetic mean of a vector; zero for an empty vector. */
double mean(const std::vector<double> &v);

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &v);

/**
 * Expected number of distinct buckets hit when throwing `draws` balls
 * uniformly into `buckets` bins: buckets * (1 - (1 - 1/buckets)^draws).
 * Used to model sparsity-aware window activation in Aggregation.
 */
double expectedDistinctBuckets(double draws, double buckets);

/** Linear interpolation between a and b with t in [0, 1]. */
constexpr double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

} // namespace gopim

#endif // GOPIM_COMMON_MATH_UTILS_HH
