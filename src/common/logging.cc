#include "common/logging.hh"

#include <cstdio>

namespace gopim {

namespace {

/** Process-wide log level, defaulting to warnings only. */
LogLevel gLogLevel = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return gLogLevel;
}

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[gopim:%s] %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail

} // namespace gopim
