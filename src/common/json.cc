#include "common/json.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace gopim::json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
formatDouble(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, res.ptr);
}

bool
Value::asBool() const
{
    GOPIM_ASSERT(kind_ == Kind::Bool, "json value is not a bool");
    return bool_;
}

int64_t
Value::asInt() const
{
    if (kind_ == Kind::Int)
        return int_;
    GOPIM_ASSERT(kind_ == Kind::Double &&
                     double_ == std::floor(double_),
                 "json value is not an integer");
    return static_cast<int64_t>(double_);
}

double
Value::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    GOPIM_ASSERT(kind_ == Kind::Double, "json value is not a number");
    return double_;
}

const std::string &
Value::asString() const
{
    GOPIM_ASSERT(kind_ == Kind::String, "json value is not a string");
    return string_;
}

void
Value::push(Value v)
{
    GOPIM_ASSERT(kind_ == Kind::Array, "push on non-array json value");
    array_.push_back(std::move(v));
}

size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    GOPIM_ASSERT(kind_ == Kind::Object, "size of non-container");
    return object_.size();
}

const Value &
Value::at(size_t index) const
{
    GOPIM_ASSERT(kind_ == Kind::Array && index < array_.size(),
                 "json array index out of range");
    return array_[index];
}

const std::vector<Value> &
Value::items() const
{
    GOPIM_ASSERT(kind_ == Kind::Array, "items of non-array");
    return array_;
}

Value &
Value::set(const std::string &key, Value v)
{
    GOPIM_ASSERT(kind_ == Kind::Object, "set on non-object json value");
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(v);
            return member.second;
        }
    }
    object_.emplace_back(key, std::move(v));
    return object_.back().second;
}

const Value *
Value::find(const std::string &key) const
{
    GOPIM_ASSERT(kind_ == Kind::Object, "find on non-object json value");
    for (const auto &member : object_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    GOPIM_ASSERT(kind_ == Kind::Object, "members of non-object");
    return object_;
}

void
Value::write(std::string &out, int indent, int depth,
             bool sortKeys) const
{
    const bool pretty = indent >= 0;
    const auto newline = [&](int d) {
        out += '\n';
        out.append(static_cast<size_t>(indent + 2 * d), ' ');
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int:
        out += std::to_string(int_);
        break;
      case Kind::Double:
        out += formatDouble(double_);
        break;
      case Kind::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
      case Kind::Array:
        // Arrays stay inline even in pretty mode: result vectors are
        // short and read better as one row.
        out += '[';
        for (size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += pretty ? ", " : ",";
            array_[i].write(out, -1, 0, sortKeys);
        }
        out += ']';
        break;
      case Kind::Object: {
        std::vector<const std::pair<std::string, Value> *> members;
        members.reserve(object_.size());
        for (const auto &member : object_)
            members.push_back(&member);
        if (sortKeys)
            std::sort(members.begin(), members.end(),
                      [](const auto *a, const auto *b) {
                          return a->first < b->first;
                      });
        out += '{';
        for (size_t i = 0; i < members.size(); ++i) {
            if (i)
                out += ',';
            if (pretty)
                newline(depth + 1);
            out += '"';
            out += escape(members[i]->first);
            out += pretty ? "\": " : "\":";
            members[i]->second.write(out, indent, depth + 1, sortKeys);
        }
        if (pretty && !members.empty())
            newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
Value::dump() const
{
    std::string out;
    write(out, -1, 0, false);
    return out;
}

std::string
Value::dumpIndented(int indent) const
{
    std::string out;
    out.append(static_cast<size_t>(indent), ' ');
    write(out, indent, 0, false);
    return out;
}

std::string
Value::canonical() const
{
    std::string out;
    write(out, -1, 0, true);
    return out;
}

namespace {

/** Recursive-descent parser over a complete document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parseDocument(Value *out)
    {
        skipWhitespace();
        if (!parseValue(out))
            return false;
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char ch)
    {
        if (pos_ < text_.size() && text_[pos_] == ch) {
            ++pos_;
            return true;
        }
        return fail(std::string("expected '") + ch + "'");
    }

    bool
    literal(const char *word, Value v, Value *out)
    {
        const size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("invalid literal (expected ") +
                        word + ")");
        pos_ += len;
        *out = std::move(v);
        return true;
    }

    bool
    parseValue(Value *out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            return parseString(out);
          case 't':
            return literal("true", Value(true), out);
          case 'f':
            return literal("false", Value(false), out);
          case 'n':
            return literal("null", Value(nullptr), out);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value *out)
    {
        if (!consume('{'))
            return false;
        Value obj = Value::object();
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            *out = std::move(obj);
            return true;
        }
        while (true) {
            skipWhitespace();
            Value key;
            if (!parseString(&key))
                return fail("object key must be a string");
            skipWhitespace();
            if (!consume(':'))
                return false;
            skipWhitespace();
            Value member;
            if (!parseValue(&member))
                return false;
            obj.set(key.asString(), std::move(member));
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (!consume('}'))
                return false;
            *out = std::move(obj);
            return true;
        }
    }

    bool
    parseArray(Value *out)
    {
        if (!consume('['))
            return false;
        Value arr = Value::array();
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            *out = std::move(arr);
            return true;
        }
        while (true) {
            skipWhitespace();
            Value element;
            if (!parseValue(&element))
                return false;
            arr.push(std::move(element));
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (!consume(']'))
                return false;
            *out = std::move(arr);
            return true;
        }
    }

    bool
    appendCodepoint(uint32_t cp, std::string &s)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xc0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xe0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            s += static_cast<char>(0xf0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        }
        return true;
    }

    bool
    parseHex4(uint32_t *out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        uint32_t cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char ch = text_[pos_++];
            cp <<= 4;
            if (ch >= '0' && ch <= '9')
                cp |= static_cast<uint32_t>(ch - '0');
            else if (ch >= 'a' && ch <= 'f')
                cp |= static_cast<uint32_t>(ch - 'a' + 10);
            else if (ch >= 'A' && ch <= 'F')
                cp |= static_cast<uint32_t>(ch - 'A' + 10);
            else
                return fail("invalid \\u escape digit");
        }
        *out = cp;
        return true;
    }

    bool
    parseString(Value *out)
    {
        if (!consume('"'))
            return false;
        std::string s;
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char ch = text_[pos_++];
            if (ch == '"')
                break;
            if (static_cast<unsigned char>(ch) < 0x20)
                return fail("unescaped control character in string");
            if (ch != '\\') {
                s += ch;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                s += '"';
                break;
              case '\\':
                s += '\\';
                break;
              case '/':
                s += '/';
                break;
              case 'b':
                s += '\b';
                break;
              case 'f':
                s += '\f';
                break;
              case 'n':
                s += '\n';
                break;
              case 'r':
                s += '\r';
                break;
              case 't':
                s += '\t';
                break;
              case 'u': {
                uint32_t cp = 0;
                if (!parseHex4(&cp))
                    return false;
                // Combine surrogate pairs when both halves appear.
                if (cp >= 0xd800 && cp <= 0xdbff &&
                    text_.compare(pos_, 2, "\\u") == 0) {
                    const size_t save = pos_;
                    pos_ += 2;
                    uint32_t low = 0;
                    if (!parseHex4(&low))
                        return false;
                    if (low >= 0xdc00 && low <= 0xdfff)
                        cp = 0x10000 + ((cp - 0xd800) << 10) +
                             (low - 0xdc00);
                    else
                        pos_ = save;
                }
                appendCodepoint(cp, s);
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
        *out = Value(std::move(s));
        return true;
    }

    bool
    parseNumber(Value *out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (ch >= '0' && ch <= '9') {
                ++pos_;
            } else if (ch == '.' || ch == 'e' || ch == 'E' ||
                       ch == '+' || ch == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-")
            return fail("invalid number");
        if (integral) {
            int64_t value = 0;
            const auto res = std::from_chars(
                token.data(), token.data() + token.size(), value);
            if (res.ec == std::errc() &&
                res.ptr == token.data() + token.size()) {
                *out = Value(value);
                return true;
            }
            // Out-of-range integers fall through to double.
        }
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("invalid number");
        *out = Value(value);
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

bool
Value::parse(const std::string &text, Value *out, std::string *error)
{
    Parser parser(text);
    Value parsed;
    if (!parser.parseDocument(&parsed)) {
        if (error)
            *error = parser.error();
        return false;
    }
    *out = std::move(parsed);
    return true;
}

} // namespace gopim::json
