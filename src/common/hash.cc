#include "common/hash.hh"

namespace gopim {

uint64_t
fnv1a64(std::string_view data, uint64_t seed)
{
    uint64_t h = seed;
    for (const char ch : data) {
        h ^= static_cast<unsigned char>(ch);
        h *= kFnv1aPrime;
    }
    return h;
}

std::string
hexDigest64(uint64_t hash)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

} // namespace gopim
