#include "common/thread_pool.hh"

#include <algorithm>

namespace gopim {

ThreadPool::ThreadPool(size_t threads)
{
    threads = std::max<size_t>(1, threads);
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

size_t
ThreadPool::resolveJobs(size_t jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job(); // packaged_task captures exceptions in the future
    }
}

void
parallelFor(size_t count, size_t jobs,
            const std::function<void(size_t)> &fn)
{
    jobs = std::min(ThreadPool::resolveJobs(jobs), count);
    if (jobs <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    ThreadPool pool(jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (size_t i = 0; i < count; ++i)
        futures.push_back(pool.submit([&fn, i] { fn(i); }));
    // Collect in index order so the first failing index's exception
    // is the one rethrown, deterministically.
    for (auto &future : futures)
        future.get();
}

} // namespace gopim
