#include "common/thread_pool.hh"

#include <algorithm>

namespace gopim {

ThreadPool::ThreadPool(size_t threads)
{
    threads = std::max<size_t>(1, threads);
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        // Notify while holding the lock: a worker between its empty
        // check and its wait cannot miss the wake-up (the repo-wide
        // notify-under-lock convention gopim_lint enforces).
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        cv_.notify_all();
    }
    for (auto &worker : workers_)
        worker.join();
}

size_t
ThreadPool::resolveJobs(size_t jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        depth = queue_.size();
        cv_.notify_one(); // under the lock: no lost wake-up window
    }
    // Relaxed: both counters are advisory utilization metrics (see
    // thread_pool.hh); the CAS-max loop is monotone and re-reads the
    // observed value on failure, so it converges under any
    // interleaving without ordering guarantees.
    tasksSubmitted_.fetch_add(1, std::memory_order_relaxed);
    uint64_t seen = maxQueueDepth_.load(std::memory_order_relaxed);
    while (seen < depth &&
           !maxQueueDepth_.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed))
        ;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job(); // packaged_task captures exceptions in the future
        tasksCompleted_.fetch_add(1, std::memory_order_relaxed);
    }
}

ThreadPool &
processPool()
{
    static ThreadPool pool(ThreadPool::resolveJobs(0));
    return pool;
}

namespace {

/** Set while executing a parallelFor chunk on a pool worker. */
thread_local bool inParallelForWorker = false;

} // namespace

void
parallelFor(size_t count, size_t jobs,
            const std::function<void(size_t)> &fn)
{
    jobs = std::min(ThreadPool::resolveJobs(jobs), count);
    // Inline fallbacks: trivial parallelism, or a nested call from
    // inside a chunk (waiting on the shared pool from one of its own
    // workers would deadlock once all workers did it).
    if (jobs <= 1 || inParallelForWorker) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // `jobs` contiguous chunks on the shared pool: the caller's
    // concurrency bound survives even though the pool may be larger.
    // Each chunk attempts every index and keeps its first exception;
    // rethrowing from the lowest-indexed failing chunk preserves the
    // "first failing index wins" contract of the per-task version.
    struct Chunk
    {
        std::exception_ptr error;
    };
    std::vector<Chunk> chunks(jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(jobs);
    const size_t base = count / jobs;
    const size_t extra = count % jobs;
    size_t begin = 0;
    for (size_t c = 0; c < jobs; ++c) {
        const size_t size = base + (c < extra ? 1 : 0);
        const size_t end = begin + size;
        futures.push_back(processPool().submit(
            [&fn, &chunk = chunks[c], begin, end] {
                inParallelForWorker = true;
                for (size_t i = begin; i < end; ++i) {
                    try {
                        fn(i);
                    } catch (...) {
                        if (!chunk.error)
                            chunk.error = std::current_exception();
                    }
                }
                inParallelForWorker = false;
            }));
        begin = end;
    }
    for (auto &future : futures)
        future.get();
    for (const Chunk &chunk : chunks) {
        if (chunk.error)
            std::rethrow_exception(chunk.error);
    }
}

} // namespace gopim
