#include "common/math_utils.hh"

#include <cmath>

#include "common/logging.hh"

namespace gopim {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double total = 0.0;
    for (double x : v)
        total += x;
    return total / static_cast<double>(v.size());
}

double
geomean(const std::vector<double> &v)
{
    GOPIM_ASSERT(!v.empty(), "geomean of empty vector");
    double logSum = 0.0;
    for (double x : v) {
        GOPIM_ASSERT(x > 0.0, "geomean requires positive values");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(v.size()));
}

double
expectedDistinctBuckets(double draws, double buckets)
{
    if (buckets <= 1.0)
        return buckets;
    if (draws <= 0.0)
        return 0.0;
    const double missProb = std::pow(1.0 - 1.0 / buckets, draws);
    return buckets * (1.0 - missProb);
}

} // namespace gopim
