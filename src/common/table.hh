/**
 * @file
 * Console table and CSV writer used by the benchmark harnesses to print
 * the rows/series corresponding to each paper table and figure.
 */

#ifndef GOPIM_COMMON_TABLE_HH
#define GOPIM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace gopim {

/**
 * Row/column text table with aligned console rendering and CSV export.
 *
 * Cells are stored as strings; numeric helpers format doubles with a
 * default precision suitable for speedup/energy ratios.
 */
class Table
{
  public:
    /** Create a table with the given title and column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a formatted numeric cell (fixed, `digits` decimals). */
    Table &cell(double value, int digits = 2);

    /** Append an integer cell. */
    Table &cell(uint64_t value);
    Table &cell(int value);

    size_t rows() const { return cells_.size(); }
    size_t cols() const { return headers_.size(); }
    const std::string &title() const { return title_; }

    /** Render an aligned, boxed console table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header row first). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> cells_;
};

/** Format a double as a human-readable duration (ns/us/ms/s). */
std::string formatTimeNs(double ns);

/** Format a double as a human-readable energy (pJ/nJ/uJ/mJ/J). */
std::string formatEnergyPj(double pj);

/** Format a ratio like "12.3x". */
std::string formatRatio(double r, int digits = 1);

} // namespace gopim

#endif // GOPIM_COMMON_TABLE_HH
