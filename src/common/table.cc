#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace gopim {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    GOPIM_ASSERT(!headers_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    cells_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    GOPIM_ASSERT(!cells_.empty(), "cell() before row()");
    GOPIM_ASSERT(cells_.back().size() < headers_.size(),
                 "row has more cells than headers");
    cells_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return cell(os.str());
}

Table &
Table::cell(uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : cells_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto hline = [&] {
        os << '+';
        for (size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    hline();
    os << '|';
    for (size_t c = 0; c < headers_.size(); ++c)
        os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
           << headers_[c] << " |";
    os << '\n';
    hline();
    for (const auto &row : cells_) {
        os << '|';
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
               << v << " |";
        }
        os << '\n';
    }
    hline();
}

void
Table::printCsv(std::ostream &os) const
{
    auto escape = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    for (size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << escape(headers_[c]);
    os << '\n';
    for (const auto &row : cells_) {
        for (size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << escape(row[c]);
        os << '\n';
    }
}

std::string
formatTimeNs(double ns)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (ns < 1e3)
        os << ns << " ns";
    else if (ns < 1e6)
        os << ns / 1e3 << " us";
    else if (ns < 1e9)
        os << ns / 1e6 << " ms";
    else
        os << ns / 1e9 << " s";
    return os.str();
}

std::string
formatEnergyPj(double pj)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (pj < 1e3)
        os << pj << " pJ";
    else if (pj < 1e6)
        os << pj / 1e3 << " nJ";
    else if (pj < 1e9)
        os << pj / 1e6 << " uJ";
    else if (pj < 1e12)
        os << pj / 1e9 << " mJ";
    else
        os << pj / 1e12 << " J";
    return os.str();
}

std::string
formatRatio(double r, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << r << "x";
    return os.str();
}

} // namespace gopim
