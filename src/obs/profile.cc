#include "obs/profile.hh"

namespace gopim::obs {

namespace {

std::chrono::steady_clock::time_point
profileEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

double
profileNowUs()
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now -
                                                     profileEpoch())
        .count();
}

ProfileSpan::ProfileSpan(MetricsRegistry *registry, std::string name,
                         SpanSink *sink)
    : registry_(registry), sink_(sink), name_(std::move(name))
{
    if (registry_ || sink_)
        startUs_ = profileNowUs();
}

ProfileSpan::~ProfileSpan()
{
    if (!registry_ && !sink_)
        return;
    const double durationUs = profileNowUs() - startUs_;
    if (registry_) {
        registry_->counter("profile." + name_ + ".count").add();
        registry_
            ->histogram("profile." + name_ + ".us", latencyBoundsUs())
            .observe(durationUs);
    }
    if (sink_)
        sink_->profileSpan(name_, startUs_, durationUs);
}

double
ProfileSpan::elapsedUs() const
{
    if (!registry_ && !sink_)
        return 0.0;
    return profileNowUs() - startUs_;
}

std::vector<double>
ProfileSpan::latencyBoundsUs()
{
    // 1, 4, 16, ... 4^11 us (~16.8 s); 12 buckets + overflow.
    return Histogram::exponentialBounds(1.0, 4.0, 12);
}

} // namespace gopim::obs
