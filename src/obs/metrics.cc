#include "obs/metrics.hh"

#include <algorithm>
#include <fstream>

#include "common/logging.hh"

namespace gopim::obs {

namespace {

/**
 * Relaxed atomic double accumulation (CAS loop; C++20-portable).
 * Relaxed on both the load and the CAS is correct here: the loop
 * only needs atomicity of each individual read-modify-write, not
 * ordering against other memory — sums are commutative and the
 * final value is read after the writers are joined (see the
 * ordering notes in metrics.hh). On CAS failure `current` is
 * refreshed with the observed value, so progress never depends on
 * ordering either.
 */
void
addDouble(std::atomic<double> &target, double delta)
{
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed))
        ;
}

} // namespace

void
Gauge::recordMax(int64_t v)
{
    // Relaxed CAS max: the high-water mark is monotone, so any
    // interleaving of concurrent recordMax calls converges to the
    // same value; no surrounding memory is published through it.
    int64_t current = value_.load(std::memory_order_relaxed);
    while (current < v &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed))
        ;
}

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds))
{
    GOPIM_ASSERT(!bounds_.empty(), "histogram needs >= 1 bound");
    GOPIM_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(),
                                        bounds_.end()) == bounds_.end(),
                 "histogram bounds must be strictly increasing");
    counts_ = std::make_unique<std::atomic<uint64_t>[]>(
        bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const size_t bucket =
        static_cast<size_t>(it - bounds_.begin()); // == size: overflow
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    addDouble(sum_, value);
}

uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> out(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

void
Histogram::merge(const Histogram &other)
{
    GOPIM_ASSERT(bounds_ == other.bounds_,
                 "merging histograms with different bounds");
    for (size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].fetch_add(
            other.counts_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    addDouble(sum_, other.sum());
}

json::Value
Histogram::toJson() const
{
    json::Value v = json::Value::object();
    json::Value bounds = json::Value::array();
    for (double b : bounds_)
        bounds.push(b);
    json::Value counts = json::Value::array();
    for (uint64_t c : bucketCounts())
        counts.push(c);
    v.set("bounds", std::move(bounds));
    v.set("counts", std::move(counts));
    v.set("count", count());
    v.set("sum", sum());
    return v;
}

std::vector<double>
Histogram::exponentialBounds(double start, double factor, size_t count)
{
    GOPIM_ASSERT(start > 0.0 && factor > 1.0 && count >= 1,
                 "bad exponential bucket spec");
    std::vector<double> bounds;
    bounds.reserve(count);
    double bound = start;
    for (size_t i = 0; i < count; ++i) {
        bounds.push_back(bound);
        bound *= factor;
    }
    return bounds;
}

std::vector<double>
Histogram::linearBounds(double start, double width, size_t count)
{
    GOPIM_ASSERT(width > 0.0 && count >= 1, "bad linear bucket spec");
    std::vector<double> bounds;
    bounds.reserve(count);
    for (size_t i = 0; i < count; ++i)
        bounds.push_back(start + width * static_cast<double>(i));
    return bounds;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upperBounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(upperBounds));
    return *slot;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

json::Value
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value counters = json::Value::object();
    for (const auto &[name, counter] : counters_)
        counters.set(name, counter->value());
    json::Value gauges = json::Value::object();
    for (const auto &[name, gauge] : gauges_)
        gauges.set(name, gauge->value());
    json::Value histograms = json::Value::object();
    for (const auto &[name, histogram] : histograms_)
        histograms.set(name, histogram->toJson());

    json::Value v = json::Value::object();
    v.set("schema", "gopim.metrics.v1");
    v.set("counters", std::move(counters));
    v.set("gauges", std::move(gauges));
    v.set("histograms", std::move(histograms));
    return v;
}

void
MetricsRegistry::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics output file '", path, "'");
    out << toJson().dumpIndented() << '\n';
}

void
recordPoolUtilization(MetricsRegistry &registry,
                      const std::string &prefix, uint64_t threads,
                      uint64_t tasksSubmitted, uint64_t tasksCompleted,
                      uint64_t maxQueueDepth)
{
    registry.gauge(prefix + ".threads")
        .set(static_cast<int64_t>(threads));
    registry.gauge(prefix + ".tasks_submitted")
        .set(static_cast<int64_t>(tasksSubmitted));
    registry.gauge(prefix + ".tasks_completed")
        .set(static_cast<int64_t>(tasksCompleted));
    registry.gauge(prefix + ".queue_max_depth")
        .recordMax(static_cast<int64_t>(maxQueueDepth));
}

} // namespace gopim::obs
