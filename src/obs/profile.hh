/**
 * @file
 * Scoped wall-clock profiling spans. A ProfileSpan measures the host
 * time between construction and destruction and feeds two consumers:
 *
 *  - a MetricsRegistry, as `profile.<name>.us` (latency histogram)
 *    and `profile.<name>.count`;
 *  - an optional SpanSink — sim::ChromeTraceSink implements it, so
 *    spans land in the same Chrome trace as the simulated pipeline
 *    windows (under a dedicated "host profiling" track).
 *
 * Spans measure the *simulator process* (how long a simulation, a
 * grid cell, or a request took on the host), never the simulated
 * clock: simulated timing comes exclusively from the engines and is
 * unaffected by whether spans exist. With both consumers null a span
 * is inert and never reads the clock.
 */

#ifndef GOPIM_OBS_PROFILE_HH
#define GOPIM_OBS_PROFILE_HH

#include <chrono>
#include <string>

#include "obs/metrics.hh"

namespace gopim::obs {

/** Consumer of completed spans (Chrome trace sink implements this). */
class SpanSink
{
  public:
    virtual ~SpanSink() = default;

    /**
     * One completed span. `startUs` is microseconds since an
     * arbitrary process-wide epoch; must be thread-safe.
     */
    virtual void profileSpan(const std::string &name, double startUs,
                             double durationUs) = 0;
};

/** Microseconds since the process-wide profiling epoch. */
double profileNowUs();

/** RAII span: records on destruction. */
class ProfileSpan
{
  public:
    /** Either consumer may be null; with both null the span is free. */
    ProfileSpan(MetricsRegistry *registry, std::string name,
                SpanSink *sink = nullptr);
    ~ProfileSpan();

    ProfileSpan(const ProfileSpan &) = delete;
    ProfileSpan &operator=(const ProfileSpan &) = delete;

    /** Microseconds elapsed so far (0 when inert). */
    double elapsedUs() const;

    /** Default latency buckets: 1 us .. ~16 s, powers of 4. */
    static std::vector<double> latencyBoundsUs();

  private:
    MetricsRegistry *registry_;
    SpanSink *sink_;
    std::string name_;
    double startUs_ = 0.0;
};

} // namespace gopim::obs

#endif // GOPIM_OBS_PROFILE_HH
