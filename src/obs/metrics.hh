/**
 * @file
 * Deterministic metrics subsystem: a MetricsRegistry of named
 * counters, gauges, and fixed-bucket histograms.
 *
 * Design constraints (the observability contract):
 *  - Metrics observe; they never perturb. Nothing in this file reads
 *    a clock or touches simulation state, so a run with a registry
 *    attached is bit-identical to one without (pinned by
 *    tests/test_obs.cc).
 *  - The hot path is sharded-atomic: every instrument is a bag of
 *    std::atomic cells updated with relaxed fetch-adds, so worker
 *    threads never contend on a lock while recording. The registry's
 *    name->instrument map takes a mutex only on first lookup; callers
 *    on hot paths hold the returned reference (stable for the
 *    registry's lifetime) instead of re-resolving the name.
 *  - Counter and histogram updates are commutative sums, so their
 *    exported values are identical for any worker count or
 *    interleaving — the property that lets --metrics-out JSON be
 *    compared across --jobs values.
 *
 * Metric naming scheme: dot-separated lowercase path,
 * `<subsystem>.<object>.<quantity>[_<unit>]`, e.g.
 * `sim.schedule.count`, `serve.request.latency_us`,
 * `alloc.replicas_per_stage`. Units are spelled in the trailing
 * segment (`_ns`, `_us`, `_bytes`); unitless counts end in `.count`
 * or a plural noun.
 */

#ifndef GOPIM_OBS_METRICS_HH
#define GOPIM_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"

namespace gopim::obs {

/**
 * Monotonic sum; relaxed atomic adds, order-independent total.
 *
 * Memory ordering: relaxed is sufficient on every access because a
 * counter carries no payload besides its own value — no other memory
 * is published through it, so no acquire/release edge is needed.
 * Readers that require the *final* total (the --metrics-out export)
 * already synchronize with the writers through a stronger mechanism
 * — future.get() / thread join in ThreadPool — which orders all
 * prior relaxed adds before the read. A concurrent mid-run read is
 * allowed to see a momentarily stale total; that is the documented
 * contract of a live stats snapshot.
 */
class Counter
{
  public:
    void
    add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/**
 * Point-in-time value. `set` is last-write-wins (use for
 * configuration-like values recorded once); `recordMax` keeps the
 * high-water mark (order-independent, safe under concurrency);
 * `add` supports live depth gauges (in-flight request counts) that
 * rise and fall as work is dispatched and retired.
 */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /**
     * Adjust the gauge by `delta` (negative to decrement). Relaxed,
     * commutative — the resting value is interleaving-independent,
     * which is what lets the cluster's admission control read its
     * queue-depth decisions straight off the exported instrument.
     */
    void
    add(int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Raise the gauge to `v` if above the current value. */
    void recordMax(int64_t v);

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram: bucket i counts samples with
 * value <= bounds[i] (first matching bucket); one implicit overflow
 * bucket catches everything above the last bound. Bucket counts,
 * total count, and sum are all atomic relaxed adds.
 *
 * Memory ordering: the three cells touched by observe() (bucket,
 * count_, sum_) are updated as independent relaxed operations, not
 * as one transaction. A concurrent reader may therefore see count()
 * briefly ahead of sum() or of the bucket totals. That skew is
 * deliberate: exported snapshots are taken after the recording
 * threads quiesce (join/future.get() provides the happens-before),
 * where every relaxed add is visible and the triple is consistent.
 * Strengthening to acq_rel would serialize the hot path for a
 * consistency level no reader relies on.
 */
class Histogram
{
  public:
    /** `upperBounds` must be non-empty and strictly increasing. */
    explicit Histogram(std::vector<double> upperBounds);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double value);

    uint64_t count() const;
    double sum() const;
    /** Per-bucket counts; size() == bounds().size() + 1 (overflow). */
    std::vector<uint64_t> bucketCounts() const;
    const std::vector<double> &bounds() const { return bounds_; }

    /** Add another histogram's contents; bounds must match exactly. */
    void merge(const Histogram &other);

    /** {"bounds":[...],"counts":[...],"count":N,"sum":S} */
    json::Value toJson() const;

    /** bounds = start, start*factor, ... (count values, factor > 1). */
    static std::vector<double> exponentialBounds(double start,
                                                 double factor,
                                                 size_t count);
    /** bounds = start, start+width, ... (count values, width > 0). */
    static std::vector<double> linearBounds(double start, double width,
                                            size_t count);

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> counts_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * Named instrument registry. Thread-safe; instruments are created on
 * first use and live as long as the registry, so references returned
 * by counter()/gauge()/histogram() may be cached by hot paths.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /**
     * `upperBounds` is consumed on first creation; later calls with
     * the same name return the existing histogram regardless of
     * bounds.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upperBounds);

    /** Lookup without creating; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /**
     * Schema-stable export: {"schema":"gopim.metrics.v1",
     * "counters":{...},"gauges":{...},"histograms":{...}} with names
     * sorted within each section.
     */
    json::Value toJson() const;

    /** Write toJson() (indented) to `path`; fatal() if unwritable. */
    void writeFile(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Record a worker-pool utilization snapshot under `<prefix>.*`
 * gauges (threads, tasks_submitted, tasks_completed) plus a
 * `<prefix>.queue_max_depth` high-water mark. Gauges, not counters:
 * snapshots are absolute and may be re-recorded idempotently.
 */
void recordPoolUtilization(MetricsRegistry &registry,
                           const std::string &prefix, uint64_t threads,
                           uint64_t tasksSubmitted,
                           uint64_t tasksCompleted,
                           uint64_t maxQueueDepth);

} // namespace gopim::obs

#endif // GOPIM_OBS_METRICS_HH
