#include "reram/area.hh"

namespace gopim::reram {

AreaBreakdown
computeArea(const AcceleratorConfig &cfg)
{
    const auto &xb = cfg.crossbar;
    const auto &pe = cfg.pe;
    const auto &tile = cfg.tile;
    const auto &chip = cfg.chip;

    AreaBreakdown out;
    out.perPeMm2 = xb.areaMm2 * pe.crossbarsPerPe + pe.adcAreaMm2 +
                   pe.dacAreaMm2 + pe.shAreaMm2 + pe.irAreaMm2 +
                   pe.orAreaMm2 + pe.saAreaMm2;
    out.perTileMm2 = out.perPeMm2 * tile.pesPerTile +
                     tile.inputBufferAreaMm2 +
                     tile.crossbarBufferAreaMm2 +
                     tile.outputBufferAreaMm2 + tile.nfuAreaMm2 +
                     tile.pfuAreaMm2;
    out.chipMm2 = out.perTileMm2 * chip.tilesPerChip +
                  chip.weightComputerAreaMm2 + chip.activationAreaMm2 +
                  chip.controllerAreaMm2;
    return out;
}

} // namespace gopim::reram
