/**
 * @file
 * Chip area roll-up from the Table II component areas.
 */

#ifndef GOPIM_RERAM_AREA_HH
#define GOPIM_RERAM_AREA_HH

#include "reram/config.hh"

namespace gopim::reram {

/** Area accounting (mm^2) per hierarchy level. */
struct AreaBreakdown
{
    double perPeMm2 = 0.0;
    double perTileMm2 = 0.0;
    double chipMm2 = 0.0;
};

/** Compute the full area roll-up for a configuration. */
AreaBreakdown computeArea(const AcceleratorConfig &cfg);

} // namespace gopim::reram

#endif // GOPIM_RERAM_AREA_HH
