/**
 * @file
 * Chip-level crossbar resource accounting: allocation against the
 * 16 GB crossbar budget and per-region write-endurance tracking.
 */

#ifndef GOPIM_RERAM_RESOURCES_HH
#define GOPIM_RERAM_RESOURCES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "reram/config.hh"

namespace gopim::reram {

/** Handle for a named crossbar allocation (one pipeline stage). */
struct Allocation
{
    std::string name;
    uint64_t crossbars = 0;
    uint64_t rowWrites = 0; ///< cumulative row writes into this region
};

/**
 * Tracks crossbar allocations against the chip budget. Used by the
 * accelerator to enforce the paper's "same crossbar resources for all
 * accelerators" fairness constraint, and by the endurance study to
 * account lifetime wear.
 */
class ChipResources
{
  public:
    explicit ChipResources(const AcceleratorConfig &cfg);

    uint64_t totalCrossbars() const { return total_; }
    uint64_t allocatedCrossbars() const { return allocated_; }
    uint64_t freeCrossbars() const { return total_ - allocated_; }

    /**
     * Allocate `crossbars` under `name`; returns the allocation index.
     * fatal() if the budget is exceeded (a configuration error).
     */
    size_t allocate(const std::string &name, uint64_t crossbars);

    /** Release every allocation. */
    void reset();

    /** Record row writes against an allocation (endurance + energy). */
    void recordWrites(size_t allocIdx, uint64_t rowWrites);

    const std::vector<Allocation> &allocations() const { return allocs_; }

    /** Total row writes across all allocations. */
    uint64_t totalRowWrites() const;

    /**
     * Estimated consumed lifetime fraction of the most-written region:
     * writes per row / endurance, assuming writes spread over the
     * region's rows.
     */
    double worstWearFraction() const;

  private:
    AcceleratorConfig cfg_;
    uint64_t total_;
    uint64_t allocated_ = 0;
    std::vector<Allocation> allocs_;
};

} // namespace gopim::reram

#endif // GOPIM_RERAM_RESOURCES_HH
