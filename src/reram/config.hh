/**
 * @file
 * Configuration of the ReRAM-based accelerator, mirroring Table II of
 * the paper. All power values are in mW, areas in mm^2, latencies in
 * ns, sizes in bytes. Defaults reproduce the published specification:
 * 65536 tiles x 8 PEs x 32 crossbars of 64x64 cells (2 bits per cell),
 * read 29.31 ns / write 50.88 ns, 16 GB of crossbar capacity.
 */

#ifndef GOPIM_RERAM_CONFIG_HH
#define GOPIM_RERAM_CONFIG_HH

#include <cstdint>

namespace gopim::reram {

/** Crossbar geometry and cell parameters. */
struct CrossbarConfig
{
    uint32_t rows = 64;
    uint32_t cols = 64;
    uint32_t bitsPerCell = 2;
    /** Stored value precision; 16-bit values span multiple cells. */
    uint32_t valueBits = 16;
    double readLatencyNs = 29.31;
    double writeLatencyNs = 50.88;
    double powerMw = 6.2;
    double areaMm2 = 0.00051;

    /** Cells in one crossbar. */
    uint64_t cells() const
    {
        return static_cast<uint64_t>(rows) * cols;
    }

    /**
     * Cell slices per stored value. The paper's Table VI crossbar
     * counts imply 2 slices per 16-bit value (see DESIGN.md §2).
     */
    uint32_t slicesPerValue() const { return 2; }
};

/** Per-PE peripheral circuit parameters (Table II, PE properties). */
struct PeConfig
{
    uint32_t crossbarsPerPe = 32;

    // ADC: 8-bit, 32 per PE.
    double adcPowerMw = 64.0;
    double adcAreaMm2 = 0.0384;
    uint32_t adcCount = 32;
    uint32_t adcResolutionBits = 8;

    // DAC: 2-bit, one per crossbar row (32 x 64).
    double dacPowerMw = 0.5;
    double dacAreaMm2 = 0.00034;
    uint32_t dacCount = 32 * 64;
    uint32_t dacResolutionBits = 2;

    // Sample-and-hold, one per crossbar row.
    double shPowerMw = 0.02;
    double shAreaMm2 = 0.00008;
    uint32_t shCount = 32 * 64;

    // Input/output registers.
    double irPowerMw = 2.32;
    double irAreaMm2 = 0.0038;
    uint32_t irBytes = 4096;
    double orPowerMw = 0.42;
    double orAreaMm2 = 0.0014;
    uint32_t orBytes = 512;

    // Shift-and-add units.
    double saPowerMw = 0.8;
    double saAreaMm2 = 0.00096;
    uint32_t saCount = 16;
};

/** Per-tile parameters (Table II, tile properties). */
struct TileConfig
{
    uint32_t pesPerTile = 8;
    double inputBufferPowerMw = 7.95;
    double inputBufferAreaMm2 = 0.034;
    uint32_t inputBufferBytes = 32 * 1024;
    double crossbarBufferPowerMw = 59.42;
    double crossbarBufferAreaMm2 = 0.208;
    uint32_t crossbarBufferBytes = 256 * 1024;
    double outputBufferPowerMw = 1.28;
    double outputBufferAreaMm2 = 0.0041;
    uint32_t outputBufferBytes = 4 * 1024;
    double nfuPowerMw = 2.04;
    double nfuAreaMm2 = 0.0024;
    uint32_t nfuCount = 8;
    double pfuPowerMw = 3.2;
    double pfuAreaMm2 = 0.00192;
    uint32_t pfuCount = 8;
};

/** Chip-level parameters (Table II, chip properties). */
struct ChipConfig
{
    uint32_t tilesPerChip = 65536;
    double weightComputerPowerMw = 99.6;
    double weightComputerAreaMm2 = 3.21;
    double activationPowerMw = 0.0266;
    double activationAreaMm2 = 0.0030;
    double controllerPowerMw = 580.41;
    double controllerAreaMm2 = 2.65;
    uint32_t globalBufferKb = 128;
    /** ReRAM write endurance (writes per cell over the lifetime). */
    double writeEndurance = 1e8;
};

/** Complete accelerator configuration. */
struct AcceleratorConfig
{
    CrossbarConfig crossbar;
    PeConfig pe;
    TileConfig tile;
    ChipConfig chip;

    /**
     * Rows streamed per serial input window: one PE's worth of
     * wordlines (crossbarsPerPe x rows). See DESIGN.md §2.
     */
    uint32_t windowRows() const
    {
        return pe.crossbarsPerPe * crossbar.rows;
    }

    /** Bit-serial input cycles per MVM (input bits / DAC bits). */
    uint32_t inputCycles() const
    {
        return crossbar.valueBits / pe.dacResolutionBits;
    }

    /** Total crossbars on the chip. */
    uint64_t totalCrossbars() const
    {
        return static_cast<uint64_t>(chip.tilesPerChip) *
               tile.pesPerTile * pe.crossbarsPerPe;
    }

    /** Total ReRAM capacity in bytes (cells x bits per cell / 8). */
    uint64_t capacityBytes() const
    {
        return totalCrossbars() * crossbar.cells() *
               crossbar.bitsPerCell / 8;
    }

    /** Validate internal consistency; fatal() on bad configurations. */
    void validate() const;

    /** The paper's published configuration (Table II). */
    static AcceleratorConfig paperDefault();
};

} // namespace gopim::reram

#endif // GOPIM_RERAM_CONFIG_HH
