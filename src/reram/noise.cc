#include "reram/noise.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "tensor/ops.hh"

namespace gopim::reram {

DeviceNoiseModel::DeviceNoiseModel(NoiseParams params)
    : params_(params), rng_(params.seed)
{
    GOPIM_ASSERT(params_.conductanceSigma >= 0.0,
                 "variation sigma must be >= 0");
}

uint32_t
DeviceNoiseModel::levelsFor(const AcceleratorConfig &cfg)
{
    const uint32_t bits =
        cfg.crossbar.bitsPerCell * cfg.crossbar.slicesPerValue();
    GOPIM_ASSERT(bits < 31, "level count overflow");
    return 1u << bits;
}

tensor::Matrix
DeviceNoiseModel::program(const tensor::Matrix &ideal)
{
    tensor::Matrix out = ideal;
    float *p = out.data();

    if (params_.quantLevels >= 2) {
        // Symmetric uniform quantization over the observed range.
        float maxAbs = 0.0f;
        for (size_t i = 0; i < out.size(); ++i)
            maxAbs = std::max(maxAbs, std::fabs(p[i]));
        if (maxAbs > 0.0f) {
            const float step =
                2.0f * maxAbs /
                static_cast<float>(params_.quantLevels - 1);
            for (size_t i = 0; i < out.size(); ++i)
                p[i] = std::round(p[i] / step) * step;
        }
    }

    if (params_.conductanceSigma > 0.0) {
        for (size_t i = 0; i < out.size(); ++i)
            p[i] *= static_cast<float>(
                1.0 + rng_.normal(0.0, params_.conductanceSigma));
    }
    return out;
}

double
DeviceNoiseModel::programmingRmse(const tensor::Matrix &ideal)
{
    const tensor::Matrix actual = program(ideal);
    double num = 0.0, den = 0.0;
    const float *a = ideal.data();
    const float *b = actual.data();
    for (size_t i = 0; i < ideal.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        num += d * d;
        den += static_cast<double>(a[i]) * a[i];
    }
    return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

double
mvmOutputError(const tensor::Matrix &x, const tensor::Matrix &wIdeal,
               const tensor::Matrix &wNoisy)
{
    const auto ideal = tensor::matmul(x, wIdeal);
    const auto noisy = tensor::matmul(x, wNoisy);
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < ideal.size(); ++i) {
        const double d = static_cast<double>(ideal.data()[i]) -
                         noisy.data()[i];
        num += d * d;
        den += static_cast<double>(ideal.data()[i]) *
               ideal.data()[i];
    }
    return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

} // namespace gopim::reram
