#include "reram/resources.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gopim::reram {

ChipResources::ChipResources(const AcceleratorConfig &cfg)
    : cfg_(cfg), total_(cfg.totalCrossbars())
{
    cfg_.validate();
}

size_t
ChipResources::allocate(const std::string &name, uint64_t crossbars)
{
    if (crossbars > freeCrossbars()) {
        fatal("crossbar budget exceeded: requested ", crossbars,
              " for '", name, "' with only ", freeCrossbars(),
              " of ", total_, " free");
    }
    allocated_ += crossbars;
    allocs_.push_back({name, crossbars, 0});
    return allocs_.size() - 1;
}

void
ChipResources::reset()
{
    allocated_ = 0;
    allocs_.clear();
}

void
ChipResources::recordWrites(size_t allocIdx, uint64_t rowWrites)
{
    GOPIM_ASSERT(allocIdx < allocs_.size(),
                 "recordWrites: bad allocation index");
    allocs_[allocIdx].rowWrites += rowWrites;
}

uint64_t
ChipResources::totalRowWrites() const
{
    uint64_t total = 0;
    for (const auto &a : allocs_)
        total += a.rowWrites;
    return total;
}

double
ChipResources::worstWearFraction() const
{
    double worst = 0.0;
    for (const auto &a : allocs_) {
        if (a.crossbars == 0)
            continue;
        const double rows = static_cast<double>(a.crossbars) *
                            cfg_.crossbar.rows;
        const double perRow = static_cast<double>(a.rowWrites) / rows;
        worst = std::max(worst, perRow / cfg_.chip.writeEndurance);
    }
    return worst;
}

} // namespace gopim::reram
