/**
 * @file
 * Analytic energy model derived from Table II power figures.
 *
 * Dynamic energy is charged per crossbar activation (one bit-serial
 * window cycle through one crossbar, including the pro-rated ADC, DAC,
 * S&H and S+A periphery) and per crossbar-row write. Static energy is
 * charged for the chip background (controller, activation module,
 * weight manager) over the makespan plus a leakage fraction for
 * crossbars that are allocated but idle — which is exactly the cost
 * the paper's pipeline optimizations reduce.
 */

#ifndef GOPIM_RERAM_ENERGY_HH
#define GOPIM_RERAM_ENERGY_HH

#include <cstdint>

#include "reram/config.hh"

namespace gopim::reram {

/** Energy calculator; all results in pJ (mW x ns = pJ). */
class EnergyModel
{
  public:
    explicit EnergyModel(const AcceleratorConfig &cfg);

    /**
     * Dynamic energy of one crossbar activation: one read cycle through
     * one crossbar plus its share of PE periphery (pJ).
     */
    double activationEnergyPj() const;

    /** Dynamic energy of writing one crossbar row (pJ). */
    double rowWriteEnergyPj() const;

    /** Energy of moving one byte through the tile buffers (pJ). */
    double bufferEnergyPerBytePj() const;

    /** Chip background power: controller + activation + weight mgr (mW). */
    double backgroundPowerMw() const;

    /**
     * Idle power of one allocated crossbar plus its PE periphery share
     * (mW). Allocated-but-idle crossbars draw this the whole time they
     * sit waiting — the energy waste the paper's pipeline
     * optimizations attack (Section III-A).
     */
    double idlePowerPerCrossbarMw() const;

    /**
     * Total energy of a run (pJ): activations and row writes are event
     * counts; makespan covers the chip background; idleCrossbarNs is
     * the integral over stages of (allocated crossbars x idle time).
     */
    double totalEnergyPj(double makespanNs, uint64_t activations,
                         uint64_t rowWrites, uint64_t bufferBytes,
                         double idleCrossbarNs) const;

    const AcceleratorConfig &config() const { return cfg_; }

  private:
    AcceleratorConfig cfg_;
    /**
     * Fraction of active power drawn by an idle (allocated) crossbar.
     * Idle regions are power gated; only gated leakage remains.
     */
    static constexpr double kIdleFraction = 3e-4;
};

} // namespace gopim::reram

#endif // GOPIM_RERAM_ENERGY_HH
