#include "reram/energy.hh"

#include "common/logging.hh"

namespace gopim::reram {

EnergyModel::EnergyModel(const AcceleratorConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

double
EnergyModel::activationEnergyPj() const
{
    const auto &pe = cfg_.pe;
    // Per-crossbar share of the PE periphery while one read cycle runs.
    const double peripheryMw =
        (pe.adcPowerMw + pe.dacPowerMw + pe.shPowerMw * pe.shCount +
         pe.saPowerMw * pe.saCount + pe.irPowerMw + pe.orPowerMw) /
        static_cast<double>(pe.crossbarsPerPe);
    const double powerMw = cfg_.crossbar.powerMw + peripheryMw;
    return powerMw * cfg_.crossbar.readLatencyNs;
}

double
EnergyModel::rowWriteEnergyPj() const
{
    // One row-write pulse across 64 cells. SET/RESET draws roughly 2x
    // the read current (Niu et al., ICCAD'13); the / inputCycles
    // factor mirrors activationEnergyPj's convention that component
    // power figures in Table II cover a full bit-serial pass.
    const double writePowerMw = cfg_.crossbar.powerMw * 2.0;
    return writePowerMw * cfg_.crossbar.writeLatencyNs /
           static_cast<double>(cfg_.inputCycles());
}

double
EnergyModel::bufferEnergyPerBytePj() const
{
    // SRAM buffer access energy, ~1 pJ/byte at this node; scaled from
    // the crossbar-buffer power over its bandwidth.
    return 1.0;
}

double
EnergyModel::backgroundPowerMw() const
{
    const auto &chip = cfg_.chip;
    return chip.controllerPowerMw + chip.activationPowerMw +
           chip.weightComputerPowerMw;
}

double
EnergyModel::idlePowerPerCrossbarMw() const
{
    const auto &pe = cfg_.pe;
    const double perCrossbarMw =
        cfg_.crossbar.powerMw +
        (pe.adcPowerMw + pe.dacPowerMw + pe.irPowerMw + pe.orPowerMw) /
            static_cast<double>(pe.crossbarsPerPe);
    return kIdleFraction * perCrossbarMw;
}

// Idle (allocated but waiting) crossbars are clock/power gated; only
// gated leakage remains, a small fraction of active power.

double
EnergyModel::totalEnergyPj(double makespanNs, uint64_t activations,
                           uint64_t rowWrites, uint64_t bufferBytes,
                           double idleCrossbarNs) const
{
    GOPIM_ASSERT(makespanNs >= 0.0, "negative makespan");
    GOPIM_ASSERT(idleCrossbarNs >= 0.0, "negative idle integral");
    const double dynamic =
        static_cast<double>(activations) * activationEnergyPj() +
        static_cast<double>(rowWrites) * rowWriteEnergyPj() +
        static_cast<double>(bufferBytes) * bufferEnergyPerBytePj();
    const double background = backgroundPowerMw() * makespanNs;
    const double idle = idlePowerPerCrossbarMw() * idleCrossbarNs;
    return dynamic + background + idle;
}

} // namespace gopim::reram
