#include "reram/latency.hh"

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace gopim::reram {

LatencyModel::LatencyModel(const AcceleratorConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

double
LatencyModel::windowLatencyNs() const
{
    return static_cast<double>(cfg_.inputCycles()) *
           cfg_.crossbar.readLatencyNs;
}

double
LatencyModel::mvmLatencyNs(uint64_t mappedRows) const
{
    GOPIM_ASSERT(mappedRows > 0, "MVM over empty matrix");
    const uint64_t windows = ceilDiv(mappedRows, cfg_.windowRows());
    return static_cast<double>(windows) * windowLatencyNs();
}

double
LatencyModel::mvmStreamLatencyNs(uint64_t numInputs, uint64_t mappedRows,
                                 uint32_t replicas) const
{
    GOPIM_ASSERT(replicas > 0, "at least one replica required");
    // Each replica serves an even share of the input stream.
    const uint64_t share = ceilDiv(numInputs, replicas);
    return static_cast<double>(share) * mvmLatencyNs(mappedRows);
}

double
LatencyModel::rowWriteLatencyNs() const
{
    return cfg_.crossbar.writeLatencyNs;
}

double
LatencyModel::updateLatencyNs(uint64_t rowsPerCrossbarMax) const
{
    return static_cast<double>(rowsPerCrossbarMax) *
           cfg_.crossbar.writeLatencyNs;
}

} // namespace gopim::reram
