#include "reram/config.hh"

#include "common/logging.hh"

namespace gopim::reram {

void
AcceleratorConfig::validate() const
{
    if (crossbar.rows == 0 || crossbar.cols == 0)
        fatal("crossbar dimensions must be positive");
    if (crossbar.bitsPerCell == 0 || crossbar.valueBits == 0)
        fatal("cell/value bit widths must be positive");
    if (crossbar.valueBits % pe.dacResolutionBits != 0)
        fatal("value bits (", crossbar.valueBits,
              ") must be a multiple of DAC resolution (",
              pe.dacResolutionBits, ")");
    if (pe.crossbarsPerPe == 0 || tile.pesPerTile == 0 ||
        chip.tilesPerChip == 0)
        fatal("hierarchy counts must be positive");
    if (crossbar.readLatencyNs <= 0.0 || crossbar.writeLatencyNs <= 0.0)
        fatal("latencies must be positive");
    if (chip.writeEndurance <= 0.0)
        fatal("write endurance must be positive");
}

AcceleratorConfig
AcceleratorConfig::paperDefault()
{
    // Field defaults already encode Table II; this simply validates.
    AcceleratorConfig cfg;
    cfg.validate();
    return cfg;
}

} // namespace gopim::reram
