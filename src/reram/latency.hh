/**
 * @file
 * Analytic latency model of ReRAM crossbar operations.
 *
 * An MVM over a mapped matrix streams its input vector through the
 * replica in serial "row windows" of one PE's worth of wordlines; each
 * window costs (value bits / DAC bits) bit-serial read cycles. Writes
 * are serial within a crossbar and parallel across crossbars. See
 * DESIGN.md §2 for the calibration against the paper's published
 * ratios.
 */

#ifndef GOPIM_RERAM_LATENCY_HH
#define GOPIM_RERAM_LATENCY_HH

#include <cstdint>

#include "reram/config.hh"

namespace gopim::reram {

/** Latency calculator for crossbar-level operations. */
class LatencyModel
{
  public:
    explicit LatencyModel(const AcceleratorConfig &cfg);

    /** One bit-serial MVM pass over one row window (ns). */
    double windowLatencyNs() const;

    /**
     * Latency of one input vector through a mapped matrix with
     * `mappedRows` logical rows (ns): serial row windows, bit-serial
     * input cycles each.
     */
    double mvmLatencyNs(uint64_t mappedRows) const;

    /**
     * Latency of `numInputs` input vectors through the matrix, with
     * the workload divided evenly over `replicas` replicas (ns).
     * Inputs pipeline through windows, so total = per-input x inputs.
     */
    double mvmStreamLatencyNs(uint64_t numInputs, uint64_t mappedRows,
                              uint32_t replicas) const;

    /** Latency of one crossbar-row write (ns). */
    double rowWriteLatencyNs() const;

    /**
     * Latency of writing `rowsPerCrossbarMax` rows into the most-loaded
     * crossbar (ns). Writes within a crossbar are serial; writes to
     * different crossbars proceed in parallel, so the slowest crossbar
     * bounds the update (Section III-A of the paper).
     */
    double updateLatencyNs(uint64_t rowsPerCrossbarMax) const;

    const AcceleratorConfig &config() const { return cfg_; }

  private:
    AcceleratorConfig cfg_;
};

} // namespace gopim::reram

#endif // GOPIM_RERAM_LATENCY_HH
