/**
 * @file
 * ReRAM device non-ideality model: programmed conductances deviate
 * from their targets (log-normal device variation) and values are
 * quantized to the cell's discrete levels. Used to study how much
 * analog error GCN training on the crossbars tolerates — the device-
 * level counterpart of the paper's accuracy analyses.
 */

#ifndef GOPIM_RERAM_NOISE_HH
#define GOPIM_RERAM_NOISE_HH

#include "common/rng.hh"
#include "reram/config.hh"
#include "tensor/matrix.hh"

namespace gopim::reram {

/** Non-ideality parameters. */
struct NoiseParams
{
    /**
     * Relative conductance variation sigma: each programmed value is
     * multiplied by (1 + N(0, sigma)). Published ReRAM variation is
     * typically 3-10% per cell.
     */
    double conductanceSigma = 0.0;
    /**
     * Quantize values to the number of levels the mapped cells
     * provide (2^(bitsPerCell * slicesPerValue) per weight); 0 keeps
     * full precision.
     */
    uint32_t quantLevels = 0;
    uint64_t seed = 29;
};

/** Applies write-time non-idealities to matrices mapped on crossbars. */
class DeviceNoiseModel
{
  public:
    explicit DeviceNoiseModel(NoiseParams params);

    /** Levels implied by a crossbar config's cell/value widths. */
    static uint32_t levelsFor(const AcceleratorConfig &cfg);

    /**
     * Return the matrix as the crossbars would actually hold it:
     * symmetric-range quantization to quantLevels (if set) followed
     * by per-cell multiplicative variation (if sigma > 0).
     */
    tensor::Matrix program(const tensor::Matrix &ideal);

    /** Root-mean-square relative error of programming a matrix. */
    double programmingRmse(const tensor::Matrix &ideal);

    const NoiseParams &params() const { return params_; }

  private:
    NoiseParams params_;
    Rng rng_;
};

/**
 * Relative RMS error between the MVM outputs x * wIdeal and
 * x * wNoisy — the metric the device-noise and fault ablations use
 * to judge how much a corrupted weight image distorts the analog
 * compute the Combination/Aggregation stages run.
 */
double mvmOutputError(const tensor::Matrix &x,
                      const tensor::Matrix &wIdeal,
                      const tensor::Matrix &wNoisy);

} // namespace gopim::reram

#endif // GOPIM_RERAM_NOISE_HH
