/**
 * @file
 * Matrix-to-crossbar tiling arithmetic.
 *
 * A logical R x C matrix of 16-bit values occupies
 * ceil(R * C * slices / (64 * 64)) crossbars per replica, with
 * slices = 2 cells per value. This formula reproduces the paper's
 * Table VI crossbar counts exactly (see DESIGN.md §2).
 */

#ifndef GOPIM_MAPPING_TILING_HH
#define GOPIM_MAPPING_TILING_HH

#include <cstdint>

#include "reram/config.hh"

namespace gopim::mapping {

/** Footprint of one replica of a mapped matrix. */
struct ReplicaFootprint
{
    uint64_t logicalRows = 0;
    uint64_t logicalCols = 0;
    /** Crossbars needed for one replica. */
    uint64_t crossbars = 0;
    /** Vertical row groups (tiles stacked along the input dim). */
    uint64_t rowGroups = 0;
    /** Horizontal segments each logical row spans. */
    uint64_t colSegments = 0;
};

/** Compute the crossbar footprint of an R x C matrix replica. */
ReplicaFootprint tileMatrix(uint64_t rows, uint64_t cols,
                            const reram::AcceleratorConfig &cfg);

/** Crossbars for one replica (shorthand for tileMatrix().crossbars). */
uint64_t crossbarsPerReplica(uint64_t rows, uint64_t cols,
                             const reram::AcceleratorConfig &cfg);

} // namespace gopim::mapping

#endif // GOPIM_MAPPING_TILING_HH
