#include "mapping/selective.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace gopim::mapping {

double
adaptiveTheta(double avgDegree)
{
    return avgDegree <= 8.0 ? 0.8 : 0.5;
}

std::vector<bool>
selectImportant(const std::vector<uint32_t> &degrees, double theta)
{
    GOPIM_ASSERT(theta >= 0.0 && theta <= 1.0,
                 "theta must be in [0, 1]");
    const size_t n = degrees.size();
    const auto keep = static_cast<size_t>(
        static_cast<double>(n) * theta + 0.5);

    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&degrees](uint32_t a, uint32_t b) {
                         return degrees[a] != degrees[b]
                                    ? degrees[a] > degrees[b]
                                    : a < b;
                     });

    std::vector<bool> important(n, false);
    for (size_t i = 0; i < std::min(keep, n); ++i)
        important[order[i]] = true;
    return important;
}

std::vector<uint64_t>
hotEpochWrites(const VertexAssignment &assignment,
               const std::vector<bool> &important)
{
    GOPIM_ASSERT(assignment.groupOf.size() == important.size(),
                 "assignment/importance size mismatch");
    std::vector<uint64_t> writes(assignment.numGroups, 0);
    for (size_t v = 0; v < important.size(); ++v)
        if (important[v])
            ++writes[assignment.groupOf[v]];
    return writes;
}

std::vector<double>
expectedEpochWrites(const VertexAssignment &assignment,
                    const std::vector<bool> &important,
                    const SelectiveUpdateParams &params)
{
    GOPIM_ASSERT(assignment.groupOf.size() == important.size(),
                 "assignment/importance size mismatch");
    GOPIM_ASSERT(params.coldPeriod >= 1, "cold period must be >= 1");
    const double coldRate = 1.0 / params.coldPeriod;
    std::vector<double> writes(assignment.numGroups, 0.0);
    for (size_t v = 0; v < important.size(); ++v)
        writes[assignment.groupOf[v]] += important[v] ? 1.0 : coldRate;
    return writes;
}

double
epochUpdateSlots(const VertexAssignment &assignment,
                 const std::vector<bool> &important,
                 const SelectiveUpdateParams &params)
{
    const auto writes =
        expectedEpochWrites(assignment, important, params);
    return *std::max_element(writes.begin(), writes.end());
}

uint64_t
droppedDegreeMass(const std::vector<uint32_t> &degrees,
                  const std::vector<bool> &important)
{
    GOPIM_ASSERT(degrees.size() == important.size(),
                 "degree/importance size mismatch");
    uint64_t mass = 0;
    for (size_t v = 0; v < degrees.size(); ++v)
        if (!important[v])
            mass += degrees[v];
    return mass;
}

} // namespace gopim::mapping
