/**
 * @file
 * Selective vertex updating (Section VI of the paper).
 *
 * Vertices are ranked by degree; the top theta fraction ("important")
 * are rewritten every epoch, the rest every `coldPeriod` (20) epochs.
 * Combined with a vertex mapping, this yields per-crossbar write loads:
 * serial within a crossbar row group, parallel across groups, so the
 * update time of an epoch is bounded by the most-loaded group. OSU
 * (index mapping + selection) fails to reduce that bound (Fig. 7);
 * ISU (interleaved mapping + selection) reduces it proportionally.
 */

#ifndef GOPIM_MAPPING_SELECTIVE_HH
#define GOPIM_MAPPING_SELECTIVE_HH

#include <cstdint>
#include <vector>

#include "mapping/vertex_map.hh"

namespace gopim::mapping {

/** Parameters of the selective-update policy. */
struct SelectiveUpdateParams
{
    /** Fraction of vertices updated every epoch (paper's theta). */
    double theta = 1.0;
    /** Cold vertices are refreshed once per this many epochs. */
    uint32_t coldPeriod = 20;
};

/**
 * Paper's adaptive threshold rule (Section VI-C): graphs with average
 * degree <= 8 are sparse and use theta = 0.8; denser graphs use 0.5.
 */
double adaptiveTheta(double avgDegree);

/**
 * Mark the top `theta` fraction of vertices by degree as important.
 * Ties break toward lower vertex id for determinism.
 */
std::vector<bool> selectImportant(const std::vector<uint32_t> &degrees,
                                  double theta);

/**
 * Row writes per group for one *hot* epoch, where only important
 * vertices are written. This is the integer-cycle view used by the
 * Fig. 7 example.
 */
std::vector<uint64_t> hotEpochWrites(const VertexAssignment &assignment,
                                     const std::vector<bool> &important);

/**
 * Expected row writes per group per epoch, amortizing cold refreshes
 * over the cold period: important -> 1, cold -> 1/coldPeriod.
 */
std::vector<double> expectedEpochWrites(
    const VertexAssignment &assignment,
    const std::vector<bool> &important,
    const SelectiveUpdateParams &params);

/**
 * Update-time bound (in row-write slots) for one epoch: the maximum
 * per-group expected write count (serial within a group, parallel
 * across groups).
 */
double epochUpdateSlots(const VertexAssignment &assignment,
                        const std::vector<bool> &important,
                        const SelectiveUpdateParams &params);

/** Sum of degrees of dropped (non-important) vertices, for reporting. */
uint64_t droppedDegreeMass(const std::vector<uint32_t> &degrees,
                           const std::vector<bool> &important);

} // namespace gopim::mapping

#endif // GOPIM_MAPPING_SELECTIVE_HH
