#include "mapping/vertex_map.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace gopim::mapping {

std::string
toString(VertexMapStrategy s)
{
    switch (s) {
      case VertexMapStrategy::IndexBased:
        return "index-based";
      case VertexMapStrategy::Interleaved:
        return "interleaved";
    }
    panic("unknown mapping strategy");
}

VertexAssignment
mapVertices(const std::vector<uint32_t> &degrees, uint32_t rowsPerGroup,
            VertexMapStrategy strategy)
{
    GOPIM_ASSERT(!degrees.empty(), "cannot map zero vertices");
    GOPIM_ASSERT(rowsPerGroup > 0, "row group must hold >= 1 vertex");

    const auto n = static_cast<uint32_t>(degrees.size());
    VertexAssignment out;
    out.rowsPerGroup = rowsPerGroup;
    out.numGroups = static_cast<uint32_t>(ceilDiv(n, rowsPerGroup));
    out.groupOf.resize(n);

    switch (strategy) {
      case VertexMapStrategy::IndexBased:
        for (uint32_t v = 0; v < n; ++v)
            out.groupOf[v] = v / rowsPerGroup;
        break;

      case VertexMapStrategy::Interleaved: {
        // Sort by degree descending (stable on id), then deal the
        // ranked list round-robin across groups: rank i -> group
        // i % numGroups. Group capacity is respected automatically
        // because each group receives every numGroups-th rank.
        std::vector<uint32_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&degrees](uint32_t a, uint32_t b) {
                             return degrees[a] != degrees[b]
                                        ? degrees[a] > degrees[b]
                                        : a < b;
                         });
        for (uint32_t rank = 0; rank < n; ++rank)
            out.groupOf[order[rank]] = rank % out.numGroups;
        break;
      }
    }
    return out;
}

std::vector<double>
perGroupAvgDegree(const VertexAssignment &assignment,
                  const std::vector<uint32_t> &degrees)
{
    GOPIM_ASSERT(assignment.groupOf.size() == degrees.size(),
                 "assignment/degree size mismatch");
    std::vector<double> sums(assignment.numGroups, 0.0);
    std::vector<uint32_t> counts(assignment.numGroups, 0);
    for (size_t v = 0; v < degrees.size(); ++v) {
        sums[assignment.groupOf[v]] += degrees[v];
        ++counts[assignment.groupOf[v]];
    }
    for (size_t g = 0; g < sums.size(); ++g)
        if (counts[g] > 0)
            sums[g] /= counts[g];
    return sums;
}

double
MinMax::skew() const
{
    return max / std::max(min, 1e-9);
}

MinMax
minMax(const std::vector<double> &values)
{
    GOPIM_ASSERT(!values.empty(), "minMax of empty vector");
    MinMax mm;
    mm.min = *std::min_element(values.begin(), values.end());
    mm.max = *std::max_element(values.begin(), values.end());
    return mm;
}

std::vector<uint32_t>
remapGroupsByHealth(const std::vector<double> &groupLoad,
                    const std::vector<double> &groupFaultScore)
{
    GOPIM_ASSERT(groupLoad.size() == groupFaultScore.size(),
                 "load/fault score size mismatch");
    GOPIM_ASSERT(!groupLoad.empty(), "cannot remap zero groups");

    const auto n = static_cast<uint32_t>(groupLoad.size());
    std::vector<uint32_t> byLoad(n), byHealth(n);
    std::iota(byLoad.begin(), byLoad.end(), 0);
    std::iota(byHealth.begin(), byHealth.end(), 0);
    std::stable_sort(byLoad.begin(), byLoad.end(),
                     [&groupLoad](uint32_t a, uint32_t b) {
                         return groupLoad[a] != groupLoad[b]
                                    ? groupLoad[a] > groupLoad[b]
                                    : a < b;
                     });
    std::stable_sort(
        byHealth.begin(), byHealth.end(),
        [&groupFaultScore](uint32_t a, uint32_t b) {
            return groupFaultScore[a] != groupFaultScore[b]
                       ? groupFaultScore[a] < groupFaultScore[b]
                       : a < b;
        });

    std::vector<uint32_t> physicalOf(n);
    for (uint32_t rank = 0; rank < n; ++rank)
        physicalOf[byLoad[rank]] = byHealth[rank];
    return physicalOf;
}

} // namespace gopim::mapping
