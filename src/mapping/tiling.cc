#include "mapping/tiling.hh"

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace gopim::mapping {

ReplicaFootprint
tileMatrix(uint64_t rows, uint64_t cols,
           const reram::AcceleratorConfig &cfg)
{
    GOPIM_ASSERT(rows > 0 && cols > 0, "cannot tile an empty matrix");
    const auto &xb = cfg.crossbar;
    const uint64_t slices = xb.slicesPerValue();

    ReplicaFootprint fp;
    fp.logicalRows = rows;
    fp.logicalCols = cols;
    fp.rowGroups = ceilDiv(rows, xb.rows);
    fp.colSegments = ceilDiv(cols * slices, xb.cols);
    // Cell-exact packing (the paper packs partial tiles densely; this
    // is what reproduces Table VI's 534 crossbars for ddi Aggregation).
    fp.crossbars = ceilDiv(rows * cols * slices, xb.cells());
    return fp;
}

uint64_t
crossbarsPerReplica(uint64_t rows, uint64_t cols,
                    const reram::AcceleratorConfig &cfg)
{
    return tileMatrix(rows, cols, cfg).crossbars;
}

} // namespace gopim::mapping
