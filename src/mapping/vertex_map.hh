/**
 * @file
 * Vertex-to-crossbar mapping strategies.
 *
 * Index-based mapping (ReGraphX / SlimGNN style) places vertices in id
 * order, 64 per crossbar row group, producing heavily skewed per-
 * crossbar degree distributions (Fig. 6). Interleaved mapping (ISU,
 * Section VI-B) sorts vertices by degree and deals them round-robin
 * across row groups, balancing both degree mass and selective-update
 * write load.
 */

#ifndef GOPIM_MAPPING_VERTEX_MAP_HH
#define GOPIM_MAPPING_VERTEX_MAP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gopim::mapping {

/** Mapping strategy selector. */
enum class VertexMapStrategy { IndexBased, Interleaved };

/** Human-readable strategy name. */
std::string toString(VertexMapStrategy s);

/**
 * Assignment of vertices to crossbar row groups. Row group g holds the
 * vertices v with groupOf[v] == g; each group has `rowsPerGroup`
 * wordlines (64 by default), so it holds at most that many vertices.
 */
struct VertexAssignment
{
    std::vector<uint32_t> groupOf; ///< row group per vertex
    uint32_t numGroups = 0;
    uint32_t rowsPerGroup = 0;
};

/**
 * Map `degrees.size()` vertices onto row groups of `rowsPerGroup`
 * wordlines with the chosen strategy. Interleaved mapping uses the
 * degree ranking (descending) as the deal order.
 */
VertexAssignment mapVertices(const std::vector<uint32_t> &degrees,
                             uint32_t rowsPerGroup,
                             VertexMapStrategy strategy);

/** Average vertex degree per row group (Fig. 6's metric). */
std::vector<double> perGroupAvgDegree(const VertexAssignment &assignment,
                                      const std::vector<uint32_t> &degrees);

/** Min/max summary of a per-group metric vector. */
struct MinMax
{
    double min = 0.0;
    double max = 0.0;
    /** max / min, with min clamped away from zero. */
    double skew() const;
};

MinMax minMax(const std::vector<double> &values);

/**
 * Fault-aware group remap: choose which *physical* row group backs
 * each logical group so that the heaviest write loads land on the
 * healthiest hardware. Logical groups ranked by load (descending)
 * are paired with physical groups ranked by fault score (ascending);
 * ties break toward the lower index, so the permutation is a
 * deterministic function of its inputs. Returns physicalOf[logical].
 *
 * The fault score a logical group then experiences is
 * groupFaultScore[physicalOf[g]]; see fault::writeExposure for the
 * aggregate metric this remap minimizes.
 */
std::vector<uint32_t>
remapGroupsByHealth(const std::vector<double> &groupLoad,
                    const std::vector<double> &groupFaultScore);

} // namespace gopim::mapping

#endif // GOPIM_MAPPING_VERTEX_MAP_HH
