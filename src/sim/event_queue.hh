/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * deterministic tie-breaking (insertion order), the foundation of the
 * event-driven pipeline simulator in sim/pipeline_sim.hh.
 *
 * The implementation is a calendar (bucket) queue rather than a
 * binary heap: simulated time is divided into fixed-width "days",
 * day d's events live in bucket d mod N, and step() scans the
 * current day's bucket for the earliest (timeNs, seq) pair. With the
 * width sized from a schedule-horizon hint (reserveHorizon) so that
 * buckets hold O(1) events, schedule() and step() are amortized O(1)
 * against the heap's O(log n) — and the hot path is a linear scan of
 * a small vector instead of a pointer-chasing sift.
 *
 * Ordering is part of the contract, not an accident of container
 * internals: events execute in strictly increasing (timeNs, seq)
 * order, where seq is the monotonic insertion index — equal
 * timestamps run FIFO on every stdlib. A full circle of empty days
 * falls back to a direct global-minimum scan, so correctness (and
 * the exact execution order) never depends on the horizon hint;
 * only speed does.
 */

#ifndef GOPIM_SIM_EVENT_QUEUE_HH
#define GOPIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace gopim::sim {

/** Time-ordered callback queue (calendar queue, FIFO on ties). */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();

    /**
     * Size the calendar for a schedule expected to span `horizonNs`
     * of simulated time and carry roughly `expectedEvents` events,
     * aiming for O(1) events per bucket. Only takes effect while the
     * queue is empty; a hint is advisory and never affects the
     * execution order, only the cost of maintaining it.
     */
    void reserveHorizon(double horizonNs, uint64_t expectedEvents);

    /** Schedule a callback at absolute time `timeNs` (>= now). */
    void schedule(double timeNs, Callback callback);

    /** Schedule relative to the current time. */
    void scheduleAfter(double delayNs, Callback callback);

    /** Current simulation time. */
    double nowNs() const { return now_; }

    bool empty() const { return live_ == 0; }
    size_t pending() const { return live_; }
    uint64_t processed() const { return processed_; }

    /** Pop and execute the earliest event; false if none remain. */
    bool step();

    /**
     * Run until the queue drains; panics after `maxEvents` as a
     * runaway guard (callbacks scheduling unboundedly).
     */
    void run(uint64_t maxEvents = 100'000'000);

  private:
    struct Event
    {
        double timeNs;
        uint64_t seq; ///< insertion order for deterministic ties
        uint64_t day; ///< calendar day this event is filed under
        Callback callback;
    };

    /** floor(timeNs / width), clamped so epsilon-past times file
     *  under the current day and stay findable. */
    uint64_t dayOf(double timeNs) const;

    /** Remove bucket[index], advance time, run the callback. */
    bool pop(std::vector<Event> &bucket, size_t index);

    std::vector<std::vector<Event>> buckets_;
    double widthNs_;
    double invWidthNs_;
    uint64_t currentDay_ = 0;
    size_t live_ = 0;
    double now_ = 0.0;
    uint64_t nextSeq_ = 0;
    uint64_t processed_ = 0;
};

} // namespace gopim::sim

#endif // GOPIM_SIM_EVENT_QUEUE_HH
