/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * deterministic tie-breaking (insertion order), the foundation of the
 * event-driven pipeline simulator in sim/pipeline_sim.hh.
 */

#ifndef GOPIM_SIM_EVENT_QUEUE_HH
#define GOPIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gopim::sim {

/** Time-ordered callback queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at absolute time `timeNs` (>= now). */
    void schedule(double timeNs, Callback callback);

    /** Schedule relative to the current time. */
    void scheduleAfter(double delayNs, Callback callback);

    /** Current simulation time. */
    double nowNs() const { return now_; }

    bool empty() const { return events_.empty(); }
    size_t pending() const { return events_.size(); }
    uint64_t processed() const { return processed_; }

    /** Pop and execute the earliest event; false if none remain. */
    bool step();

    /**
     * Run until the queue drains; panics after `maxEvents` as a
     * runaway guard (callbacks scheduling unboundedly).
     */
    void run(uint64_t maxEvents = 100'000'000);

  private:
    struct Event
    {
        double timeNs;
        uint64_t seq; ///< insertion order for deterministic ties
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.timeNs != b.timeNs)
                return a.timeNs > b.timeNs;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    double now_ = 0.0;
    uint64_t nextSeq_ = 0;
    uint64_t processed_ = 0;
};

} // namespace gopim::sim

#endif // GOPIM_SIM_EVENT_QUEUE_HH
