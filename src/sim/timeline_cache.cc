#include "sim/timeline_cache.hh"

#include <cstring>

namespace gopim::sim {

namespace {

void
packU32(std::string *out, uint32_t v)
{
    char bytes[sizeof v];
    std::memcpy(bytes, &v, sizeof v);
    out->append(bytes, sizeof v);
}

void
packU64(std::string *out, uint64_t v)
{
    char bytes[sizeof v];
    std::memcpy(bytes, &v, sizeof v);
    out->append(bytes, sizeof v);
}

/** Bit pattern, not value: -0.0 and 0.0 key differently on purpose. */
void
packDouble(std::string *out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    packU64(out, bits);
}

} // namespace

std::string
timelineCacheKey(const ScheduleRequest &request, const SimContext &ctx)
{
    std::string key;
    key.reserve(32 + 8 * request.stageTimesNs.size() +
                4 * request.replicas.size());
    key.push_back(static_cast<char>(request.regime));
    packU32(&key, request.totalMicroBatches);
    packU32(&key, request.microBatchesPerBatch);
    packU32(&key, ctx.event.inputBufferSlots);
    key.push_back(ctx.event.replicasAsServers ? 1 : 0);
    packU32(&key, ctx.event.refreshEveryMicroBatches);
    packDouble(&key, ctx.event.refreshStallNs);
    // Vector lengths delimit the variable sections so two requests
    // can never concatenate to the same byte string.
    packU64(&key, request.stageTimesNs.size());
    for (double t : request.stageTimesNs)
        packDouble(&key, t);
    packU64(&key, request.replicas.size());
    for (uint32_t r : request.replicas)
        packU32(&key, r);
    return key;
}

const StageTimeline *
TimelineCache::find(uint64_t fingerprint,
                    const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = buckets_.find(fingerprint);
    if (it != buckets_.end()) {
        for (const Entry &entry : it->second) {
            if (entry.key == key) {
                ++hits_;
                return entry.timeline.get();
            }
        }
    }
    ++misses_;
    return nullptr;
}

const StageTimeline *
TimelineCache::insert(uint64_t fingerprint, std::string key,
                      StageTimeline timeline)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &bucket = buckets_[fingerprint];
    for (const Entry &entry : bucket)
        if (entry.key == key)
            return entry.timeline.get();
    Entry entry;
    entry.key = std::move(key);
    entry.timeline =
        std::make_unique<StageTimeline>(std::move(timeline));
    bucket.push_back(std::move(entry));
    return bucket.back().timeline.get();
}

void
TimelineCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    buckets_.clear();
    hits_ = 0;
    misses_ = 0;
}

size_t
TimelineCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &[fp, bucket] : buckets_)
        n += bucket.size();
    return n;
}

uint64_t
TimelineCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
TimelineCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

} // namespace gopim::sim
