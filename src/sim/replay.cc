#include "sim/replay.hh"

#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"
#include "isa/lower.hh"

namespace gopim::sim {

namespace {

isa::Regime
toIsaRegime(Regime regime)
{
    switch (regime) {
      case Regime::Serial:
        return isa::Regime::Serial;
      case Regime::IntraBatch:
        return isa::Regime::IntraBatch;
      case Regime::IntraInterBatch:
        return isa::Regime::IntraInterBatch;
    }
    panic("unknown regime");
}

Regime
fromIsaRegime(isa::Regime regime)
{
    switch (regime) {
      case isa::Regime::Serial:
        return Regime::Serial;
      case isa::Regime::IntraBatch:
        return Regime::IntraBatch;
      case isa::Regime::IntraInterBatch:
        return Regime::IntraInterBatch;
    }
    panic("unknown regime");
}

} // namespace

isa::ScheduleDesc
descFromRequest(const ScheduleRequest &request, const SimContext &ctx)
{
    isa::ScheduleDesc desc;
    desc.stageTimesNs = request.stageTimesNs;
    desc.replicas = request.replicas;
    desc.regime = toIsaRegime(request.regime);
    desc.totalMicroBatches = request.totalMicroBatches;
    desc.microBatchesPerBatch = request.microBatchesPerBatch;
    desc.seed = ctx.seed;
    desc.bufferSlots = ctx.event.inputBufferSlots;
    desc.replicasAsServers = ctx.event.replicasAsServers;
    desc.writeRetryProb = ctx.event.writeRetryProb;
    desc.writeFraction = ctx.event.writeFraction;
    desc.refreshEveryMicroBatches = ctx.event.refreshEveryMicroBatches;
    desc.refreshStallNs = ctx.event.refreshStallNs;
    desc.normalize();
    return desc;
}

ScheduleRequest
requestFromDesc(const isa::ScheduleDesc &desc)
{
    ScheduleRequest request;
    request.stageTimesNs = desc.stageTimesNs;
    request.replicas = desc.replicas;
    request.regime = fromIsaRegime(desc.regime);
    request.totalMicroBatches = desc.totalMicroBatches;
    request.microBatchesPerBatch = desc.microBatchesPerBatch;
    return request;
}

void
applyDescKnobs(const isa::ScheduleDesc &desc, SimContext *ctx)
{
    ctx->seed = desc.seed;
    ctx->event.inputBufferSlots = desc.bufferSlots;
    ctx->event.replicasAsServers = desc.replicasAsServers;
    ctx->event.writeRetryProb = desc.writeRetryProb;
    ctx->event.writeFraction = desc.writeFraction;
    ctx->event.refreshEveryMicroBatches =
        desc.refreshEveryMicroBatches;
    ctx->event.refreshStallNs = desc.refreshStallNs;
}

isa::CommandStream
lowerRequest(const ScheduleRequest &request, const SimContext &ctx,
             std::string label)
{
    const isa::ScheduleDesc desc = descFromRequest(request, ctx);
    if (std::string err = desc.validate(); !err.empty())
        fatal("cannot lower schedule request: ", err);
    return isa::lowerSchedule(desc, std::move(label));
}

void
recordStreamIfRequested(const ScheduleRequest &request,
                        const SimContext &ctx)
{
    if (!ctx.isaRecorder)
        return;
    ctx.isaRecorder->record(
        lowerRequest(request, ctx, ctx.isaStreamLabel));
}

ReplayEngine::ReplayEngine(isa::TraceBundle bundle)
    : fromTrace_(true), bundle_(std::move(bundle))
{
}

StageTimeline
ReplayEngine::schedule(const ScheduleRequest &request,
                       const SimContext &ctx) const
{
    recordStreamIfRequested(request, ctx);
    if (!fromTrace_)
        return replayStream(
            lowerRequest(request, ctx, ctx.isaStreamLabel), ctx);

    const uint64_t fingerprint =
        descFromRequest(request, ctx).fingerprint();
    const isa::CommandStream *stream = bundle_.find(fingerprint);
    if (!stream)
        fatal("the loaded ISA trace has no stream for this run "
              "(desc fingerprint ",
              hexDigest64(fingerprint),
              "); record one with --isa-trace-out under the same "
              "engine knobs and seed");
    return replayStream(*stream, ctx);
}

StageTimeline
ReplayEngine::replayStream(const isa::CommandStream &stream,
                           const SimContext &ctx) const
{
    if (std::string err = isa::validateStream(stream); !err.empty())
        fatal("refusing to replay an invalid command stream: ", err);
    SimContext replayCtx = ctx;
    applyDescKnobs(stream.desc, &replayCtx);
    return scheduleEventPath(requestFromDesc(stream.desc), replayCtx,
                             "replay");
}

} // namespace gopim::sim
