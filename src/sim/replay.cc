#include "sim/replay.hh"

#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"
#include "isa/lower.hh"
#include "isa/verify.hh"

namespace gopim::sim {

namespace {

isa::Regime
toIsaRegime(Regime regime)
{
    switch (regime) {
      case Regime::Serial:
        return isa::Regime::Serial;
      case Regime::IntraBatch:
        return isa::Regime::IntraBatch;
      case Regime::IntraInterBatch:
        return isa::Regime::IntraInterBatch;
    }
    panic("unknown regime");
}

Regime
fromIsaRegime(isa::Regime regime)
{
    switch (regime) {
      case isa::Regime::Serial:
        return Regime::Serial;
      case isa::Regime::IntraBatch:
        return Regime::IntraBatch;
      case isa::Regime::IntraInterBatch:
        return Regime::IntraInterBatch;
    }
    panic("unknown regime");
}

/** Field-wise equality; doubles compare by value (deterministic
 *  producers emit identical bits for identical schedules). */
bool
sameDesc(const isa::ScheduleDesc &a, const isa::ScheduleDesc &b)
{
    return a.stageTimesNs == b.stageTimesNs &&
           a.replicas == b.replicas && a.regime == b.regime &&
           a.totalMicroBatches == b.totalMicroBatches &&
           a.microBatchesPerBatch == b.microBatchesPerBatch &&
           a.seed == b.seed && a.bufferSlots == b.bufferSlots &&
           a.replicasAsServers == b.replicasAsServers &&
           a.writeRetryProb == b.writeRetryProb &&
           a.writeFraction == b.writeFraction &&
           a.refreshEveryMicroBatches == b.refreshEveryMicroBatches &&
           a.refreshStallNs == b.refreshStallNs;
}

isa::ScheduleDesc
seedZeroed(const isa::ScheduleDesc &desc)
{
    isa::ScheduleDesc key = desc;
    key.seed = 0;
    return key;
}

} // namespace

bool
ReplayLowerCache::contains(const isa::ScheduleDesc &desc) const
{
    const isa::ScheduleDesc key = seedZeroed(desc);
    const uint64_t fp = key.fingerprint();
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = buckets_.find(fp);
    if (it == buckets_.end())
        return false;
    for (const isa::ScheduleDesc &known : it->second)
        if (sameDesc(known, key))
            return true;
    return false;
}

void
ReplayLowerCache::add(const isa::ScheduleDesc &desc)
{
    isa::ScheduleDesc key = seedZeroed(desc);
    const uint64_t fp = key.fingerprint();
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<isa::ScheduleDesc> &bucket = buckets_[fp];
    for (const isa::ScheduleDesc &known : bucket)
        if (sameDesc(known, key))
            return;
    bucket.push_back(std::move(key));
}

size_t
ReplayLowerCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &[fp, bucket] : buckets_)
        n += bucket.size();
    return n;
}

isa::ScheduleDesc
descFromRequest(const ScheduleRequest &request, const SimContext &ctx)
{
    isa::ScheduleDesc desc;
    desc.stageTimesNs = request.stageTimesNs;
    desc.replicas = request.replicas;
    desc.regime = toIsaRegime(request.regime);
    desc.totalMicroBatches = request.totalMicroBatches;
    desc.microBatchesPerBatch = request.microBatchesPerBatch;
    desc.seed = ctx.seed;
    desc.bufferSlots = ctx.event.inputBufferSlots;
    desc.replicasAsServers = ctx.event.replicasAsServers;
    desc.writeRetryProb = ctx.event.writeRetryProb;
    desc.writeFraction = ctx.event.writeFraction;
    desc.refreshEveryMicroBatches = ctx.event.refreshEveryMicroBatches;
    desc.refreshStallNs = ctx.event.refreshStallNs;
    desc.normalize();
    return desc;
}

ScheduleRequest
requestFromDesc(const isa::ScheduleDesc &desc)
{
    ScheduleRequest request;
    request.stageTimesNs = desc.stageTimesNs;
    request.replicas = desc.replicas;
    request.regime = fromIsaRegime(desc.regime);
    request.totalMicroBatches = desc.totalMicroBatches;
    request.microBatchesPerBatch = desc.microBatchesPerBatch;
    return request;
}

void
applyDescKnobs(const isa::ScheduleDesc &desc, SimContext *ctx)
{
    ctx->seed = desc.seed;
    ctx->event.inputBufferSlots = desc.bufferSlots;
    ctx->event.replicasAsServers = desc.replicasAsServers;
    ctx->event.writeRetryProb = desc.writeRetryProb;
    ctx->event.writeFraction = desc.writeFraction;
    ctx->event.refreshEveryMicroBatches =
        desc.refreshEveryMicroBatches;
    ctx->event.refreshStallNs = desc.refreshStallNs;
}

isa::CommandStream
lowerRequest(const ScheduleRequest &request, const SimContext &ctx,
             std::string label)
{
    const isa::ScheduleDesc desc = descFromRequest(request, ctx);
    if (std::string err = desc.validate(); !err.empty())
        fatal("cannot lower schedule request: ", err);
    return isa::lowerSchedule(desc, std::move(label));
}

void
recordStreamIfRequested(const ScheduleRequest &request,
                        const SimContext &ctx)
{
    if (!ctx.isaRecorder)
        return;
    ctx.isaRecorder->record(
        lowerRequest(request, ctx, ctx.isaStreamLabel));
}

ReplayEngine::ReplayEngine(isa::TraceBundle bundle)
    : fromTrace_(true), bundle_(std::move(bundle))
{
}

StageTimeline
ReplayEngine::schedule(const ScheduleRequest &request,
                       const SimContext &ctx) const
{
    recordStreamIfRequested(request, ctx);
    if (!fromTrace_) {
        if (ctx.lowerCache) {
            const isa::ScheduleDesc desc =
                descFromRequest(request, ctx);
            if (ctx.lowerCache->contains(desc)) {
                // This schedule (seed aside) already survived one
                // lower + validate round-trip; replay straight from
                // the desc. The stream would have carried this exact
                // desc, so the timeline is bit-identical.
                SimContext replayCtx = ctx;
                applyDescKnobs(desc, &replayCtx);
                return scheduleEventPath(requestFromDesc(desc),
                                         replayCtx, "replay");
            }
            const isa::CommandStream stream =
                lowerRequest(request, ctx, ctx.isaStreamLabel);
            const StageTimeline timeline = replayStream(stream, ctx);
            ctx.lowerCache->add(stream.desc);
            return timeline;
        }
        return replayStream(
            lowerRequest(request, ctx, ctx.isaStreamLabel), ctx);
    }

    const uint64_t fingerprint =
        descFromRequest(request, ctx).fingerprint();
    const isa::CommandStream *stream = bundle_.find(fingerprint);
    if (!stream)
        fatal("the loaded ISA trace has no stream for this run "
              "(desc fingerprint ",
              hexDigest64(fingerprint),
              "); record one with --isa-trace-out under the same "
              "engine knobs and seed");
    // Loaded traces come from outside the process; reject malformed
    // control flow with the semantic verifier's taxonomy before the
    // (stricter) canonical-lowering check in replayStream, so a
    // corrupted trace dies with a flow diagnostic, not an opaque
    // canonical-mismatch one.
    if (std::string err = isa::verifySummary(*stream); !err.empty())
        fatal("loaded ISA trace stream fails semantic "
              "verification: ",
              err);
    return replayStream(*stream, ctx);
}

StageTimeline
ReplayEngine::replayStream(const isa::CommandStream &stream,
                           const SimContext &ctx) const
{
    if (std::string err = isa::validateStream(stream); !err.empty())
        fatal("refusing to replay an invalid command stream: ", err);
    SimContext replayCtx = ctx;
    applyDescKnobs(stream.desc, &replayCtx);
    return scheduleEventPath(requestFromDesc(stream.desc), replayCtx,
                             "replay");
}

} // namespace gopim::sim
