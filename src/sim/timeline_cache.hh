/**
 * @file
 * Memo for the discrete-event timing path (scheduleEventPath): when a
 * schedule's dynamics are provably seed-independent — no write-retry
 * sampling, the only stochastic knob — the resulting StageTimeline is
 * a pure function of the request and the event knobs, so re-running
 * the simulator for a grid neighbor that differs only in its seed (or
 * for the replay engine timing the identical stream) is wasted work.
 *
 * The cache key packs every input the event path reads: stage times
 * and replica counts bit-for-bit, the regime and micro-batch
 * structure, buffer slots, replicas-as-servers, and the refresh
 * knobs. Like core::PlanCache, entries are fingerprint-bucketed and
 * full-key-verified, so fingerprint collisions can never alias two
 * different schedules. Hits return the exact timeline the simulator
 * would have produced — bit-identical, pinned by the engine tests.
 *
 * Callers must NOT consult the cache when the timeline is
 * seed-dependent (writeRetryProb > 0) or carries per-run extras the
 * key cannot see (recordWindows); scheduleEventPath enforces both.
 */

#ifndef GOPIM_SIM_TIMELINE_CACHE_HH
#define GOPIM_SIM_TIMELINE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/engine.hh"

namespace gopim::sim {

/** Byte-exact cache key for one (request, event-knobs) pair. */
std::string timelineCacheKey(const ScheduleRequest &request,
                             const SimContext &ctx);

/** Fingerprint-bucketed, full-key-verified StageTimeline cache. */
class TimelineCache
{
  public:
    /**
     * The cached timeline for (fingerprint, key), or nullptr.
     * Returned pointers stay valid until clear().
     */
    const StageTimeline *find(uint64_t fingerprint,
                              const std::string &key) const;

    /**
     * Insert a timeline and return the stored copy. An existing
     * entry under the same key wins — the simulation is
     * deterministic, so racing inserts hold identical timelines.
     */
    const StageTimeline *insert(uint64_t fingerprint, std::string key,
                                StageTimeline timeline);

    void clear();

    size_t size() const;
    uint64_t hits() const;
    uint64_t misses() const;

  private:
    struct Entry
    {
        std::string key;
        /** unique_ptr keeps the pointee stable across bucket growth. */
        std::unique_ptr<StageTimeline> timeline;
    };

    mutable std::mutex mutex_;
    mutable uint64_t hits_ = 0;
    mutable uint64_t misses_ = 0;
    std::map<uint64_t, std::vector<Entry>> buckets_;
};

} // namespace gopim::sim

#endif // GOPIM_SIM_TIMELINE_CACHE_HH
