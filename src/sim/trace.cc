#include "sim/trace.hh"

#include <algorithm>
#include <fstream>

#include "common/logging.hh"

namespace gopim::sim {

namespace {

/** Minimal JSON string escape (labels are plain ASCII in practice). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            out += '\\';
        if (static_cast<unsigned char>(ch) < 0x20) {
            out += ' ';
            continue;
        }
        out += ch;
    }
    return out;
}

} // namespace

ChromeTraceSink::ChromeTraceSink(uint32_t maxEventsPerStage)
    : maxEventsPerStage_(maxEventsPerStage)
{
}

void
ChromeTraceSink::record(const TraceRunInfo &info,
                        const std::vector<pipeline::Stage> &stages,
                        const StageTimeline &timeline)
{
    if (!timeline.hasWindows()) {
        warn("trace sink: timeline for ", info.systemName, " on ",
             info.datasetName,
             " carries no windows; run with recordWindows");
        return;
    }
    Run run;
    run.info = info;
    for (const auto &stage : stages)
        run.stageLabels.push_back(stage.label());
    // Generic stage names when the caller has no descriptors.
    for (size_t i = run.stageLabels.size();
         i < timeline.windows.size(); ++i)
        run.stageLabels.push_back("stage " + std::to_string(i));
    run.windows = timeline.windows;

    std::lock_guard<std::mutex> lock(mutex_);
    runs_.push_back(std::move(run));
}

void
ChromeTraceSink::profileSpan(const std::string &name, double startUs,
                             double durationUs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back({name, startUs, durationUs});
}

size_t
ChromeTraceSink::runCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return runs_.size();
}

size_t
ChromeTraceSink::spanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

void
ChromeTraceSink::writeTo(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";
    bool first = true;
    const auto emit = [&](const std::string &event) {
        os << (first ? "\n" : ",\n") << event;
        first = false;
    };

    for (size_t pid = 0; pid < runs_.size(); ++pid) {
        const Run &run = runs_[pid];
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
             ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
             escape(run.info.systemName + " on " +
                    run.info.datasetName + " [" +
                    run.info.engineName + "]") +
             "\"}}");
        for (size_t tid = 0; tid < run.windows.size(); ++tid) {
            emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                 ",\"tid\":" + std::to_string(tid) +
                 ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
                 escape(run.stageLabels[tid]) + "\"}}");

            const auto &row = run.windows[tid];
            const size_t cap =
                std::min<size_t>(row.size(), maxEventsPerStage_);
            if (cap < row.size())
                inform("trace sink: stage ", run.stageLabels[tid],
                     " elided ", row.size() - cap, " of ",
                     row.size(), " events");
            for (size_t j = 0; j < cap; ++j) {
                // trace_event timestamps are microseconds.
                const double ts = row[j].startNs / 1000.0;
                const double dur =
                    (row[j].endNs - row[j].startNs) / 1000.0;
                emit("{\"ph\":\"X\",\"cat\":\"stage\",\"name\":\"mb " +
                     std::to_string(j) + "\",\"pid\":" +
                     std::to_string(pid) + ",\"tid\":" +
                     std::to_string(tid) + ",\"ts\":" +
                     std::to_string(ts) + ",\"dur\":" +
                     std::to_string(dur) + "}");
            }
        }
    }

    // Host profiling spans as one extra process; simulated runs use
    // simulated-ns timestamps and spans use host microseconds, so the
    // tracks share a viewer but not a clock.
    if (!spans_.empty()) {
        const size_t pid = runs_.size();
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
             ",\"name\":\"process_name\",\"args\":{\"name\":"
             "\"host profiling\"}}");
        for (const HostSpan &span : spans_)
            emit("{\"ph\":\"X\",\"cat\":\"profile\",\"name\":\"" +
                 escape(span.name) + "\",\"pid\":" +
                 std::to_string(pid) + ",\"tid\":0,\"ts\":" +
                 std::to_string(span.startUs) + ",\"dur\":" +
                 std::to_string(span.durationUs) + "}");
    }
    os << "\n]\n}\n";
}

void
ChromeTraceSink::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output file '", path, "'");
    writeTo(out);
}

} // namespace gopim::sim
