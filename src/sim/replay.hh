/**
 * @file
 * ReplayEngine: the stream-consumption path of the scheduling stack.
 *
 * A replayed run is timed by reconstructing the scheduling problem
 * from an isa::CommandStream header and pushing it through the same
 * scheduleEventPath() the live event engine uses — same chunk
 * decomposition, same retry/refresh samplers, same seeded Rng draw
 * order — so the resulting StageTimeline is bit-identical to a live
 * event-driven run of the same request (tests/test_isa.cc pins this
 * for every seed system and fault configuration, through a trace
 * written to disk and read back).
 *
 * Two modes:
 *  - default-constructed (the registry instance behind
 *    --engine=replay): lowers each incoming request on the fly and
 *    replays the stream — a structural self-check that exercises
 *    lowering + validation on every run;
 *  - constructed from a TraceBundle (--isa-trace-in): looks the
 *    request up by desc fingerprint and replays the recorded stream;
 *    a request the trace does not cover is a fatal user error.
 *
 * The request→desc / desc→request adapters live here too, as does
 * the recording hook every engine calls for --isa-trace-out.
 */

#ifndef GOPIM_SIM_REPLAY_HH
#define GOPIM_SIM_REPLAY_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "isa/trace_io.hh"
#include "sim/engine.hh"

namespace gopim::sim {

/**
 * Thread-safe memo of scheduling descriptors the self-replay mode
 * has already lowered and validated, keyed by the seed-zeroed desc:
 * lowering is seed-independent (the seed only rides in the stream
 * header), so one lower+validate pass covers every seed of the same
 * schedule. On a hit the engine replays straight from the desc —
 * bit-identical to replaying the lowered stream, because the stream
 * stores that same desc verbatim — skipping lowerSchedule and
 * validateStream entirely. Attach via SimContext::lowerCache (the
 * memoized harness does); entries bucket by desc fingerprint with a
 * full field comparison inside the bucket, so fingerprint collisions
 * can never alias two different schedules.
 */
class ReplayLowerCache
{
  public:
    /** True when an equal desc (seed ignored) is already known. */
    bool contains(const isa::ScheduleDesc &desc) const;

    /** Record a desc whose lowering + validation succeeded. */
    void add(const isa::ScheduleDesc &desc);

    size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<uint64_t, std::vector<isa::ScheduleDesc>> buckets_;
};

/** Snapshot a request + context knobs as a stream header. */
isa::ScheduleDesc descFromRequest(const ScheduleRequest &request,
                                  const SimContext &ctx);

/** Rebuild the scheduling problem a stream header describes. */
ScheduleRequest requestFromDesc(const isa::ScheduleDesc &desc);

/**
 * Overwrite `ctx`'s seed and event knobs with the desc's so the
 * event path reproduces the recorded run exactly; observation fields
 * (recordWindows, metrics, trace sinks) are left untouched.
 */
void applyDescKnobs(const isa::ScheduleDesc &desc, SimContext *ctx);

/** Lower a request under `ctx`'s knobs into a command stream. */
isa::CommandStream lowerRequest(const ScheduleRequest &request,
                                const SimContext &ctx,
                                std::string label = "");

/** Times isa:: command streams via the shared event path. */
class ReplayEngine final : public ScheduleEngine
{
  public:
    /** Self-replay mode: lower each request on the fly. */
    ReplayEngine() = default;

    /** Trace mode: replay recorded streams, looked up by desc
     *  fingerprint; unmatched requests are fatal. */
    explicit ReplayEngine(isa::TraceBundle bundle);

    std::string name() const override { return "replay"; }

    StageTimeline schedule(const ScheduleRequest &request,
                           const SimContext &ctx) const override;

    /**
     * Time one validated stream directly (the engine-independent
     * entry point tools and non-GCN front-ends use). An invalid
     * stream is a fatal user error.
     */
    StageTimeline replayStream(const isa::CommandStream &stream,
                               const SimContext &ctx) const;

  private:
    bool fromTrace_ = false;
    isa::TraceBundle bundle_;
};

} // namespace gopim::sim

#endif // GOPIM_SIM_REPLAY_HH
