/**
 * @file
 * Event-driven flow-shop simulator of the GCN training pipeline.
 *
 * Where pipeline/schedule.hh evaluates the closed-form Eq. 6 makespan
 * (single server per stage, unbounded buffers, deterministic times),
 * this simulator executes the pipeline event by event and can model
 * what the closed form cannot:
 *
 *  - bounded inter-stage buffers (a full buffer blocks the upstream
 *    server — backpressure),
 *  - multi-server stages (replica groups processing distinct
 *    micro-batches concurrently instead of splitting one),
 *  - stochastic service times (e.g. ReRAM write-verify retries).
 *
 * With one server per stage, unbounded buffers, and deterministic
 * times it reproduces the closed form exactly — the integration tests
 * assert this equivalence.
 */

#ifndef GOPIM_SIM_PIPELINE_SIM_HH
#define GOPIM_SIM_PIPELINE_SIM_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/rng.hh"
#include "pipeline/schedule.hh"

namespace gopim::sim {

/** One pipeline stage as a queueing station. */
struct StationConfig
{
    /** Deterministic service time per micro-batch (ns). */
    double serviceTimeNs = 0.0;
    /** Concurrent micro-batches the stage can process. */
    uint32_t servers = 1;
    /**
     * Input-buffer slots in front of this station (waiting
     * micro-batches, excluding the ones in service). Unbounded by
     * default; 0 forces direct handoff.
     */
    uint32_t inputBuffer = std::numeric_limits<uint32_t>::max();
};

/**
 * Optional stochastic service-time hook: returns the actual service
 * time for (stage, microBatch); defaults to the configured constant.
 */
using ServiceSampler =
    std::function<double(size_t stage, uint32_t microBatch, Rng &rng)>;

/** Simulation outcome. */
struct SimResult
{
    double makespanNs = 0.0;
    /** Per-stage total busy (serving) time across servers. */
    std::vector<double> busyNs;
    /** Per-stage total time finished work sat blocked by backpressure. */
    std::vector<double> blockedNs;
    /** Completed micro-batches (== requested unless deadlocked). */
    uint32_t completed = 0;
    uint64_t eventsProcessed = 0;
    /** High-water mark of pending events in the queue. */
    uint64_t maxEventQueueDepth = 0;
    /**
     * Per-(stage, micro-batch) service windows, stage-major; only
     * filled when recording was requested (observability costs
     * memory on multi-epoch runs).
     */
    std::vector<std::vector<pipeline::StageWindow>> windows;

    /** Idle fraction of a stage's servers over the makespan. */
    double idleFraction(size_t stage) const;
};

/**
 * Simulate `microBatches` jobs flowing through the stations in order.
 * `sampler` (optional) overrides per-job service times; `seed` drives
 * the sampler's randomness. `recordWindows` fills SimResult::windows.
 */
SimResult simulatePipeline(const std::vector<StationConfig> &stations,
                           uint32_t microBatches,
                           const ServiceSampler &sampler = {},
                           uint64_t seed = 1,
                           bool recordWindows = false);

/**
 * ReRAM write-retry sampler factory: with probability `retryProb`
 * each (geometric) attempt of the stage's write portion fails
 * write-verify and repeats. `writeFraction` is the portion of the
 * stage's service time attributable to writes.
 */
ServiceSampler makeWriteRetrySampler(
    const std::vector<StationConfig> &stations, double retryProb,
    double writeFraction);

} // namespace gopim::sim

#endif // GOPIM_SIM_PIPELINE_SIM_HH
