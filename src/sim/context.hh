/**
 * @file
 * Per-run simulation context threaded from the entry points
 * (tools/benches) through core::SystemConfig into the scheduling
 * engines: which timing backend to use, the seed driving stochastic
 * service times, the event-engine knobs the closed form cannot
 * express, and an optional trace sink for observability.
 *
 * A SimContext is a value: copying it into each run keeps the
 * per-run path stateless, which is what lets the comparison harness
 * execute grid cells on a thread pool.
 */

#ifndef GOPIM_SIM_CONTEXT_HH
#define GOPIM_SIM_CONTEXT_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace gopim::obs {
class MetricsRegistry;
} // namespace gopim::obs

namespace gopim::isa {
class StreamRecorder;
} // namespace gopim::isa

namespace gopim::sim {

class ReplayLowerCache;
class ScheduleEngine;
class TimelineCache;
class TraceSink;

/** Timing backend selector. */
enum class EngineKind
{
    ClosedForm,  ///< Eq. 3-6 recurrence (pipeline/schedule)
    EventDriven, ///< discrete-event flow shop (sim/pipeline_sim)
    Replay,      ///< times an isa:: command stream (sim/replay)
};

/**
 * One registered timing backend: the single source of truth for its
 * spellings and one-line summary. Flag help, serve-layer hints, and
 * parse errors all derive from this table so a new engine cannot
 * drift out of any of them.
 */
struct EngineInfo
{
    EngineKind kind;
    /** Canonical name, as ScheduleEngine::name() reports it. */
    const char *canonical;
    /** Short spelling accepted by --engine and serve requests. */
    const char *alias;
    /** One-line description for flag help. */
    const char *summary;
};

/** All registered engines, in EngineKind declaration order. */
const std::vector<EngineInfo> &engineRegistry();

/** Comma-separated alias list ("closed, event, replay") for hints. */
std::string engineNameList();

/** Multi-line --engine help text derived from the registry. */
std::string engineFlagHelp();

/** Parse an alias or canonical name (--engine); fatal() otherwise. */
EngineKind engineKindFromString(const std::string &name);

/** Non-fatal parse; returns false on unknown names. */
bool tryEngineKindFromString(const std::string &name, EngineKind *out);

std::string toString(EngineKind kind);

/**
 * Behaviors only the event-driven engine models. Defaults reproduce
 * the closed form exactly (unbounded buffers, one server per stage,
 * deterministic service), which the parity tests rely on.
 */
struct EventKnobs
{
    /** Input-buffer slots in front of every stage. */
    uint32_t inputBufferSlots = std::numeric_limits<uint32_t>::max();
    /**
     * Treat each stage's replica count as independent servers
     * (replica groups working on distinct micro-batches) instead of
     * folding replication into the per-micro-batch service time.
     */
    bool replicasAsServers = false;
    /** Probability a write-verify attempt fails and repeats. */
    double writeRetryProb = 0.0;
    /** Fraction of a stage's service time attributable to writes. */
    double writeFraction = 0.0;
    /**
     * Re-program refresh cadence in micro-batches (0 = never). Set
     * by the fault subsystem's refresh repair policy; both engines
     * honor it: the closed form adds the stalls to the makespan
     * (serialized drain model), the event engine stretches the
     * refreshing micro-batch's service at every stage.
     */
    uint32_t refreshEveryMicroBatches = 0;
    /** Pipeline stall per refresh event (ns). */
    double refreshStallNs = 0.0;
};

/** Everything a run needs to pick and drive a timing backend. */
struct SimContext
{
    EngineKind engine = EngineKind::ClosedForm;
    /**
     * Custom backend plugged in by the caller; when set it wins over
     * `engine`. Must be immutable/thread-safe (shared across runs).
     */
    std::shared_ptr<const ScheduleEngine> engineOverride;
    /** Seed for stochastic service-time sampling (event engine). */
    uint64_t seed = 1;
    EventKnobs event;
    /** Record per-(stage, micro-batch) windows in the timeline. */
    bool recordWindows = false;
    /** Optional observer fed the timeline of every scheduled run. */
    std::shared_ptr<TraceSink> traceSink;
    /**
     * Optional metrics registry; when set, engines and the layers
     * above record counters/histograms into it. Recording never
     * alters simulated timing — outputs are bit-identical with or
     * without a registry (pinned by tests/test_obs.cc).
     */
    std::shared_ptr<obs::MetricsRegistry> metrics;
    /**
     * Optional command-stream collector (--isa-trace-out): every
     * engine lowers the requests it schedules into isa:: command
     * streams and records them here. Recording never alters
     * simulated timing.
     */
    std::shared_ptr<isa::StreamRecorder> isaRecorder;
    /** Label recorded streams carry ("GoPIM on Cora"). */
    std::string isaStreamLabel;
    /**
     * Optional memo the replay engine's self-replay mode uses to
     * skip re-lowering/re-validating schedules it has already
     * round-tripped (sim/replay.hh). Internally locked; sharing one
     * cache across runs and threads is safe. Timing is unaffected —
     * a cache hit replays the exact desc the lowered stream would
     * have carried, so results stay bit-identical.
     */
    std::shared_ptr<ReplayLowerCache> lowerCache;
    /**
     * Optional memo for the event path (sim/timeline_cache.hh): when
     * a schedule's timeline is seed-independent (no write-retry
     * sampling) and carries no per-run windows, scheduleEventPath
     * returns the cached timeline instead of re-simulating.
     * Internally locked; hits are bit-identical by construction.
     */
    std::shared_ptr<TimelineCache> timelineCache;

    /** Fresh deterministic generator for one run. */
    Rng makeRng() const { return Rng(seed); }
};

} // namespace gopim::sim

#endif // GOPIM_SIM_CONTEXT_HH
