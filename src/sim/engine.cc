#include "sim/engine.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/math_utils.hh"
#include "obs/metrics.hh"
#include "sim/pipeline_sim.hh"
#include "sim/replay.hh"
#include "sim/timeline_cache.hh"

namespace gopim::sim {

const std::vector<EngineInfo> &
engineRegistry()
{
    static const std::vector<EngineInfo> registry = {
        {EngineKind::ClosedForm, "closed-form", "closed",
         "Eq. 3-6 recurrence"},
        {EngineKind::EventDriven, "event-driven", "event",
         "discrete-event flow shop"},
        {EngineKind::Replay, "replay", "replay",
         "lower to an ISA command stream and time it via the event "
         "path"},
    };
    return registry;
}

std::string
engineNameList()
{
    std::string out;
    for (const EngineInfo &info : engineRegistry()) {
        if (!out.empty())
            out += ", ";
        out += info.alias;
    }
    return out;
}

std::string
engineFlagHelp()
{
    std::string out = "timing backend:";
    for (const EngineInfo &info : engineRegistry()) {
        out += " ";
        out += info.alias;
        out += " (";
        out += info.summary;
        out += ")";
    }
    return out;
}

EngineKind
engineKindFromString(const std::string &name)
{
    EngineKind kind;
    if (!tryEngineKindFromString(name, &kind))
        fatal("unknown engine '", name, "' (try ", engineNameList(),
              ")");
    return kind;
}

bool
tryEngineKindFromString(const std::string &name, EngineKind *out)
{
    for (const EngineInfo &info : engineRegistry()) {
        if (name == info.alias || name == info.canonical) {
            *out = info.kind;
            return true;
        }
    }
    return false;
}

std::string
toString(EngineKind kind)
{
    for (const EngineInfo &info : engineRegistry())
        if (info.kind == kind)
            return info.canonical;
    panic("unknown engine kind");
}

double
StageTimeline::avgIdleFraction() const
{
    return mean(idleFraction);
}

pipeline::ScheduleResult
StageTimeline::toScheduleResult() const
{
    pipeline::ScheduleResult result;
    result.makespanNs = makespanNs;
    result.busyNs = busyNs;
    result.idleFraction = idleFraction;
    result.windows = windows;
    return result;
}

namespace {

void
validate(const ScheduleRequest &request)
{
    GOPIM_ASSERT(!request.stageTimesNs.empty(),
                 "schedule request with no stages");
    GOPIM_ASSERT(request.totalMicroBatches >= 1,
                 "need at least one micro-batch");
    GOPIM_ASSERT(request.replicas.empty() ||
                     request.replicas.size() ==
                         request.stageTimesNs.size(),
                 "replica vector size mismatch");
}

/** Batch drain boundaries, mirroring core's IntraBatch chunking. */
std::pair<uint32_t, uint32_t>
batchStructure(const ScheduleRequest &request)
{
    const uint32_t perBatch =
        std::min(std::max(1u, request.microBatchesPerBatch),
                 request.totalMicroBatches);
    const uint32_t batches =
        std::max(1u, request.totalMicroBatches / perBatch);
    return {perBatch, batches};
}

/** Bucket boundaries for simulated durations: 1 us .. ~1000 s. */
std::vector<double>
durationBoundsNs()
{
    return obs::Histogram::exponentialBounds(1e3, 4.0, 15);
}

/**
 * Record one scheduled run into the context's registry (no-op when
 * none is attached). Every value recorded here derives from simulated
 * timing, so counters and histogram contents are identical for any
 * worker count or run interleaving.
 */
void
recordScheduleMetrics(const SimContext &ctx,
                      const ScheduleRequest &request,
                      const StageTimeline &timeline,
                      const std::string &engineTag)
{
    if (!ctx.metrics)
        return;
    obs::MetricsRegistry &m = *ctx.metrics;
    m.counter("sim.schedule.count").add();
    m.counter("sim.schedule." + engineTag + ".count").add();
    m.counter("sim.micro_batches").add(request.totalMicroBatches);
    if (timeline.eventsProcessed > 0)
        m.counter("sim.events_processed")
            .add(timeline.eventsProcessed);
    m.histogram("sim.makespan_ns", durationBoundsNs())
        .observe(timeline.makespanNs);
    auto &busy = m.histogram("sim.stage.busy_ns", durationBoundsNs());
    for (double b : timeline.busyNs)
        busy.observe(b);
    auto &idle =
        m.histogram("sim.stage.idle_fraction",
                    obs::Histogram::linearBounds(0.1, 0.1, 10));
    for (double f : timeline.idleFraction)
        idle.observe(f);
    if (timeline.maxEventQueueDepth > 0)
        m.gauge("sim.event_queue.max_depth")
            .recordMax(
                static_cast<int64_t>(timeline.maxEventQueueDepth));
}

} // namespace

StageTimeline
ClosedFormEngine::schedule(const ScheduleRequest &request,
                           const SimContext &ctx) const
{
    validate(request);
    recordStreamIfRequested(request, ctx);
    // Windows are only materialized when the caller will read them
    // (trace sinks, gantt): the summaries come out bit-identical
    // either way and untraced grid runs skip the O(stages x B)
    // window allocation.
    pipeline::ScheduleResult closed;
    switch (request.regime) {
      case Regime::Serial:
        closed = pipeline::scheduleSerial(request.stageTimesNs,
                                          request.totalMicroBatches,
                                          ctx.recordWindows);
        break;
      case Regime::IntraBatch: {
        const auto [perBatch, batches] = batchStructure(request);
        closed = pipeline::scheduleIntraBatchOnly(
            request.stageTimesNs, perBatch, batches,
            ctx.recordWindows);
        break;
      }
      case Regime::IntraInterBatch:
        closed = pipeline::schedulePipelined(
            request.stageTimesNs, request.totalMicroBatches,
            ctx.recordWindows);
        break;
    }

    StageTimeline timeline;
    timeline.makespanNs = closed.makespanNs;
    timeline.busyNs = std::move(closed.busyNs);
    timeline.idleFraction = std::move(closed.idleFraction);
    timeline.windows = std::move(closed.windows);
    timeline.blockedNs.assign(request.stageTimesNs.size(), 0.0);

    // Re-program refreshes drain the pipeline and stall every stage
    // (serialized model); the recurrence itself is untouched, so the
    // zero-refresh path stays bit-identical.
    if (ctx.event.refreshEveryMicroBatches > 0 &&
        ctx.event.refreshStallNs > 0.0) {
        const uint32_t refreshes = request.totalMicroBatches /
                                   ctx.event.refreshEveryMicroBatches;
        if (refreshes > 0) {
            timeline.makespanNs +=
                refreshes * ctx.event.refreshStallNs;
            for (size_t i = 0; i < timeline.idleFraction.size(); ++i)
                timeline.idleFraction[i] = std::clamp(
                    1.0 - timeline.busyNs[i] / timeline.makespanNs,
                    0.0, 1.0);
        }
    }
    recordScheduleMetrics(ctx, request, timeline, "closed_form");
    return timeline;
}

StageTimeline
EventDrivenEngine::schedule(const ScheduleRequest &request,
                            const SimContext &ctx) const
{
    recordStreamIfRequested(request, ctx);
    return scheduleEventPath(request, ctx, "event_driven");
}

StageTimeline
scheduleEventPath(const ScheduleRequest &request,
                  const SimContext &ctx,
                  const std::string &metricsTag)
{
    validate(request);
    const size_t numStages = request.stageTimesNs.size();

    // The timeline is a pure function of (request, event knobs) when
    // nothing samples the RNG — write-verify retry is the only
    // stochastic knob — and no per-run windows are requested. Only
    // then may the memo answer; a hit is the exact timeline the
    // simulation below would produce.
    const bool memoizable = ctx.timelineCache && !ctx.recordWindows &&
                            ctx.event.writeRetryProb == 0.0;
    std::string memoKey;
    uint64_t memoFingerprint = 0;
    if (memoizable) {
        memoKey = timelineCacheKey(request, ctx);
        memoFingerprint = fnv1a64(memoKey);
        if (const StageTimeline *cached =
                ctx.timelineCache->find(memoFingerprint, memoKey)) {
            StageTimeline timeline = *cached;
            recordScheduleMetrics(ctx, request, timeline, metricsTag);
            return timeline;
        }
    }

    std::vector<StationConfig> stations(numStages);
    for (size_t i = 0; i < numStages; ++i) {
        stations[i].serviceTimeNs = request.stageTimesNs[i];
        stations[i].inputBuffer = ctx.event.inputBufferSlots;
        if (ctx.event.replicasAsServers && !request.replicas.empty())
            stations[i].servers = std::max(1u, request.replicas[i]);
    }

    ServiceSampler sampler;
    if (ctx.event.writeRetryProb > 0.0)
        sampler = makeWriteRetrySampler(stations,
                                        ctx.event.writeRetryProb,
                                        ctx.event.writeFraction);
    if (ctx.event.refreshEveryMicroBatches > 0 &&
        ctx.event.refreshStallNs > 0.0) {
        // Stretch the refreshing micro-batch at every stage: the
        // whole array is being re-programmed, so no stage can serve
        // it until the refresh completes. Uses the global micro-batch
        // index (chunk samplers add the chunk base below).
        const ServiceSampler inner = sampler;
        const double stall = ctx.event.refreshStallNs;
        const uint32_t every = ctx.event.refreshEveryMicroBatches;
        sampler = [inner, stations, stall, every](
                      size_t stage, uint32_t mb, Rng &rng) {
            double serviceNs =
                inner ? inner(stage, mb, rng)
                      : stations[stage].serviceTimeNs;
            if ((mb + 1) % every == 0)
                serviceNs += stall;
            return serviceNs;
        };
    }

    // The drain regimes decompose into independent chunks: serial
    // execution is a one-micro-batch pipeline repeated, intra-batch
    // pipelining drains at every weight update. Inter-batch
    // pipelining is a single chunk.
    uint32_t chunkSize = request.totalMicroBatches;
    uint32_t numChunks = 1;
    switch (request.regime) {
      case Regime::Serial:
        chunkSize = 1;
        numChunks = request.totalMicroBatches;
        break;
      case Regime::IntraBatch: {
        const auto [perBatch, batches] = batchStructure(request);
        chunkSize = perBatch;
        numChunks = batches;
        break;
      }
      case Regime::IntraInterBatch:
        break;
    }

    StageTimeline timeline;
    timeline.busyNs.assign(numStages, 0.0);
    timeline.blockedNs.assign(numStages, 0.0);
    if (ctx.recordWindows)
        timeline.windows.assign(
            numStages, std::vector<pipeline::StageWindow>(
                           static_cast<size_t>(chunkSize) * numChunks));

    Rng seedRng = ctx.makeRng();
    double offsetNs = 0.0;
    for (uint32_t chunk = 0; chunk < numChunks; ++chunk) {
        const uint32_t base = chunk * chunkSize;
        ServiceSampler chunkSampler;
        if (sampler)
            chunkSampler = [&sampler, base](size_t stage, uint32_t mb,
                                            Rng &rng) {
                return sampler(stage, mb + base, rng);
            };
        const auto sim =
            simulatePipeline(stations, chunkSize, chunkSampler,
                             seedRng.next(), ctx.recordWindows);
        for (size_t i = 0; i < numStages; ++i) {
            timeline.busyNs[i] += sim.busyNs[i];
            timeline.blockedNs[i] += sim.blockedNs[i];
        }
        if (ctx.recordWindows) {
            for (size_t i = 0; i < numStages; ++i) {
                for (uint32_t j = 0; j < chunkSize; ++j) {
                    auto &dst = timeline.windows[i][base + j];
                    dst.startNs =
                        sim.windows[i][j].startNs + offsetNs;
                    dst.endNs = sim.windows[i][j].endNs + offsetNs;
                }
            }
        }
        timeline.eventsProcessed += sim.eventsProcessed;
        timeline.maxEventQueueDepth = std::max(
            timeline.maxEventQueueDepth, sim.maxEventQueueDepth);
        offsetNs += sim.makespanNs;
    }
    timeline.makespanNs = offsetNs;

    timeline.idleFraction.resize(numStages);
    for (size_t i = 0; i < numStages; ++i) {
        timeline.idleFraction[i] =
            timeline.makespanNs > 0.0
                ? std::clamp(1.0 - timeline.busyNs[i] /
                                       timeline.makespanNs,
                             0.0, 1.0)
                : 0.0;
    }
    if (memoizable)
        ctx.timelineCache->insert(memoFingerprint,
                                  std::move(memoKey), timeline);
    recordScheduleMetrics(ctx, request, timeline, metricsTag);
    return timeline;
}

const ScheduleEngine &
engineFor(EngineKind kind)
{
    static const ClosedFormEngine closedForm;
    static const EventDrivenEngine eventDriven;
    static const ReplayEngine replay;
    switch (kind) {
      case EngineKind::ClosedForm:
        return closedForm;
      case EngineKind::EventDriven:
        return eventDriven;
      case EngineKind::Replay:
        return replay;
    }
    panic("unknown engine kind");
}

const ScheduleEngine &
resolveEngine(const SimContext &ctx)
{
    if (ctx.engineOverride)
        return *ctx.engineOverride;
    return engineFor(ctx.engine);
}

} // namespace gopim::sim
