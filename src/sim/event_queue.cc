#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace gopim::sim {

namespace {

// Default calendar: modest footprint for ad-hoc queues that never
// call reserveHorizon (unit tests, tiny schedules). Sized so typical
// pipeline timescales (us-scale service times) land a handful of
// events per bucket.
constexpr size_t kDefaultBuckets = 64;
constexpr double kDefaultWidthNs = 1024.0;

// reserveHorizon bounds: enough buckets for ~1 event per bucket on
// the biggest grids without letting one queue allocate unboundedly.
constexpr size_t kMinBuckets = 16;
constexpr size_t kMaxBuckets = 8192;

} // namespace

EventQueue::EventQueue()
    : buckets_(kDefaultBuckets), widthNs_(kDefaultWidthNs),
      invWidthNs_(1.0 / kDefaultWidthNs)
{
}

void
EventQueue::reserveHorizon(double horizonNs, uint64_t expectedEvents)
{
    if (live_ != 0 || horizonNs <= 0.0 || expectedEvents == 0)
        return;
    const size_t want = std::clamp<size_t>(
        std::bit_ceil(static_cast<size_t>(expectedEvents)),
        kMinBuckets, kMaxBuckets);
    buckets_.assign(want, {});
    widthNs_ = std::max(horizonNs / static_cast<double>(want), 1.0);
    invWidthNs_ = 1.0 / widthNs_;
    currentDay_ = dayOf(now_);
}

uint64_t
EventQueue::dayOf(double timeNs) const
{
    const double clamped = std::max(timeNs, now_);
    if (clamped <= 0.0)
        return 0;
    return static_cast<uint64_t>(clamped * invWidthNs_);
}

void
EventQueue::schedule(double timeNs, Callback callback)
{
    GOPIM_ASSERT(timeNs >= now_ - 1e-9,
                 "cannot schedule into the past (t=", timeNs,
                 ", now=", now_, ")");
    const uint64_t day = dayOf(timeNs);
    buckets_[day & (buckets_.size() - 1)].push_back(
        {timeNs, nextSeq_++, day, std::move(callback)});
    ++live_;
}

void
EventQueue::scheduleAfter(double delayNs, Callback callback)
{
    GOPIM_ASSERT(delayNs >= 0.0, "negative delay");
    schedule(now_ + delayNs, std::move(callback));
}

bool
EventQueue::pop(std::vector<Event> &bucket, size_t index)
{
    // Detach before invoking: the callback may schedule new events
    // into this same bucket and reallocate it.
    Event event = std::move(bucket[index]);
    if (index + 1 != bucket.size())
        bucket[index] = std::move(bucket.back());
    bucket.pop_back();
    --live_;
    now_ = event.timeNs;
    ++processed_;
    event.callback();
    return true;
}

bool
EventQueue::step()
{
    if (live_ == 0)
        return false;

    const size_t mask = buckets_.size() - 1;

    // Invariant: every pending event has day >= currentDay_, and all
    // of day d's events sit in bucket d & mask. Scanning one circle
    // of days therefore visits each day's complete candidate set, and
    // picking the minimum (timeNs, seq) within a day reproduces the
    // total order exactly.
    for (size_t circle = 0; circle <= mask; ++circle) {
        std::vector<Event> &bucket = buckets_[currentDay_ & mask];
        size_t best = bucket.size();
        for (size_t i = 0; i < bucket.size(); ++i) {
            if (bucket[i].day > currentDay_)
                continue; // a later circle of this bucket
            if (best == bucket.size() ||
                bucket[i].timeNs < bucket[best].timeNs ||
                (bucket[i].timeNs == bucket[best].timeNs &&
                 bucket[i].seq < bucket[best].seq))
                best = i;
        }
        if (best != bucket.size())
            return pop(bucket, best);
        ++currentDay_;
    }

    // A full circle of empty days: the next event is at least a whole
    // calendar away. Find the global minimum directly and jump there
    // — same (timeNs, seq) order, just without walking empty days.
    std::vector<Event> *bestBucket = nullptr;
    size_t bestIndex = 0;
    for (std::vector<Event> &bucket : buckets_)
        for (size_t i = 0; i < bucket.size(); ++i) {
            if (bestBucket != nullptr) {
                const Event &e = bucket[i];
                const Event &b = (*bestBucket)[bestIndex];
                if (e.timeNs > b.timeNs ||
                    (e.timeNs == b.timeNs && e.seq > b.seq))
                    continue;
            }
            bestBucket = &bucket;
            bestIndex = i;
        }
    GOPIM_ASSERT(bestBucket != nullptr,
                 "live events unreachable by calendar scan");
    currentDay_ = (*bestBucket)[bestIndex].day;
    return pop(*bestBucket, bestIndex);
}

void
EventQueue::run(uint64_t maxEvents)
{
    uint64_t steps = 0;
    while (step()) {
        if (++steps > maxEvents)
            panic("event queue exceeded ", maxEvents,
                  " events: runaway simulation");
    }
}

} // namespace gopim::sim
