#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace gopim::sim {

void
EventQueue::schedule(double timeNs, Callback callback)
{
    GOPIM_ASSERT(timeNs >= now_ - 1e-9,
                 "cannot schedule into the past (t=", timeNs,
                 ", now=", now_, ")");
    events_.push({timeNs, nextSeq_++, std::move(callback)});
}

void
EventQueue::scheduleAfter(double delayNs, Callback callback)
{
    GOPIM_ASSERT(delayNs >= 0.0, "negative delay");
    schedule(now_ + delayNs, std::move(callback));
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    // Copy out before pop: the callback may schedule new events.
    Event event = events_.top();
    events_.pop();
    now_ = event.timeNs;
    ++processed_;
    event.callback();
    return true;
}

void
EventQueue::run(uint64_t maxEvents)
{
    uint64_t steps = 0;
    while (step()) {
        if (++steps > maxEvents)
            panic("event queue exceeded ", maxEvents,
                  " events: runaway simulation");
    }
}

} // namespace gopim::sim
