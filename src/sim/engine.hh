/**
 * @file
 * Pluggable scheduling engines: one interface, three timing backends.
 *
 * The engines separate "what to run" (a ScheduleRequest: post-
 * replication stage times, micro-batch structure, pipelining regime)
 * from "how to time it":
 *
 *  - ClosedFormEngine evaluates the paper's Eq. 3-6 recurrences
 *    (pipeline/schedule.hh) — exact, deterministic, O(stages x
 *    micro-batches);
 *  - EventDrivenEngine executes the flow shop event by event
 *    (sim/pipeline_sim.hh) and can additionally model bounded
 *    inter-stage buffers, multi-server replica groups, and ReRAM
 *    write-verify retry stochasticity via the SimContext knobs;
 *  - sim::ReplayEngine (sim/replay.hh) times an isa:: command
 *    stream — lowered on the fly or read back from a binary trace —
 *    through the same event path, bit-identically.
 *
 * All return the same StageTimeline, so core::Accelerator, the
 * comparison harness, every bench, and the trace sink are agnostic
 * to the backend. With default knobs the engines agree exactly
 * (tests/test_engine.cc asserts parity across all systems). The
 * registered backends and their spellings live in the engine
 * registry (sim/context.hh) — flag help and serve hints derive from
 * it rather than hard-coding names.
 */

#ifndef GOPIM_SIM_ENGINE_HH
#define GOPIM_SIM_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/schedule.hh"
#include "sim/context.hh"

namespace gopim::sim {

/** Pipelining regime of a scheduling request. */
enum class Regime
{
    Serial,         ///< no overlap at all
    IntraBatch,     ///< pipeline within a batch, drain between
    IntraInterBatch ///< pipeline across batch boundaries too
};

/** One scheduling problem, independent of the timing backend. */
struct ScheduleRequest
{
    /** Post-replication service time of each stage (ns/micro-batch). */
    std::vector<double> stageTimesNs;
    /** Replica count per stage (multi-server event mode). */
    std::vector<uint32_t> replicas;
    Regime regime = Regime::IntraInterBatch;
    /** Total micro-batches across all batches. */
    uint32_t totalMicroBatches = 1;
    /** Drain boundary for Regime::IntraBatch (micro-batches/batch). */
    uint32_t microBatchesPerBatch = 0;
};

/** Backend-agnostic scheduling outcome. */
struct StageTimeline
{
    double makespanNs = 0.0;
    /** Per-stage total service time over the run. */
    std::vector<double> busyNs;
    /** Per-stage time finished work sat blocked by backpressure. */
    std::vector<double> blockedNs;
    /** Idle fraction of each stage: 1 - busy / makespan, in [0,1]. */
    std::vector<double> idleFraction;
    /**
     * Start/end of every (stage, micro-batch) service window,
     * stage-major. Populated by the closed form always and by the
     * event engine when SimContext::recordWindows is set.
     */
    std::vector<std::vector<pipeline::StageWindow>> windows;
    /** Discrete events executed (0 for the closed form). */
    uint64_t eventsProcessed = 0;
    /** Event-queue depth high-water mark (0 for the closed form). */
    uint64_t maxEventQueueDepth = 0;

    double avgIdleFraction() const;
    bool hasWindows() const { return !windows.empty(); }

    /** View as a pipeline::ScheduleResult (Gantt rendering reuse). */
    pipeline::ScheduleResult toScheduleResult() const;
};

/** A timing backend that turns requests into timelines. */
class ScheduleEngine
{
  public:
    virtual ~ScheduleEngine() = default;

    /** Short identifier ("closed-form", "event-driven"). */
    virtual std::string name() const = 0;

    /** Schedule one run under `ctx`'s knobs and seed. */
    virtual StageTimeline schedule(const ScheduleRequest &request,
                                   const SimContext &ctx) const = 0;
};

/** Eq. 3-6 recurrence backend wrapping pipeline/schedule.hh. */
class ClosedFormEngine final : public ScheduleEngine
{
  public:
    std::string name() const override { return "closed-form"; }
    StageTimeline schedule(const ScheduleRequest &request,
                           const SimContext &ctx) const override;
};

/** Discrete-event flow-shop backend wrapping simulatePipeline(). */
class EventDrivenEngine final : public ScheduleEngine
{
  public:
    std::string name() const override { return "event-driven"; }
    StageTimeline schedule(const ScheduleRequest &request,
                           const SimContext &ctx) const override;
};

/** Shared immutable engine instance for a kind (never null). */
const ScheduleEngine &engineFor(EngineKind kind);

/** Context's backend: engineOverride when set, else engineFor(). */
const ScheduleEngine &resolveEngine(const SimContext &ctx);

/**
 * The discrete-event timing path shared by EventDrivenEngine and
 * sim::ReplayEngine: chunk decomposition, retry/refresh samplers,
 * seeded per-chunk simulation. `metricsTag` labels the per-engine
 * counters; the timeline itself is independent of it — one code
 * path is what makes replay bit-identical to a live event run.
 */
StageTimeline scheduleEventPath(const ScheduleRequest &request,
                                const SimContext &ctx,
                                const std::string &metricsTag);

/**
 * Lower `request` under `ctx`'s knobs and record the command stream
 * into ctx.isaRecorder (no-op when none is attached). Every engine
 * calls this on entry so --isa-trace-out captures any run.
 */
void recordStreamIfRequested(const ScheduleRequest &request,
                             const SimContext &ctx);

} // namespace gopim::sim

#endif // GOPIM_SIM_ENGINE_HH
