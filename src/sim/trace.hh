/**
 * @file
 * Timeline observability: a TraceSink observer fed every scheduled
 * run's StageTimeline, and a ChromeTraceSink that serializes the
 * collected runs as Chrome trace_event JSON ("Trace Event Format"),
 * loadable in chrome://tracing and Perfetto.
 *
 * Each recorded run becomes one process (pid) in the trace; each
 * pipeline stage becomes one named thread (tid) carrying complete
 * "X" duration events, one per micro-batch service window.
 */

#ifndef GOPIM_SIM_TRACE_HH
#define GOPIM_SIM_TRACE_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/profile.hh"
#include "pipeline/stage.hh"
#include "sim/engine.hh"

namespace gopim::sim {

/** Labels identifying one recorded run in a trace. */
struct TraceRunInfo
{
    std::string systemName;
    std::string datasetName;
    std::string engineName;
};

/** Observer of scheduled timelines (needs windows to be recorded). */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per scheduled run. Must be thread-safe. */
    virtual void record(const TraceRunInfo &info,
                        const std::vector<pipeline::Stage> &stages,
                        const StageTimeline &timeline) = 0;
};

/**
 * Collects runs and writes them as Chrome trace_event JSON. Also an
 * obs::SpanSink: host-side ProfileSpans land in the same trace under
 * a dedicated "host profiling" process, so simulated pipeline windows
 * and simulator wall-clock cost are inspectable side by side.
 */
class ChromeTraceSink final : public TraceSink, public obs::SpanSink
{
  public:
    /**
     * `maxEventsPerStage` caps the duration events emitted per stage
     * per run (the rest is elided with a log note) so traces of
     * multi-epoch runs stay loadable.
     */
    explicit ChromeTraceSink(uint32_t maxEventsPerStage = 50'000);

    void record(const TraceRunInfo &info,
                const std::vector<pipeline::Stage> &stages,
                const StageTimeline &timeline) override;

    void profileSpan(const std::string &name, double startUs,
                     double durationUs) override;

    /** Runs recorded so far. */
    size_t runCount() const;

    /** Host profiling spans recorded so far. */
    size_t spanCount() const;

    /** Serialize everything collected as one JSON document. */
    void writeTo(std::ostream &os) const;

    /** writeTo() a file; fatal() when the file cannot be opened. */
    void writeFile(const std::string &path) const;

  private:
    struct Run
    {
        TraceRunInfo info;
        std::vector<std::string> stageLabels;
        std::vector<std::vector<pipeline::StageWindow>> windows;
    };

    struct HostSpan
    {
        std::string name;
        double startUs;
        double durationUs;
    };

    uint32_t maxEventsPerStage_;
    mutable std::mutex mutex_;
    std::vector<Run> runs_;
    std::vector<HostSpan> spans_;
};

} // namespace gopim::sim

#endif // GOPIM_SIM_TRACE_HH
