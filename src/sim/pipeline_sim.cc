#include "sim/pipeline_sim.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace gopim::sim {

double
SimResult::idleFraction(size_t stage) const
{
    GOPIM_ASSERT(stage < busyNs.size(), "stage out of range");
    if (makespanNs <= 0.0)
        return 0.0;
    // Busy time is summed across the stage's servers; normalize by
    // one server's wall clock so a saturated single server reads 0.
    return std::clamp(1.0 - busyNs[stage] / makespanNs, 0.0, 1.0);
}

namespace {

/** Mutable per-station simulation state. */
struct Station
{
    StationConfig config;
    /** Micro-batches waiting to start (arrival order). */
    std::deque<uint32_t> inputQueue;
    /**
     * Finished micro-batches awaiting handoff downstream, in finish
     * order; each holds one of this station's servers until accepted.
     * Multi-server stations may legitimately finish out of order
     * (distinct replica groups), so handoff follows finish order.
     */
    std::deque<std::pair<uint32_t, double>> blocked; ///< (mb, doneAt)
    uint32_t freeServers = 0;
    double busyNs = 0.0;
    double blockedNs = 0.0;
};

class Simulation
{
  public:
    Simulation(const std::vector<StationConfig> &configs,
               uint32_t microBatches, const ServiceSampler &sampler,
               uint64_t seed, bool recordWindows)
        : sampler_(sampler), rng_(seed)
    {
        stations_.reserve(configs.size());
        for (const auto &cfg : configs) {
            Station s;
            s.config = cfg;
            s.freeServers = cfg.servers;
            stations_.push_back(std::move(s));
        }
        if (recordWindows)
            windows_.assign(
                configs.size(),
                std::vector<pipeline::StageWindow>(microBatches));
        // All micro-batches are released to stage 0 at t = 0; stage
        // 0's input feed is the off-chip stream, unbounded.
        for (uint32_t j = 0; j < microBatches; ++j)
            stations_.front().inputQueue.push_back(j);

        // Calendar sizing: one traversal of the pipe plus the
        // bottleneck stage's drain bounds the makespan from below,
        // and each (stage, micro-batch) pair finishes exactly once.
        // Advisory only — retries/sampling may stretch the horizon,
        // which costs scan time, never correctness.
        double traversalNs = 0.0;
        double bottleneckNs = 0.0;
        for (const auto &cfg : configs) {
            traversalNs += cfg.serviceTimeNs;
            bottleneckNs = std::max(
                bottleneckNs, cfg.serviceTimeNs /
                                  std::max<double>(cfg.servers, 1.0));
        }
        queue_.reserveHorizon(
            traversalNs + bottleneckNs * (microBatches - 1),
            static_cast<uint64_t>(configs.size()) * microBatches);
    }

    SimResult
    run()
    {
        tryStart(0);
        queue_.run();

        SimResult result;
        result.makespanNs = queue_.nowNs();
        result.completed = completed_;
        result.eventsProcessed = queue_.processed();
        result.maxEventQueueDepth = maxQueueDepth_;
        for (const auto &s : stations_) {
            result.busyNs.push_back(s.busyNs);
            result.blockedNs.push_back(s.blockedNs);
        }
        result.windows = std::move(windows_);
        return result;
    }

  private:
    double
    serviceTime(size_t stage, uint32_t mb)
    {
        if (sampler_)
            return sampler_(stage, mb, rng_);
        return stations_[stage].config.serviceTimeNs;
    }

    /**
     * Start queued micro-batches while servers are free. Starting
     * work frees input-buffer slots, so upstream blocked handoffs are
     * drained afterwards.
     */
    void
    tryStart(size_t stageIdx)
    {
        Station &station = stations_[stageIdx];
        bool startedAny = false;
        while (station.freeServers > 0 &&
               !station.inputQueue.empty()) {
            const uint32_t mb = station.inputQueue.front();
            station.inputQueue.pop_front();
            --station.freeServers;
            startedAny = true;
            const double service = serviceTime(stageIdx, mb);
            station.busyNs += service;
            if (!windows_.empty()) {
                auto &window = windows_[stageIdx][mb];
                window.startNs = queue_.nowNs();
                window.endNs = queue_.nowNs() + service;
            }
            // Narrow the stage index so the capture fits libstdc++'s
            // 16-byte std::function inline storage: no per-event heap
            // allocation on the hottest path in the simulator.
            const auto stage32 = static_cast<uint32_t>(stageIdx);
            queue_.scheduleAfter(service, [this, stage32, mb] {
                onFinish(stage32, mb);
            });
            maxQueueDepth_ = std::max<uint64_t>(maxQueueDepth_,
                                                queue_.pending());
        }
        if (startedAny && stageIdx > 0)
            drainBlocked(stageIdx - 1);
    }

    /** Room for one more waiting micro-batch in front of a station? */
    bool
    hasSpace(size_t stageIdx) const
    {
        const Station &station = stations_[stageIdx];
        // A free server with an empty queue means direct handoff: the
        // job will not occupy a buffer slot.
        if (station.freeServers > 0 && station.inputQueue.empty())
            return true;
        return station.inputQueue.size() <
               static_cast<size_t>(station.config.inputBuffer);
    }

    /** Move this station's blocked handoffs downstream, in order. */
    void
    drainBlocked(size_t stageIdx)
    {
        Station &station = stations_[stageIdx];
        const size_t next = stageIdx + 1;
        while (!station.blocked.empty() && hasSpace(next)) {
            const auto [mb, doneAt] = station.blocked.front();
            station.blocked.pop_front();
            station.blockedNs += queue_.nowNs() - doneAt;
            ++station.freeServers;
            stations_[next].inputQueue.push_back(mb);
            tryStart(next);
            tryStart(stageIdx);
            // This station's server freed: the release propagates
            // upstream even when this station had nothing queued.
            if (stageIdx > 0)
                drainBlocked(stageIdx - 1);
        }
    }

    void
    onFinish(size_t stageIdx, uint32_t mb)
    {
        Station &station = stations_[stageIdx];
        if (stageIdx + 1 == stations_.size()) {
            ++completed_;
            ++station.freeServers;
            tryStart(stageIdx);
        } else {
            // Handoffs leave in finish order through the blocked
            // queue; an immediate handoff spends zero time blocked.
            station.blocked.push_back({mb, queue_.nowNs()});
            drainBlocked(stageIdx);
        }
        // A server freed (or a handoff slot opened) here; upstream
        // blocked handoffs may now fit even if nothing new started.
        if (stageIdx > 0)
            drainBlocked(stageIdx - 1);
    }

    ServiceSampler sampler_;
    Rng rng_;
    std::vector<Station> stations_;
    std::vector<std::vector<pipeline::StageWindow>> windows_;
    EventQueue queue_;
    uint32_t completed_ = 0;
    uint64_t maxQueueDepth_ = 0;
};

} // namespace

SimResult
simulatePipeline(const std::vector<StationConfig> &stations,
                 uint32_t microBatches, const ServiceSampler &sampler,
                 uint64_t seed, bool recordWindows)
{
    GOPIM_ASSERT(!stations.empty(), "pipeline with no stations");
    GOPIM_ASSERT(microBatches >= 1, "need at least one micro-batch");
    for (const auto &s : stations)
        GOPIM_ASSERT(s.servers >= 1, "station needs >= 1 server");
    Simulation sim(stations, microBatches, sampler, seed,
                   recordWindows);
    auto result = sim.run();
    GOPIM_ASSERT(result.completed == microBatches,
                 "pipeline deadlocked: ", result.completed, " of ",
                 microBatches, " completed");
    return result;
}

ServiceSampler
makeWriteRetrySampler(const std::vector<StationConfig> &stations,
                      double retryProb, double writeFraction)
{
    GOPIM_ASSERT(retryProb >= 0.0 && retryProb < 1.0,
                 "retry probability must be in [0, 1)");
    GOPIM_ASSERT(writeFraction >= 0.0 && writeFraction <= 1.0,
                 "write fraction must be in [0, 1]");
    std::vector<double> base;
    for (const auto &s : stations)
        base.push_back(s.serviceTimeNs);

    return [base, retryProb, writeFraction](
               size_t stage, uint32_t, Rng &rng) {
        const double computePart = base[stage] * (1.0 - writeFraction);
        const double writePart = base[stage] * writeFraction;
        // Geometric retries: each write-verify failure repeats the
        // write portion.
        uint32_t attempts = 1;
        while (rng.bernoulli(retryProb) && attempts < 64)
            ++attempts;
        return computePart + writePart * static_cast<double>(attempts);
    };
}

} // namespace gopim::sim
