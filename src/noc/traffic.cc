#include "noc/traffic.hh"

#include "common/logging.hh"

namespace gopim::noc {

TrafficRecorder::TrafficRecorder(const NocModel &model) : model_(model)
{
}

void
TrafficRecorder::record(uint64_t fromTile, uint64_t toTile,
                        uint64_t bytes)
{
    const uint32_t hops = model_.topology().hops(fromTile, toTile);
    ++stats_.messages;
    stats_.bytes += bytes;
    stats_.hopBytes += bytes * hops;
    stats_.latencySumNs += model_.messageLatencyNs(hops, bytes);
    stats_.energyPj += model_.messageEnergyPj(hops, bytes);
}

void
uniformRandomTraffic(TrafficRecorder &recorder, uint64_t messages,
                     uint64_t bytesPerMessage, Rng &rng)
{
    const uint64_t tileCount =
        recorder.model().topology().tileCount();
    for (uint64_t i = 0; i < messages; ++i) {
        const uint64_t from = rng.uniformInt(tileCount);
        const uint64_t to = rng.uniformInt(tileCount);
        recorder.record(from, to, bytesPerMessage);
    }
}

void
hotspotTraffic(TrafficRecorder &recorder, uint64_t messages,
               uint64_t bytesPerMessage, double hotFraction, Rng &rng)
{
    GOPIM_ASSERT(hotFraction >= 0.0 && hotFraction <= 1.0,
                 "hot fraction out of range");
    const uint64_t tileCount =
        recorder.model().topology().tileCount();
    for (uint64_t i = 0; i < messages; ++i) {
        const uint64_t from = rng.uniformInt(tileCount);
        const uint64_t to =
            rng.bernoulli(hotFraction) ? 0 : rng.uniformInt(tileCount);
        recorder.record(from, to, bytesPerMessage);
    }
}

} // namespace gopim::noc
