#include "noc/topology.hh"

#include <cmath>

#include "common/logging.hh"

namespace gopim::noc {

MeshTopology::MeshTopology(uint32_t cols, uint32_t rows)
    : cols_(cols), rows_(rows)
{
    GOPIM_ASSERT(cols > 0 && rows > 0, "mesh dimensions must be > 0");
}

MeshTopology
MeshTopology::forTileCount(uint64_t tiles)
{
    GOPIM_ASSERT(tiles > 0, "mesh needs at least one tile");
    const auto side = static_cast<uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(tiles))));
    uint32_t rows = side;
    while (static_cast<uint64_t>(side) * (rows - 1) >= tiles &&
           rows > 1)
        --rows;
    return MeshTopology(side, rows);
}

TileCoord
MeshTopology::coordOf(uint64_t tileId) const
{
    GOPIM_ASSERT(tileId < tileCount(), "tile id out of range");
    return {static_cast<uint32_t>(tileId % cols_),
            static_cast<uint32_t>(tileId / cols_)};
}

uint64_t
MeshTopology::idOf(TileCoord c) const
{
    GOPIM_ASSERT(c.x < cols_ && c.y < rows_, "coord out of range");
    return static_cast<uint64_t>(c.y) * cols_ + c.x;
}

uint32_t
MeshTopology::hops(uint64_t fromTile, uint64_t toTile) const
{
    const TileCoord a = coordOf(fromTile);
    const TileCoord b = coordOf(toTile);
    const uint32_t dx = a.x > b.x ? a.x - b.x : b.x - a.x;
    const uint32_t dy = a.y > b.y ? a.y - b.y : b.y - a.y;
    return dx + dy;
}

double
MeshTopology::meanHops() const
{
    // Mean Manhattan distance on a mesh: E|dx| + E|dy| where
    // E|d| = (n^2 - 1) / (3n) for uniform endpoints on n columns.
    auto meanAbs = [](double n) {
        return (n * n - 1.0) / (3.0 * n);
    };
    return meanAbs(cols_) + meanAbs(rows_);
}

} // namespace gopim::noc
