/**
 * @file
 * On-chip network topology. GoPIM's tiles are "connected through
 * adders and pipeline bus" for inter-tile aggregation (Section IV-A);
 * ReGraphX uses a 3D mesh. This module models a 2D mesh with XY
 * routing (the standard substrate) so the inter-tile costs of large
 * replicas can be studied (bench/ablation_noc).
 */

#ifndef GOPIM_NOC_TOPOLOGY_HH
#define GOPIM_NOC_TOPOLOGY_HH

#include <cstdint>

namespace gopim::noc {

/** Tile coordinate in the mesh. */
struct TileCoord
{
    uint32_t x = 0;
    uint32_t y = 0;

    bool operator==(const TileCoord &other) const = default;
};

/** 2D mesh of tiles with XY dimension-ordered routing. */
class MeshTopology
{
  public:
    /** cols x rows mesh; both must be positive. */
    MeshTopology(uint32_t cols, uint32_t rows);

    /** Smallest near-square mesh holding `tiles` tiles. */
    static MeshTopology forTileCount(uint64_t tiles);

    uint32_t cols() const { return cols_; }
    uint32_t rows() const { return rows_; }
    uint64_t tileCount() const
    {
        return static_cast<uint64_t>(cols_) * rows_;
    }

    /** Coordinate of a tile id (row-major). */
    TileCoord coordOf(uint64_t tileId) const;

    /** Tile id of a coordinate. */
    uint64_t idOf(TileCoord c) const;

    /** Manhattan hop count between two tiles (XY routing). */
    uint32_t hops(uint64_t fromTile, uint64_t toTile) const;

    /** Network diameter (max hops between any two tiles). */
    uint32_t diameter() const { return cols_ - 1 + rows_ - 1; }

    /** Mean hop distance under uniform-random traffic (closed form). */
    double meanHops() const;

  private:
    uint32_t cols_;
    uint32_t rows_;
};

} // namespace gopim::noc

#endif // GOPIM_NOC_TOPOLOGY_HH
