#include "noc/router.hh"

#include <cmath>

#include "common/logging.hh"

namespace gopim::noc {

NocModel::NocModel(MeshTopology topology, NocParams params)
    : topology_(topology), params_(params)
{
    GOPIM_ASSERT(params_.hopLatencyNs > 0.0 &&
                     params_.linkBytesPerNs > 0.0,
                 "NoC parameters must be positive");
}

double
NocModel::messageLatencyNs(uint32_t hops, uint64_t bytes) const
{
    // Cut-through: head latency plus serialization of the body.
    return static_cast<double>(hops) * params_.hopLatencyNs +
           static_cast<double>(bytes) / params_.linkBytesPerNs;
}

double
NocModel::messageEnergyPj(uint32_t hops, uint64_t bytes) const
{
    return static_cast<double>(hops) * static_cast<double>(bytes) *
           params_.energyPerBytePerHopPj;
}

double
NocModel::reductionLatencyNs(uint64_t tiles, uint64_t bytes) const
{
    GOPIM_ASSERT(tiles >= 1, "reduction over zero tiles");
    if (tiles == 1)
        return 0.0;
    double total = 0.0;
    uint64_t remaining = tiles;
    while (remaining > 1) {
        // Participants at this level form a sub-mesh; partners are a
        // mean-hop apart within it.
        const auto sub = MeshTopology::forTileCount(remaining);
        const auto hops = static_cast<uint32_t>(
            std::ceil(sub.meanHops()));
        total += messageLatencyNs(std::max(1u, hops), bytes) +
                 params_.adderLatencyNs;
        remaining = (remaining + 1) / 2;
    }
    return total;
}

double
NocModel::reductionEnergyPj(uint64_t tiles, uint64_t bytes) const
{
    GOPIM_ASSERT(tiles >= 1, "reduction over zero tiles");
    double total = 0.0;
    uint64_t remaining = tiles;
    while (remaining > 1) {
        const auto sub = MeshTopology::forTileCount(remaining);
        const auto hops = static_cast<uint32_t>(
            std::ceil(sub.meanHops()));
        // remaining/2 messages move in parallel at this level.
        total += static_cast<double>(remaining / 2) *
                 messageEnergyPj(std::max(1u, hops), bytes);
        remaining = (remaining + 1) / 2;
    }
    return total;
}

} // namespace gopim::noc
