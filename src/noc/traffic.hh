/**
 * @file
 * NoC traffic accounting and synthetic traffic patterns for the
 * interconnect ablation (bench/ablation_noc) and stress tests.
 */

#ifndef GOPIM_NOC_TRAFFIC_HH
#define GOPIM_NOC_TRAFFIC_HH

#include <cstdint>

#include "common/rng.hh"
#include "noc/router.hh"

namespace gopim::noc {

/** Aggregated traffic statistics. */
struct TrafficStats
{
    uint64_t messages = 0;
    uint64_t bytes = 0;
    uint64_t hopBytes = 0; ///< sum of bytes x hops (load metric)
    double latencySumNs = 0.0;
    double energyPj = 0.0;

    double avgLatencyNs() const
    {
        return messages ? latencySumNs / static_cast<double>(messages)
                        : 0.0;
    }

    double avgHops() const
    {
        return bytes ? static_cast<double>(hopBytes) /
                           static_cast<double>(bytes)
                     : 0.0;
    }
};

/** Records messages against a NocModel. */
class TrafficRecorder
{
  public:
    explicit TrafficRecorder(const NocModel &model);

    /** Record one message between two tiles. */
    void record(uint64_t fromTile, uint64_t toTile, uint64_t bytes);

    const TrafficStats &stats() const { return stats_; }
    const NocModel &model() const { return model_; }
    void reset() { stats_ = {}; }

  private:
    const NocModel &model_;
    TrafficStats stats_;
};

/** Drive `messages` uniform-random messages through the recorder. */
void uniformRandomTraffic(TrafficRecorder &recorder, uint64_t messages,
                          uint64_t bytesPerMessage, Rng &rng);

/**
 * Hotspot traffic: `hotFraction` of messages target tile 0 (the
 * global-buffer corner), the rest are uniform.
 */
void hotspotTraffic(TrafficRecorder &recorder, uint64_t messages,
                    uint64_t bytesPerMessage, double hotFraction,
                    Rng &rng);

} // namespace gopim::noc

#endif // GOPIM_NOC_TRAFFIC_HH
