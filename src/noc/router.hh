/**
 * @file
 * NoC link/router timing-energy model and reduction-tree latency for
 * inter-tile partial-sum aggregation (the adders + pipeline bus of
 * Section IV-A).
 */

#ifndef GOPIM_NOC_ROUTER_HH
#define GOPIM_NOC_ROUTER_HH

#include <cstdint>

#include "noc/topology.hh"

namespace gopim::noc {

/** Link and router parameters. */
struct NocParams
{
    /** Per-hop router + link traversal latency (ns). */
    double hopLatencyNs = 1.2;
    /** Link bandwidth (bytes per ns). */
    double linkBytesPerNs = 32.0;
    /** Energy per byte per hop (pJ). */
    double energyPerBytePerHopPj = 0.8;
    /** Adder latency at each reduction-tree level (ns). */
    double adderLatencyNs = 0.5;
};

/** Latency/energy calculator over a mesh. */
class NocModel
{
  public:
    NocModel(MeshTopology topology, NocParams params = {});

    const MeshTopology &topology() const { return topology_; }
    const NocParams &params() const { return params_; }

    /** Latency of one message of `bytes` over `hops` hops (ns). */
    double messageLatencyNs(uint32_t hops, uint64_t bytes) const;

    /** Energy of one message (pJ). */
    double messageEnergyPj(uint32_t hops, uint64_t bytes) const;

    /**
     * Latency of reducing partial sums from `tiles` tiles into one
     * (ns): a binary tree of ceil(log2(tiles)) levels; each level
     * moves `bytes` over the mean hop distance of a mesh of the
     * remaining participants and adds.
     */
    double reductionLatencyNs(uint64_t tiles, uint64_t bytes) const;

    /** Energy of the same reduction (pJ). */
    double reductionEnergyPj(uint64_t tiles, uint64_t bytes) const;

  private:
    MeshTopology topology_;
    NocParams params_;
};

} // namespace gopim::noc

#endif // GOPIM_NOC_ROUTER_HH
