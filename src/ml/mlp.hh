/**
 * @file
 * Multilayer perceptron regressor trained with Adam on squared loss.
 *
 * This is the paper's chosen Time Predictor model: a three-layer MLP
 * (10 input neurons, 256 hidden, 1 output). The layer count and widths
 * are configurable so Fig. 9(b)/(c)'s depth and width sweeps can be
 * reproduced.
 */

#ifndef GOPIM_ML_MLP_HH
#define GOPIM_ML_MLP_HH

#include <cstdint>
#include <vector>

#include "ml/regressor.hh"
#include "tensor/matrix.hh"

namespace gopim::ml {

/** Hyperparameters for the MLP regressor. */
struct MlpParams
{
    /** Hidden layer widths; {256} reproduces the paper's 3-layer MLP. */
    std::vector<size_t> hiddenLayers = {256};
    uint32_t epochs = 400;
    size_t batchSize = 32;
    double learningRate = 1e-3;
    double weightDecay = 1e-5;
    uint64_t seed = 11;
};

/** Fully-connected ReLU MLP with a linear output head. */
class MlpRegressor : public Regressor
{
  public:
    explicit MlpRegressor(MlpParams params = {});

    void fit(const Dataset &data) override;
    double predict(const std::vector<float> &features) const override;
    std::string name() const override;

    /** Total trainable parameter count (0 before fit). */
    size_t parameterCount() const;

    /** Number of weight layers (hidden + output). */
    size_t layerCount() const { return weights_.size(); }

  private:
    /** Forward pass for a row batch; fills per-layer pre-activations. */
    tensor::Matrix forward(const tensor::Matrix &input,
                           std::vector<tensor::Matrix> *preacts,
                           std::vector<tensor::Matrix> *acts) const;

    MlpParams params_;
    std::vector<tensor::Matrix> weights_; ///< layer i: in x out
    std::vector<std::vector<float>> biases_;

    // Adam state, one entry per weight/bias tensor.
    std::vector<tensor::Matrix> mW_, vW_;
    std::vector<std::vector<float>> mB_, vB_;
};

} // namespace gopim::ml

#endif // GOPIM_ML_MLP_HH
