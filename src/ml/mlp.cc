#include "ml/mlp.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace gopim::ml {

MlpRegressor::MlpRegressor(MlpParams params) : params_(std::move(params))
{
    GOPIM_ASSERT(params_.epochs >= 1, "need at least one epoch");
    GOPIM_ASSERT(params_.batchSize >= 1, "batch size must be >= 1");
}

std::string
MlpRegressor::name() const
{
    // "MLP-3" for one hidden layer (3 layers counting input/output),
    // matching the paper's layer-count convention.
    return "MLP-" + std::to_string(params_.hiddenLayers.size() + 2);
}

size_t
MlpRegressor::parameterCount() const
{
    size_t count = 0;
    for (size_t l = 0; l < weights_.size(); ++l)
        count += weights_[l].size() + biases_[l].size();
    return count;
}

tensor::Matrix
MlpRegressor::forward(const tensor::Matrix &input,
                      std::vector<tensor::Matrix> *preacts,
                      std::vector<tensor::Matrix> *acts) const
{
    tensor::Matrix cur = input;
    if (acts)
        acts->push_back(cur);
    for (size_t l = 0; l < weights_.size(); ++l) {
        tensor::Matrix z = tensor::matmul(cur, weights_[l]);
        tensor::addRowBias(z, biases_[l]);
        if (preacts)
            preacts->push_back(z);
        const bool isOutput = l + 1 == weights_.size();
        cur = isOutput ? z : tensor::relu(z);
        if (acts && !isOutput)
            acts->push_back(cur);
    }
    return cur;
}

void
MlpRegressor::fit(const Dataset &data)
{
    GOPIM_ASSERT(data.size() > 0, "cannot fit on empty dataset");
    const size_t inputDim = data.numFeatures();

    // Layer dims: input -> hidden... -> 1.
    std::vector<size_t> dims;
    dims.push_back(inputDim);
    for (size_t h : params_.hiddenLayers)
        dims.push_back(h);
    dims.push_back(1);

    Rng rng(params_.seed);
    weights_.clear();
    biases_.clear();
    mW_.clear();
    vW_.clear();
    mB_.clear();
    vB_.clear();
    for (size_t l = 0; l + 1 < dims.size(); ++l) {
        weights_.push_back(
            tensor::xavierUniform(dims[l], dims[l + 1], rng));
        biases_.emplace_back(dims[l + 1], 0.0f);
        mW_.emplace_back(dims[l], dims[l + 1], 0.0f);
        vW_.emplace_back(dims[l], dims[l + 1], 0.0f);
        mB_.emplace_back(dims[l + 1], 0.0f);
        vB_.emplace_back(dims[l + 1], 0.0f);
    }

    const double beta1 = 0.9;
    const double beta2 = 0.999;
    const double eps = 1e-8;
    uint64_t step = 0;

    std::vector<size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    for (uint32_t epoch = 0; epoch < params_.epochs; ++epoch) {
        rng.shuffle(order);
        for (size_t start = 0; start < data.size();
             start += params_.batchSize) {
            const size_t end =
                std::min(start + params_.batchSize, data.size());
            const size_t bs = end - start;

            tensor::Matrix batch(bs, inputDim);
            std::vector<float> targets(bs);
            for (size_t i = 0; i < bs; ++i) {
                const size_t src = order[start + i];
                std::copy(data.x.rowPtr(src),
                          data.x.rowPtr(src) + inputDim,
                          batch.rowPtr(i));
                targets[i] = static_cast<float>(data.y[src]);
            }

            std::vector<tensor::Matrix> preacts;
            std::vector<tensor::Matrix> acts;
            tensor::Matrix out = forward(batch, &preacts, &acts);

            // dL/dout for 0.5 * mean squared error.
            tensor::Matrix grad(bs, 1);
            for (size_t i = 0; i < bs; ++i)
                grad(i, 0) = (out(i, 0) - targets[i]) /
                             static_cast<float>(bs);

            ++step;
            const double corr1 =
                1.0 - std::pow(beta1, static_cast<double>(step));
            const double corr2 =
                1.0 - std::pow(beta2, static_cast<double>(step));

            // Backward pass, updating each layer as we go.
            for (size_t li = weights_.size(); li > 0; --li) {
                const size_t l = li - 1;
                const tensor::Matrix &layerIn = acts[l];

                tensor::Matrix gw =
                    tensor::matmulTransA(layerIn, grad);
                std::vector<float> gb(biases_[l].size(), 0.0f);
                for (size_t r = 0; r < grad.rows(); ++r)
                    for (size_t c = 0; c < grad.cols(); ++c)
                        gb[c] += grad(r, c);

                if (l > 0) {
                    tensor::Matrix upstream =
                        tensor::matmulTransB(grad, weights_[l]);
                    grad = tensor::reluBackward(upstream,
                                                preacts[l - 1]);
                }

                // Adam update with decoupled weight decay.
                float *w = weights_[l].data();
                float *gwp = gw.data();
                float *mw = mW_[l].data();
                float *vw = vW_[l].data();
                for (size_t i = 0; i < weights_[l].size(); ++i) {
                    const double g =
                        gwp[i] +
                        params_.weightDecay * static_cast<double>(w[i]);
                    mw[i] = static_cast<float>(beta1 * mw[i] +
                                               (1.0 - beta1) * g);
                    vw[i] = static_cast<float>(beta2 * vw[i] +
                                               (1.0 - beta2) * g * g);
                    const double mHat = mw[i] / corr1;
                    const double vHat = vw[i] / corr2;
                    w[i] -= static_cast<float>(
                        params_.learningRate * mHat /
                        (std::sqrt(vHat) + eps));
                }
                for (size_t i = 0; i < biases_[l].size(); ++i) {
                    const double g = gb[i];
                    mB_[l][i] = static_cast<float>(
                        beta1 * mB_[l][i] + (1.0 - beta1) * g);
                    vB_[l][i] = static_cast<float>(
                        beta2 * vB_[l][i] + (1.0 - beta2) * g * g);
                    const double mHat = mB_[l][i] / corr1;
                    const double vHat = vB_[l][i] / corr2;
                    biases_[l][i] -= static_cast<float>(
                        params_.learningRate * mHat /
                        (std::sqrt(vHat) + eps));
                }
            }
        }
    }
}

double
MlpRegressor::predict(const std::vector<float> &features) const
{
    GOPIM_ASSERT(!weights_.empty(), "predict before fit");
    GOPIM_ASSERT(features.size() == weights_.front().rows(),
                 "predict: feature width mismatch");
    tensor::Matrix input(1, features.size());
    std::copy(features.begin(), features.end(), input.rowPtr(0));
    const tensor::Matrix out = forward(input, nullptr, nullptr);
    return out(0, 0);
}

} // namespace gopim::ml
