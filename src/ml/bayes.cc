#include "ml/bayes.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gopim::ml {

BinnedBayesRegressor::BinnedBayesRegressor(BayesParams params)
    : params_(params)
{
    GOPIM_ASSERT(params_.binsPerFeature >= 2, "need at least two bins");
}

void
BinnedBayesRegressor::fit(const Dataset &data)
{
    GOPIM_ASSERT(data.size() > 0, "cannot fit on empty dataset");
    const size_t d = data.numFeatures();
    const size_t bins = params_.binsPerFeature;

    globalMean_ = 0.0;
    for (double t : data.y)
        globalMean_ += t;
    globalMean_ /= static_cast<double>(data.size());

    edges_.assign(d, {});
    binMeans_.assign(d, std::vector<double>(bins, 0.0));
    binCounts_.assign(d, std::vector<double>(bins, 0.0));

    std::vector<float> column(data.size());
    for (size_t f = 0; f < d; ++f) {
        for (size_t r = 0; r < data.size(); ++r)
            column[r] = data.x(r, f);
        std::sort(column.begin(), column.end());

        // Equal-frequency edges at the internal quantiles.
        edges_[f].resize(bins - 1);
        for (size_t b = 1; b < bins; ++b) {
            const size_t idx = std::min(
                data.size() - 1,
                b * data.size() / bins);
            edges_[f][b - 1] = column[idx];
        }

        std::vector<double> sums(bins, 0.0);
        for (size_t r = 0; r < data.size(); ++r) {
            const size_t b = binOf(f, data.x(r, f));
            sums[b] += data.y[r];
            binCounts_[f][b] += 1.0;
        }
        for (size_t b = 0; b < bins; ++b) {
            // Shrink small bins toward the global mean.
            binMeans_[f][b] =
                (sums[b] + params_.priorStrength * globalMean_) /
                (binCounts_[f][b] + params_.priorStrength);
        }
    }
}

size_t
BinnedBayesRegressor::binOf(size_t feature, float value) const
{
    const auto &edges = edges_[feature];
    const auto it =
        std::upper_bound(edges.begin(), edges.end(), value);
    return static_cast<size_t>(it - edges.begin());
}

double
BinnedBayesRegressor::predict(const std::vector<float> &features) const
{
    GOPIM_ASSERT(features.size() == edges_.size(),
                 "predict: feature width mismatch");
    // Precision-weighted average of per-feature bin means.
    double weighted = 0.0;
    double weightSum = 0.0;
    for (size_t f = 0; f < features.size(); ++f) {
        const size_t b = binOf(f, features[f]);
        const double w = binCounts_[f][b] + 1e-9;
        weighted += w * binMeans_[f][b];
        weightSum += w;
    }
    return weightSum > 0.0 ? weighted / weightSum : globalMean_;
}

} // namespace gopim::ml
