#include "ml/regressor.hh"

namespace gopim::ml {

std::vector<double>
Regressor::predictAll(const tensor::Matrix &x) const
{
    std::vector<double> out;
    out.reserve(x.rows());
    std::vector<float> row(x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
        const float *src = x.rowPtr(r);
        row.assign(src, src + x.cols());
        out.push_back(predict(row));
    }
    return out;
}

} // namespace gopim::ml
