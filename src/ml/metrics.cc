#include "ml/metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace gopim::ml {

namespace {

void
checkSizes(const std::vector<double> &truth,
           const std::vector<double> &pred)
{
    GOPIM_ASSERT(!truth.empty(), "metric over empty sample");
    GOPIM_ASSERT(truth.size() == pred.size(),
                 "metric: size mismatch between truth and prediction");
}

} // namespace

double
rmse(const std::vector<double> &truth, const std::vector<double> &pred)
{
    checkSizes(truth, pred);
    double sum = 0.0;
    for (size_t i = 0; i < truth.size(); ++i) {
        const double d = truth[i] - pred[i];
        sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(truth.size()));
}

double
mae(const std::vector<double> &truth, const std::vector<double> &pred)
{
    checkSizes(truth, pred);
    double sum = 0.0;
    for (size_t i = 0; i < truth.size(); ++i)
        sum += std::fabs(truth[i] - pred[i]);
    return sum / static_cast<double>(truth.size());
}

double
r2(const std::vector<double> &truth, const std::vector<double> &pred)
{
    checkSizes(truth, pred);
    double meanTruth = 0.0;
    for (double t : truth)
        meanTruth += t;
    meanTruth /= static_cast<double>(truth.size());

    double ssRes = 0.0;
    double ssTot = 0.0;
    for (size_t i = 0; i < truth.size(); ++i) {
        ssRes += (truth[i] - pred[i]) * (truth[i] - pred[i]);
        ssTot += (truth[i] - meanTruth) * (truth[i] - meanTruth);
    }
    if (ssTot <= 0.0)
        return ssRes <= 0.0 ? 1.0 : 0.0;
    return 1.0 - ssRes / ssTot;
}

double
mape(const std::vector<double> &truth, const std::vector<double> &pred)
{
    checkSizes(truth, pred);
    double sum = 0.0;
    size_t counted = 0;
    for (size_t i = 0; i < truth.size(); ++i) {
        if (truth[i] == 0.0)
            continue;
        sum += std::fabs((truth[i] - pred[i]) / truth[i]);
        ++counted;
    }
    return counted ? sum / static_cast<double>(counted) : 0.0;
}

} // namespace gopim::ml
