#include "ml/knn.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace gopim::ml {

KnnRegressor::KnnRegressor(KnnParams params) : params_(params)
{
    GOPIM_ASSERT(params_.k >= 1, "k must be >= 1");
}

void
KnnRegressor::fit(const Dataset &data)
{
    GOPIM_ASSERT(data.size() > 0, "cannot fit on empty dataset");
    train_ = data;
}

double
KnnRegressor::predict(const std::vector<float> &features) const
{
    GOPIM_ASSERT(train_.size() > 0, "predict before fit");
    GOPIM_ASSERT(features.size() == train_.numFeatures(),
                 "predict: feature width mismatch");

    const size_t k = std::min<size_t>(params_.k, train_.size());
    // Partial selection of the k smallest squared distances.
    std::vector<std::pair<double, size_t>> dist(train_.size());
    for (size_t i = 0; i < train_.size(); ++i) {
        const float *row = train_.x.rowPtr(i);
        double d2 = 0.0;
        for (size_t f = 0; f < features.size(); ++f) {
            const double d = row[f] - features[f];
            d2 += d * d;
        }
        dist[i] = {d2, i};
    }
    std::nth_element(dist.begin(),
                     dist.begin() + static_cast<long>(k - 1),
                     dist.end());

    double weighted = 0.0;
    double weightSum = 0.0;
    for (size_t i = 0; i < k; ++i) {
        const auto [d2, idx] = dist[i];
        const double w =
            params_.distanceWeighted ? 1.0 / (std::sqrt(d2) + 1e-9)
                                     : 1.0;
        weighted += w * train_.y[idx];
        weightSum += w;
    }
    return weighted / weightSum;
}

} // namespace gopim::ml
