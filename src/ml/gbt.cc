#include "ml/gbt.hh"

#include "common/logging.hh"

namespace gopim::ml {

GradientBoostedTrees::GradientBoostedTrees(GbtParams params)
    : params_(params)
{
    GOPIM_ASSERT(params_.numTrees >= 1, "need at least one tree");
    GOPIM_ASSERT(params_.learningRate > 0.0 &&
                     params_.learningRate <= 1.0,
                 "learning rate must be in (0, 1]");
}

void
GradientBoostedTrees::fit(const Dataset &data)
{
    GOPIM_ASSERT(data.size() > 0, "cannot fit on empty dataset");
    trees_.clear();

    // Base prediction: the target mean.
    baseline_ = 0.0;
    for (double t : data.y)
        baseline_ += t;
    baseline_ /= static_cast<double>(data.size());

    std::vector<double> residuals(data.size());
    std::vector<double> current(data.size(), baseline_);
    std::vector<float> row(data.numFeatures());

    for (uint32_t t = 0; t < params_.numTrees; ++t) {
        for (size_t i = 0; i < data.size(); ++i)
            residuals[i] = data.y[i] - current[i];

        DecisionTreeRegressor tree(params_.tree);
        tree.fitTargets(data.x, residuals);

        for (size_t i = 0; i < data.size(); ++i) {
            const float *src = data.x.rowPtr(i);
            row.assign(src, src + data.numFeatures());
            current[i] += params_.learningRate * tree.predict(row);
        }
        trees_.push_back(std::move(tree));
    }
}

double
GradientBoostedTrees::predict(const std::vector<float> &features) const
{
    GOPIM_ASSERT(!trees_.empty(), "predict before fit");
    double out = baseline_;
    for (const auto &tree : trees_)
        out += params_.learningRate * tree.predict(features);
    return out;
}

} // namespace gopim::ml
