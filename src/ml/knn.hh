/**
 * @file
 * k-nearest-neighbors regressor (inverse-distance weighted average),
 * a lazy-learning contrast point for the Fig. 9 model zoo.
 */

#ifndef GOPIM_ML_KNN_HH
#define GOPIM_ML_KNN_HH

#include <cstdint>

#include "ml/regressor.hh"

namespace gopim::ml {

/** Hyperparameters for kNN regression. */
struct KnnParams
{
    uint32_t k = 5;
    /** Inverse-distance weighting; plain mean when false. */
    bool distanceWeighted = true;
};

/** Brute-force Euclidean kNN regressor. */
class KnnRegressor : public Regressor
{
  public:
    explicit KnnRegressor(KnnParams params = {});

    void fit(const Dataset &data) override;
    double predict(const std::vector<float> &features) const override;
    std::string name() const override { return "KNN"; }

  private:
    KnnParams params_;
    Dataset train_;
};

} // namespace gopim::ml

#endif // GOPIM_ML_KNN_HH
