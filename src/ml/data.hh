/**
 * @file
 * Tabular regression dataset container, train/test splitting, and
 * feature standardization for the ML library.
 */

#ifndef GOPIM_ML_DATA_HH
#define GOPIM_ML_DATA_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "tensor/matrix.hh"

namespace gopim::ml {

/** A supervised regression dataset: one row of X per target in y. */
struct Dataset
{
    tensor::Matrix x;
    std::vector<double> y;

    size_t size() const { return y.size(); }
    size_t numFeatures() const { return x.cols(); }

    /** Append one sample; feature width must match existing rows. */
    void append(const std::vector<float> &features, double target);
};

/** Result of a random train/test split. */
struct Split
{
    Dataset train;
    Dataset test;
};

/**
 * Randomly split into train/test with the given train fraction
 * (paper uses 8:2 for the predictor study).
 */
Split trainTestSplit(const Dataset &data, double trainFraction, Rng &rng);

/**
 * Per-feature standardizer (zero mean, unit variance), fit on train
 * data and applied to both splits. Targets can optionally be scaled by
 * a constant so RMSE values are comparable across experiments.
 */
class StandardScaler
{
  public:
    /** Learn per-column mean and stddev from the data. */
    void fit(const tensor::Matrix &x);

    /** Apply the learned transform (columns with zero spread pass through). */
    tensor::Matrix transform(const tensor::Matrix &x) const;

    const std::vector<float> &means() const { return means_; }
    const std::vector<float> &stddevs() const { return stds_; }

  private:
    std::vector<float> means_;
    std::vector<float> stds_;
};

} // namespace gopim::ml

#endif // GOPIM_ML_DATA_HH
